"""repro — reproduction of ALBADross (Aksar et al., IEEE CLUSTER 2022).

Active-learning-based anomaly diagnosis for production HPC systems, built
from scratch on NumPy/SciPy:

* :mod:`repro.core` — the ALBADross framework (public API).
* :mod:`repro.active` — pool-based query strategies, learner, baselines.
* :mod:`repro.mlcore` — classifiers, preprocessing, selection, CV, metrics.
* :mod:`repro.telemetry` — LDMS-style monitoring substrate.
* :mod:`repro.apps` — Volta/Eclipse application workload signatures.
* :mod:`repro.anomalies` — HPAS-style synthetic anomaly injectors.
* :mod:`repro.features` — MVTS / TSFRESH statistical feature extraction.
* :mod:`repro.datasets` — campaign generation and experiment splits.
* :mod:`repro.parallel` — process fan-out utilities.

Quickstart::

    from repro.core import ALBADross, FrameworkConfig
    from repro.datasets import volta_config, generate_runs

See ``examples/quickstart.py`` for the full loop.
"""

from .core import ALBADross, FrameworkConfig

__version__ = "1.0.0"

__all__ = ["ALBADross", "FrameworkConfig", "__version__"]
