"""Exception-hygiene checker: failures must leave a trace.

**EH001** flags an ``except`` handler that *swallows*: a bare
``except:`` or broad ``except Exception/BaseException`` whose body
neither re-raises, nor logs (``logging``/``warnings``/``print``/stats
``record_*`` counters), nor does any real handling work. The archetypal
offender is ``except Exception: pass`` — the failure vanishes and the
operator debugs a ghost.

A handler passes when it:

* contains a ``raise`` (re-raise or translate),
* calls anything that records the event — logger methods, ``print``,
  ``warnings.warn``, ``pytest.fail``, ``record_*``/``escalate*``
  counters — anywhere in its body, or
* performs substantive handling: statements beyond ``pass`` /
  docstrings / bare ``continue`` (e.g. counting the failure into a
  report, falling back to a default) count as escalation, because the
  outcome is visible to the caller.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .base import Checker, FileContext, Finding, dotted_name

__all__ = ["ExceptionHygieneChecker"]

_BROAD = {"Exception", "BaseException"}
_TRACE_CALLS = {
    "debug",
    "info",
    "warning",
    "warn",
    "error",
    "exception",
    "critical",
    "log",
    "print",
    "fail",
    "print_exc",
}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True  # bare except
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for t in types:
        dotted = dotted_name(t)
        if dotted is not None and dotted.split(".")[-1] in _BROAD:
            return True
    return False


def _traces(body: list[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                name = None
                if isinstance(node.func, ast.Attribute):
                    name = node.func.attr
                elif isinstance(node.func, ast.Name):
                    name = node.func.id
                if name is not None and (
                    name in _TRACE_CALLS
                    or name.startswith("record_")
                    or name.startswith("escalate")
                ):
                    return True
    return False


def _is_trivial(body: list[ast.stmt]) -> bool:
    """Only pass / docstring-constants / continue: nothing happened."""
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue
        return False
    return True


class ExceptionHygieneChecker(Checker):
    name = "exception-hygiene"
    rules = ("EH001",)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if _traces(node.body):
                continue
            if not _is_trivial(node.body):
                continue  # substantive handling counts as escalation
            what = "bare except" if node.type is None else "broad except"
            yield Finding(
                path=ctx.path,
                line=node.lineno,
                rule="EH001",
                message=(
                    f"{what} swallows the failure silently — log it, "
                    "escalate it, re-raise, or narrow the exception type"
                ),
            )
