"""Invariant-enforcing static analysis for the repro codebase.

The repo's hard-won invariants — bit-identical determinism at any
``n_jobs``, every wait bounded, lock discipline in the serving stack —
are cheap to violate in review and expensive to debug in production.
This package machine-checks them: an AST-walking :class:`Checker`
framework with per-file context, inline ``# repro-lint: disable=RULE``
suppressions, path-scoped rule configuration, a committed-baseline
mechanism for grandfathered findings, and five concrete checkers:

* :mod:`repro.analysis.determinism` — no module-level RNG, no wall-clock
  reads, no argless ``default_rng()`` in the deterministic packages;
* :mod:`repro.analysis.bounded_waits` — no ``.result()`` / ``.join()`` /
  ``.get()`` / ``.acquire()`` / ``.wait()`` without a timeout in serving;
* :mod:`repro.analysis.lock_discipline` — no bare ``acquire()``, no
  unbounded blocking inside a lock body, no lock-order cycles;
* :mod:`repro.analysis.lifecycle` — threads daemonized or joined, SQLite
  connections closed, persistence writes atomic (tmp + ``os.replace``);
* :mod:`repro.analysis.hygiene` — no silently swallowed exceptions.

Run it as ``repro lint`` (see :mod:`repro.cli`) or programmatically via
:func:`repro.analysis.runner.run_lint`.
"""

from .base import Checker, FileContext, Finding
from .baseline import diff_baseline, load_baseline, write_baseline
from .rules import RULES, RuleSpec, rules_for_path
from .runner import all_checkers, format_findings, lint_source, run_lint
from .suppressions import Suppression, parse_suppressions

__all__ = [
    "Checker",
    "FileContext",
    "Finding",
    "RULES",
    "RuleSpec",
    "Suppression",
    "all_checkers",
    "diff_baseline",
    "format_findings",
    "lint_source",
    "load_baseline",
    "parse_suppressions",
    "rules_for_path",
    "run_lint",
    "write_baseline",
]
