"""Checker framework: findings, per-file context, AST walking helpers.

A :class:`Checker` sees one :class:`FileContext` at a time (parsed AST,
source lines, suppression map, repo-relative path) and yields
:class:`Finding` objects. Checkers that need whole-program context (the
lock-order graph) accumulate state per file and emit the cross-file
findings from :meth:`Checker.finalize`, which the runner calls once
after the last file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from .suppressions import Suppression, parse_suppressions

__all__ = ["Finding", "FileContext", "Checker", "dotted_name", "walk_with_ancestors"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation: where it is, which rule, and why it matters."""

    path: str  # repo-relative, forward slashes
    line: int
    rule: str  # e.g. "BW001"
    message: str

    def key(self) -> tuple[str, str, str]:
        """Baseline identity: line numbers drift, (rule, path, message) don't."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass
class FileContext:
    """Everything a checker may want to know about one source file."""

    path: str  # repo-relative, forward slashes
    source: str
    tree: ast.AST
    suppressions: dict[int, Suppression] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str, path: str) -> "FileContext":
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            source=source,
            tree=tree,
            suppressions=parse_suppressions(source),
        )

    @classmethod
    def from_file(cls, file_path: str | Path, rel_path: str) -> "FileContext":
        return cls.from_source(Path(file_path).read_text(), rel_path)

    def is_suppressed(self, line: int, rule: str) -> bool:
        supp = self.suppressions.get(line)
        return supp is not None and supp.covers(rule)

    # convenience for checkers scoping on package membership
    def in_package(self, prefix: str) -> bool:
        """Whether this file lives under ``prefix`` (repo-relative, sans src/)."""
        rel = self.path[4:] if self.path.startswith("src/") else self.path
        return rel == prefix or rel.startswith(prefix.rstrip("/") + "/")


class Checker:
    """Base class for one family of invariant checks.

    Subclasses set ``name`` (slug) and ``rules`` (the rule ids they may
    emit) and implement :meth:`check_file`. Stateful checkers override
    :meth:`finalize` for findings that need every file first.
    """

    name: str = "checker"
    rules: tuple[str, ...] = ()

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finalize(self) -> Iterable[Finding]:
        """Cross-file findings; called once after every file was checked."""
        return ()


# ----------------------------------------------------------------------
# AST helpers shared by the concrete checkers
def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``.

    Chains rooted in anything but a plain name (calls, subscripts)
    resolve to ``None`` — the checkers only reason about names they can
    see statically.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def walk_with_ancestors(
    tree: ast.AST,
) -> Iterator[tuple[ast.AST, tuple[ast.AST, ...]]]:
    """Yield ``(node, ancestors)`` depth-first; ancestors outermost-first."""
    stack: list[tuple[ast.AST, tuple[ast.AST, ...]]] = [(tree, ())]
    while stack:
        node, ancestors = stack.pop()
        yield node, ancestors
        child_ancestors = ancestors + (node,)
        # reversed keeps sibling order stable for deterministic output
        for child in reversed(list(ast.iter_child_nodes(node))):
            stack.append((child, child_ancestors))
