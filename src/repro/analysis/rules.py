"""Rule catalog and path-scoped configuration.

Every rule carries its default scope: the repo-relative path prefixes
(after stripping a leading ``src/``) it applies to. Scoping is the
difference between a useful invariant checker and a noise generator —
``time.time()`` is a bug in the deterministic data plane and perfectly
fine in a CLI stats dump.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RuleSpec", "RULES", "rules_for_path", "DETERMINISM_SCOPE"]


@dataclass(frozen=True)
class RuleSpec:
    """One rule: id, human summary, and the path prefixes it covers."""

    rule: str
    summary: str
    scopes: tuple[str, ...]

    def applies_to(self, rel_path: str) -> bool:
        path = rel_path[4:] if rel_path.startswith("src/") else rel_path
        for prefix in self.scopes:
            clean = prefix.rstrip("/")
            if path == clean or path.startswith(clean + "/"):
                return True
            # file-granular scopes ("repro/core/persistence.py")
            if clean.endswith(".py") and path == clean:
                return True
        return False


# The packages whose outputs must be bit-identical for a given seed at
# any n_jobs (PRs 4-5) plus the serving stack, whose registry manifests
# and retry jitter must flow through injectable clocks / seeded streams.
DETERMINISM_SCOPE = (
    "repro/datasets",
    "repro/mlcore",
    "repro/features",
    "repro/telemetry",
    "repro/active",
    "repro/serving",
)

_SERVING_SCOPE = ("repro/serving", "tests/serving")

_PERSISTENCE_SCOPE = (
    "repro/core/persistence.py",
    "repro/datasets/runs_io.py",
    "repro/experiments",
    "repro/serving",
)

RULES: dict[str, RuleSpec] = {
    spec.rule: spec
    for spec in (
        RuleSpec(
            "DET001",
            "module-level RNG call (np.random.* / random.*): seeds must "
            "flow through Generator/SeedSequence parameters",
            DETERMINISM_SCOPE,
        ),
        RuleSpec(
            "DET002",
            "wall-clock read (time.time()): inject a clock parameter "
            "instead so behavior is replayable",
            DETERMINISM_SCOPE,
        ),
        RuleSpec(
            "DET003",
            "unseeded RNG construction (argless default_rng()/SeedSequence()"
            "/Random()): nondeterministic by construction",
            DETERMINISM_SCOPE,
        ),
        RuleSpec(
            "BW001",
            "unbounded wait (.result()/.join()/.get()/.acquire()/.wait() "
            "without a timeout): every wait in serving must be bounded",
            _SERVING_SCOPE,
        ),
        RuleSpec(
            "LD001",
            "bare .acquire() outside a with-statement or try/finally "
            "release: leaks the lock on any exception",
            ("repro/serving",),
        ),
        RuleSpec(
            "LD002",
            "unbounded blocking call lexically inside a lock body: "
            "serializes (or deadlocks) every other lock user",
            ("repro/serving",),
        ),
        RuleSpec(
            "LD003",
            "lock-acquisition-order cycle: two code paths taking the same "
            "locks in opposite order can deadlock",
            ("repro/serving",),
        ),
        RuleSpec(
            "RL001",
            "thread neither daemonized nor joined: leaks a non-daemon "
            "thread that can hang interpreter shutdown",
            ("repro", "tests"),
        ),
        RuleSpec(
            "RL002",
            "sqlite3.connect result neither closed nor context-managed",
            ("repro", "tests"),
        ),
        RuleSpec(
            "RL003",
            "non-atomic persistence write: write to a temp name and "
            "os.replace() into place so readers never see a torn file",
            _PERSISTENCE_SCOPE,
        ),
        RuleSpec(
            "RL004",
            "SharedMemory segment with no file-local unlink story "
            "(.unlink() or weakref.finalize): close() alone leaks the "
            "segment in /dev/shm",
            ("repro", "tests"),
        ),
        RuleSpec(
            "EH001",
            "swallowed exception (bare/broad except with no logging, "
            "escalation, or re-raise): failures must leave a trace",
            ("repro",),
        ),
    )
}


def rules_for_path(rel_path: str) -> frozenset[str]:
    """The rule ids whose scope covers ``rel_path``."""
    return frozenset(
        rule for rule, spec in RULES.items() if spec.applies_to(rel_path)
    )
