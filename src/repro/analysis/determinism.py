"""Determinism checker: seeds flow through parameters, never globals.

The reproduction's central claim (bit-identical corpora, forests, and
query sequences at any ``n_jobs``) only holds while every random draw
comes from an explicitly threaded ``numpy.random.Generator`` /
``SeedSequence`` and every timestamp from an injectable clock. Three
rules:

* **DET001** — calls on the *module-level* RNGs: ``np.random.rand(...)``,
  ``np.random.seed(...)``, ``random.random()``, ``random.shuffle(...)``
  and friends. These share hidden global state across callers and
  workers; two processes interleave differently and the bytes diverge.
* **DET002** — ``time.time()`` / ``time.time_ns()`` calls. Wall-clock
  reads make outputs (manifests, fingerprint inputs) unreproducible;
  inject a ``clock``/``time_fn`` parameter instead (referencing
  ``time.time`` as a *default value* is fine — that is the structural
  whitelist the registry uses).
* **DET003** — argless ``np.random.default_rng()`` /
  ``np.random.SeedSequence()`` / ``random.Random()``: fresh OS entropy,
  nondeterministic by construction. Seeded forms are allowed.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .base import Checker, FileContext, Finding, dotted_name

__all__ = ["DeterminismChecker"]

# numpy.random attributes that are legitimate, parameterized constructors
# rather than draws on the shared global BitGenerator
_NP_RANDOM_OK = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

# stdlib `random` module attributes that construct independent instances
_PY_RANDOM_OK = {"Random", "SystemRandom", "getstate", "setstate"}

_WALL_CLOCKS = {"time.time", "time.time_ns"}


class DeterminismChecker(Checker):
    name = "determinism"
    rules = ("DET001", "DET002", "DET003")

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            finding = self._classify(dotted, node, ctx)
            if finding is not None:
                yield finding

    def _classify(
        self, dotted: str, node: ast.Call, ctx: FileContext
    ) -> Finding | None:
        argless = not node.args and not node.keywords
        parts = dotted.split(".")
        if dotted in _WALL_CLOCKS:
            return self._finding(
                ctx, node, "DET002",
                f"wall-clock read {dotted}(); inject a clock parameter "
                "(default it to time.time) so callers can replay",
            )
        # np.random.<fn>(...) — module-level numpy RNG
        if len(parts) >= 3 and parts[-2] == "random" and parts[-3] in ("np", "numpy"):
            fn = parts[-1]
            if fn not in _NP_RANDOM_OK:
                return self._finding(
                    ctx, node, "DET001",
                    f"module-level numpy RNG call {dotted}(); draw from an "
                    "explicitly threaded np.random.Generator instead",
                )
            if argless and fn in ("default_rng", "SeedSequence"):
                return self._finding(
                    ctx, node, "DET003",
                    f"argless {dotted}() seeds from OS entropy; pass a seed "
                    "or SeedSequence derived from the caller's stream",
                )
            return None
        # random.<fn>(...) — stdlib global RNG
        if len(parts) == 2 and parts[0] == "random":
            fn = parts[1]
            if fn not in _PY_RANDOM_OK:
                return self._finding(
                    ctx, node, "DET001",
                    f"global stdlib RNG call {dotted}(); use a seeded "
                    "random.Random(seed) instance instead",
                )
            if argless and fn == "Random":
                return self._finding(
                    ctx, node, "DET003",
                    "argless random.Random() seeds from OS entropy; pass "
                    "an explicit seed",
                )
        return None

    def _finding(
        self, ctx: FileContext, node: ast.AST, rule: str, message: str
    ) -> Finding:
        return Finding(path=ctx.path, line=node.lineno, rule=rule, message=message)
