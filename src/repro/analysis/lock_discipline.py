"""Lock-discipline checker: serving locks stay small, ordered, and safe.

Three rules over ``repro.serving``:

* **LD001** — a bare ``.acquire()`` whose release is not structurally
  guaranteed: the call must be the context expression of a ``with``
  statement, or sit inside a ``try`` whose ``finally`` releases the same
  lock. Anything else leaks the lock on the first exception.
* **LD002** — an *unbounded* blocking call lexically inside a lock body:
  zero-argument ``.result()/.join()/.get()/.acquire()/.wait()`` or any
  ``time.sleep(...)`` while a lock is held turns one slow peer into a
  pile-up of every other lock user. Bounded waits (an explicit timeout)
  are allowed — e.g. the engine's close path joining its dispatcher
  under the close lock with a deadline.
* **LD003** — lock-acquisition-order cycles. The checker builds a static
  lock graph across every file it sees: nesting ``with b:`` inside
  ``with a:`` adds edge ``a -> b``, and a ``self.method()`` call under a
  lock adds edges to every lock that method takes (one call hop). A
  cycle — including a self-edge, since ``threading.Lock`` is not
  reentrant — means two code paths can take the same locks in opposite
  order and deadlock.

A "lock" is identified by name: the last attribute segment contains
``lock``, ``mutex``, or ``sem``. Condition variables (``self._idle``)
deliberately do not match — waiting on a condition *inside* its ``with``
is the correct pattern, not a violation.
"""

from __future__ import annotations

import ast
from collections import defaultdict
from typing import Iterable

from .base import Checker, FileContext, Finding, dotted_name, walk_with_ancestors
from .bounded_waits import is_unbounded_wait

__all__ = ["LockDisciplineChecker", "is_lockish"]


def is_lockish(dotted: str | None) -> bool:
    if not dotted:
        return False
    last = dotted.split(".")[-1].lower()
    return any(hint in last for hint in ("lock", "mutex", "sem"))


def _lock_id(dotted: str, cls: str | None, module: str) -> str:
    """Stable graph-node id: class-qualified for ``self.*`` locks."""
    parts = dotted.split(".")
    if parts[0] == "self" and cls is not None:
        return f"{cls}.{'.'.join(parts[1:])}"
    return f"{module}:{dotted}"


class LockDisciplineChecker(Checker):
    name = "lock-discipline"
    rules = ("LD001", "LD002", "LD003")

    def __init__(self) -> None:
        # (src_lock, dst_lock) -> first site, for deterministic reports
        self._edges: dict[tuple[str, str], tuple[str, int]] = {}
        # deferred one-hop call edges: (held_lock, cls, method, site)
        self._call_edges: list[tuple[str, str | None, str, tuple[str, int]]] = []
        # (cls, method) -> locks that method takes anywhere in its body
        self._method_locks: dict[tuple[str | None, str], set[str]] = defaultdict(set)

    # ------------------------------------------------------------------
    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        module = ctx.path.rsplit("/", 1)[-1].removesuffix(".py")
        yield from self._check_bare_acquire(ctx)
        findings: list[Finding] = []
        self._scan(ctx.tree, ctx, module, cls=None, fn=None, held=(), out=findings)
        yield from findings

    # ------------------------------------------------------------------
    # LD001
    def _check_bare_acquire(self, ctx: FileContext) -> Iterable[Finding]:
        for node, ancestors in walk_with_ancestors(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
            ):
                continue
            base = dotted_name(node.func.value)
            if self._is_with_context(node, ancestors):
                continue
            if base is not None and self._released_in_finally(base, ancestors):
                continue
            yield Finding(
                path=ctx.path,
                line=node.lineno,
                rule="LD001",
                message=(
                    f"bare {base or '<expr>'}.acquire() — use `with` or a "
                    "try/finally release so an exception cannot leak the lock"
                ),
            )

    @staticmethod
    def _is_with_context(node: ast.Call, ancestors: tuple[ast.AST, ...]) -> bool:
        for anc in ancestors:
            if isinstance(anc, (ast.With, ast.AsyncWith)):
                for item in anc.items:
                    if item.context_expr is node:
                        return True
        return False

    @staticmethod
    def _released_in_finally(base: str, ancestors: tuple[ast.AST, ...]) -> bool:
        """A ``finally`` in the enclosing function releases the same lock.

        Covers both shapes: ``acquire()`` inside the ``try`` body, and the
        canonical ``acquire(); try: ... finally: release()`` where the
        acquire is the statement *preceding* the try.
        """
        scope: ast.AST | None = None
        for anc in reversed(ancestors):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope = anc
                break
        if scope is None and ancestors:
            scope = ancestors[0]  # module level
        if scope is None:
            return False
        for node in ast.walk(scope):
            if not isinstance(node, ast.Try) or not node.finalbody:
                continue
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "release"
                        and dotted_name(sub.func.value) == base
                    ):
                        return True
        return False

    # ------------------------------------------------------------------
    # LD002 + graph collection for LD003
    def _scan(
        self,
        node: ast.AST,
        ctx: FileContext,
        module: str,
        cls: str | None,
        fn: str | None,
        held: tuple[str, ...],
        out: list[Finding],
    ) -> None:
        if isinstance(node, ast.ClassDef):
            for child in node.body:
                self._scan(child, ctx, module, node.name, None, (), out)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # a nested function body does not run under the enclosing lock
            for child in node.body:
                self._scan(child, ctx, module, cls, node.name, (), out)
            return
        if isinstance(node, ast.Lambda):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            new_locks: list[str] = []
            for item in node.items:
                self._scan(item.context_expr, ctx, module, cls, fn, held, out)
                dotted = dotted_name(item.context_expr)
                if is_lockish(dotted):
                    assert dotted is not None
                    lock = _lock_id(dotted, cls, module)
                    site = (ctx.path, item.context_expr.lineno)
                    inner = (held + tuple(new_locks))
                    if inner:
                        self._edges.setdefault((inner[-1], lock), site)
                    if fn is not None:
                        self._method_locks[(cls, fn)].add(lock)
                    new_locks.append(lock)
            held = held + tuple(new_locks)
            for child in node.body:
                self._scan(child, ctx, module, cls, fn, held, out)
            return
        if held and isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            if is_unbounded_wait(node) or dotted == "time.sleep":
                what = dotted
                if what is None and isinstance(node.func, ast.Attribute):
                    what = f"<expr>.{node.func.attr}"
                out.append(
                    Finding(
                        path=ctx.path,
                        line=node.lineno,
                        rule="LD002",
                        message=(
                            f"unbounded blocking call {what}(...) while "
                            f"holding {held[-1]} — move it outside the lock "
                            "or bound it with a timeout"
                        ),
                    )
                )
            if (
                dotted is not None
                and dotted.startswith("self.")
                and dotted.count(".") == 1
            ):
                self._call_edges.append(
                    (held[-1], cls, dotted.split(".", 1)[1], (ctx.path, node.lineno))
                )
        for child in ast.iter_child_nodes(node):
            self._scan(child, ctx, module, cls, fn, held, out)

    # ------------------------------------------------------------------
    # LD003: resolve call edges, then hunt cycles
    def finalize(self) -> Iterable[Finding]:
        edges = dict(self._edges)
        for held, cls, method, site in self._call_edges:
            for lock in sorted(self._method_locks.get((cls, method), ())):
                edges.setdefault((held, lock), site)
        adjacency: dict[str, list[str]] = defaultdict(list)
        for src, dst in sorted(edges):
            adjacency[src].append(dst)
        seen_cycles: set[tuple[str, ...]] = set()
        for cycle in _find_cycles(adjacency):
            canon = _canonical(cycle)
            if canon in seen_cycles:
                continue
            seen_cycles.add(canon)
            closing = (cycle[-1], cycle[0])
            path, line = edges.get(closing) or next(
                site
                for (s, d), site in sorted(edges.items())
                if s in cycle and d in cycle
            )
            yield Finding(
                path=path,
                line=line,
                rule="LD003",
                message=(
                    "lock-order cycle: "
                    + " -> ".join(cycle + (cycle[0],))
                    + " — two paths can interleave these acquisitions "
                    "and deadlock"
                ),
            )


def _find_cycles(adjacency: dict[str, list[str]]) -> list[tuple[str, ...]]:
    """Elementary cycles via DFS with an explicit stack (small graphs)."""
    cycles: list[tuple[str, ...]] = []

    def dfs(start: str, node: str, path: tuple[str, ...]) -> None:
        for nxt in adjacency.get(node, ()):  # sorted at insertion
            if nxt == start:
                cycles.append(path)
            elif nxt not in path and nxt > start:
                # only explore nodes after `start` so each cycle is found
                # exactly once, from its smallest node
                dfs(start, nxt, path + (nxt,))

    for start in sorted(adjacency):
        # self-edge: re-acquiring a non-reentrant lock deadlocks outright
        if start in adjacency.get(start, ()):
            cycles.append((start,))
        dfs(start, start, (start,))
    return cycles


def _canonical(cycle: tuple[str, ...]) -> tuple[str, ...]:
    if not cycle:
        return cycle
    pivot = cycle.index(min(cycle))
    return cycle[pivot:] + cycle[:pivot]
