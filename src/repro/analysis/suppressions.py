"""Inline suppression comments: ``# repro-lint: disable=RULE -- why``.

A finding is suppressed when the physical line it is reported on carries
a disable comment naming its rule (or ``all``). The text after ``--`` is
the justification; the convention in this repo is that a suppression
without one does not survive review, and :func:`parse_suppressions`
records it so tooling can audit.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Suppression", "parse_suppressions"]

_DISABLE_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<why>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One disable comment: the rules it names and its justification."""

    line: int
    rules: frozenset[str] = field(default_factory=frozenset)
    justification: str = ""

    def covers(self, rule: str) -> bool:
        return "all" in self.rules or rule in self.rules


def parse_suppressions(source: str) -> dict[int, Suppression]:
    """Map physical line number -> :class:`Suppression` for one file.

    Uses :mod:`tokenize` so disable markers inside string literals are
    ignored — only real comments suppress.
    """
    out: dict[int, Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _DISABLE_RE.search(tok.string)
            if match is None:
                continue
            rules = frozenset(
                r.strip() for r in match.group(1).split(",") if r.strip()
            )
            if not rules:
                continue
            line = tok.start[0]
            out[line] = Suppression(
                line=line,
                rules=rules,
                justification=(match.group("why") or "").strip(),
            )
    except tokenize.TokenError:
        pass  # unterminated source; the AST parse will surface the error
    return out
