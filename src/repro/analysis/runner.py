"""Lint runner: walk files, scope rules, apply suppressions, report.

The orchestration layer behind ``repro lint``: collects ``.py`` files,
builds a :class:`~repro.analysis.base.FileContext` per file, runs every
checker, filters each finding by the path-scoped rule configuration and
the file's inline suppressions, subtracts the baseline, and formats the
survivors as text or JSON.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from .base import Checker, FileContext, Finding
from .baseline import diff_baseline, load_baseline
from .bounded_waits import BoundedWaitsChecker
from .determinism import DeterminismChecker
from .hygiene import ExceptionHygieneChecker
from .lifecycle import ResourceLifecycleChecker
from .lock_discipline import LockDisciplineChecker
from .rules import RULES, rules_for_path

__all__ = [
    "all_checkers",
    "collect_files",
    "lint_source",
    "run_lint",
    "format_findings",
]

_SKIP_DIRS = {".git", "__pycache__", ".ruff_cache", ".pytest_cache", "node_modules"}


def all_checkers() -> list[Checker]:
    """Fresh checker instances (the lock checker is stateful per run)."""
    return [
        DeterminismChecker(),
        BoundedWaitsChecker(),
        LockDisciplineChecker(),
        ResourceLifecycleChecker(),
        ExceptionHygieneChecker(),
    ]


def collect_files(paths: Sequence[str | Path], root: str | Path) -> list[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    root = Path(root)
    out: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if not p.is_absolute():
            p = root / p
        if p.is_file() and p.suffix == ".py":
            out.add(p)
        elif p.is_dir():
            for sub in p.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    out.add(sub)
    return sorted(out)


def _rel_path(file_path: Path, root: Path) -> str:
    try:
        rel = file_path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = file_path
    return rel.as_posix()


def _filter(
    findings: Iterable[Finding],
    contexts: dict[str, FileContext],
    rules: frozenset[str] | None,
) -> list[Finding]:
    """Scope + suppression + rule-selection filter, in one place."""
    kept: list[Finding] = []
    for finding in findings:
        if rules is not None and finding.rule not in rules:
            continue
        if finding.rule not in rules_for_path(finding.path):
            continue
        ctx = contexts.get(finding.path)
        if ctx is not None and ctx.is_suppressed(finding.line, finding.rule):
            continue
        kept.append(finding)
    return kept


def run_lint(
    paths: Sequence[str | Path],
    root: str | Path = ".",
    rules: Sequence[str] | None = None,
    baseline: str | Path | None = None,
    checkers: Sequence[Checker] | None = None,
) -> dict:
    """Lint ``paths`` and return a report dict.

    Keys: ``findings`` (non-baselined, the ones that should fail CI),
    ``baselined`` (absorbed by the baseline), ``files`` (count checked),
    ``errors`` (files that failed to parse — these are reported, not
    silently skipped).
    """
    root = Path(root)
    selected = frozenset(rules) if rules is not None else None
    if selected is not None:
        unknown = selected - set(RULES)
        if unknown:
            raise ValueError(f"unknown rule ids: {', '.join(sorted(unknown))}")
    active = list(checkers) if checkers is not None else all_checkers()
    contexts: dict[str, FileContext] = {}
    raw: list[Finding] = []
    errors: list[dict] = []
    for file_path in collect_files(paths, root):
        rel = _rel_path(file_path, root)
        try:
            ctx = FileContext.from_file(file_path, rel)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            errors.append({"path": rel, "error": f"{type(exc).__name__}: {exc}"})
            continue
        contexts[rel] = ctx
        for checker in active:
            raw.extend(checker.check_file(ctx))
    for checker in active:
        raw.extend(checker.finalize())
    findings = _filter(raw, contexts, selected)
    absorbed: list[Finding] = []
    if baseline is not None and Path(baseline).exists():
        findings, absorbed = diff_baseline(findings, load_baseline(baseline))
    return {
        "findings": sorted(findings),
        "baselined": absorbed,
        "files": len(contexts),
        "errors": errors,
    }


def lint_source(
    source: str,
    rel_path: str,
    rules: Sequence[str] | None = None,
    checkers: Sequence[Checker] | None = None,
) -> list[Finding]:
    """Lint one in-memory snippet as if it lived at ``rel_path``.

    The fixture-test entry point: scoping, suppressions, and the
    stateful finalize pass all behave exactly as in :func:`run_lint`.
    """
    ctx = FileContext.from_source(source, rel_path)
    active = list(checkers) if checkers is not None else all_checkers()
    raw: list[Finding] = []
    for checker in active:
        raw.extend(checker.check_file(ctx))
    for checker in active:
        raw.extend(checker.finalize())
    selected = frozenset(rules) if rules is not None else None
    return _filter(raw, {rel_path: ctx}, selected)


def format_findings(report: dict, fmt: str = "text") -> str:
    """Render a :func:`run_lint` report for humans (text) or machines (json)."""
    if fmt == "json":
        return json.dumps(
            {
                "findings": [f.to_dict() for f in report["findings"]],
                "baselined": [f.to_dict() for f in report["baselined"]],
                "files": report["files"],
                "errors": report["errors"],
            },
            indent=2,
            sort_keys=True,
        )
    lines: list[str] = []
    for finding in report["findings"]:
        lines.append(
            f"{finding.path}:{finding.line}: {finding.rule} {finding.message}"
        )
    for err in report["errors"]:
        lines.append(f"{err['path']}: ERROR {err['error']}")
    n = len(report["findings"])
    lines.append(
        f"{n} finding{'s' if n != 1 else ''} "
        f"({len(report['baselined'])} baselined) "
        f"in {report['files']} files"
    )
    return "\n".join(lines)
