"""Bounded-waits checker: no wait in serving may block forever.

PR 3 established the serving invariant that **every accepted future
resolves** and every wait is bounded — a wedged ``predict_fn`` must cost
a timeout, not a hung caller. The example-based chaos tests enforce it
for the paths they exercise; **BW001** enforces it for every call site:

    ``.result()``, ``.join()``, ``.get()``, ``.acquire()``, ``.wait()``

called with *no arguments at all* is an unbounded wait on a Future,
Thread, Queue, Lock/Semaphore, Event, Condition, or Barrier. Passing any
argument (positional timeout or ``timeout=``) satisfies the rule; APIs
where the first argument is not a timeout (``dict.get(key)``,
``", ".join(parts)``) therefore never trip it.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .base import Checker, FileContext, Finding

__all__ = ["BoundedWaitsChecker", "UNBOUNDED_WAIT_METHODS"]

UNBOUNDED_WAIT_METHODS = ("result", "join", "get", "acquire", "wait")


def is_unbounded_wait(node: ast.AST) -> bool:
    """A zero-argument call of one of the blocking method names."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in UNBOUNDED_WAIT_METHODS
        and not node.args
        and not node.keywords
    )


class BoundedWaitsChecker(Checker):
    name = "bounded-waits"
    rules = ("BW001",)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if is_unbounded_wait(node):
                assert isinstance(node, ast.Call)  # narrow for type checkers
                attr = node.func.attr  # type: ignore[union-attr]
                yield Finding(
                    path=ctx.path,
                    line=node.lineno,
                    rule="BW001",
                    message=(
                        f"unbounded .{attr}() — pass a timeout so a wedged "
                        "peer costs a bounded wait, not a hung caller"
                    ),
                )
