"""Resource-lifecycle checker: threads, connections, and torn writes.

* **RL001** — every ``threading.Thread(...)`` must either be daemonized
  (``daemon=True`` at construction, or a ``.daemon = True`` assignment
  in the same file) or reachably joined (a ``.join(...)`` call somewhere
  in the file). A forgotten non-daemon thread hangs interpreter
  shutdown; the check is lexical and file-local on purpose — it asks for
  *evidence* of a shutdown story, not a proof.
* **RL002** — a ``sqlite3.connect(...)`` result must be context-managed
  (``with``/``closing``) or closed: the file must contain a
  ``.close()`` call. Unclosed WAL connections pin ``-wal``/``-shm``
  sidecar files and leak file descriptors under churn.
* **RL003** — persistence writes must be atomic: ``open(path, "w"/"wb")``
  and ``Path.write_text/write_bytes`` are flagged unless the target name
  is a staging name (contains ``tmp`` or ``staging``) or the enclosing
  function performs the rename half of the pattern (``os.replace`` /
  ``os.rename``). A reader racing a direct overwrite sees a torn file;
  the registry's CURRENT pointer and the experiment cache both already
  stage-and-replace, and this rule keeps it that way.
* **RL004** — a raw ``SharedMemory(...)`` construction must come with
  file-local evidence of an unlink story: an ``.unlink()`` call or a
  ``weakref.finalize(...)`` registration somewhere in the file.
  ``close()`` alone is not enough — the segment lives in ``/dev/shm``
  until someone unlinks it, and a leaked segment eats tmpfs until
  reboot. :mod:`repro.parallel.shm` wraps the full lifecycle
  (finalizer-backed unlink on the owner, close-only on attachments);
  code outside it should go through those wrappers.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .base import Checker, FileContext, Finding, dotted_name, walk_with_ancestors

__all__ = ["ResourceLifecycleChecker"]

_STAGING_HINTS = ("tmp", "temp", "staging", "scratch")
_WRITE_MODES = {"w", "wb", "w+", "wb+", "w+b"}


def _has_call_attr(tree: ast.AST, attr: str) -> bool:
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == attr
        ):
            return True
    return False


def _sets_daemon_true(tree: ast.AST) -> bool:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if not (
            isinstance(node.value, ast.Constant) and node.value.value is True
        ):
            continue
        for target in node.targets:
            if isinstance(target, ast.Attribute) and target.attr == "daemon":
                return True
    return False


_SHM_CONSTRUCTORS = (
    "SharedMemory",
    "shared_memory.SharedMemory",
    "multiprocessing.shared_memory.SharedMemory",
)


def _has_finalize_call(tree: ast.AST) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and dotted_name(node.func) in (
            "weakref.finalize",
            "finalize",
        ):
            return True
    return False


class ResourceLifecycleChecker(Checker):
    name = "resource-lifecycle"
    rules = ("RL001", "RL002", "RL003", "RL004")

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        file_has_join = _has_call_attr(ctx.tree, "join")
        file_has_close = _has_call_attr(ctx.tree, "close")
        file_has_unlink = _has_call_attr(ctx.tree, "unlink")
        file_has_finalize = _has_finalize_call(ctx.tree)
        file_daemon_assign = _sets_daemon_true(ctx.tree)
        for node, ancestors in walk_with_ancestors(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted in ("threading.Thread", "Thread"):
                if self._daemon_kwarg(node) or file_daemon_assign or file_has_join:
                    continue
                yield Finding(
                    path=ctx.path,
                    line=node.lineno,
                    rule="RL001",
                    message=(
                        "Thread is neither daemonized nor joined anywhere in "
                        "this file — give it daemon=True or a bounded join"
                    ),
                )
            elif dotted in _SHM_CONSTRUCTORS:
                if file_has_unlink or file_has_finalize:
                    continue
                yield Finding(
                    path=ctx.path,
                    line=node.lineno,
                    rule="RL004",
                    message=(
                        "SharedMemory segment with no unlink story in this "
                        "file — close() frees nothing; register a "
                        "weakref.finalize unlink or use repro.parallel.shm"
                    ),
                )
            elif dotted == "sqlite3.connect":
                if self._in_with(node, ancestors) or file_has_close:
                    continue
                yield Finding(
                    path=ctx.path,
                    line=node.lineno,
                    rule="RL002",
                    message=(
                        "sqlite3.connect(...) is never closed in this file — "
                        "context-manage it or close() it on shutdown"
                    ),
                )
            else:
                yield from self._check_write(node, ancestors, ctx)

    # ------------------------------------------------------------------
    @staticmethod
    def _daemon_kwarg(node: ast.Call) -> bool:
        for kw in node.keywords:
            if (
                kw.arg == "daemon"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
            ):
                return True
        return False

    @staticmethod
    def _in_with(node: ast.Call, ancestors: tuple[ast.AST, ...]) -> bool:
        for anc in ancestors:
            if isinstance(anc, (ast.With, ast.AsyncWith)):
                for item in anc.items:
                    for sub in ast.walk(item.context_expr):
                        if sub is node:
                            return True
        return False

    # ------------------------------------------------------------------
    def _check_write(
        self, node: ast.Call, ancestors: tuple[ast.AST, ...], ctx: FileContext
    ) -> Iterable[Finding]:
        target: str | None = None
        kind: str | None = None
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in ("write_text", "write_bytes"):
                target = dotted_name(node.func.value)
                kind = attr
            elif attr == "open" and self._write_mode(node):
                target = dotted_name(node.func.value)
                kind = "open(..w..)"
        elif isinstance(node.func, ast.Name) and node.func.id == "open":
            if self._write_mode(node):
                target = dotted_name(node.args[0]) if node.args else None
                kind = "open(..w..)"
        if kind is None:
            return
        if target is not None and any(
            hint in target.lower() for hint in _STAGING_HINTS
        ):
            return
        if self._function_replaces(ancestors):
            return
        yield Finding(
            path=ctx.path,
            line=node.lineno,
            rule="RL003",
            message=(
                f"non-atomic {kind} on "
                f"{target or '<expr>'} — write to a temp name and "
                "os.replace() it into place"
            ),
        )

    @staticmethod
    def _write_mode(node: ast.Call) -> bool:
        mode: ast.AST | None = None
        # Path.open(mode=...) / open(path, mode): mode is the second
        # positional for the builtin, first for the method form
        if isinstance(node.func, ast.Attribute):
            if node.args:
                mode = node.args[0]
        elif len(node.args) >= 2:
            mode = node.args[1]
        for kw in node.keywords:
            if kw.arg == "mode":
                mode = kw.value
        return (
            isinstance(mode, ast.Constant)
            and isinstance(mode.value, str)
            and mode.value in _WRITE_MODES
        )

    @staticmethod
    def _function_replaces(ancestors: tuple[ast.AST, ...]) -> bool:
        """The enclosing function completes the stage-and-rename pattern."""
        for anc in reversed(ancestors):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for sub in ast.walk(anc):
                    if isinstance(sub, ast.Call) and dotted_name(sub.func) in (
                        "os.replace",
                        "os.rename",
                    ):
                        return True
                return False
        return False
