"""Committed-baseline mechanism: new findings fail, grandfathered ones ride.

A baseline file is a JSON list of finding records. Matching is by
``(rule, path, message)`` with *counts* — line numbers drift with every
edit, so they are recorded for humans but ignored for matching. If a
file has two grandfathered ``EH001``\\ s and an edit adds a third, the
third fails CI even though the first two still pass.

Workflow: ``repro lint --baseline lint_baseline.json`` fails only on
non-baselined findings; ``repro lint --write-baseline`` regenerates the
file from the current findings (shrinking it as debt is paid down is
the expected direction).
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Sequence

from .base import Finding

__all__ = ["load_baseline", "write_baseline", "diff_baseline"]


def load_baseline(path: str | Path) -> list[Finding]:
    """Parse a baseline file back into findings (empty file = no debt)."""
    raw = json.loads(Path(path).read_text())
    if not isinstance(raw, list):
        raise ValueError(f"baseline {path} must be a JSON list")
    out = []
    for entry in raw:
        out.append(
            Finding(
                rule=str(entry["rule"]),
                path=str(entry["path"]),
                line=int(entry.get("line", 0)),
                message=str(entry["message"]),
            )
        )
    return out


def write_baseline(path: str | Path, findings: Sequence[Finding]) -> None:
    """Persist findings as the new baseline (atomic, sorted, stable)."""
    doc = [f.to_dict() for f in sorted(findings)]
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    import os

    os.replace(tmp, target)


def diff_baseline(
    findings: Sequence[Finding], baseline: Sequence[Finding]
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (new, grandfathered) against a baseline.

    Returns the findings that are NOT covered by the baseline (these
    fail CI) and the ones it absorbs. Coverage is per-key count: a
    baseline entry absorbs at most as many findings as it has records.
    """
    budget = Counter(f.key() for f in baseline)
    fresh: list[Finding] = []
    absorbed: list[Finding] = []
    for finding in sorted(findings):
        if budget[finding.key()] > 0:
            budget[finding.key()] -= 1
            absorbed.append(finding)
        else:
            fresh.append(finding)
    return fresh, absorbed
