"""Annotator assistance: explain *why* a run was queried (paper future work).

The paper's conclusion plans "an interactive dashboard to make the querying
process easier for human annotators … incorporate some unsupervised
techniques and domain heuristics together to point out the most important
metrics". This module implements the analytics behind that dashboard:

* :class:`MetricHighlighter` — fits per-metric robust baselines (median/IQR
  of summary statistics) on healthy runs and scores how anomalous each
  metric of a queried run looks, so the annotator sees the top-k deviating
  metrics instead of 700 raw time series;
* :class:`AnnotationSession` — drives a query loop where each query is
  presented as a text card (model's guess + confidence, top deviating
  metrics with direction), collects the label, and teaches the learner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..active.learner import ActiveLearner
from ..telemetry.catalog import MetricCatalog
from ..telemetry.collector import RunRecord
from ..features.pipeline import preprocess_run

__all__ = ["MetricDeviation", "MetricHighlighter", "AnnotationSession"]


@dataclass(frozen=True)
class MetricDeviation:
    """One metric's deviation from the healthy baseline."""

    metric: str
    z_mean: float  # robust z-score of the run's mean level
    z_spread: float  # robust z-score of the run's variability
    direction: str  # "high" / "low" / "volatile"

    @property
    def score(self) -> float:
        """Combined severity used for ranking."""
        return max(abs(self.z_mean), abs(self.z_spread))


class MetricHighlighter:
    """Rank a run's metrics by deviation from healthy behaviour.

    Fits robust per-metric baselines (median and IQR of per-run mean and
    standard deviation) on a corpus of healthy runs; ``explain`` then
    scores any run's metrics with robust z-scores against that baseline.
    """

    def __init__(self, catalog: MetricCatalog, top_k: int = 8):
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        self.catalog = catalog
        self.top_k = top_k

    def _summaries(self, run: RunRecord) -> tuple[np.ndarray, np.ndarray]:
        clean = preprocess_run(run.data, self.catalog.counter_mask)
        return clean.mean(axis=0), clean.std(axis=0)

    def fit(self, healthy_runs: Sequence[RunRecord]) -> "MetricHighlighter":
        """Learn healthy baselines from (at least two) healthy runs."""
        if len(healthy_runs) < 2:
            raise ValueError("need at least 2 healthy runs for a baseline")
        means, stds = zip(*(self._summaries(r) for r in healthy_runs))
        means = np.stack(means)
        stds = np.stack(stds)
        self.mean_center_ = np.median(means, axis=0)
        self.mean_scale_ = self._iqr_scale(means)
        self.std_center_ = np.median(stds, axis=0)
        self.std_scale_ = self._iqr_scale(stds)
        return self

    @staticmethod
    def _iqr_scale(mat: np.ndarray) -> np.ndarray:
        q1, q3 = np.percentile(mat, [25, 75], axis=0)
        iqr = q3 - q1
        # 1.349 IQR ≈ 1 sigma for a normal. The floor matters: baselines
        # are fit on a handful of runs, so a metric can have a near-zero
        # IQR by chance — a purely absolute floor then turns ordinary
        # fluctuations into astronomical z-scores. Floor at a small
        # fraction of the metric's typical magnitude instead.
        center = np.median(np.abs(mat), axis=0)
        return np.maximum(iqr / 1.349, 0.02 * center + 1e-6)

    #: z-scores are clipped here: beyond this the metric is simply "very
    #: anomalous", and uncapped values (a clamped counter whose spread was
    #: ~0 in every baseline run) would drown the ranking in one metric.
    Z_CAP = 25.0

    def explain(self, run: RunRecord) -> list[MetricDeviation]:
        """Top-k metric deviations of one run, most severe first."""
        if not hasattr(self, "mean_center_"):
            raise RuntimeError("fit() on healthy runs first")
        mean, std = self._summaries(run)
        z_mean = np.clip(
            (mean - self.mean_center_) / self.mean_scale_, -self.Z_CAP, self.Z_CAP
        )
        z_spread = np.clip(
            (std - self.std_center_) / self.std_scale_, -self.Z_CAP, self.Z_CAP
        )
        deviations = []
        for name, zm, zs in zip(self.catalog.names, z_mean, z_spread):
            if abs(zs) > abs(zm):
                direction = "volatile"
            else:
                direction = "high" if zm > 0 else "low"
            deviations.append(
                MetricDeviation(
                    metric=name,
                    z_mean=float(zm),
                    z_spread=float(zs),
                    direction=direction,
                )
            )
        deviations.sort(key=lambda d: -d.score)
        return deviations[: self.top_k]

    def severity(self, run: RunRecord) -> float:
        """Aggregate anomaly severity: mean score of the top-k deviations.

        A coarse triage signal: anomalous runs deviate in *several* coupled
        metrics, while a healthy run's occasional single-metric excursion
        (an OS-noise burst) averages down.
        """
        return float(np.mean([d.score for d in self.explain(run)]))


class AnnotationSession:
    """Interactive-style annotation loop with explanation cards.

    ``annotator`` is any callable ``(card_text, run) -> label`` — a human
    at a terminal, or ground truth in tests/simulations. Each card shows
    the model's current guess with confidence and the top deviating
    metrics from the :class:`MetricHighlighter`.
    """

    def __init__(
        self,
        learner: ActiveLearner,
        highlighter: MetricHighlighter,
        featurize: Callable[[RunRecord], np.ndarray],
        annotator: Callable[[str, RunRecord], object],
    ):
        self.learner = learner
        self.highlighter = highlighter
        self.featurize = featurize
        self.annotator = annotator
        self.cards: list[str] = []

    def _card(self, run: RunRecord, x: np.ndarray) -> str:
        proba = self.learner.predict_proba(x.reshape(1, -1))[0]
        order = np.argsort(-proba)
        guesses = ", ".join(
            f"{self.learner.model.classes_[i]} ({proba[i]:.2f})" for i in order[:3]
        )
        lines = [
            f"QUERY #{self.learner.n_labeled + 1}",
            f"  app={run.app} input={run.input_deck} nodes={run.node_count}",
            f"  model guess: {guesses}",
            "  most deviating metrics vs healthy baseline:",
        ]
        for dev in self.highlighter.explain(run):
            lines.append(
                f"    {dev.metric:<28} {dev.direction:<9} "
                f"z_mean={dev.z_mean:+.1f} z_spread={dev.z_spread:+.1f}"
            )
        return "\n".join(lines)

    def run(self, pool_runs: Sequence[RunRecord], n_queries: int) -> list[object]:
        """Query ``n_queries`` runs from the pool, teaching each answer.

        Returns the collected labels; rendered cards accumulate in
        ``self.cards`` for display or logging.
        """
        if n_queries < 0:
            raise ValueError("n_queries must be >= 0")
        pool_runs = list(pool_runs)
        features = np.vstack([self.featurize(r) for r in pool_runs]) if pool_runs else np.empty((0, 0))
        alive = list(range(len(pool_runs)))
        answers: list[object] = []
        for _ in range(min(n_queries, len(pool_runs))):
            local = self.learner.query(features[alive])
            idx = alive.pop(local)
            run = pool_runs[idx]
            card = self._card(run, features[idx])
            self.cards.append(card)
            label = self.annotator(card, run)
            answers.append(label)
            self.learner.teach(features[idx], label)
        return answers
