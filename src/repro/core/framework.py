"""The ALBADross framework — the paper's public-facing pipeline (Fig. 1).

``ALBADross`` glues the substrates together end to end:

1. feature extraction + selection on raw telemetry runs,
2. initial supervised training on the labeled seed,
3. the active-learning query loop against the unlabeled pool,
4. a deployable diagnosis model (label + confidence per sample).

It is the class a downstream operator would actually use; the benchmark
harness drives the lower-level :func:`repro.active.run_active_learning`
directly when it needs per-query curves for several methods at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from ..active.loop import ALResult, run_active_learning
from ..active.strategies import get_strategy
from ..features.pipeline import FeatureExtractor
from ..mlcore.base import BaseEstimator
from ..mlcore.feature_selection import SelectKBest
from ..mlcore.forest import RandomForestClassifier
from ..mlcore.gbm import LGBMClassifier
from ..mlcore.linear import LogisticRegression
from ..mlcore.mlp import MLPClassifier
from ..mlcore.model_selection import GridSearchCV
from ..mlcore.preprocessing import MinMaxScaler
from ..telemetry.catalog import MetricCatalog
from ..telemetry.collector import RunRecord
from ..telemetry.corpus import RunCorpus
from .config import FrameworkConfig

__all__ = ["ALBADross", "Diagnosis", "build_model", "table4_grid"]


def build_model(
    name: str, params: dict[str, Any], random_state: int | None = None
) -> BaseEstimator:
    """Instantiate a model family by its paper name."""
    if name == "random_forest":
        return RandomForestClassifier(random_state=random_state, **params)
    if name == "lgbm":
        return LGBMClassifier(random_state=random_state, **params)
    if name == "logistic_regression":
        return LogisticRegression(**params)
    if name == "mlp":
        return MLPClassifier(random_state=random_state, **params)
    raise ValueError(f"unknown model {name!r}")


def table4_grid(model: str) -> dict[str, list]:
    """The hyperparameter search space of Table IV, verbatim."""
    grids: dict[str, dict[str, list]] = {
        "logistic_regression": {
            "penalty": ["l1", "l2"],
            "C": [0.001, 0.01, 0.1, 1.0, 10.0],
        },
        "random_forest": {
            "n_estimators": [8, 10, 20, 100, 200],
            "max_depth": [None, 4, 8, 10, 20],
            "criterion": ["gini", "entropy"],
        },
        "lgbm": {
            "num_leaves": [2, 8, 31, 128],
            "learning_rate": [0.01, 0.1, 0.3],
            "max_depth": [-1, 2, 8],
            "colsample_bytree": [0.5, 1.0],
        },
        "mlp": {
            "max_iter": [100, 200, 500, 1000],
            "hidden_layer_sizes": [(10, 10, 10), (50, 100, 50), (100,)],
            "alpha": [0.0001, 0.001, 0.01],
        },
    }
    if model not in grids:
        raise ValueError(f"unknown model {model!r}")
    return grids[model]


@dataclass(frozen=True)
class Diagnosis:
    """One diagnosed sample: the predicted label and its confidence."""

    label: str
    confidence: float


class ALBADross:
    """Active-learning-based anomaly diagnosis, end to end.

    Typical use::

        framework = ALBADross(catalog, FrameworkConfig(...))
        framework.fit_features(seed_runs + pool_runs)       # extraction corpus
        framework.fit_initial(seed_runs, seed_labels)       # Fig. 1 step 1
        result = framework.learn(pool_runs, oracle_labels,  # Fig. 1 steps 2-4
                                 validation_runs, validation_labels)
        framework.diagnose(new_runs)                        # deployment

    The validation set plays the role of the paper's monitored score for
    the Sec. III-E stopping criterion (budget or target F1).
    """

    def __init__(self, catalog: MetricCatalog, config: FrameworkConfig | None = None):
        self.catalog = catalog
        self.config = config or FrameworkConfig()
        self.extractor = FeatureExtractor(
            catalog,
            method=self.config.feature_method,
            n_jobs=self.config.n_jobs,
        )
        self.scaler: MinMaxScaler | None = None
        self.selector: SelectKBest | None = None
        self.model: BaseEstimator | None = None
        self._X_seed: np.ndarray | None = None
        self._y_seed: np.ndarray | None = None

    # ------------------------------------------------------------------
    def fit_features(self, runs: Sequence[RunRecord] | RunCorpus) -> "ALBADross":
        """Learn the feature space: extraction drop-mask + Min-Max scaling.

        Call with the full training corpus (labeled + unlabeled runs); the
        chi-square selector is fit later, in :meth:`fit_initial`, because it
        needs labels. Extraction is run-batched — a whole campaign is one
        kernel pass per run-length group, not one per run.
        """
        ds = self.extractor.fit_transform(runs)
        self.scaler = MinMaxScaler(clip=True).fit(ds.X)
        return self

    def _featurize(self, runs: Sequence[RunRecord] | RunCorpus) -> np.ndarray:
        if self.scaler is None:
            raise RuntimeError("call fit_features first")
        ds = self.extractor.transform(runs)
        X = self.scaler.transform(ds.X)
        if self.selector is not None:
            X = self.selector.transform(X)
        return X

    def fit_initial(
        self, seed_runs: Sequence[RunRecord], seed_labels: Sequence[str]
    ) -> "ALBADross":
        """Fig. 1 step 1: chi-square selection + initial supervised model."""
        if self.scaler is None:
            raise RuntimeError("call fit_features first")
        if len(seed_runs) != len(seed_labels):
            raise ValueError("seed runs / labels length mismatch")
        ds = self.extractor.transform(seed_runs)
        X = self.scaler.transform(ds.X)
        y = np.asarray(seed_labels)
        self.selector = SelectKBest(k=self.config.n_features).fit(X, y)
        X = self.selector.transform(X)
        self.model = build_model(
            self.config.model,
            self.config.resolved_model_params(),
            random_state=self.config.random_state,
        )
        self.model.fit(X, y)
        self._X_seed, self._y_seed = X, y
        return self

    def tune(
        self, runs: Sequence[RunRecord], labels: Sequence[str], cv: int = 5
    ) -> dict[str, Any]:
        """Grid-search the Table IV space on a labeled corpus (Sec. III-C).

        Returns the best parameters; subsequent :meth:`fit_initial` calls
        use them.
        """
        if self.scaler is None:
            raise RuntimeError("call fit_features first")
        ds = self.extractor.transform(runs)
        X = self.scaler.transform(ds.X)
        y = np.asarray(labels)
        selector = SelectKBest(k=self.config.n_features).fit(X, y)
        X = selector.transform(X)
        proto = build_model(self.config.model, {}, random_state=self.config.random_state)
        search = GridSearchCV(proto, table4_grid(self.config.model), cv=cv)
        search.fit(X, y)
        import dataclasses

        self.config = dataclasses.replace(
            self.config, model_params=dict(search.best_params_)
        )
        return search.best_params_

    def learn(
        self,
        pool_runs: Sequence[RunRecord],
        pool_labels: Sequence[str],
        validation_runs: Sequence[RunRecord],
        validation_labels: Sequence[str],
        pool_apps: Sequence[str] | None = None,
    ) -> ALResult:
        """Fig. 1 steps 2–4: the query loop, up to the stopping criterion.

        ``pool_labels`` stands in for the human annotator: labels are
        revealed one at a time, only for queried samples.
        """
        if self.model is None or self._X_seed is None:
            raise RuntimeError("call fit_initial first")
        X_pool = self._featurize(pool_runs)
        X_val = self._featurize(validation_runs)
        result = run_active_learning(
            build_model(
                self.config.model,
                self.config.resolved_model_params(),
                random_state=self.config.random_state,
            ),
            get_strategy(self.config.query_strategy),
            self._X_seed,
            self._y_seed,
            X_pool,
            np.asarray(pool_labels),
            X_val,
            np.asarray(validation_labels),
            n_queries=self.config.max_queries,
            target_f1=self.config.target_f1,
            pool_apps=None if pool_apps is None else np.asarray(pool_apps),
            warm_start="auto" if self.config.warm_start else False,
            refresh_fraction=self.config.refresh_fraction,
            random_state=self.config.random_state,
        )
        # adopt the final model: refit on seed + every queried sample
        taught = [r.pool_index for r in result.oracle.history]
        X_final = np.vstack([self._X_seed, X_pool[taught]])
        y_final = np.concatenate(
            [self._y_seed, [r.label for r in result.oracle.history]]
        )
        self.model = build_model(
            self.config.model,
            self.config.resolved_model_params(),
            random_state=self.config.random_state,
        )
        self.model.fit(X_final, y_final)
        return result

    def featurize(self, runs: Sequence[RunRecord] | RunCorpus) -> np.ndarray:
        """Map raw runs through the fitted extractor→scaler→selector stack.

        The serving engine uses this to featurize a coalesced micro-batch
        once, then score it with :meth:`predict_features` in a single
        vectorized model call. Record lists route through the run-batched
        corpus path inside the extractor, so coalescing buys one kernel
        pass over the whole micro-batch — extraction throughput scales
        with batch size instead of paying per-run dispatch overhead B
        times. Accepts a pre-packed
        :class:`~repro.telemetry.corpus.RunCorpus` too.
        """
        return self._featurize(runs)

    def predict_features(self, X: np.ndarray) -> list[Diagnosis]:
        """Diagnose already-featurized samples (one model call for all rows)."""
        if self.model is None:
            raise RuntimeError("framework is not trained")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        proba = self.model.predict_proba(X)
        best = np.argmax(proba, axis=1)
        return [
            Diagnosis(label=str(self.model.classes_[b]), confidence=float(p[b]))
            for b, p in zip(best, proba)
        ]

    def diagnose(self, runs: Sequence[RunRecord]) -> list[Diagnosis]:
        """Deployment-time diagnosis: label + confidence for each run."""
        if self.model is None:
            raise RuntimeError("framework is not trained")
        return self.predict_features(self._featurize(runs))

    def absorb(
        self,
        runs: Sequence[RunRecord],
        labels: Sequence[str],
        warm: bool | None = None,
    ) -> "ALBADross":
        """Fold newly annotated runs into the labeled set and refit.

        This is the online continuation of the paper's loop: samples the
        serving path escalated to the annotator come back here, grow the
        seed matrix, and produce the model the registry publishes as the
        next version.

        ``warm`` selects the incremental path (``None`` defers to
        ``config.warm_start``): when the current model supports ``refit``
        and was trained on the binned path, the new rows fold into the
        existing forest instead of rebuilding it — the seeded schedule
        regrows ``config.refresh_fraction`` of the trees. Falls back to
        a cold rebuild otherwise. ``last_absorb_warm`` records which path
        actually ran (the serving stats read it).
        """
        if self.model is None or self._X_seed is None:
            raise RuntimeError("call fit_initial first")
        if len(runs) != len(labels):
            raise ValueError("runs / labels length mismatch")
        if not runs:
            return self
        if warm is None:
            warm = self.config.warm_start
        X_new = self._featurize(runs)
        y_new = np.asarray(labels)
        self._X_seed = np.vstack([self._X_seed, X_new])
        self._y_seed = np.concatenate([self._y_seed, y_new])
        if (
            warm
            and hasattr(self.model, "refit")
            and getattr(self.model, "binned_dataset_", None) is not None
        ):
            self.model.refit(
                X_new, y_new, refresh_fraction=self.config.refresh_fraction
            )
            self.last_absorb_warm = True
            return self
        self.model = build_model(
            self.config.model,
            self.config.resolved_model_params(),
            random_state=self.config.random_state,
        )
        self.model.fit(self._X_seed, self._y_seed)
        self.last_absorb_warm = False
        return self
