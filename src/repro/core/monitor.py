"""Deployment drift monitoring (the paper's production-deployment step).

The paper's future work deploys ALBADross on a live system. The silent
killer there is *distribution drift*: new applications, new input decks,
or changed system software shift the telemetry distribution, and Figs. 7–8
quantify how hard such shifts hit a frozen model (F1 0.2, FAR 80% under
unseen inputs). This module watches for the shift itself, so the operator
re-opens the annotation loop *before* the diagnoses go bad:

* per-feature drift via the two-sample Kolmogorov–Smirnov statistic
  against a training-time reference sample;
* model-side drift via the predicted-confidence distribution (a model fed
  out-of-distribution samples gets systematically less confident — the
  same signal the active learner queries on).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = ["DriftReport", "DriftMonitor"]


@dataclass(frozen=True)
class DriftReport:
    """Outcome of one drift check over a window of incoming samples.

    ``drifted`` is the operator-facing verdict; the rest is evidence:
    the fraction of features whose KS test rejects at ``alpha``, the mean
    KS statistic, and the confidence drop versus the reference window.
    """

    drifted: bool
    feature_drift_fraction: float
    mean_ks_statistic: float
    confidence_drop: float
    n_window: int

    def summary(self) -> str:
        """One-line operator summary."""
        state = "DRIFT" if self.drifted else "ok"
        return (
            f"[{state}] {self.feature_drift_fraction:.0%} of features shifted "
            f"(mean KS {self.mean_ks_statistic:.2f}), "
            f"confidence drop {self.confidence_drop:+.2f} "
            f"over {self.n_window} samples"
        )


class DriftMonitor:
    """Compare incoming feature windows against the training distribution.

    Parameters
    ----------
    model:
        The deployed classifier (used for the confidence signal); may be
        ``None`` for feature-only monitoring.
    alpha:
        Per-feature KS significance level.
    drift_fraction_threshold:
        Declare drift when more than this fraction of features reject, or
        when the mean confidence drops by more than ``confidence_threshold``.
    max_reference:
        Reference subsample size (KS cost is linear in it).
    """

    def __init__(
        self,
        model=None,
        alpha: float = 0.01,
        drift_fraction_threshold: float = 0.25,
        confidence_threshold: float = 0.15,
        max_reference: int = 512,
        random_state: int = 0,
    ):
        if not 0 < alpha < 1:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if not 0 < drift_fraction_threshold <= 1:
            raise ValueError(
                f"drift_fraction_threshold must be in (0, 1], got {drift_fraction_threshold}"
            )
        self.model = model
        self.alpha = alpha
        self.drift_fraction_threshold = drift_fraction_threshold
        self.confidence_threshold = confidence_threshold
        self.max_reference = max_reference
        self.random_state = random_state

    def fit(self, X_reference: np.ndarray) -> "DriftMonitor":
        """Store the training-time reference distribution."""
        X = np.asarray(X_reference, dtype=np.float64)
        if X.ndim != 2 or len(X) < 8:
            raise ValueError("need a 2-D reference with at least 8 samples")
        if len(X) > self.max_reference:
            rng = np.random.default_rng(self.random_state)
            X = X[rng.choice(len(X), size=self.max_reference, replace=False)]
        self.reference_ = X
        if self.model is not None:
            proba = self.model.predict_proba(X)
            self.reference_confidence_ = float(proba.max(axis=1).mean())
        else:
            self.reference_confidence_ = None
        return self

    def check(self, X_window: np.ndarray) -> DriftReport:
        """Test a window of incoming samples for drift."""
        if not hasattr(self, "reference_"):
            raise RuntimeError("fit() the monitor on training features first")
        X = np.asarray(X_window, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.reference_.shape[1]:
            raise ValueError(
                f"window must be (n, {self.reference_.shape[1]}), got {X.shape}"
            )
        if len(X) < 8:
            raise ValueError("window too small for a KS test (need >= 8)")

        n_features = X.shape[1]
        rejected = 0
        ks_values = np.empty(n_features)
        for j in range(n_features):
            stat, p = stats.ks_2samp(self.reference_[:, j], X[:, j])
            ks_values[j] = stat
            if p < self.alpha:
                rejected += 1
        fraction = rejected / n_features

        confidence_drop = 0.0
        if self.model is not None and self.reference_confidence_ is not None:
            window_conf = float(self.model.predict_proba(X).max(axis=1).mean())
            confidence_drop = self.reference_confidence_ - window_conf

        drifted = fraction > self.drift_fraction_threshold or (
            confidence_drop > self.confidence_threshold
        )
        return DriftReport(
            drifted=bool(drifted),
            feature_drift_fraction=float(fraction),
            mean_ks_statistic=float(ks_values.mean()),
            confidence_drop=float(confidence_drop),
            n_window=len(X),
        )
