"""Framework configuration (the knobs of Fig. 1 / Sec. IV-E).

One dataclass gathers every choice the paper makes so an experiment is
fully described by (dataset, FrameworkConfig): feature-extraction method,
chi-square feature count, model family and hyperparameters, query strategy,
and the stopping rule of Sec. III-E (query budget and/or target score).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["FrameworkConfig", "default_model_params", "MODEL_FAMILIES"]

MODEL_FAMILIES = ("random_forest", "lgbm", "logistic_regression", "mlp")


def default_model_params(model: str) -> dict[str, Any]:
    """The paper's tuned hyperparameters (Table IV, starred entries).

    Eclipse winners are used as defaults; the Table IV grid itself lives in
    :func:`repro.core.framework.table4_grid` for re-running the search.
    """
    defaults: dict[str, dict[str, Any]] = {
        "random_forest": {"n_estimators": 100, "max_depth": 8, "criterion": "entropy"},
        "lgbm": {
            "num_leaves": 31,
            "learning_rate": 0.1,
            "max_depth": -1,
            "colsample_bytree": 1.0,
        },
        "logistic_regression": {"penalty": "l1", "C": 1.0},
        "mlp": {
            "max_iter": 100,
            "hidden_layer_sizes": (50, 100, 50),
            "alpha": 1e-4,
        },
    }
    if model not in defaults:
        raise ValueError(f"unknown model {model!r}; available: {MODEL_FAMILIES}")
    return defaults[model]


@dataclass(frozen=True)
class FrameworkConfig:
    """Every tunable of the ALBADross pipeline.

    Parameters
    ----------
    feature_method:
        ``"mvts"`` or ``"tsfresh"`` (the paper picks per dataset: MVTS on
        Eclipse, TSFRESH on Volta — Table V).
    n_features:
        Chi-square top-k (paper sweeps 250…all; best 2000 at full scale).
    model:
        One of :data:`MODEL_FAMILIES`.
    model_params:
        Hyperparameters for the model; empty dict → the Table IV defaults.
    query_strategy:
        ``"uncertainty"`` / ``"margin"`` / ``"entropy"``.
    max_queries:
        Sec. III-E stopping rule: maximum number of allowed queries.
    target_f1:
        Optional second stopping rule: stop as soon as this test/validation
        F1 is reached.
    splitter:
        Tree split search for the tree-based families: ``"exact"``
        (default, the paper-faithful reference path) or ``"hist"``
        (histogram-binned, much faster; see ``docs/mlcore.md``). Ignored
        by non-tree models.
    n_jobs:
        Worker processes shared by the data plane and the forest: drives
        chunk-wise parallel feature extraction (any model family) and
        forest fitting (``random_forest``); 1 = serial, the default.
        Results are bit-identical at every worker count.
    warm_start:
        Incremental refits for the AL loop and online retrains: trees
        survive across rounds, each refit regrows only a seeded
        ``refresh_fraction`` subset and folds new rows into the kept
        trees' leaf counts (see ``docs/mlcore.md``). Requires
        ``splitter="hist"``.
    refresh_fraction:
        Fraction of trees regrown per warm refit; ``1.0`` is bit-exact
        to retraining from scratch.
    random_state:
        Seed threaded through every stochastic component.
    """

    feature_method: str = "mvts"
    n_features: int = 500
    model: str = "random_forest"
    model_params: dict[str, Any] = field(default_factory=dict)
    query_strategy: str = "uncertainty"
    max_queries: int = 250
    target_f1: float | None = None
    splitter: str = "exact"
    n_jobs: int = 1
    warm_start: bool = False
    refresh_fraction: float = 0.25
    random_state: int = 0

    def __post_init__(self) -> None:
        if self.feature_method not in ("mvts", "tsfresh"):
            raise ValueError(f"unknown feature_method {self.feature_method!r}")
        if self.model not in MODEL_FAMILIES:
            raise ValueError(f"unknown model {self.model!r}")
        if self.query_strategy not in ("uncertainty", "margin", "entropy"):
            raise ValueError(f"unknown query_strategy {self.query_strategy!r}")
        if self.n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {self.n_features}")
        if self.max_queries < 0:
            raise ValueError(f"max_queries must be >= 0, got {self.max_queries}")
        if self.target_f1 is not None and not 0.0 < self.target_f1 <= 1.0:
            raise ValueError(f"target_f1 must be in (0, 1], got {self.target_f1}")
        if self.splitter not in ("exact", "hist"):
            raise ValueError(f"splitter must be 'exact' or 'hist', got {self.splitter!r}")
        if self.n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {self.n_jobs}")
        if not 0.0 < self.refresh_fraction <= 1.0:
            raise ValueError(
                f"refresh_fraction must be in (0, 1], got {self.refresh_fraction}"
            )
        if self.warm_start and self.splitter != "hist":
            raise ValueError(
                "warm_start needs splitter='hist' (warm refits run on the "
                "binned training path)"
            )

    def resolved_model_params(self) -> dict[str, Any]:
        """Model parameters with Table IV defaults filled in.

        The ``splitter`` / ``n_jobs`` performance knobs are injected for
        the model families that understand them; an explicit entry in
        ``model_params`` always wins.
        """
        params = default_model_params(self.model)
        params.update(self.model_params)
        if self.model in ("random_forest", "lgbm"):
            params.setdefault("splitter", self.splitter)
        if self.model == "random_forest":
            params.setdefault("n_jobs", self.n_jobs)
        return params
