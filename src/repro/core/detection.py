"""Anomaly *detection* on top of the diagnosis model (paper Sec. I).

The paper is explicit that ALBADross does *diagnosis* (which anomaly), not
just *detection* (is there an anomaly). Operationally though, operators
often want the binary question first — page someone when a node is
anomalous, ask what exactly later. This wrapper collapses any fitted
multi-class diagnosis model into a detector: the anomaly score of a sample
is the total probability mass on the anomaly classes, thresholded at an
operating point tuned for a target false-alarm budget on validation data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mlcore.metrics import HEALTHY_LABEL

__all__ = ["DetectionResult", "AnomalyDetector"]


@dataclass(frozen=True)
class DetectionResult:
    """Binary verdict plus the underlying score and diagnosis suggestion."""

    anomalous: bool
    score: float  # P(any anomaly)
    suggested_label: str  # most likely anomaly class (even if verdict=healthy)


class AnomalyDetector:
    """Binary anomaly detection over a fitted diagnosis classifier.

    Parameters
    ----------
    model:
        A fitted classifier with ``predict_proba`` and ``classes_``
        containing the healthy label.
    threshold:
        Initial decision threshold on the anomaly-mass score.
    healthy_label:
        Which class counts as healthy (everything else is anomalous).
    """

    def __init__(
        self,
        model,
        threshold: float = 0.5,
        healthy_label: str = HEALTHY_LABEL,
    ):
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        if not hasattr(model, "classes_"):
            raise ValueError("model must be fitted (no classes_)")
        self.model = model
        self.threshold = threshold
        self.healthy_label = healthy_label
        classes = list(model.classes_)
        if healthy_label not in classes:
            raise ValueError(
                f"model never saw the healthy label {healthy_label!r}; "
                "a detector over it would flag everything"
            )
        self._healthy_col = classes.index(healthy_label)
        self._anomaly_cols = [i for i in range(len(classes)) if i != self._healthy_col]

    # ------------------------------------------------------------------
    def score(self, X: np.ndarray) -> np.ndarray:
        """Per-sample anomaly score: total probability on anomaly classes."""
        proba = self.model.predict_proba(np.asarray(X, dtype=np.float64))
        return proba[:, self._anomaly_cols].sum(axis=1)

    def detect(self, X: np.ndarray) -> list[DetectionResult]:
        """Binary verdicts with scores and suggested diagnoses."""
        X = np.asarray(X, dtype=np.float64)
        proba = self.model.predict_proba(X)
        scores = proba[:, self._anomaly_cols].sum(axis=1)
        results = []
        for p, s in zip(proba, scores):
            anomaly_col = self._anomaly_cols[int(np.argmax(p[self._anomaly_cols]))]
            results.append(
                DetectionResult(
                    anomalous=bool(s >= self.threshold),
                    score=float(s),
                    suggested_label=str(self.model.classes_[anomaly_col]),
                )
            )
        return results

    def tune_threshold(
        self,
        X_val: np.ndarray,
        y_val: np.ndarray,
        max_false_alarm_rate: float = 0.01,
    ) -> float:
        """Pick the lowest threshold meeting a false-alarm budget.

        Scans the validation healthy samples' scores and sets the threshold
        just above the (1 − budget) quantile — the most sensitive operating
        point that keeps the false-alarm rate within budget. Returns the
        chosen threshold (also stored on the detector).
        """
        if not 0.0 <= max_false_alarm_rate < 1.0:
            raise ValueError(
                f"max_false_alarm_rate must be in [0, 1), got {max_false_alarm_rate}"
            )
        y_val = np.asarray(y_val)
        healthy_mask = y_val == self.healthy_label
        if not healthy_mask.any():
            raise ValueError("validation set has no healthy samples")
        healthy_scores = self.score(np.asarray(X_val)[healthy_mask])
        q = float(np.quantile(healthy_scores, 1.0 - max_false_alarm_rate))
        self.threshold = min(1.0, q + 1e-9)
        return self.threshold

    def evaluate(self, X: np.ndarray, y: np.ndarray) -> dict[str, float]:
        """Binary detection metrics on labeled data."""
        y = np.asarray(y)
        truth = y != self.healthy_label
        pred = np.array([r.anomalous for r in self.detect(X)])
        tp = int(np.sum(pred & truth))
        fp = int(np.sum(pred & ~truth))
        fn = int(np.sum(~pred & truth))
        tn = int(np.sum(~pred & ~truth))
        return {
            "detection_rate": tp / (tp + fn) if tp + fn else 0.0,
            "false_alarm_rate": fp / (fp + tn) if fp + tn else 0.0,
            "precision": tp / (tp + fp) if tp + fp else 0.0,
            "accuracy": (tp + tn) / len(y),
        }
