"""repro.core — the ALBADross framework (the paper's contribution)."""

from .annotation import AnnotationSession, MetricDeviation, MetricHighlighter
from .config import MODEL_FAMILIES, FrameworkConfig, default_model_params
from .detection import AnomalyDetector, DetectionResult
from .framework import ALBADross, Diagnosis, build_model, table4_grid
from .monitor import DriftMonitor, DriftReport
from .persistence import load_framework, save_framework

__all__ = [
    "ALBADross",
    "AnnotationSession",
    "MetricDeviation",
    "MetricHighlighter",
    "AnomalyDetector",
    "DetectionResult",
    "Diagnosis",
    "DriftMonitor",
    "DriftReport",
    "FrameworkConfig",
    "MODEL_FAMILIES",
    "build_model",
    "default_model_params",
    "load_framework",
    "save_framework",
    "table4_grid",
]
