"""Model persistence (paper Sec. III-E: "the final model is stored as a
pickle object").

Saves and restores a trained :class:`~repro.core.framework.ALBADross`
instance — extractor drop-mask, scaler, selector, and model — so a tuned
framework can be deployed on a monitoring pipeline without retraining.
A small header records the package version and config for sanity checks at
load time.
"""

from __future__ import annotations

import pickle
from pathlib import Path

from .framework import ALBADross

__all__ = ["save_framework", "load_framework", "FORMAT_VERSION"]

FORMAT_VERSION = 1


def save_framework(framework: ALBADross, path: str | Path) -> Path:
    """Pickle a trained framework to ``path`` (created/overwritten)."""
    if framework.model is None:
        raise ValueError("refusing to save an untrained framework")
    path = Path(path)
    payload = {
        "format_version": FORMAT_VERSION,
        "config": framework.config,
        "framework": framework,
    }
    with path.open("wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    return path


def load_framework(path: str | Path) -> ALBADross:
    """Restore a framework saved by :func:`save_framework`.

    Only load files you trust — pickle executes code on load.
    """
    path = Path(path)
    with path.open("rb") as fh:
        payload = pickle.load(fh)
    if not isinstance(payload, dict) or "framework" not in payload:
        raise ValueError(f"{path} is not a saved ALBADross framework")
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {version!r} (expected {FORMAT_VERSION})"
        )
    framework = payload["framework"]
    if not isinstance(framework, ALBADross):
        raise ValueError(f"{path} does not contain an ALBADross instance")
    return framework
