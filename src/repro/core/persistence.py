"""Model persistence (paper Sec. III-E: "the final model is stored as a
pickle object").

Saves and restores a trained :class:`~repro.core.framework.ALBADross`
instance — extractor drop-mask, scaler, selector, and model — so a tuned
framework can be deployed on a monitoring pipeline without retraining.
A small header records the package version and config for sanity checks at
load time, and the manifest/fingerprint helpers here feed the serving
model registry (:mod:`repro.serving.registry`): a published version
carries enough metadata to audit what was trained, on what, and when.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
from pathlib import Path
from typing import TYPE_CHECKING

from .framework import ALBADross

if TYPE_CHECKING:  # pragma: no cover
    from ..telemetry.collector import RunRecord

__all__ = [
    "save_framework",
    "load_framework",
    "build_manifest",
    "train_fingerprint",
    "run_fingerprint",
    "FORMAT_VERSION",
]

FORMAT_VERSION = 1


def save_framework(framework: ALBADross, path: str | Path) -> Path:
    """Pickle a trained framework to ``path`` (created/overwritten).

    The write is atomic: the payload is staged next to the target and
    renamed into place, so a reader (or a crash) never observes a
    half-written model file.
    """
    if framework.model is None:
        raise ValueError("refusing to save an untrained framework")
    path = Path(path)
    payload = {
        "format_version": FORMAT_VERSION,
        "config": framework.config,
        "framework": framework,
    }
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)
    return path


def load_framework(path: str | Path) -> ALBADross:
    """Restore a framework saved by :func:`save_framework`.

    Only load files you trust — pickle executes code on load.
    """
    path = Path(path)
    with path.open("rb") as fh:
        payload = pickle.load(fh)
    if not isinstance(payload, dict) or "framework" not in payload:
        raise ValueError(f"{path} is not a saved ALBADross framework")
    version = payload.get("format_version")
    if isinstance(version, int) and version > FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {version!r}: newer than this package "
            f"supports (max {FORMAT_VERSION}); upgrade repro to load it"
        )
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {version!r} (expected {FORMAT_VERSION})"
        )
    framework = payload["framework"]
    if not isinstance(framework, ALBADross):
        raise ValueError(f"{path} does not contain an ALBADross instance")
    return framework


# ----------------------------------------------------------------------
# manifest / fingerprint helpers (consumed by repro.serving.registry)


def train_fingerprint(framework: ALBADross) -> str:
    """A stable hex digest of the framework's training seed set.

    Two frameworks trained on the same featurized seed matrix share a
    fingerprint; refitting after absorbing annotations changes it. Used by
    the registry manifest to make "what data produced this version"
    auditable.
    """
    seed_X = getattr(framework, "_X_seed", None)
    seed_y = getattr(framework, "_y_seed", None)
    if seed_X is None or seed_y is None:
        return "untrained"
    digest = hashlib.sha256()
    digest.update(seed_X.tobytes())
    digest.update("|".join(str(label) for label in seed_y).encode())
    return digest.hexdigest()[:16]


def run_fingerprint(run: "RunRecord") -> str:
    """A cache key identifying one telemetry run's content.

    Hashes the raw metric matrix plus the identifying metadata, so the
    serving result cache recognizes a resubmitted run regardless of the
    Python object identity.
    """
    digest = hashlib.sha256()
    digest.update(run.data.tobytes())
    digest.update(
        f"{run.app}|{run.input_deck}|{run.node_count}|{run.node_id}".encode()
    )
    return digest.hexdigest()[:16]


def build_manifest(framework: ALBADross) -> dict:
    """Describe a trained framework as a JSON-serializable manifest.

    Records everything a registry version needs for sanity checks at load
    time and for operator audits: package + payload format versions, the
    full :class:`~repro.core.config.FrameworkConfig`, the served feature
    count, the label set, and the train-set fingerprint.
    """
    if framework.model is None:
        raise ValueError("refusing to build a manifest for an untrained framework")
    from .. import __version__

    n_features = None
    if framework.selector is not None:
        n_features = int(len(framework.selector.get_support()))
    classes = [str(c) for c in getattr(framework.model, "classes_", [])]
    return {
        "package_version": __version__,
        "format_version": FORMAT_VERSION,
        "config": dataclasses.asdict(framework.config),
        "n_features": n_features,
        "classes": classes,
        "train_fingerprint": train_fingerprint(framework),
    }
