"""Plain-text rendering of experiment results (the paper's tables & curves).

Benchmarks regenerate the paper's figures as text: learning-curve tables
sampled at fixed query counts, unicode sparklines for the curve shapes, and
Table V-style summary rows. Everything returns strings so benches can both
print them and write them to ``benchmarks/out/``.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping, Sequence

import numpy as np

from .runner import CurveStats, ExperimentResult

__all__ = [
    "sparkline",
    "curve_table",
    "table5_row",
    "format_table",
    "distribution_table",
]

_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: float = 0.0, hi: float = 1.0) -> str:
    """A one-line unicode rendering of a curve, clipped to [lo, hi]."""
    if hi <= lo:
        raise ValueError("hi must exceed lo")
    arr = np.clip((np.asarray(values, dtype=float) - lo) / (hi - lo), 0, 1)
    return "".join(_SPARK[int(round(v * (len(_SPARK) - 1)))] for v in arr)


def format_table(header: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width ASCII table."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def curve_table(
    stats_by_method: Mapping[str, CurveStats],
    checkpoints: Sequence[int] = (0, 10, 25, 50, 100, 150, 250),
    metric: str = "f1",
) -> str:
    """Per-method metric values at fixed additional-query checkpoints.

    ``metric`` ∈ {"f1", "far", "amr"}. Missing checkpoints (beyond a run's
    budget) render as "-". A sparkline column shows the full curve shape.
    """
    attr = {"f1": "f1_mean", "far": "far_mean", "amr": "amr_mean"}[metric]
    rows = []
    for name, stats in stats_by_method.items():
        curve = getattr(stats, attr)
        base = stats.n_labeled[0]
        cells: list[str] = [name]
        for q in checkpoints:
            target = base + q
            if target > stats.n_labeled[-1]:
                cells.append("-")
            else:
                i = int(np.argmin(np.abs(stats.n_labeled - target)))
                cells.append(f"{curve[i]:.3f}")
        cells.append(sparkline(curve))
        rows.append(cells)
    header = ["method"] + [f"+{q}" for q in checkpoints] + ["curve"]
    return format_table(header, rows)


def table5_row(
    dataset: str,
    feature_method: str,
    strategy: str,
    result: ExperimentResult,
    full_train_f1: float,
    full_train_n: int,
    cv_f1: float,
    cv_n: int,
    targets: Sequence[float] = (0.85, 0.90, 0.95),
) -> list[str]:
    """One Table V row: queries needed per F1 target plus reference scores."""
    stats = result.stats(strategy)
    start = float(stats.f1_mean[0])
    cells = [dataset, feature_method, strategy, str(int(stats.n_labeled[0])), f"{start:.2f}"]
    for target in targets:
        if start >= target:
            cells.append("Already Passed")
            continue
        needed = result.queries_to_reach(strategy, target)
        cells.append(f"{needed} samples" if needed is not None else "not reached")
    cells.append(f"{full_train_f1:.2f} ({full_train_n} samples)")
    cells.append(f"{cv_f1:.2f} ({cv_n} samples)")
    return cells


def distribution_table(
    labels: Sequence[object], apps: Sequence[object], first_n: int = 50
) -> str:
    """Fig. 4-style drill-down: queried labels and applications, first N."""
    label_counts = Counter(str(v) for v in labels[:first_n])
    app_counts = Counter(str(v) for v in apps[:first_n])
    out = ["queried labels (first %d):" % min(first_n, len(labels))]
    for name, count in label_counts.most_common():
        out.append(f"  {name:<12} {'#' * count} {count}")
    out.append("queried applications:")
    for name, count in app_counts.most_common():
        out.append(f"  {name:<12} {'#' * count} {count}")
    return "\n".join(out)
