"""Canonical bench-scale experiment configurations.

Every benchmark regenerating a paper artifact uses these shared settings so
the corpora are identical across benches (and the on-disk cache hits). The
scale is chosen for a single-core machine: each corpus builds in well under
a minute (MVTS) and every AL curve costs ~0.2 s per query. DESIGN.md §2
records why scaled corpora preserve the paper's qualitative shapes.
"""

from __future__ import annotations

from pathlib import Path

from ..datasets.eclipse import eclipse_config
from ..datasets.generate import SystemConfig, build_dataset
from ..datasets.volta import volta_config
from ..features.pipeline import FeatureDataset
from .cache import config_fingerprint, get_or_build

__all__ = [
    "CACHE_DIR",
    "OUT_DIR",
    "bench_volta_config",
    "bench_eclipse_config",
    "bench_dataset",
    "N_SPLITS",
    "N_QUERIES",
    "K_FEATURES",
    "RF_PARAMS",
    "SPLITTER",
    "N_JOBS",
    "WARM_START",
    "REFRESH_FRACTION",
]

# repository-level artifact locations
_REPO_ROOT = Path(__file__).resolve().parents[3]
CACHE_DIR = _REPO_ROOT / "benchmarks" / "_cache"
OUT_DIR = _REPO_ROOT / "benchmarks" / "out"

# bench-scale experiment knobs (paper values in comments)
N_SPLITS = 3  # paper: 5 repeated train/test splits
N_QUERIES = 120  # paper: up to 1000 queries, plots show 250
K_FEATURES = 300  # paper: 2000 of ~6k-99k features
RF_PARAMS = {"n_estimators": 16, "max_depth": 8, "criterion": "entropy"}

# tree-training performance knobs; the paper-faithful reference settings.
# Benches that only care about wall clock may flip SPLITTER to "hist"
# (histogram-binned split search) — results change only within quantization.
SPLITTER = "exact"
N_JOBS = 1
# incremental AL refits; reference benches keep the paper's cold refits.
# WARM_START needs SPLITTER = "hist"; REFRESH_FRACTION = 1.0 is bit-exact
# to cold refits, smaller fractions trade fidelity for refit cost.
WARM_START = False
REFRESH_FRACTION = 0.25


def bench_volta_config() -> SystemConfig:
    """The Volta campaign every Volta bench shares."""
    return volta_config(
        scale=0.05,
        n_healthy_per_app_input=14,
        n_anomalous_per_app_anomaly=9,
        duration=480,
    )


def bench_eclipse_config() -> SystemConfig:
    """The Eclipse campaign every Eclipse bench shares."""
    return eclipse_config(
        scale=0.05,
        n_healthy_per_app_input=14,
        n_anomalous_per_app_anomaly=9,
        duration=480,
    )


def bench_dataset(system: str, method: str = "mvts", rng: int = 0) -> FeatureDataset:
    """Cached featurized corpus for ``system`` ∈ {volta, eclipse}."""
    if system == "volta":
        cfg = bench_volta_config()
    elif system == "eclipse":
        cfg = bench_eclipse_config()
    else:
        raise ValueError(f"unknown system {system!r}")

    def build() -> FeatureDataset:
        ds, _ = build_dataset(cfg, method=method, rng=rng)
        return ds

    # content-addressed name: any change to the campaign description or
    # extractor invalidates the entry automatically (no manual -vN bumps)
    key = config_fingerprint(cfg, method=method, seed=rng)
    return get_or_build(f"{system}-{method}-r{rng}-{key[:12]}", build, CACHE_DIR)
