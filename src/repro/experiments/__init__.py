"""repro.experiments — experiment harness behind the paper's tables/figures.

Shared runner (method × split AL grids with CI aggregation), on-disk
dataset cache, canonical bench configurations, and plain-text reporting.
"""

from .analysis import (
    PerClassReport,
    confusion_pairs,
    hardest_anomaly,
    per_class_report,
    query_efficiency,
)
from .cache import (
    cached_selection,
    config_fingerprint,
    dataset_fingerprint,
    get_or_build,
    load_dataset,
    save_dataset,
)
from .configs import (
    CACHE_DIR,
    K_FEATURES,
    N_JOBS,
    N_QUERIES,
    N_SPLITS,
    OUT_DIR,
    RF_PARAMS,
    SPLITTER,
    bench_dataset,
    bench_eclipse_config,
    bench_volta_config,
)
from .report import (
    curve_table,
    distribution_table,
    format_table,
    sparkline,
    table5_row,
)
from .runner import (
    ALL_METHODS,
    BASELINE_METHODS,
    STRATEGY_METHODS,
    CurveStats,
    ExperimentResult,
    aggregate,
    default_model_factory,
    run_methods,
)

__all__ = [
    "ALL_METHODS",
    "BASELINE_METHODS",
    "CACHE_DIR",
    "CurveStats",
    "ExperimentResult",
    "K_FEATURES",
    "N_JOBS",
    "N_QUERIES",
    "N_SPLITS",
    "OUT_DIR",
    "PerClassReport",
    "confusion_pairs",
    "hardest_anomaly",
    "per_class_report",
    "query_efficiency",
    "RF_PARAMS",
    "SPLITTER",
    "STRATEGY_METHODS",
    "aggregate",
    "bench_dataset",
    "bench_eclipse_config",
    "bench_volta_config",
    "cached_selection",
    "config_fingerprint",
    "curve_table",
    "dataset_fingerprint",
    "default_model_factory",
    "distribution_table",
    "format_table",
    "get_or_build",
    "load_dataset",
    "run_methods",
    "save_dataset",
    "sparkline",
    "table5_row",
]
