"""Experiment runner: many (method × split) active-learning runs, aggregated.

Every curve figure in the paper (Figs. 3, 5, 6, 8) is the same experiment
shape: for each query-selection *method* (three AL strategies + three
baselines) and each of several train/test *splits*, run the AL loop and
record F1 / false-alarm / anomaly-miss curves; then report per-method means
with a 95% confidence band across splits. This module implements that shape
once, with optional process-level fan-out over the (method, split) grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..active.baselines import EqualAppSelector, ProctorModel, RandomSelector
from ..active.loop import ALResult, queries_to_reach, run_active_learning
from ..datasets.splits import PreparedSplit
from ..mlcore.forest import RandomForestClassifier
from ..parallel.executor import Executor

__all__ = [
    "CurveStats",
    "ExperimentResult",
    "default_model_factory",
    "STRATEGY_METHODS",
    "BASELINE_METHODS",
    "ALL_METHODS",
    "run_methods",
    "aggregate",
]

STRATEGY_METHODS = ("uncertainty", "margin", "entropy")
BASELINE_METHODS = ("random", "equal_app", "proctor")
ALL_METHODS = STRATEGY_METHODS + BASELINE_METHODS


def default_model_factory(
    seed: int, splitter: str = "exact", n_jobs: int = 1
) -> RandomForestClassifier:
    """The paper's production model: a random forest (Table IV tuned).

    ``splitter`` / ``n_jobs`` expose the histogram-binned training core
    and parallel fitting for benches that need the wall clock; the
    defaults keep the paper-faithful exact/serial path.
    """
    return RandomForestClassifier(
        n_estimators=16, max_depth=8, criterion="entropy",
        splitter=splitter, n_jobs=n_jobs, random_state=seed,
    )


@dataclass
class CurveStats:
    """Across-split mean and 95% CI of one method's learning curves."""

    n_labeled: np.ndarray
    f1_mean: np.ndarray
    f1_ci: np.ndarray
    far_mean: np.ndarray
    far_ci: np.ndarray
    amr_mean: np.ndarray
    amr_ci: np.ndarray
    n_splits: int

    def f1_at(self, n_additional: int) -> float:
        """Mean F1 after ``n_additional`` queries (nearest curve point)."""
        target = self.n_labeled[0] + n_additional
        i = int(np.argmin(np.abs(self.n_labeled - target)))
        return float(self.f1_mean[i])


@dataclass
class ExperimentResult:
    """All runs of one experiment: method → per-split ALResults."""

    runs: dict[str, list[ALResult]] = field(default_factory=dict)

    def stats(self, method: str) -> CurveStats:
        """Aggregate a method's splits into mean ± CI curves."""
        return aggregate(self.runs[method])

    def queries_to_reach(self, method: str, target_f1: float) -> int | None:
        """Additional samples until the *mean* curve first hits the target."""
        stats = self.stats(method)
        hit = np.flatnonzero(stats.f1_mean >= target_f1)
        if len(hit) == 0:
            return None
        return int(stats.n_labeled[hit[0]] - stats.n_labeled[0])

    def per_split_queries_to_reach(
        self, method: str, target_f1: float
    ) -> list[int | None]:
        """Per-split counts (the paper's shaded-band variability)."""
        return [queries_to_reach(r, target_f1) for r in self.runs[method]]


def aggregate(results: Sequence[ALResult]) -> CurveStats:
    """Mean and 95% CI across splits, truncated to the shortest curve."""
    if not results:
        raise ValueError("no results to aggregate")
    L = min(len(r.f1) for r in results)
    f1 = np.stack([r.f1[:L] for r in results])
    far = np.stack([r.far[:L] for r in results])
    amr = np.stack([r.amr[:L] for r in results])
    n = len(results)
    z = 1.96 / np.sqrt(n) if n > 1 else 0.0

    def ci(mat: np.ndarray) -> np.ndarray:
        return z * mat.std(axis=0, ddof=1) if n > 1 else np.zeros(L)

    return CurveStats(
        n_labeled=results[0].n_labeled[:L].copy(),
        f1_mean=f1.mean(axis=0),
        f1_ci=ci(f1),
        far_mean=far.mean(axis=0),
        far_ci=ci(far),
        amr_mean=amr.mean(axis=0),
        amr_ci=ci(amr),
        n_splits=n,
    )


def _make_strategy(method: str, prep: PreparedSplit) -> Any:
    if method in STRATEGY_METHODS:
        return method
    if method == "random":
        return RandomSelector()
    if method == "equal_app":
        return EqualAppSelector(prep.pool_apps)
    if method == "proctor":
        # Proctor acquires labels at random; the model swap happens in
        # _run_single via the ProctorModel estimator
        return RandomSelector()
    raise ValueError(f"unknown method {method!r}; available: {ALL_METHODS}")


def _run_single(job: tuple) -> tuple[str, int, ALResult]:
    """One (method, split) cell — module-level for process-pool pickling."""
    (method, split_id, prep, n_queries, model_params, proctor_params, seed) = job
    if method == "proctor":
        model: Any = ProctorModel(random_state=seed, **proctor_params)
    else:
        model = default_model_factory(seed)
        if model_params:
            model.set_params(**model_params)
    strategy = _make_strategy(method, prep)
    result = run_active_learning(
        model,
        strategy,
        prep.X_seed,
        prep.y_seed,
        prep.X_pool,
        prep.y_pool,
        prep.X_test,
        prep.y_test,
        n_queries=n_queries,
        pool_apps=prep.pool_apps,
        random_state=seed,
    )
    return method, split_id, result


def run_methods(
    preps: Sequence[PreparedSplit],
    methods: Sequence[str] = ALL_METHODS,
    n_queries: int = 100,
    model_params: dict[str, Any] | None = None,
    proctor_params: dict[str, Any] | None = None,
    n_workers: int = 1,
    base_seed: int = 0,
) -> ExperimentResult:
    """Run every method on every prepared split.

    Parameters
    ----------
    preps:
        One :class:`PreparedSplit` per train/test replicate (the paper
        repeats five times).
    methods:
        Subset of :data:`ALL_METHODS`.
    model_params:
        Overrides for the default random-forest model.
    proctor_params:
        Overrides for the Proctor baseline (code size, epochs, …).
    n_workers:
        Process fan-out over the (method × split) grid; 1 = serial.
    """
    unknown = set(methods) - set(ALL_METHODS)
    if unknown:
        raise ValueError(f"unknown methods: {sorted(unknown)}")
    proctor_defaults: dict[str, Any] = {
        "code_size": 32,
        "hidden_layer_sizes": (64,),
        "ae_epochs": 40,
    }
    if proctor_params:
        proctor_defaults.update(proctor_params)
    jobs = [
        (
            method,
            split_id,
            prep,
            n_queries,
            model_params or {},
            proctor_defaults,
            base_seed + split_id,
        )
        for method in methods
        for split_id, prep in enumerate(preps)
    ]
    outputs = Executor(n_workers=n_workers, chunks_per_worker=1).map(
        _run_single, jobs
    )
    result = ExperimentResult(runs={m: [] for m in methods})
    for method, split_id, run in sorted(
        outputs, key=lambda t: (t[0], t[1])
    ):
        result.runs[method].append(run)
    return result
