"""Per-class drill-down analysis (the paper's Sec. V narrative numbers).

Beyond the headline curves, the paper's analysis leans on per-class
behaviour: `dial` has the lowest per-class F1 on Volta (hence is queried
most), Proctor is strong everywhere *except* cpuoccupy, the margin
strategy chases membw/cpuoccupy on Eclipse. This module computes those
drill-downs from fitted models / AL results so benches and examples can
assert and report them.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..mlcore.metrics import HEALTHY_LABEL, confusion_matrix, precision_recall_f1

__all__ = [
    "PerClassReport",
    "per_class_report",
    "hardest_anomaly",
    "query_efficiency",
    "confusion_pairs",
    "subsystem_signal",
    "feature_family_signal",
]


@dataclass(frozen=True)
class PerClassReport:
    """Per-class scores of one model on one test set."""

    labels: tuple[str, ...]
    precision: tuple[float, ...]
    recall: tuple[float, ...]
    f1: tuple[float, ...]
    support: tuple[int, ...]

    def f1_of(self, label: str) -> float:
        """F1 of one class; raises KeyError for unknown labels."""
        try:
            return self.f1[self.labels.index(label)]
        except ValueError:
            raise KeyError(f"class {label!r} not in report") from None

    def ranked(self) -> list[tuple[str, float]]:
        """(label, f1) pairs sorted worst-first."""
        return sorted(zip(self.labels, self.f1), key=lambda t: t[1])


def per_class_report(y_true: np.ndarray, y_pred: np.ndarray) -> PerClassReport:
    """Compute per-class precision/recall/F1/support."""
    precision, recall, f1, labels = precision_recall_f1(y_true, y_pred)
    y_true = np.asarray(y_true)
    support = tuple(int(np.sum(y_true == label)) for label in labels)
    return PerClassReport(
        labels=tuple(str(label) for label in labels),
        precision=tuple(float(v) for v in precision),
        recall=tuple(float(v) for v in recall),
        f1=tuple(float(v) for v in f1),
        support=support,
    )


def hardest_anomaly(
    y_true: np.ndarray, y_pred: np.ndarray, healthy_label: str = HEALTHY_LABEL
) -> str:
    """The anomaly class with the lowest F1 (the paper's `dial` finding)."""
    report = per_class_report(y_true, y_pred)
    anomalies = [
        (label, f1)
        for label, f1 in zip(report.labels, report.f1)
        if label != healthy_label
    ]
    if not anomalies:
        raise ValueError("no anomaly classes present")
    return min(anomalies, key=lambda t: t[1])[0]


def confusion_pairs(
    y_true: np.ndarray, y_pred: np.ndarray, top_k: int = 5
) -> list[tuple[str, str, int]]:
    """The most frequent (true → predicted) error pairs, descending."""
    cm, labels = confusion_matrix(y_true, y_pred)
    pairs = [
        (str(labels[i]), str(labels[j]), int(cm[i, j]))
        for i in range(len(labels))
        for j in range(len(labels))
        if i != j and cm[i, j] > 0
    ]
    pairs.sort(key=lambda t: -t[2])
    return pairs[:top_k]


def query_efficiency(result, targets=(0.7, 0.8, 0.9)) -> dict[float, int | None]:
    """Additional samples the run needed per F1 target (None = unreached)."""
    from ..active.loop import queries_to_reach

    return {t: queries_to_reach(result, t) for t in targets}


def _split_feature_name(name: str) -> tuple[str, str]:
    """A pipeline feature name is ``<metric>::<statistic>``."""
    metric, _, statistic = name.partition("::")
    if not statistic:
        raise ValueError(f"not a pipeline feature name: {name!r}")
    return metric, statistic


def subsystem_signal(selected_names: list[str]) -> dict[str, int]:
    """Count chi-square-selected features per telemetry subsystem.

    Answers the operator question "where does the diagnostic signal live?"
    — e.g. memleak separates in meminfo, cachecopy in the Cray write-back
    counters. Subsystem = the metric-name prefix before the first dot
    (``meminfo``, ``vmstat``, ``procstat``, ``procnetdev``, ``lustre``,
    ``cray``).
    """
    counts = Counter()
    for name in selected_names:
        metric, _ = _split_feature_name(name)
        counts[metric.split(".", 1)[0]] += 1
    return dict(counts)


def feature_family_signal(selected_names: list[str], top_k: int = 12) -> list[tuple[str, int]]:
    """The statistical feature types chi-square favors, most common first.

    Tells you whether level features (mean/quantiles), temporal features
    (strikes, autocorrelation), or spectral features carry the signal —
    the MVTS-vs-TSFRESH question at feature granularity.
    """
    counts = Counter()
    for name in selected_names:
        _, statistic = _split_feature_name(name)
        counts[statistic] += 1
    return counts.most_common(top_k)


def queried_class_alignment(result, y_test, y_pred) -> dict[str, float]:
    """How well the query mix tracks the per-class difficulty.

    Returns each anomaly class's share of queries. The paper's
    observation: the strategies concentrate queries on the classes with
    the lowest F1 (dial on Volta; membw/cpuoccupy on Eclipse), so the
    worst class should receive an outsized share.
    """
    counts = Counter(str(v) for v in result.queried_labels)
    total = sum(counts.values())
    if total == 0:
        return {}
    return {label: counts[label] / total for label in counts}
