"""Content-addressed on-disk caching of featurized campaign datasets.

Campaign generation plus feature extraction is the expensive, perfectly
deterministic prefix of every experiment (tens of seconds for MVTS, minutes
for TSFRESH). Benchmarks for different figures share the same corpora, so
the first bench pays the cost and the rest load an ``.npz`` snapshot.

Three layers of integrity:

* **content-addressed keys** — :func:`config_fingerprint` hashes the full
  campaign description (``SystemConfig`` → apps, catalog, node model,
  anomaly/intensity grids, durations) together with the extractor method
  and seed, so any substrate change produces a new key automatically (no
  more manual ``-v3`` suffix bumps);
* **validated loads** — every entry's :func:`dataset_fingerprint` (a hash
  of the feature matrix, metadata arrays, and feature names) is recorded
  in ``manifest.json`` and re-checked on load; a mismatch (truncated or
  tampered snapshot, stale manifest) rebuilds the entry;
* **atomic writes** — snapshots and the manifest are written to a
  temporary file and ``os.replace``d into place, so concurrent benches
  sharing one cache directory never observe a half-written entry.

:func:`cached_selection` extends the same discipline to the chi-square
feature-selection stage: the selector's scores and support are cached
keyed by (fingerprint of the fitted data, k).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
from pathlib import Path
from typing import Callable

import numpy as np

from ..features.pipeline import FeatureDataset
from ..mlcore.feature_selection import SelectKBest

__all__ = [
    "save_dataset",
    "load_dataset",
    "get_or_build",
    "dataset_fingerprint",
    "config_fingerprint",
    "cached_selection",
]

_META_KEYS = ("labels", "apps", "input_decks", "intensities", "node_counts")
_FORMAT_VERSION = 2

_LOG = logging.getLogger(__name__)


# ----------------------------------------------------------------------
# fingerprints

def _hash_array(h, arr: np.ndarray) -> None:
    arr = np.ascontiguousarray(arr)
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())


def dataset_fingerprint(ds: FeatureDataset) -> str:
    """Content hash of a featurized corpus (matrix + metadata + names)."""
    h = hashlib.sha256()
    _hash_array(h, ds.X)
    for key in _META_KEYS:
        _hash_array(h, np.asarray(getattr(ds, key)))
    h.update("\x00".join(ds.feature_names).encode())
    return h.hexdigest()


def config_fingerprint(config, method: str = "mvts", seed=0, **extra) -> str:
    """Content hash of a campaign description plus extraction settings.

    ``config`` is a :class:`~repro.datasets.generate.SystemConfig`; the
    hash covers every field recursively (apps, catalog specs, node model,
    grids), the extractor ``method``, the ``seed``, and any ``extra``
    key/values the caller wants in the key (e.g. ``trim_frac``). Worker
    counts deliberately do **not** participate: the data plane produces
    identical bytes at any ``n_jobs``.
    """
    description = {
        "config": dataclasses.asdict(config),
        "method": method,
        "seed": seed,
        "format": _FORMAT_VERSION,
        **extra,
    }
    canonical = json.dumps(description, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


# ----------------------------------------------------------------------
# atomic snapshot IO

def _atomic_replace(path: Path, write_fn: Callable[[Path], None]) -> None:
    """Write via a same-directory temp file + ``os.replace`` (atomic)."""
    tmp = path.with_name(f".{path.stem}.tmp-{os.getpid()}{path.suffix}")
    try:
        write_fn(tmp)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # write_fn failed mid-way
            tmp.unlink()


def save_dataset(ds: FeatureDataset, path: str | Path) -> Path:
    """Write a featurized dataset (matrix + metadata + names) to ``.npz``.

    The write is atomic: concurrent benches racing on the same cache
    entry each produce a complete file, and the last rename wins.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    _atomic_replace(
        path,
        lambda tmp: np.savez_compressed(
            tmp,
            X=ds.X,
            labels=ds.labels,
            apps=ds.apps,
            input_decks=ds.input_decks,
            intensities=ds.intensities,
            node_counts=ds.node_counts,
            feature_names=np.array(ds.feature_names, dtype=object),
        ),
    )
    return path


def load_dataset(path: str | Path) -> FeatureDataset:
    """Restore a dataset written by :func:`save_dataset`."""
    with np.load(Path(path), allow_pickle=True) as data:
        return FeatureDataset(
            X=data["X"],
            labels=data["labels"],
            apps=data["apps"],
            input_decks=data["input_decks"],
            intensities=data["intensities"],
            node_counts=data["node_counts"],
            feature_names=list(data["feature_names"]),
        )


# ----------------------------------------------------------------------
# the manifest and the build-or-load entry point

def _read_manifest(cache_dir: Path) -> dict:
    manifest = cache_dir / "manifest.json"
    if not manifest.exists():
        return {}
    try:
        return json.loads(manifest.read_text())
    except (json.JSONDecodeError, OSError):
        return {}  # corrupt manifest: entries re-validate and re-register


def _write_manifest_entry(cache_dir: Path, name: str, entry: dict) -> None:
    entries = _read_manifest(cache_dir)
    entries[name] = entry
    _atomic_replace(
        cache_dir / "manifest.json",
        lambda tmp: tmp.write_text(json.dumps(entries, indent=2, sort_keys=True)),
    )


def get_or_build(
    name: str,
    builder: Callable[[], FeatureDataset],
    cache_dir: str | Path,
) -> FeatureDataset:
    """Load ``<cache_dir>/<name>.npz`` if present and valid, else (re)build.

    ``builder`` must be deterministic (seeded) — the cache assumes the same
    name always denotes the same corpus; use :func:`config_fingerprint` in
    the name to make that hold by construction. A loaded entry is checked
    against the corpus fingerprint recorded in ``manifest.json``:
    mismatches (truncated snapshots, stale manifests, hand-edited files)
    are rebuilt, not served. Entries predating the manifest fingerprint
    get one backfilled on first load.
    """
    cache_dir = Path(cache_dir)
    path = cache_dir / f"{name}.npz"
    if path.exists():
        ds = None
        try:
            ds = load_dataset(path)
        except Exception as exc:
            _LOG.warning("corrupt cache entry %s (%s); rebuilding", path, exc)
        if ds is not None:
            recorded = _read_manifest(cache_dir).get(name, {}).get("fingerprint")
            actual = dataset_fingerprint(ds)
            if recorded is None:
                _write_manifest_entry(cache_dir, name, _manifest_entry(ds, actual))
                return ds
            if recorded == actual:
                return ds
        path.unlink()
    ds = builder()
    save_dataset(ds, path)
    _write_manifest_entry(
        cache_dir, name, _manifest_entry(ds, dataset_fingerprint(ds))
    )
    return ds


def _manifest_entry(ds: FeatureDataset, fingerprint: str) -> dict:
    return {
        "rows": int(len(ds)),
        "features": int(ds.X.shape[1]),
        "fingerprint": fingerprint,
        "format": _FORMAT_VERSION,
    }


# ----------------------------------------------------------------------
# cached chi-square selection

def cached_selection(
    X: np.ndarray,
    y: np.ndarray,
    k: int,
    cache_dir: str | Path,
) -> SelectKBest:
    """A fitted :class:`SelectKBest`, loaded from cache when possible.

    The key is the fingerprint of the exact ``(X, y)`` the selector is
    fit on plus ``k`` — two splits that scale to the same training matrix
    share the entry; any change to the data misses. Scores and support
    are cached together so the restored selector is indistinguishable
    from a freshly fit one. Writes are atomic like the dataset snapshots.
    """
    cache_dir = Path(cache_dir)
    h = hashlib.sha256()
    _hash_array(h, X)
    _hash_array(h, np.asarray(y))
    h.update(str(int(k)).encode())
    path = cache_dir / f"chi2-{h.hexdigest()[:24]}.npz"
    if path.exists():
        try:
            with np.load(path) as data:
                support = data["support"]
                scores = data["scores"]
            if (
                len(scores) == X.shape[1]
                and len(support) == min(k, X.shape[1])
                and (len(support) == 0 or support.max() < X.shape[1])
            ):
                selector = SelectKBest(k=k)
                selector.scores_ = scores
                selector.support_ = support
                selector.n_features_in_ = X.shape[1]
                return selector
        except Exception as exc:
            _LOG.warning("corrupt selector cache %s (%s); refitting", path, exc)
        path.unlink()
    selector = SelectKBest(k=k).fit(X, y)
    cache_dir.mkdir(parents=True, exist_ok=True)
    _atomic_replace(
        path,
        lambda tmp: np.savez(
            tmp, support=selector.support_, scores=selector.scores_
        ),
    )
    return selector
