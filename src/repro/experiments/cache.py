"""On-disk caching of featurized campaign datasets.

Campaign generation plus feature extraction is the expensive, perfectly
deterministic prefix of every experiment (tens of seconds for MVTS, minutes
for TSFRESH). Benchmarks for different figures share the same corpora, so
the first bench pays the cost and the rest load an ``.npz`` snapshot.

The cache key is the caller-supplied name; entries also record the corpus
fingerprint (shape + seed) and are validated on load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable

import numpy as np

from ..features.pipeline import FeatureDataset

__all__ = ["save_dataset", "load_dataset", "get_or_build"]

_META_KEYS = ("labels", "apps", "input_decks", "intensities", "node_counts")


def save_dataset(ds: FeatureDataset, path: str | Path) -> Path:
    """Write a featurized dataset (matrix + metadata + names) to ``.npz``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        X=ds.X,
        labels=ds.labels,
        apps=ds.apps,
        input_decks=ds.input_decks,
        intensities=ds.intensities,
        node_counts=ds.node_counts,
        feature_names=np.array(ds.feature_names, dtype=object),
    )
    return path


def load_dataset(path: str | Path) -> FeatureDataset:
    """Restore a dataset written by :func:`save_dataset`."""
    with np.load(Path(path), allow_pickle=True) as data:
        return FeatureDataset(
            X=data["X"],
            labels=data["labels"],
            apps=data["apps"],
            input_decks=data["input_decks"],
            intensities=data["intensities"],
            node_counts=data["node_counts"],
            feature_names=list(data["feature_names"]),
        )


def get_or_build(
    name: str,
    builder: Callable[[], FeatureDataset],
    cache_dir: str | Path,
) -> FeatureDataset:
    """Load ``<cache_dir>/<name>.npz`` if present, else build and store it.

    ``builder`` must be deterministic (seeded) — the cache assumes the same
    name always denotes the same corpus.
    """
    cache_dir = Path(cache_dir)
    path = cache_dir / f"{name}.npz"
    if path.exists():
        try:
            return load_dataset(path)
        except Exception:
            path.unlink()  # corrupt entry: rebuild
    ds = builder()
    save_dataset(ds, path)
    manifest = cache_dir / "manifest.json"
    entries = {}
    if manifest.exists():
        entries = json.loads(manifest.read_text())
    entries[name] = {"rows": int(len(ds)), "features": int(ds.X.shape[1])}
    manifest.write_text(json.dumps(entries, indent=2, sort_keys=True))
    return ds
