"""Random forest classifier — ALBADross's production model.

The paper trains a random forest for every headline experiment (Table V,
Figs. 3–8) with the Table IV grid: ``n_estimators`` ∈ {8, 10, 20, 100, 200},
``max_depth`` ∈ {None, 4, 8, 10, 20}, ``criterion`` ∈ {gini, entropy}.
Probability estimates (the average of per-tree leaf class frequencies) feed
the active-learning query strategies directly, so calibration-by-averaging
matters more here than in a plain accuracy setting.

Performance model: the active-learning loop refits a forest after every
query, so this class is the repo's hot path. Three levers, all opt-in:

* ``splitter="hist"`` bins the matrix once (:class:`repro.mlcore.binning`)
  and grows every tree from shared ``uint8`` codes — split search becomes
  an O(n) histogram per node instead of an argsort per (node, feature),
  and bootstrap resamples are index views, never matrix copies.
* :meth:`fit_binned` accepts a pre-binned :class:`BinnedDataset`, letting
  callers (the AL loop) pay the binning cost once across many refits.
* ``n_jobs`` fans tree fitting across the process-wide warm pool
  (:func:`repro.parallel.shared_executor`). Under the process backend
  the code matrices cross into workers through shared-memory segments
  (:mod:`repro.parallel.shm`) and each task carries only its seed chunk;
  the thread backend shares the parent's arrays outright, which is the
  zero-overhead choice when the affinity mask offers a single core.

Every tree derives its own RNG stream from a seed drawn up front from the
root generator, so seeded fits are bit-identical at any ``n_jobs`` and for
either dispatch order.
"""

from __future__ import annotations

import math
from contextlib import ExitStack
from dataclasses import dataclass, field

import numpy as np

from ..parallel.executor import shared_executor
from ..parallel.shm import SharedArray, SharedArrayHandle
from .base import (
    BaseEstimator,
    ClassifierMixin,
    check_array,
    check_random_state,
    check_X_y,
)
from .binning import BinnedDataset, Binner
from .tree import _LEAF, DecisionTreeClassifier

__all__ = ["RandomForestClassifier", "RefitReport", "DEFAULT_FOREST_BINS"]

# Forests average many shallow-ish trees, so per-tree threshold resolution
# matters less than for a single tree: 64 bins measures indistinguishable
# from 256 on the bench corpora while halving split-search work. Single
# trees and the GBM keep the finer 256-bin default.
DEFAULT_FOREST_BINS = 64

# Domain-separation tag for the replacement-schedule RNG: the schedule
# derives from tree 0's seed (itself drawn from the root generator), and
# the tag keeps its stream disjoint from every tree's fitting stream.
_SCHEDULE_TAG = 0x5C4ED


@dataclass(frozen=True)
class RefitReport:
    """What one warm :meth:`RandomForestClassifier.refit` round changed.

    The delta pool scorer consumes this to update only the affected
    per-tree contributions instead of re-scoring the pool through every
    tree: ``replaced`` trees were regrown whole (their column must be
    re-descended), kept trees changed only the listed leaves' class
    distributions, and ``classes_changed`` signals that the forest-wide
    class list grew (every scattered probability row changes width, so
    incremental patching is off the table for that round).
    """

    round_index: int
    n_new_rows: int
    replaced: np.ndarray  # tree positions regrown from the stacked data
    touched_leaves: list[tuple[int, np.ndarray]] = field(default_factory=list)
    classes_changed: bool = False


def _bootstrap_indices(
    rng: np.random.Generator, codes: np.ndarray, n_classes: int, n: int
) -> np.ndarray:
    """One bootstrap resample, retried a bounded number of times so every
    class stays represented (preserves per-class probability mass)."""
    idx = rng.integers(0, n, size=n)
    for _retry in range(8):
        if len(np.unique(codes[idx])) == n_classes:
            break
        idx = rng.integers(0, n, size=n)
    return idx


def _fit_tree_chunk(args: tuple) -> list[DecisionTreeClassifier]:
    """Fit a batch of trees; module-level so process pools can pickle it.

    Each tree consumes only its own seed, so the result is independent of
    how seeds are grouped into chunks or which worker runs them.
    """
    tree_params, codes_mat, edges, X, y, n_classes, bootstrap, seeds, codes_T = args
    n = len(y)
    if codes_T is None and codes_mat is not None:
        # one feature-major copy shared by every tree in the chunk
        codes_T = np.ascontiguousarray(codes_mat.T)
    trees = []
    for seed in seeds:
        rng = np.random.default_rng(int(seed))
        idx = _bootstrap_indices(rng, y, n_classes, n) if bootstrap else None
        tree = DecisionTreeClassifier(**tree_params, random_state=rng)
        if codes_mat is not None:
            tree._fit_binned(
                codes_mat, edges, y, sample_indices=idx, codes_T=codes_T
            )
        elif idx is not None:
            tree.fit(X[idx], y[idx])
        else:
            tree.fit(X, y)
        trees.append(tree)
    return trees


class _ShmTreeFitter:
    """Worker body with its training matrices parked in shared memory.

    Shipped **once per pool** via the executor's function cache; each
    work item is a seed chunk (a handful of ints), so refitting a forest
    never re-pickles the dataset. Workers attach to the segments, build
    the same args tuple :func:`_fit_tree_chunk` has always consumed, and
    detach before returning their trees.
    """

    def __init__(
        self,
        tree_params: dict,
        edges: list[np.ndarray] | None,
        y: np.ndarray,
        n_classes: int,
        bootstrap: bool,
        codes_handle: SharedArrayHandle | None,
        codes_T_handle: SharedArrayHandle | None,
        X_handle: SharedArrayHandle | None,
    ):
        self.tree_params = tree_params
        self.edges = edges
        self.y = y
        self.n_classes = n_classes
        self.bootstrap = bootstrap
        self.codes_handle = codes_handle
        self.codes_T_handle = codes_T_handle
        self.X_handle = X_handle

    def __call__(self, seeds: np.ndarray) -> list[DecisionTreeClassifier]:
        attachments = []
        try:
            codes_mat = codes_T = X = None
            if self.codes_handle is not None:
                att = self.codes_handle.open()
                attachments.append(att)
                codes_mat = att.array
            if self.codes_T_handle is not None:
                att = self.codes_T_handle.open()
                attachments.append(att)
                codes_T = att.array
            if self.X_handle is not None:
                att = self.X_handle.open()
                attachments.append(att)
                X = att.array
            return _fit_tree_chunk(
                (self.tree_params, codes_mat, self.edges, X, self.y,
                 self.n_classes, self.bootstrap, seeds, codes_T)
            )
        finally:
            for att in attachments:
                att.close()


class RandomForestClassifier(BaseEstimator, ClassifierMixin):
    """Bagged ensemble of CART trees with feature subsampling.

    Parameters mirror the Table IV hyperparameter space. Each tree is grown
    on a bootstrap resample of the training set with ``sqrt(n_features)``
    candidate features per split (the scikit-learn default the paper used).

    ``predict_proba`` averages per-tree leaf class frequencies; classes that
    a bootstrap never saw contribute zero probability from that tree, which
    is the same behaviour scikit-learn exhibits via its shared class list.

    Parameters beyond the paper grid
    --------------------------------
    splitter:
        ``"exact"`` (default) searches raw feature values; ``"hist"``
        quantile-bins the matrix once and searches bin histograms —
        much faster, thresholds land on bin edges instead of exact
        midpoints (see ``docs/mlcore.md``).
    max_bins:
        Bins per feature for the hist splitter (ignored for exact).
    n_jobs:
        Workers for tree fitting; ``1`` fits serially in-process.
        Seeded results are identical for every setting.
    backend:
        ``"auto"`` (default), ``"thread"``, or ``"process"`` — see
        :func:`repro.parallel.resolve_backend`. Fits are bit-identical
        across backends; only the transport differs.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        criterion: str = "gini",
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = "sqrt",
        bootstrap: bool = True,
        splitter: str = "exact",
        max_bins: int = DEFAULT_FOREST_BINS,
        n_jobs: int | None = 1,
        backend: str = "auto",
        random_state: int | np.random.Generator | None = None,
    ):
        self.n_estimators = n_estimators
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.splitter = splitter
        self.max_bins = max_bins
        self.n_jobs = n_jobs
        self.backend = backend
        self.random_state = random_state

    # ------------------------------------------------------------------ fit

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        """Fit ``n_estimators`` trees on bootstrap resamples of ``(X, y)``."""
        if self.n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {self.n_estimators}")
        if self.splitter not in ("exact", "hist"):
            raise ValueError(
                f"splitter must be 'exact' or 'hist', got {self.splitter!r}"
            )
        X, y = check_X_y(X, y)
        if self.splitter == "hist":
            return self.fit_binned(Binner(self.max_bins).fit_dataset(X), y)
        return self._fit_forest(X, None, None, y)

    def fit_binned(
        self, binned: BinnedDataset, y: np.ndarray
    ) -> "RandomForestClassifier":
        """Fit from a pre-binned dataset (the cross-refit fast path).

        The active-learning loop bins the pool once and hands each refit a
        row subset of the same :class:`BinnedDataset`; no quantization or
        matrix copy happens here.
        """
        if self.n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {self.n_estimators}")
        if self.splitter != "hist":
            raise ValueError(
                "fit_binned requires splitter='hist' "
                f"(got splitter={self.splitter!r})"
            )
        y = np.asarray(y)
        if len(y) != binned.n_samples:
            raise ValueError(
                f"binned has {binned.n_samples} samples but y has {len(y)}"
            )
        self.binned_dataset_ = binned
        self._fit_y_ = np.asarray(y).copy()
        return self._fit_forest(
            None, binned.codes, binned.bin_edges_, y, binned.codes_T
        )

    def refit(
        self,
        X_new: np.ndarray,
        y_new: np.ndarray,
        *,
        refresh_fraction: float = 0.25,
        codes: np.ndarray | None = None,
    ) -> RefitReport:
        """Warm-start update: absorb new labeled rows without a full refit.

        The active-learning loop adds a handful of rows per round; this
        keeps the fitted trees and their per-tree seed streams across
        rounds instead of regrowing all ``n_estimators`` trees:

        * a deterministic *replacement schedule* — seeded from tree 0's
          stream, keyed by the refit round, independent of ``n_jobs`` —
          picks ``ceil(refresh_fraction · n_estimators)`` trees to regrow
          from scratch on the stacked (old + new) data, each with its
          original per-tree seed;
        * every kept tree routes the new rows to its leaves and folds
          them into the leaf class counts in place
          (:meth:`DecisionTreeClassifier.absorb_labeled`).

        ``refresh_fraction=1.0`` regrows every tree and is bit-identical
        to a from-scratch :meth:`fit_binned` of a fresh clone (same
        integer ``random_state``) on the stacked dataset — the parity
        oracle the test suite pins. Smaller fractions trade refit cost
        for a model that converges to the cold one as trees cycle
        through the schedule.

        ``codes`` are the new rows' pre-binned code rows when the caller
        already holds them (the AL loop bins seed + pool once up front);
        otherwise the rows are binned here with the fitted binner's
        edges. Requires a forest fitted via ``fit_binned`` (or ``fit``
        with ``splitter="hist"``). Returns a :class:`RefitReport` for
        incremental pool re-scoring.
        """
        if getattr(self, "binned_dataset_", None) is None or not hasattr(
            self, "_fit_y_"
        ):
            raise RuntimeError(
                "refit needs a forest fitted via fit_binned "
                "(splitter='hist'); call fit/fit_binned first"
            )
        if not 0.0 < refresh_fraction <= 1.0:
            raise ValueError(
                f"refresh_fraction must be in (0, 1], got {refresh_fraction}"
            )
        X_new = np.asarray(X_new, dtype=np.float64)
        if X_new.ndim == 1:
            X_new = X_new[None, :]
        if X_new.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X_new has {X_new.shape[1]} features, "
                f"expected {self.n_features_in_}"
            )
        y_new = np.atleast_1d(np.asarray(y_new))
        if len(y_new) != len(X_new):
            raise ValueError(f"{len(X_new)} rows but {len(y_new)} labels")
        if codes is None:
            codes = self.binned_dataset_.binner.transform(X_new)
        else:
            codes = np.asarray(codes, dtype=np.uint8)
            if codes.ndim == 1:
                codes = codes[None, :]

        self.binned_dataset_ = self.binned_dataset_.append_codes(codes)
        y_all = np.concatenate([self._fit_y_, y_new])
        self._fit_y_ = y_all
        old_n_classes = len(self.classes_)
        self.classes_ = np.unique(y_all)

        round_index = self._refit_round_
        self._refit_round_ += 1
        n_rep = min(
            self.n_estimators,
            max(1, math.ceil(refresh_fraction * self.n_estimators)),
        )
        if n_rep >= self.n_estimators:
            replaced = np.arange(self.n_estimators)
        else:
            sched = np.random.default_rng(
                [_SCHEDULE_TAG, int(self._tree_seeds_[0]), round_index]
            )
            replaced = np.sort(
                sched.choice(self.n_estimators, size=n_rep, replace=False)
            )
        keep = np.setdiff1d(np.arange(self.n_estimators), replaced)

        touched: list[tuple[int, np.ndarray]] = []
        for t in keep:
            touched.append((int(t), self.estimators_[t].absorb_labeled(X_new, y_new)))
        binned = self.binned_dataset_
        new_trees = [
            tree
            for chunk in self._dispatch_tree_fits(
                self._tree_seeds_[replaced], None, binned.codes,
                binned.bin_edges_, y_all, binned.codes_T,
            )
            for tree in chunk
        ]
        for pos, tree in zip(replaced, new_trees):
            self.estimators_[pos] = tree
        self._finish_fit()
        return RefitReport(
            round_index=round_index,
            n_new_rows=len(X_new),
            replaced=replaced,
            touched_leaves=touched,
            classes_changed=len(self.classes_) != old_n_classes,
        )

    def _fit_forest(
        self,
        X: np.ndarray | None,
        codes_mat: np.ndarray | None,
        edges: list[np.ndarray] | None,
        y: np.ndarray,
        codes_T: np.ndarray | None = None,
    ) -> "RandomForestClassifier":
        rng = check_random_state(self.random_state)
        self.classes_ = np.unique(y)
        self.n_features_in_ = (X if X is not None else codes_mat).shape[1]
        # one seed per tree, drawn up front: fits are reproducible at any
        # worker count and independent of chunk boundaries; the seeds are
        # kept so warm refits can regrow tree i with its original stream
        seeds = rng.integers(0, 2**63, size=self.n_estimators)
        self._tree_seeds_ = seeds
        self._refit_round_ = 0
        results = self._dispatch_tree_fits(seeds, X, codes_mat, edges, y, codes_T)
        self.estimators_ = [tree for chunk in results for tree in chunk]
        self._finish_fit()
        return self

    def _dispatch_tree_fits(
        self,
        seeds: np.ndarray,
        X: np.ndarray | None,
        codes_mat: np.ndarray | None,
        edges: list[np.ndarray] | None,
        y: np.ndarray,
        codes_T: np.ndarray | None,
    ) -> list[list[DecisionTreeClassifier]]:
        """Grow one tree per seed, fanned out per ``n_jobs``/``backend``.

        Shared by the initial fit and warm refits (which pass only the
        replaced subset of the stored seed vector): each tree depends
        only on its own seed and the data, so results are independent of
        chunking, worker count, and which call site requested the growth.
        """
        tree_params = dict(
            criterion=self.criterion,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            splitter=self.splitter,
            max_bins=self.max_bins,
        )
        n_jobs = 1 if self.n_jobs is None else max(1, self.n_jobs)
        n_chunks = min(n_jobs, len(seeds))
        seed_chunks = [
            chunk for chunk in np.array_split(seeds, n_chunks) if len(chunk)
        ]
        n_classes = len(self.classes_)
        if n_jobs <= 1:
            return [
                _fit_tree_chunk(
                    (tree_params, codes_mat, edges, X, y, n_classes,
                     self.bootstrap, chunk, codes_T)
                )
                for chunk in seed_chunks
            ]
        executor = shared_executor(n_jobs, backend=self.backend)
        if executor.n_workers <= 1:
            # backend="auto" on a one-core mask degrades to serial:
            # fit in-process, the per-tree seed streams are identical
            return [
                _fit_tree_chunk(
                    (tree_params, codes_mat, edges, X, y, n_classes,
                     self.bootstrap, chunk, codes_T)
                )
                for chunk in seed_chunks
            ]
        if executor.backend == "thread":
            # threads share the parent's arrays outright — including
            # the cached feature-major transpose
            jobs = [
                (tree_params, codes_mat, edges, X, y, n_classes,
                 self.bootstrap, chunk, codes_T)
                for chunk in seed_chunks
            ]
            return executor.map(_fit_tree_chunk, jobs)
        return self._fit_chunks_shm(
            executor, tree_params, codes_mat, edges, X, y,
            n_classes, seed_chunks,
        )

    def _fit_chunks_shm(
        self,
        executor,
        tree_params: dict,
        codes_mat: np.ndarray | None,
        edges: list[np.ndarray] | None,
        X: np.ndarray | None,
        y: np.ndarray,
        n_classes: int,
        seed_chunks: list[np.ndarray],
    ) -> list[list[DecisionTreeClassifier]]:
        """Fan seed chunks over process workers, matrices in shared memory.

        The fitter object (tree params, edges, labels, segment handles)
        ships once per pool; every task is a seed chunk. Segments are
        unlinked on exit — including when a worker raises — because this
        process owns them and the ``ExitStack`` closes them.
        """
        with ExitStack() as stack:
            codes_handle = codes_T_handle = X_handle = None
            if codes_mat is not None:
                # hist path: always reached via fit_binned, which stashed
                # the dataset; share codes + the cached transpose once
                sh_codes, sh_codes_T = self.binned_dataset_.share()
                codes_handle = stack.enter_context(sh_codes).handle
                codes_T_handle = stack.enter_context(sh_codes_T).handle
            else:
                X_handle = stack.enter_context(SharedArray(X)).handle
            fitter = _ShmTreeFitter(
                tree_params, edges, y, n_classes, self.bootstrap,
                codes_handle, codes_T_handle, X_handle,
            )
            return executor.map(fitter, seed_chunks)

    def _finish_fit(self) -> None:
        # map tree-local class columns into the forest-wide class list
        self._tree_class_maps = [
            np.searchsorted(self.classes_, tree.classes_)
            for tree in self.estimators_
        ]
        self._stack_trees()

    # ------------------------------------------------------- stacked predict

    def _stack_trees(self) -> None:
        """Concatenate per-tree node arrays into forest-wide flat arrays.

        Child pointers become global node ids; leaves point at themselves
        so the descent loop needs no per-level masking; per-tree leaf
        distributions are scattered into forest-wide class columns so
        prediction is one gather + one sum.
        """
        trees = self.estimators_
        counts = np.array([t.node_count_ for t in trees])
        offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
        total = int(counts.sum())
        self._stk_roots = offsets
        self._stk_feature = np.concatenate([t.tree_feature_ for t in trees])
        self._stk_threshold = np.concatenate([t.tree_threshold_ for t in trees])
        left = np.empty(total, dtype=np.int64)
        right = np.empty(total, dtype=np.int64)
        value = np.zeros((total, len(self.classes_)), dtype=np.float64)
        for t, cmap, off in zip(trees, self._tree_class_maps, offsets):
            local = np.arange(t.node_count_)
            leaf = t.tree_feature_ == _LEAF
            left[off : off + t.node_count_] = (
                np.where(leaf, local, t.tree_left_) + off
            )
            right[off : off + t.node_count_] = (
                np.where(leaf, local, t.tree_right_) + off
            )
            value[off : off + t.node_count_][:, cmap] = t.tree_value_
        self._stk_left = left
        self._stk_right = right
        self._stk_value = value
        self._stk_importances = np.stack(
            [t.feature_importances_ for t in trees]
        )

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Average of per-tree class-frequency estimates over ``classes_``.

        All trees descend simultaneously: ``node`` holds an ``(n_rows,
        n_trees)`` frontier of global node ids, advanced one level per
        iteration; finished rows sit on self-looping leaves.
        """
        X = check_array(X)
        rows = np.arange(X.shape[0])[:, None]
        node = np.broadcast_to(
            self._stk_roots, (X.shape[0], len(self.estimators_))
        ).copy()
        while True:
            feats = self._stk_feature[node]
            if not (feats != _LEAF).any():
                break
            xv = X[rows, np.maximum(feats, 0)]
            node = np.where(
                xv <= self._stk_threshold[node],
                self._stk_left[node],
                self._stk_right[node],
            )
        return self._stk_value[node].sum(axis=1) / len(self.estimators_)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean decrease in impurity, averaged over the trees.

        The standard RF importance; :class:`repro.core.annotation` uses it
        to tell annotators which *features* (hence metrics) drive the
        model, complementing the per-run metric deviations.
        """
        return self._stk_importances.mean(axis=0)
