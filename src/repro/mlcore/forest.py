"""Random forest classifier — ALBADross's production model.

The paper trains a random forest for every headline experiment (Table V,
Figs. 3–8) with the Table IV grid: ``n_estimators`` ∈ {8, 10, 20, 100, 200},
``max_depth`` ∈ {None, 4, 8, 10, 20}, ``criterion`` ∈ {gini, entropy}.
Probability estimates (the average of per-tree leaf class frequencies) feed
the active-learning query strategies directly, so calibration-by-averaging
matters more here than in a plain accuracy setting.
"""

from __future__ import annotations

import numpy as np

from .base import (
    BaseEstimator,
    ClassifierMixin,
    check_array,
    check_random_state,
    check_X_y,
)
from .tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier(BaseEstimator, ClassifierMixin):
    """Bagged ensemble of CART trees with feature subsampling.

    Parameters mirror the Table IV hyperparameter space. Each tree is grown
    on a bootstrap resample of the training set with ``sqrt(n_features)``
    candidate features per split (the scikit-learn default the paper used).

    ``predict_proba`` averages per-tree leaf class frequencies; classes that
    a bootstrap never saw contribute zero probability from that tree, which
    is the same behaviour scikit-learn exhibits via its shared class list.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        criterion: str = "gini",
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = "sqrt",
        bootstrap: bool = True,
        random_state: int | np.random.Generator | None = None,
    ):
        self.n_estimators = n_estimators
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        """Fit ``n_estimators`` trees on bootstrap resamples of ``(X, y)``."""
        if self.n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {self.n_estimators}")
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        self.classes_ = np.unique(y)
        self.n_features_in_ = X.shape[1]
        n = X.shape[0]
        self.estimators_: list[DecisionTreeClassifier] = []
        self._tree_class_maps: list[np.ndarray] = []
        for _ in range(self.n_estimators):
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
                # A bootstrap may miss a class entirely; keep resampling a
                # bounded number of times to preserve per-class probability
                # mass, falling back to the raw resample if unlucky.
                for _retry in range(8):
                    if len(np.unique(y[idx])) == len(self.classes_):
                        break
                    idx = rng.integers(0, n, size=n)
            else:
                idx = np.arange(n)
            tree = DecisionTreeClassifier(
                criterion=self.criterion,
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=rng,
            )
            tree.fit(X[idx], y[idx])
            self.estimators_.append(tree)
            # map tree-local class columns into the forest-wide class list
            self._tree_class_maps.append(
                np.searchsorted(self.classes_, tree.classes_)
            )
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Average of per-tree class-frequency estimates over ``classes_``."""
        X = check_array(X)
        acc = np.zeros((X.shape[0], len(self.classes_)), dtype=np.float64)
        for tree, cmap in zip(self.estimators_, self._tree_class_maps):
            acc[:, cmap] += tree.predict_proba(X)
        acc /= len(self.estimators_)
        return acc

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean decrease in impurity, averaged over the trees.

        The standard RF importance; :class:`repro.core.annotation` uses it
        to tell annotators which *features* (hence metrics) drive the
        model, complementing the per-run metric deviations.
        """
        acc = np.zeros(self.n_features_in_)
        for tree in self.estimators_:
            acc += tree.feature_importances_
        return acc / len(self.estimators_)
