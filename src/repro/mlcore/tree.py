"""CART decision-tree classifier (vectorized, depth-first growth).

This is the base learner behind :class:`repro.mlcore.forest.RandomForestClassifier`,
the model ALBADross uses for every headline result (Table V, Figs. 3–8).
It supports the hyperparameters the paper grid-searches in Table IV
(``max_depth``, ``criterion`` ∈ {gini, entropy}) plus the knobs a forest
needs (``max_features`` feature subsampling, ``min_samples_leaf``).

Implementation notes (per the hpc-parallel guides: vectorize the hot path,
profile-driven):

* Split search is fully vectorized per (node, feature): one argsort, one
  one-hot cumulative sum, and an impurity evaluation over *all* candidate
  thresholds at once — no per-threshold Python loop.
* The tree is stored in flat parallel arrays (``feature``, ``threshold``,
  ``left``, ``right``, ``value``) so prediction is an iterative array walk
  rather than recursive object traversal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .base import (
    BaseEstimator,
    ClassifierMixin,
    check_array,
    check_random_state,
    check_X_y,
    encode_labels,
)

__all__ = ["DecisionTreeClassifier"]

_LEAF = -1


@dataclass
class _TreeBuffers:
    """Growable flat-array representation of a binary tree."""

    feature: list[int] = field(default_factory=list)
    threshold: list[float] = field(default_factory=list)
    left: list[int] = field(default_factory=list)
    right: list[int] = field(default_factory=list)
    value: list[np.ndarray] = field(default_factory=list)

    def add_node(self, class_counts: np.ndarray) -> int:
        """Append a provisional leaf and return its index."""
        self.feature.append(_LEAF)
        self.threshold.append(0.0)
        self.left.append(_LEAF)
        self.right.append(_LEAF)
        self.value.append(class_counts)
        return len(self.feature) - 1


def _impurity(counts: np.ndarray, totals: np.ndarray, criterion: str) -> np.ndarray:
    """Impurity of class-count rows ``counts`` with row sums ``totals``.

    ``counts`` is ``(n, k)``; ``totals`` is ``(n,)`` and may contain zeros
    (empty partitions), which get impurity 0 so they never look attractive.
    """
    with np.errstate(invalid="ignore", divide="ignore"):
        p = counts / totals[:, None]
    p = np.nan_to_num(p)
    if criterion == "gini":
        return 1.0 - np.sum(p * p, axis=1)
    # entropy: 0 * log(0) := 0
    with np.errstate(invalid="ignore", divide="ignore"):
        logp = np.where(p > 0, np.log2(np.where(p > 0, p, 1.0)), 0.0)
    return -np.sum(p * logp, axis=1)


def _impurity_3d(counts: np.ndarray, totals: np.ndarray, criterion: str) -> np.ndarray:
    """Impurity over a (n_cuts, n_features, n_classes) count tensor.

    ``totals`` broadcasts as (n_cuts, 1); returns (n_cuts, n_features).
    The vectorized split search evaluates every (cut, feature) cell at once.
    """
    with np.errstate(invalid="ignore", divide="ignore"):
        p = counts / totals[:, :, None]
    p = np.nan_to_num(p)
    if criterion == "gini":
        return 1.0 - np.sum(p * p, axis=2)
    with np.errstate(invalid="ignore", divide="ignore"):
        logp = np.where(p > 0, np.log2(np.where(p > 0, p, 1.0)), 0.0)
    return -np.sum(p * logp, axis=2)


class DecisionTreeClassifier(BaseEstimator, ClassifierMixin):
    """Binary-split CART classifier.

    Parameters
    ----------
    criterion:
        Split quality measure, ``"gini"`` or ``"entropy"`` (Table IV space).
    max_depth:
        Maximum tree depth; ``None`` grows until leaves are pure or too small.
    min_samples_split:
        Smallest node size still eligible for splitting.
    min_samples_leaf:
        Smallest child size a split may produce.
    max_features:
        Number of features examined per split: ``None`` (all), ``"sqrt"``,
        ``"log2"``, an int, or a float fraction. Forests pass ``"sqrt"``.
    random_state:
        Seed/Generator used for feature subsampling only.
    """

    def __init__(
        self,
        criterion: str = "gini",
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        random_state: int | np.random.Generator | None = None,
    ):
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    # ------------------------------------------------------------------
    def _n_candidate_features(self, n_features: int) -> int:
        mf = self.max_features
        if mf is None:
            return n_features
        if mf == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if mf == "log2":
            return max(1, int(np.log2(n_features)))
        if isinstance(mf, float):
            if not 0.0 < mf <= 1.0:
                raise ValueError(f"max_features fraction out of (0, 1]: {mf}")
            return max(1, int(mf * n_features))
        if isinstance(mf, (int, np.integer)):
            if mf < 1:
                raise ValueError(f"max_features must be >= 1, got {mf}")
            return min(int(mf), n_features)
        raise ValueError(f"unsupported max_features: {mf!r}")

    def _best_split(
        self,
        X: np.ndarray,
        codes: np.ndarray,
        idx: np.ndarray,
        feat_candidates: np.ndarray,
        parent_impurity: float,
    ) -> tuple[int, float, float] | None:
        """Best (feature, threshold, weighted child impurity) for node ``idx``.

        Returns ``None`` when no valid split exists (all candidate features
        constant, or every cut violates ``min_samples_leaf``).
        """
        n = len(idx)
        k = self._n_classes
        y_node = codes[idx]

        # evaluate every candidate feature at once: (n, f) sorted columns,
        # (n-1, f, k) running class counts, one argmin over all cuts
        Xs = X[np.ix_(idx, feat_candidates)]  # (n, f)
        order = np.argsort(Xs, axis=0, kind="stable")
        xs_sorted = np.take_along_axis(Xs, order, axis=0)
        diff = xs_sorted[1:] != xs_sorted[:-1]  # (n-1, f)
        if not diff.any():
            return None
        y_sorted = y_node[order]  # (n, f)
        onehot = (
            y_sorted[:, :, None] == np.arange(k)[None, None, :]
        ).astype(np.float64)  # (n, f, k)
        left_counts = np.cumsum(onehot, axis=0)[:-1]  # (n-1, f, k)
        total_counts = left_counts[-1] + onehot[-1]  # (f, k)
        right_counts = total_counts[None] - left_counts
        n_left = np.arange(1, n, dtype=np.float64)[:, None]  # (n-1, 1)
        n_right = n - n_left
        valid = (
            diff
            & (n_left >= self.min_samples_leaf)
            & (n_right >= self.min_samples_leaf)
        )
        if not valid.any():
            return None
        imp_left = _impurity_3d(left_counts, n_left, self.criterion)
        imp_right = _impurity_3d(right_counts, n_right, self.criterion)
        weighted = (n_left * imp_left + n_right * imp_right) / n  # (n-1, f)
        weighted = np.where(valid, weighted, np.inf)
        flat = int(np.argmin(weighted))
        cut, fpos = np.unravel_index(flat, weighted.shape)
        score = float(weighted[cut, fpos])
        if score >= parent_impurity - 1e-12:  # must strictly improve
            return None
        thr = 0.5 * (xs_sorted[cut, fpos] + xs_sorted[cut + 1, fpos])
        return int(feat_candidates[fpos]), float(thr), score

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        """Grow the tree depth-first on ``(X, y)``."""
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        self.classes_, codes = encode_labels(y)
        self._n_classes = len(self.classes_)
        n_samples, n_features = X.shape
        self.n_features_in_ = n_features
        n_cand = self._n_candidate_features(n_features)

        buf = _TreeBuffers()
        root_counts = np.bincount(codes, minlength=self._n_classes).astype(float)
        root = buf.add_node(root_counts)
        importances = np.zeros(n_features)
        # stack of (node_id, sample indices, depth)
        stack: list[tuple[int, np.ndarray, int]] = [(root, np.arange(n_samples), 0)]

        while stack:
            node_id, idx, depth = stack.pop()
            counts = buf.value[node_id]
            pure = np.count_nonzero(counts) <= 1
            too_deep = self.max_depth is not None and depth >= self.max_depth
            too_small = len(idx) < self.min_samples_split
            if pure or too_deep or too_small:
                continue
            parent_imp = float(
                _impurity(counts[None, :], np.array([counts.sum()]), self.criterion)[0]
            )
            if n_cand < n_features:
                feats = rng.choice(n_features, size=n_cand, replace=False)
            else:
                feats = np.arange(n_features)
            split = self._best_split(X, codes, idx, feats, parent_imp)
            if split is None:
                continue
            j, thr, child_imp = split
            # mean decrease in impurity, weighted by node population
            importances[j] += (len(idx) / n_samples) * (parent_imp - child_imp)
            mask = X[idx, j] <= thr
            left_idx, right_idx = idx[mask], idx[~mask]
            left_counts = np.bincount(codes[left_idx], minlength=self._n_classes)
            right_counts = counts - left_counts
            left_id = buf.add_node(left_counts.astype(float))
            right_id = buf.add_node(right_counts.astype(float))
            buf.feature[node_id] = j
            buf.threshold[node_id] = thr
            buf.left[node_id] = left_id
            buf.right[node_id] = right_id
            stack.append((left_id, left_idx, depth + 1))
            stack.append((right_id, right_idx, depth + 1))

        self.tree_feature_ = np.array(buf.feature, dtype=np.int64)
        self.tree_threshold_ = np.array(buf.threshold, dtype=np.float64)
        self.tree_left_ = np.array(buf.left, dtype=np.int64)
        self.tree_right_ = np.array(buf.right, dtype=np.int64)
        values = np.vstack(buf.value)
        sums = values.sum(axis=1, keepdims=True)
        self.tree_value_ = values / np.where(sums > 0, sums, 1.0)
        self.node_count_ = len(buf.feature)
        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else importances
        )
        return self

    # ------------------------------------------------------------------
    def _leaf_indices(self, X: np.ndarray) -> np.ndarray:
        """Vectorized descent: route every row of ``X`` to its leaf id."""
        node = np.zeros(X.shape[0], dtype=np.int64)
        active = self.tree_feature_[node] != _LEAF
        while active.any():
            idx = np.flatnonzero(active)
            cur = node[idx]
            feats = self.tree_feature_[cur]
            go_left = X[idx, feats] <= self.tree_threshold_[cur]
            node[idx] = np.where(go_left, self.tree_left_[cur], self.tree_right_[cur])
            active[idx] = self.tree_feature_[node[idx]] != _LEAF
        return node

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-frequency distribution of the leaf each sample lands in."""
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, expected {self.n_features_in_}"
            )
        return self.tree_value_[self._leaf_indices(X)]

    @property
    def depth_(self) -> int:
        """Realized tree depth (0 for a stump that never split)."""
        depth = np.zeros(self.node_count_, dtype=np.int64)
        for i in range(self.node_count_):
            if self.tree_feature_[i] != _LEAF:
                depth[self.tree_left_[i]] = depth[i] + 1
                depth[self.tree_right_[i]] = depth[i] + 1
        return int(depth.max()) if self.node_count_ else 0
