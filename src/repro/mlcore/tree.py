"""CART decision-tree classifier (vectorized, depth-first growth).

This is the base learner behind :class:`repro.mlcore.forest.RandomForestClassifier`,
the model ALBADross uses for every headline result (Table V, Figs. 3–8).
It supports the hyperparameters the paper grid-searches in Table IV
(``max_depth``, ``criterion`` ∈ {gini, entropy}) plus the knobs a forest
needs (``max_features`` feature subsampling, ``min_samples_leaf``).

Implementation notes (per the hpc-parallel guides: vectorize the hot path,
profile-driven):

* Two splitters share one growth loop. ``splitter="exact"`` is fully
  vectorized per (node, feature): one argsort, one one-hot cumulative sum,
  and an impurity evaluation over *all* candidate thresholds at once.
  ``splitter="hist"`` quantile-bins the matrix once (``repro.mlcore.binning``)
  and replaces the per-node argsort with a single O(n) bincount over
  (feature, bin, class) cells — the LightGBM trick that makes repeated
  refits cheap; thresholds are emitted as real bin-edge values so a
  hist-trained tree predicts on raw matrices.
* The tree is stored in flat parallel arrays (``feature``, ``threshold``,
  ``left``, ``right``, ``value``) so prediction is an iterative array walk
  rather than recursive object traversal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .base import (
    BaseEstimator,
    ClassifierMixin,
    check_array,
    check_random_state,
    check_X_y,
    encode_labels,
)
from .binning import DEFAULT_MAX_BINS, BinnedDataset, Binner

__all__ = ["DecisionTreeClassifier"]

_LEAF = -1


@dataclass
class _TreeBuffers:
    """Growable flat-array representation of a binary tree."""

    feature: list[int] = field(default_factory=list)
    threshold: list[float] = field(default_factory=list)
    left: list[int] = field(default_factory=list)
    right: list[int] = field(default_factory=list)
    value: list[np.ndarray] = field(default_factory=list)

    def add_node(self, class_counts: np.ndarray) -> int:
        """Append a provisional leaf and return its index."""
        self.feature.append(_LEAF)
        self.threshold.append(0.0)
        self.left.append(_LEAF)
        self.right.append(_LEAF)
        self.value.append(class_counts)
        return len(self.feature) - 1


def _impurity(counts: np.ndarray, totals: np.ndarray, criterion: str) -> np.ndarray:
    """Impurity of class-count rows ``counts`` with row sums ``totals``.

    ``counts`` is ``(n, k)``; ``totals`` is ``(n,)`` and may contain zeros
    (empty partitions), which get impurity 0 so they never look attractive.
    """
    with np.errstate(invalid="ignore", divide="ignore"):
        p = counts / totals[:, None]
    p = np.nan_to_num(p)
    if criterion == "gini":
        return 1.0 - np.sum(p * p, axis=1)
    # entropy: 0 * log(0) := 0
    with np.errstate(invalid="ignore", divide="ignore"):
        logp = np.where(p > 0, np.log2(np.where(p > 0, p, 1.0)), 0.0)
    return -np.sum(p * logp, axis=1)


def _mass_impurity(counts: np.ndarray, totals: np.ndarray, criterion: str) -> np.ndarray:
    """``totals * impurity(counts)`` without forming probability tensors.

    ``counts`` is ``(..., k)`` class counts, ``totals`` the matching
    ``(...)`` row sums (zeros allowed — empty partitions score 0). The
    algebra folds the normalization into the count tensors, which halves
    the number of full-tensor passes in the split-search hot loop:

    * gini:    n·(1 − Σp²)      = n − Σc²/n
    * entropy: n·(−Σp·log2 p)  = n·log2 n − Σc·log2 c
    """
    with np.errstate(invalid="ignore", divide="ignore"):
        if criterion == "gini":
            out = totals - np.einsum("...k,...k->...", counts, counts) / totals
        else:
            c_logc = np.where(counts > 0, counts, 1.0)
            c_logc = np.einsum("...k,...k->...", counts, np.log2(c_logc))
            out = totals * np.log2(np.where(totals > 0, totals, 1.0)) - c_logc
    return np.where(totals > 0, out, 0.0)


class DecisionTreeClassifier(BaseEstimator, ClassifierMixin):
    """Binary-split CART classifier.

    Parameters
    ----------
    criterion:
        Split quality measure, ``"gini"`` or ``"entropy"`` (Table IV space).
    max_depth:
        Maximum tree depth; ``None`` grows until leaves are pure or too small.
    min_samples_split:
        Smallest node size still eligible for splitting.
    min_samples_leaf:
        Smallest child size a split may produce.
    max_features:
        Number of features examined per split: ``None`` (all), ``"sqrt"``,
        ``"log2"``, an int, or a float fraction. Forests pass ``"sqrt"``.
    splitter:
        ``"exact"`` (argsort every candidate feature per node — the
        reference path, default for seeded reproducibility) or ``"hist"``
        (bin once, O(n) histogram split search per node).
    max_bins:
        Bins per feature for the hist splitter (2..256; uint8 codes).
    random_state:
        Seed/Generator used for feature subsampling only.
    """

    def __init__(
        self,
        criterion: str = "gini",
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        splitter: str = "exact",
        max_bins: int = DEFAULT_MAX_BINS,
        random_state: int | np.random.Generator | None = None,
    ):
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.splitter = splitter
        self.max_bins = max_bins
        self.random_state = random_state

    # ------------------------------------------------------------------
    def _n_candidate_features(self, n_features: int) -> int:
        mf = self.max_features
        if mf is None:
            return n_features
        if mf == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if mf == "log2":
            return max(1, int(np.log2(n_features)))
        if isinstance(mf, float):
            if not 0.0 < mf <= 1.0:
                raise ValueError(f"max_features fraction out of (0, 1]: {mf}")
            return max(1, int(mf * n_features))
        if isinstance(mf, (int, np.integer)):
            if mf < 1:
                raise ValueError(f"max_features must be >= 1, got {mf}")
            return min(int(mf), n_features)
        raise ValueError(f"unsupported max_features: {mf!r}")

    def _best_split(
        self,
        Xs: np.ndarray,
        y_node: np.ndarray,
        parent_impurity: float,
    ) -> tuple[int, float, float, np.ndarray] | None:
        """Best (candidate position, threshold, child impurity, left mask).

        ``Xs`` is the node's already-gathered ``(n, f)`` candidate-feature
        block and ``y_node`` its class codes. Evaluates every candidate
        feature at once: one argsort, one one-hot running count, one argmin
        over all cuts. Returns ``None`` when no valid split exists (all
        candidate features constant, or every cut violates
        ``min_samples_leaf``).
        """
        n, _ = Xs.shape
        k = self._n_classes
        order = np.argsort(Xs, axis=0, kind="stable")
        xs_sorted = np.take_along_axis(Xs, order, axis=0)
        diff = xs_sorted[1:] != xs_sorted[:-1]  # (n-1, f)
        if not diff.any():
            return None
        y_sorted = y_node[order]  # (n, f)
        onehot = (
            y_sorted[:, :, None] == np.arange(k)[None, None, :]
        ).astype(np.float64)  # (n, f, k)
        left_counts = np.cumsum(onehot, axis=0)[:-1]  # (n-1, f, k)
        total_counts = left_counts[-1] + onehot[-1]  # (f, k)
        right_counts = total_counts[None] - left_counts
        n_left = np.arange(1, n, dtype=np.float64)[:, None]  # (n-1, 1)
        n_right = n - n_left
        valid = (
            diff
            & (n_left >= self.min_samples_leaf)
            & (n_right >= self.min_samples_leaf)
        )
        if not valid.any():
            return None
        weighted = (
            _mass_impurity(left_counts, np.broadcast_to(n_left, diff.shape), self.criterion)
            + _mass_impurity(right_counts, np.broadcast_to(n_right, diff.shape), self.criterion)
        ) / n  # (n-1, f)
        weighted = np.where(valid, weighted, np.inf)
        flat = int(np.argmin(weighted))
        cut, fpos = np.unravel_index(flat, weighted.shape)
        score = float(weighted[cut, fpos])
        if score >= parent_impurity - 1e-12:  # must strictly improve
            return None
        thr = 0.5 * (xs_sorted[cut, fpos] + xs_sorted[cut + 1, fpos])
        return int(fpos), float(thr), score, Xs[:, fpos] <= thr

    def _best_splits_hist(
        self,
        sub: np.ndarray,
        y_cat: np.ndarray,
        sizes: np.ndarray,
        node_counts: np.ndarray,
        parent_imps: np.ndarray,
    ):
        """Segmented histogram split search over many nodes at once.

        The LightGBM kernel, batched: one flattened bincount builds the
        (node, feature, bin, class) count tensor for a whole level's worth
        of large nodes in O(R · f), and one cumulative sum over bins scores
        every candidate cut of every node — no sorting anywhere. Interface
        matches :meth:`_best_splits_small` (stacked code blocks in, per-node
        winners out); ``cut`` comes back as a *bin* index the caller maps to
        the real-valued edge threshold.
        """
        R, f = sub.shape
        S = len(sizes)
        k = self._n_classes
        msl = max(1, self.min_samples_leaf)
        starts = np.zeros(S, dtype=np.int64)
        np.cumsum(sizes[:-1], out=starts[1:])
        slot = np.repeat(np.arange(S, dtype=np.int64), sizes)
        nb = int(sub.max()) + 1
        if nb < 2:  # every candidate feature constant in every node
            return (np.zeros(S, dtype=bool),) + (None,) * 5
        cells = S * f * nb * k
        # int32 index arithmetic halves the bandwidth of the three passes
        # below; bincount re-casts to intp internally either way
        idt = np.int32 if cells < 2**31 else np.int64
        flat = (
            ((slot.astype(idt) * f)[:, None] + np.arange(f, dtype=idt)) * (nb * k)
            + sub.astype(idt) * k
            + y_cat.astype(idt)[:, None]
        )
        hist = np.bincount(flat.ravel(), minlength=cells).reshape(S, f, nb, k)
        if R < 40_000:  # sums of squared counts stay below int32 overflow
            hist = hist.astype(np.int32)
        left = np.cumsum(hist, axis=2)[:, :, :-1, :]  # (S, f, nb-1, k)
        n_left = left.sum(axis=3)  # (S, f, nb-1)
        n_node = sizes[:, None, None]
        n_right = n_node - n_left
        valid = (n_left >= msl) & (n_right >= msl)
        counts = node_counts.astype(hist.dtype)
        with np.errstate(invalid="ignore", divide="ignore"):
            if self.criterion == "gini":
                # right-side Σc² expands as Σt² − 2Σt·c_left + Σc_left², so
                # the right-count tensor never has to be materialized; the
                # integer sums are exact, and the float ops below mirror
                # the exact splitter's operation order bit-for-bit so tied
                # candidates score identically on both paths
                e_l = np.einsum("sfbk,sfbk->sfb", left, left)
                d = np.einsum("sk,sfbk->sfb", counts, left)
                t2 = np.einsum("sk,sk->s", counts, counts)[:, None, None]
                mass_l = n_left - e_l / n_left
                mass_r = n_right - (t2 - 2 * d + e_l) / n_right
                weighted = (mass_l + mass_r) / n_node
            else:
                right = counts[:, None, None, :] - left
                weighted = (
                    _mass_impurity(left, n_left, self.criterion)
                    + _mass_impurity(right, n_right, self.criterion)
                ) / n_node
        weighted = np.where(valid, weighted, np.inf)
        wflat = weighted.reshape(S, -1)
        best = np.argmin(wflat, axis=1)
        score = wflat[np.arange(S), best]
        if np.count_nonzero(wflat == score[:, None]) > S:
            # among tied cells pick the smallest (n_left, feature, bin) —
            # the candidate the exact splitter's C-order (cut row, feature)
            # argmin lands on, so hist and exact agree even under ties
            tiekey = (
                n_left.astype(np.int64) * f
                + np.arange(f, dtype=np.int64)[:, None]
            ) * (nb - 1) + np.arange(nb - 1, dtype=np.int64)
            tiekey = np.where(
                weighted == score[:, None, None],
                tiekey,
                np.iinfo(np.int64).max,
            )
            best = np.argmin(tiekey.reshape(S, -1), axis=1)
        fpos, cut = np.unravel_index(best, (f, nb - 1))
        ok = np.isfinite(score) & (score < parent_imps - 1e-12)
        lc = left[np.arange(S), fpos, cut]  # (S, k)
        col = sub[np.arange(R), fpos[slot]]
        left_mask = col <= cut[slot]
        return ok, fpos, cut, score, lc, left_mask

    def _best_splits_small(
        self,
        sub: np.ndarray,
        y_cat: np.ndarray,
        sizes: np.ndarray,
        node_counts: np.ndarray,
        parent_imps: np.ndarray,
    ):
        """Segmented split search over *many* small nodes at once.

        ``sub`` stacks the gathered ``(n_i, f)`` code blocks of ``S``
        nodes row-wise (segment ``i`` spans ``sizes[i]`` rows); ``y_cat``
        holds the matching class codes, ``node_counts`` the ``(S, k)``
        per-node class totals, ``parent_imps`` the ``(S,)`` parent
        impurities. A composite ``slot * 256 + code`` key makes one radix
        argsort order every segment independently, so the whole level's
        small nodes cost one set of tensor passes instead of ~20 numpy
        calls each. Per node the result is bit-identical to running the
        sort-based search on that node alone (same C-order tie-break).

        Returns ``(ok, fpos, cut_code, score, left_counts, left_mask)``
        where ``left_mask`` is in stacked original row order and nodes
        with ``ok[i] == False`` found no improving split.
        """
        R, f = sub.shape
        S = len(sizes)
        k = self._n_classes
        msl = max(1, self.min_samples_leaf)
        starts = np.zeros(S, dtype=np.int64)
        np.cumsum(sizes[:-1], out=starts[1:])
        slot = np.repeat(np.arange(S, dtype=np.int32), sizes)  # (R,)
        key = slot[:, None] * np.int32(256) + sub  # (R, f) int32
        order = np.argsort(key, axis=0, kind="stable")
        key_sorted = np.take_along_axis(key, order, axis=0)
        y_sorted = y_cat.astype(np.uint8)[order]  # (R, f), k <= 256
        cs = np.cumsum(
            y_sorted[:, :, None] == np.arange(k, dtype=np.uint8),
            axis=0,
            dtype=np.int32,
        )  # (R, f, k) running class counts across all segments
        # subtract each segment's prefix so counts restart at its first row
        base = np.zeros((S, f, k), dtype=np.int32)
        if S > 1:
            base[1:] = cs[starts[1:] - 1]
        left_counts = cs - base[slot]  # (R, f, k)
        n_left = (np.arange(R, dtype=np.int64) - starts[slot] + 1)[:, None]
        n_node = sizes[slot][:, None]
        n_right = n_node - n_left
        # a cut after sorted row r is real only if row r+1 holds a different
        # code *in the same segment*; segment-final rows die on n_right < 1
        diff = np.zeros((R, f), dtype=bool)
        diff[:-1] = key_sorted[1:] != key_sorted[:-1]
        valid = diff & (n_left >= msl) & (n_right >= msl)
        tot_rows = node_counts[slot]  # (R, k)
        with np.errstate(invalid="ignore", divide="ignore"):
            if self.criterion == "gini":
                # same Σc_right² expansion as the histogram kernel: one
                # einsum per side instead of a full right-count tensor,
                # float ops in the exact splitter's order for tie parity
                e_l = np.einsum("rfk,rfk->rf", left_counts, left_counts)
                d = np.einsum("rk,rfk->rf", tot_rows, left_counts)
                t2 = np.einsum("rk,rk->r", tot_rows, tot_rows)[:, None]
                mass_l = n_left - e_l / n_left
                mass_r = n_right - (t2 - 2 * d + e_l) / n_right
                weighted = (mass_l + mass_r) / n_node  # (R, f)
            else:
                right_counts = tot_rows[:, None, :] - left_counts
                weighted = (
                    _mass_impurity(left_counts, n_left, self.criterion)
                    + _mass_impurity(right_counts, n_right, self.criterion)
                ) / n_node
        weighted = np.where(valid, weighted, np.inf)
        rowmin = weighted.min(axis=1)  # (R,)
        segmin = np.minimum.reduceat(rowmin, starts)  # (S,)
        ok = np.isfinite(segmin) & (segmin < parent_imps - 1e-12)
        # first row attaining each segment's min, then first feature at that
        # row — matches the per-node C-order argmin tie-break exactly
        hit_rows = np.flatnonzero(rowmin == segmin[slot])
        r_star = hit_rows[np.unique(slot[hit_rows], return_index=True)[1]]
        fpos = np.argmin(weighted[r_star], axis=1)  # (S,)
        cut_code = key_sorted[r_star, fpos] - np.arange(S, dtype=np.int32) * 256
        col = sub[np.arange(R), fpos[slot]]  # chosen feature column per row
        left_mask = col <= cut_code[slot]
        lc = left_counts[r_star, fpos]  # (S, k)
        return ok, fpos, cut_code, segmin, lc, left_mask

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        """Grow the tree depth-first on ``(X, y)``."""
        X, y = check_X_y(X, y)
        if self.splitter not in ("exact", "hist"):
            raise ValueError(
                f"splitter must be 'exact' or 'hist', got {self.splitter!r}"
            )
        if self.splitter == "hist":
            binner = Binner(self.max_bins)
            return self._fit_binned(binner.fit_transform(X), binner.bin_edges_, y)
        return self._fit_arrays(X, y)

    def fit_binned(
        self,
        binned: BinnedDataset,
        y: np.ndarray,
        sample_indices: np.ndarray | None = None,
    ) -> "DecisionTreeClassifier":
        """Grow from a pre-binned dataset (shared across a forest / refits).

        ``sample_indices`` selects the training rows (duplicates allowed —
        a forest passes its bootstrap resample here) without ever copying
        the shared code matrix.
        """
        y = np.asarray(y)
        if len(y) != binned.n_samples:
            raise ValueError(
                f"binned has {binned.n_samples} samples but y has {len(y)}"
            )
        return self._fit_binned(
            binned.codes, binned.bin_edges_, y, sample_indices, binned.codes_T
        )

    def _fit_arrays(
        self,
        X: np.ndarray,
        y: np.ndarray,
    ) -> "DecisionTreeClassifier":
        """Exact-splitter growth loop (depth-first, reference path)."""
        rng = check_random_state(self.random_state)
        self.classes_, codes = encode_labels(y)
        self._n_classes = len(self.classes_)
        n_samples, n_features = X.shape
        self.n_features_in_ = n_features
        n_cand = self._n_candidate_features(n_features)

        buf = _TreeBuffers()
        root_counts = np.bincount(codes, minlength=self._n_classes).astype(float)
        root = buf.add_node(root_counts)
        importances = np.zeros(n_features)
        # stack of (node_id, sample indices, depth)
        stack: list[tuple[int, np.ndarray, int]] = [(root, np.arange(n_samples), 0)]

        while stack:
            node_id, idx, depth = stack.pop()
            counts = buf.value[node_id]
            pure = np.count_nonzero(counts) <= 1
            too_deep = self.max_depth is not None and depth >= self.max_depth
            too_small = len(idx) < self.min_samples_split
            if pure or too_deep or too_small:
                continue
            parent_imp = float(
                _impurity(counts[None, :], np.array([counts.sum()]), self.criterion)[0]
            )
            if n_cand < n_features:
                feats = rng.choice(n_features, size=n_cand, replace=False)
            else:
                feats = np.arange(n_features)
            sub = X[np.ix_(idx, feats)]
            y_node = codes[idx]
            split = self._best_split(sub, y_node, parent_imp)
            if split is None:
                continue
            fpos, thr, child_imp, mask = split
            j = int(feats[fpos])
            # mean decrease in impurity, weighted by node population
            importances[j] += (len(idx) / n_samples) * (parent_imp - child_imp)
            left_idx, right_idx = idx[mask], idx[~mask]
            left_counts = np.bincount(codes[left_idx], minlength=self._n_classes)
            right_counts = counts - left_counts
            left_id = buf.add_node(left_counts.astype(float))
            right_id = buf.add_node(right_counts.astype(float))
            buf.feature[node_id] = j
            buf.threshold[node_id] = thr
            buf.left[node_id] = left_id
            buf.right[node_id] = right_id
            stack.append((left_id, left_idx, depth + 1))
            stack.append((right_id, right_idx, depth + 1))

        return self._finalize(buf, importances)

    def _fit_binned(
        self,
        X: np.ndarray,
        edges: list[np.ndarray],
        y: np.ndarray,
        sample_indices: np.ndarray | None = None,
        codes_T: np.ndarray | None = None,
    ) -> "DecisionTreeClassifier":
        """Breadth-first growth over bin codes (the hist hot path).

        Level-wise batching: nodes still wider than ``max_bins`` run the
        O(n) histogram kernel individually (there are at most a handful
        per level); every *small* node on the level is folded into one
        segmented sort-based search (:meth:`_best_splits_small`). Child
        class counts fall out of the split search and child impurities
        are evaluated for the whole next level in one call, so per-node
        Python work shrinks to partitioning its index array.
        """
        rng = check_random_state(self.random_state)
        n_features = X.shape[1]
        if sample_indices is None:
            root_idx = np.arange(X.shape[0])
            self.classes_, codes = encode_labels(y)
        else:
            root_idx = np.asarray(sample_indices)
            self.classes_, all_codes = encode_labels(y)
            # class list comes from the resample, matching fit(X[idx], y[idx])
            seen = np.unique(all_codes[root_idx])
            self.classes_ = self.classes_[seen]
            codes = np.searchsorted(seen, all_codes)  # garbage for unseen: ok,
            # unseen classes never appear in root_idx so never get counted
        self._n_classes = len(self.classes_)
        n_samples = len(root_idx)
        self.n_features_in_ = n_features
        n_cand = self._n_candidate_features(n_features)
        k = self._n_classes

        buf = _TreeBuffers()
        root_counts = np.bincount(codes[root_idx], minlength=k).astype(float)
        root = buf.add_node(root_counts)
        importances = np.zeros(n_features)
        root_imp = float(
            _impurity(
                root_counts[None, :], np.array([root_counts.sum()]), self.criterion
            )[0]
        )
        # (node_id, row indices, class counts, impurity)
        level = [(root, root_idx, root_counts, root_imp)]
        depth = 0
        # bound the segmented kernel's working set (rows · f · k int32 cells)
        rows_cap = max(int(self.max_bins), 8_000_000 // max(1, n_cand * k))

        while level:
            if self.max_depth is not None and depth >= self.max_depth:
                break
            splittable = [
                node
                for node in level
                if np.count_nonzero(node[2]) > 1
                and len(node[1]) >= self.min_samples_split
            ]
            if not splittable:
                break
            if n_cand < n_features:
                featmat = np.stack(
                    [
                        rng.choice(n_features, size=n_cand, replace=False)
                        for _ in splittable
                    ]
                )
            else:
                featmat = np.broadcast_to(
                    np.arange(n_features), (len(splittable), n_features)
                )
            # (level position, fpos, bin cut, score, left counts, left mask)
            found: list[tuple] = []
            big: list[int] = []
            small: list[int] = []
            for pos, node in enumerate(splittable):
                (small if len(node[1]) <= self.max_bins else big).append(pos)
            # each kernel call's working set is ~cost · n_cand · k int32
            # cells: a small node costs its row count, a histogram node a
            # full bin axis — chunk so either stays cache-resident
            for positions, kernel, cost in (
                (big, self._best_splits_hist, lambda p: self.max_bins),
                (small, self._best_splits_small, lambda p: len(splittable[p][1])),
            ):
                at = 0
                while at < len(positions):
                    chunk = [positions[at]]
                    used = cost(positions[at])
                    at += 1
                    while (
                        at < len(positions)
                        and used + cost(positions[at]) <= rows_cap
                    ):
                        used += cost(positions[at])
                        chunk.append(positions[at])
                        at += 1
                    idx_cat = np.concatenate([splittable[p][1] for p in chunk])
                    sizes = np.array(
                        [len(splittable[p][1]) for p in chunk], dtype=np.int64
                    )
                    slot = np.repeat(np.arange(len(chunk)), sizes)
                    if kernel is self._best_splits_hist:
                        # row-major X scatters one cache line per gathered
                        # cell; routing big nodes through the transposed
                        # copy keeps each node's candidate block (n_cand
                        # contiguous rows of X.T) cache-resident
                        if codes_T is None:
                            codes_T = np.ascontiguousarray(X.T)
                        sub = np.vstack(
                            [
                                codes_T[featmat[p]][:, splittable[p][1]].T
                                for p in chunk
                            ]
                        )
                    else:
                        sub = X[idx_cat[:, None], featmat[chunk][slot]]
                    counts_chunk = np.stack(
                        [splittable[p][2] for p in chunk]
                    ).astype(np.int32)
                    imps_chunk = np.array([splittable[p][3] for p in chunk])
                    ok, fpos_a, cut_a, score_a, lc_a, mask_a = kernel(
                        sub, codes[idx_cat], sizes, counts_chunk, imps_chunk
                    )
                    if not ok.any():
                        continue
                    bounds = np.concatenate([[0], np.cumsum(sizes)])
                    for ci, p in enumerate(chunk):
                        if ok[ci]:
                            found.append(
                                (
                                    p,
                                    int(fpos_a[ci]),
                                    int(cut_a[ci]),
                                    float(score_a[ci]),
                                    lc_a[ci],
                                    mask_a[bounds[ci] : bounds[ci + 1]],
                                )
                            )
            if not found:
                break
            found.sort(key=lambda t: t[0])  # BFS ids independent of kernel path
            m = len(found)
            pos_a = np.array([t[0] for t in found])
            fpos_a = np.array([t[1] for t in found])
            score_a = np.array([t[3] for t in found])
            j_a = featmat[pos_a, fpos_a]
            sz_a = np.array([len(splittable[p][1]) for p in pos_a], dtype=float)
            imp_a = np.array([splittable[p][3] for p in pos_a])
            # accumulation order matches the per-split loop: found is in
            # level order, and add.at applies repeated indices in order
            np.add.at(importances, j_a, (sz_a / n_samples) * (imp_a - score_a))
            lc_mat = np.stack([t[4] for t in found]).astype(float)
            counts_mat = np.stack([splittable[p][2] for p in pos_a])
            cc = np.empty((2 * m, k))
            cc[0::2] = lc_mat
            cc[1::2] = counts_mat - lc_mat
            first_child = len(buf.feature)
            buf.feature.extend([_LEAF] * (2 * m))
            buf.threshold.extend([0.0] * (2 * m))
            buf.left.extend([_LEAF] * (2 * m))
            buf.right.extend([_LEAF] * (2 * m))
            buf.value.extend(cc)
            imps = _impurity(cc, cc.sum(axis=1), self.criterion)
            level = []
            for i, (pos, _fpos, cut, _score, _lc, mask) in enumerate(found):
                node_id, idx = splittable[pos][0], splittable[pos][1]
                j = int(j_a[i])
                left_id = first_child + 2 * i
                buf.feature[node_id] = j
                buf.threshold[node_id] = float(edges[j][cut])
                buf.left[node_id] = left_id
                buf.right[node_id] = left_id + 1
                level.append((left_id, idx[mask], cc[2 * i], float(imps[2 * i])))
                level.append(
                    (left_id + 1, idx[~mask], cc[2 * i + 1], float(imps[2 * i + 1]))
                )
            depth += 1

        return self._finalize(buf, importances)

    def _finalize(
        self, buf: _TreeBuffers, importances: np.ndarray
    ) -> "DecisionTreeClassifier":
        """Freeze growth buffers into the flat prediction arrays."""
        self.tree_feature_ = np.array(buf.feature, dtype=np.int64)
        self.tree_threshold_ = np.array(buf.threshold, dtype=np.float64)
        self.tree_left_ = np.array(buf.left, dtype=np.int64)
        self.tree_right_ = np.array(buf.right, dtype=np.int64)
        values = np.vstack(buf.value)
        sums = values.sum(axis=1, keepdims=True)
        # raw class counts kept alongside the normalized frequencies so
        # warm refits can fold new rows into leaves (absorb_labeled)
        self.tree_count_ = values.astype(np.float64)
        self.tree_value_ = values / np.where(sums > 0, sums, 1.0)
        self.node_count_ = len(buf.feature)
        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else importances
        )
        return self

    # ------------------------------------------------------------------
    def absorb_labeled(self, X_rows: np.ndarray, y_labels: np.ndarray) -> np.ndarray:
        """Fold labeled rows into leaf statistics without regrowing.

        The warm-refit fast path for *kept* trees: each row descends to
        its leaf (the split structure is untouched) and increments that
        leaf's class count; the leaf's predicted distribution is
        renormalized from the updated counts. Labels outside this tree's
        bootstrap-time class list extend it in place (the new class gets
        a zero column everywhere else). Returns the unique leaf ids whose
        distributions changed, so a pool scorer can patch exactly those
        contributions.

        Internal-node counts are left stale on purpose — only leaf rows
        of ``tree_value_`` feed prediction, and importances are frozen at
        grow time (documented in docs/mlcore.md).
        """
        X_rows = np.asarray(X_rows, dtype=np.float64)
        if X_rows.ndim == 1:
            X_rows = X_rows[None, :]
        y_labels = np.atleast_1d(np.asarray(y_labels))
        if len(y_labels) != len(X_rows):
            raise ValueError(
                f"{len(X_rows)} rows but {len(y_labels)} labels"
            )
        merged = np.unique(np.concatenate([self.classes_, y_labels]))
        if len(merged) != len(self.classes_):
            old_cols = np.searchsorted(merged, self.classes_)
            counts = np.zeros((self.node_count_, len(merged)), dtype=np.float64)
            counts[:, old_cols] = self.tree_count_
            self.tree_count_ = counts
            self.classes_ = merged
            self._n_classes = len(merged)
        y_local = np.searchsorted(self.classes_, y_labels)
        leaves = self._leaf_indices(X_rows)
        np.add.at(self.tree_count_, (leaves, y_local), 1.0)
        touched = np.unique(leaves)
        counts = self.tree_count_
        sums = counts.sum(axis=1, keepdims=True)
        if len(merged) != self.tree_value_.shape[1]:
            # class set grew: every row needs the widened column layout
            self.tree_value_ = counts / np.where(sums > 0, sums, 1.0)
        else:
            self.tree_value_[touched] = counts[touched] / np.where(
                sums[touched] > 0, sums[touched], 1.0
            )
        return touched

    # ------------------------------------------------------------------
    def _leaf_indices(self, X: np.ndarray) -> np.ndarray:
        """Vectorized descent: route every row of ``X`` to its leaf id."""
        node = np.zeros(X.shape[0], dtype=np.int64)
        active = self.tree_feature_[node] != _LEAF
        while active.any():
            idx = np.flatnonzero(active)
            cur = node[idx]
            feats = self.tree_feature_[cur]
            go_left = X[idx, feats] <= self.tree_threshold_[cur]
            node[idx] = np.where(go_left, self.tree_left_[cur], self.tree_right_[cur])
            active[idx] = self.tree_feature_[node[idx]] != _LEAF
        return node

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-frequency distribution of the leaf each sample lands in."""
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, expected {self.n_features_in_}"
            )
        return self.tree_value_[self._leaf_indices(X)]

    @property
    def depth_(self) -> int:
        """Realized tree depth (0 for a stump that never split).

        Level-order array sweep: each iteration expands the whole
        frontier of internal nodes into their children with three array
        gathers, so the cost is O(depth) numpy calls instead of an
        O(node_count) Python loop per access (monitors and stats read
        this per tree per round).
        """
        if not self.node_count_:
            return 0
        internal = self.tree_feature_ != _LEAF
        frontier = np.array([0], dtype=np.int64)
        depth = 0
        while True:
            frontier = frontier[internal[frontier]]
            if not frontier.size:
                return depth
            frontier = np.concatenate(
                [self.tree_left_[frontier], self.tree_right_[frontier]]
            )
            depth += 1
