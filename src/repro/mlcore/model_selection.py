"""Stratified splitting, K-fold CV, and grid search (paper Sec. IV-E2).

The paper repeats its train/test split five times with *stratified* sampling
(class proportions preserved), tunes hyperparameters by grid search in
5-fold stratified CV on the active-learning training dataset only (test set
withheld), and reports "Max Score 5-fold CV" columns in Table V. These are
the exact utilities implemented here.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from .base import BaseEstimator, check_random_state, check_X_y, clone
from .metrics import f1_score

__all__ = [
    "train_test_split",
    "StratifiedKFold",
    "GridSearchCV",
    "cross_val_score",
    "learning_curve",
]


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    *arrays: np.ndarray,
    test_size: float = 0.25,
    stratify: bool = True,
    random_state: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, ...]:
    """Split into train/test, stratified on ``y`` by default.

    Returns ``X_train, X_test, y_train, y_test`` followed by train/test
    pairs for each extra array (metadata rows travel with their samples).
    Stratification keeps at least one sample of every class on each side
    when the class has two or more members.
    """
    if not 0.0 < test_size < 1.0:
        raise ValueError(f"test_size must be in (0, 1), got {test_size}")
    X = np.asarray(X)
    y = np.asarray(y)
    if len(X) != len(y):
        raise ValueError("X and y length mismatch")
    for arr in arrays:
        if len(arr) != len(y):
            raise ValueError("extra array length mismatch")
    rng = check_random_state(random_state)
    n = len(y)
    test_mask = np.zeros(n, dtype=bool)
    if stratify:
        for cls in np.unique(y):
            members = np.flatnonzero(y == cls)
            rng.shuffle(members)
            n_test = int(round(test_size * len(members)))
            if len(members) >= 2:
                n_test = min(max(n_test, 1), len(members) - 1)
            test_mask[members[:n_test]] = True
    else:
        idx = rng.permutation(n)
        test_mask[idx[: int(round(test_size * n))]] = True
    out: list[np.ndarray] = []
    for arr in (X, y, *arrays):
        arr = np.asarray(arr)
        out.append(arr[~test_mask])
        out.append(arr[test_mask])
    return tuple(out)


class StratifiedKFold:
    """K-fold splitter preserving class proportions in every fold."""

    def __init__(
        self,
        n_splits: int = 5,
        shuffle: bool = True,
        random_state: int | np.random.Generator | None = None,
    ):
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X: np.ndarray, y: np.ndarray) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_idx, test_idx)`` pairs.

        Classes with fewer members than ``n_splits`` are still distributed
        round-robin, so some folds simply lack that class in their test part
        (scikit-learn warns in this case; we accept it silently because the
        paper's one-sample-per-pair seed sets hit it constantly).
        """
        y = np.asarray(y)
        rng = check_random_state(self.random_state)
        n = len(y)
        fold_of = np.empty(n, dtype=np.int64)
        for cls in np.unique(y):
            members = np.flatnonzero(y == cls)
            if self.shuffle:
                rng.shuffle(members)
            fold_of[members] = np.arange(len(members)) % self.n_splits
        for f in range(self.n_splits):
            test_idx = np.flatnonzero(fold_of == f)
            train_idx = np.flatnonzero(fold_of != f)
            if len(test_idx) == 0 or len(train_idx) == 0:
                continue
            yield train_idx, test_idx


def _macro_f1_scorer(model: Any, X: np.ndarray, y: np.ndarray) -> float:
    return f1_score(y, model.predict(X), average="macro")


def cross_val_score(
    estimator: BaseEstimator,
    X: np.ndarray,
    y: np.ndarray,
    cv: StratifiedKFold | int = 5,
    scorer: Callable[[Any, np.ndarray, np.ndarray], float] = _macro_f1_scorer,
) -> np.ndarray:
    """Per-fold scores of a fresh clone trained on each CV training part."""
    X, y = check_X_y(X, y)
    if isinstance(cv, int):
        cv = StratifiedKFold(n_splits=cv, random_state=0)
    scores = []
    for train_idx, test_idx in cv.split(X, y):
        model = clone(estimator).fit(X[train_idx], y[train_idx])
        scores.append(scorer(model, X[test_idx], y[test_idx]))
    return np.array(scores)


def learning_curve(
    estimator: BaseEstimator,
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
    train_sizes: Sequence[int],
    n_repeats: int = 3,
    scorer: Callable[[Any, np.ndarray, np.ndarray], float] = _macro_f1_scorer,
    random_state: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Supervised label-efficiency curve: score vs. training-set size.

    For each size, draws ``n_repeats`` stratified subsets of the training
    data, fits a fresh clone on each, and scores it on the fixed test set.
    This is the supervised counterpart to an active-learning curve — the
    paper's "28× fewer labeled samples" claim is exactly the horizontal
    gap between the two at the target score.

    Returns ``(sizes, mean_scores, std_scores)``; sizes are clipped to the
    available training data.
    """
    X_train, y_train = check_X_y(X_train, y_train)
    rng = check_random_state(random_state)
    if n_repeats < 1:
        raise ValueError(f"n_repeats must be >= 1, got {n_repeats}")
    sizes = sorted({min(int(s), len(y_train)) for s in train_sizes})
    if not sizes or sizes[0] < 2:
        raise ValueError("train_sizes must contain values >= 2")
    classes = np.unique(y_train)
    means, stds = [], []
    for size in sizes:
        scores = []
        for _ in range(n_repeats):
            # stratified subset: proportional per class, at least 1 each
            idx: list[int] = []
            for cls in classes:
                members = np.flatnonzero(y_train == cls)
                take = max(1, int(round(size * len(members) / len(y_train))))
                take = min(take, len(members))
                idx.extend(rng.choice(members, size=take, replace=False))
            idx = np.array(idx)
            model = clone(estimator).fit(X_train[idx], y_train[idx])
            scores.append(scorer(model, X_test, y_test))
        means.append(float(np.mean(scores)))
        stds.append(float(np.std(scores)))
    return np.array(sizes), np.array(means), np.array(stds)


@dataclass
class GridSearchResult:
    """One grid point's parameters and CV score summary."""

    params: dict[str, Any]
    mean_score: float
    std_score: float
    fold_scores: tuple[float, ...]


class GridSearchCV(BaseEstimator):
    """Exhaustive grid search with stratified K-fold CV (paper Table IV).

    Parameters
    ----------
    estimator:
        Prototype estimator; clones are fit at every grid point × fold.
    param_grid:
        Mapping of parameter name → candidate values.
    cv:
        Fold count or a :class:`StratifiedKFold`.
    scorer:
        Callable ``(model, X, y) -> float``; defaults to macro F1, the
        paper's reported metric.
    refit:
        If true, fit ``best_estimator_`` on the full data with the winning
        parameters.
    """

    def __init__(
        self,
        estimator: BaseEstimator,
        param_grid: dict[str, Sequence[Any]],
        cv: StratifiedKFold | int = 5,
        scorer: Callable[[Any, np.ndarray, np.ndarray], float] = _macro_f1_scorer,
        refit: bool = True,
    ):
        self.estimator = estimator
        self.param_grid = param_grid
        self.cv = cv
        self.scorer = scorer
        self.refit = refit

    def _grid_points(self) -> Iterator[dict[str, Any]]:
        names = list(self.param_grid)
        for combo in itertools.product(*(self.param_grid[n] for n in names)):
            yield dict(zip(names, combo))

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GridSearchCV":
        """Evaluate every grid point; pick the best mean CV score."""
        X, y = check_X_y(X, y)
        cv = (
            StratifiedKFold(n_splits=self.cv, random_state=0)
            if isinstance(self.cv, int)
            else self.cv
        )
        self.results_: list[GridSearchResult] = []
        for params in self._grid_points():
            fold_scores = []
            for train_idx, test_idx in cv.split(X, y):
                model = clone(self.estimator).set_params(**params)
                model.fit(X[train_idx], y[train_idx])
                fold_scores.append(self.scorer(model, X[test_idx], y[test_idx]))
            scores = np.array(fold_scores)
            self.results_.append(
                GridSearchResult(
                    params=params,
                    mean_score=float(scores.mean()),
                    std_score=float(scores.std()),
                    fold_scores=tuple(float(s) for s in scores),
                )
            )
        if not self.results_:
            raise ValueError("empty parameter grid")
        best = max(self.results_, key=lambda r: r.mean_score)
        self.best_params_ = best.params
        self.best_score_ = best.mean_score
        if self.refit:
            self.best_estimator_ = (
                clone(self.estimator).set_params(**best.params).fit(X, y)
            )
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict with the refit best estimator."""
        return self.best_estimator_.predict(X)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Probabilities from the refit best estimator."""
        return self.best_estimator_.predict_proba(X)
