"""LightGBM-style gradient-boosted trees (LGBM in the paper's Table IV).

Multiclass boosting with a softmax objective: each boosting round fits one
second-order regression tree per class to the gradient/hessian of the
cross-entropy loss. Trees grow **leaf-wise** (best-first), which is
LightGBM's signature growth policy, bounded by ``num_leaves`` and
(optionally) ``max_depth`` — both appear in the paper's grid. A depth-wise
mode is kept for the ablation bench in DESIGN.md §5.

Hyperparameters follow Table IV: ``num_leaves`` ∈ {2, 8, 31, 128},
``learning_rate`` ∈ {0.01, 0.1, 0.3}, ``max_depth`` ∈ {-1, 2, 8}
(-1 = unlimited, the LightGBM convention), ``colsample_bytree`` ∈ {0.5, 1.0}.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from .base import (
    BaseEstimator,
    ClassifierMixin,
    check_array,
    check_random_state,
    check_X_y,
    encode_labels,
)
from .binning import DEFAULT_MAX_BINS, Binner

__all__ = ["LGBMClassifier"]

_LEAF = -1


@dataclass
class _SplitPlan:
    """A scored candidate split of one leaf, ready for the best-first heap."""

    gain: float
    feature: int
    threshold: float
    idx: np.ndarray  # samples in the leaf
    go_left: np.ndarray  # boolean mask over idx


class _RegressionTree:
    """Second-order regression tree with leaf-wise (best-first) growth."""

    def __init__(
        self,
        num_leaves: int,
        max_depth: int,
        min_child_samples: int,
        reg_lambda: float,
        min_split_gain: float,
        leaf_wise: bool,
        edges: list[np.ndarray] | None = None,
    ):
        self.num_leaves = num_leaves
        self.max_depth = max_depth
        self.min_child_samples = min_child_samples
        self.reg_lambda = reg_lambda
        self.min_split_gain = min_split_gain
        self.leaf_wise = leaf_wise
        # when set, fit() receives the uint8 code matrix and split search
        # runs on weighted bin histograms; stored thresholds are still the
        # real-valued edges, so predict() takes raw matrices either way
        self.edges = edges

    # -- split search ---------------------------------------------------
    def _leaf_value(self, g_sum: float, h_sum: float) -> float:
        return -g_sum / (h_sum + self.reg_lambda)

    def _score(self, g_sum: float, h_sum: float) -> float:
        return g_sum * g_sum / (h_sum + self.reg_lambda)

    def _best_split(
        self,
        X: np.ndarray,
        g: np.ndarray,
        h: np.ndarray,
        idx: np.ndarray,
        features: np.ndarray,
    ) -> _SplitPlan | None:
        n = len(idx)
        if n < 2 * self.min_child_samples:
            return None
        if self.edges is not None:
            return self._best_split_hist(X, g, h, idx, features)
        g_node, h_node = g[idx], h[idx]
        total_score = self._score(g_node.sum(), h_node.sum())

        # vectorized over all candidate features: one argsort, one cumsum,
        # one argmax over every (cut, feature) cell
        Xs = X[np.ix_(idx, features)]  # (n, f)
        order = np.argsort(Xs, axis=0, kind="stable")
        xs_sorted = np.take_along_axis(Xs, order, axis=0)
        diff = xs_sorted[1:] != xs_sorted[:-1]  # (n-1, f)
        if not diff.any():
            return None
        gl = np.cumsum(g_node[order], axis=0)[:-1]  # (n-1, f)
        hl = np.cumsum(h_node[order], axis=0)[:-1]
        gr = g_node.sum() - gl
        hr = h_node.sum() - hl
        n_left = np.arange(1, n)[:, None]
        valid = (
            diff
            & (n_left >= self.min_child_samples)
            & (n - n_left >= self.min_child_samples)
        )
        if not valid.any():
            return None
        gain = (
            gl * gl / (hl + self.reg_lambda)
            + gr * gr / (hr + self.reg_lambda)
            - total_score
        )
        gain = np.where(valid, gain, -np.inf)
        flat = int(np.argmax(gain))
        cut, fpos = np.unravel_index(flat, gain.shape)
        best_gain = float(gain[cut, fpos])
        if best_gain <= self.min_split_gain:
            return None
        thr = 0.5 * (xs_sorted[cut, fpos] + xs_sorted[cut + 1, fpos])
        j = int(features[fpos])
        go_left = X[idx, j] <= thr
        return _SplitPlan(best_gain, j, float(thr), idx, go_left)

    def _best_split_hist(
        self,
        codes: np.ndarray,
        g: np.ndarray,
        h: np.ndarray,
        idx: np.ndarray,
        features: np.ndarray,
    ) -> _SplitPlan | None:
        """Histogram split search over ``uint8`` bin codes.

        Three bincounts (sample count, Σg, Σh) per node replace the
        per-node argsort: the gain of cutting feature ``j`` at bin ``b``
        needs only the left-prefix sums of its histogram. Candidate cut
        ``b`` corresponds to the real threshold ``edges[j][b]``.
        """
        n = len(idx)
        g_node, h_node = g[idx], h[idx]
        total_score = self._score(g_node.sum(), h_node.sum())
        f = len(features)
        n_edges = np.array([len(self.edges[j]) for j in features])
        nb = int(n_edges.max()) + 1
        sub = codes[np.ix_(idx, features)].astype(np.int64)
        flat = (sub + np.arange(f, dtype=np.int64) * nb).ravel()
        cells = f * nb
        cnt = np.bincount(flat, minlength=cells).reshape(f, nb)
        gw = np.bincount(
            flat, weights=np.repeat(g_node, f), minlength=cells
        ).reshape(f, nb)
        hw = np.bincount(
            flat, weights=np.repeat(h_node, f), minlength=cells
        ).reshape(f, nb)
        nl = np.cumsum(cnt, axis=1)[:, :-1]  # (f, nb-1): left-side counts
        gl = np.cumsum(gw, axis=1)[:, :-1]
        hl = np.cumsum(hw, axis=1)[:, :-1]
        gr = g_node.sum() - gl
        hr = h_node.sum() - hl
        valid = (
            (np.arange(nb - 1)[None, :] < n_edges[:, None])
            & (nl >= self.min_child_samples)
            & (n - nl >= self.min_child_samples)
        )
        if not valid.any():
            return None
        gain = (
            gl * gl / (hl + self.reg_lambda)
            + gr * gr / (hr + self.reg_lambda)
            - total_score
        )
        gain = np.where(valid, gain, -np.inf)
        # transpose so argmax breaks ties cut-major, like the exact path
        cut, fpos = np.unravel_index(int(np.argmax(gain.T)), (nb - 1, f))
        best_gain = float(gain[fpos, cut])
        if best_gain <= self.min_split_gain:
            return None
        j = int(features[fpos])
        thr = float(self.edges[j][cut])
        go_left = codes[idx, j] <= cut
        return _SplitPlan(best_gain, j, thr, idx, go_left)

    # -- growth ----------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        g: np.ndarray,
        h: np.ndarray,
        features: np.ndarray,
    ) -> "_RegressionTree":
        n = X.shape[0]
        self.feature: list[int] = [_LEAF]
        self.threshold: list[float] = [0.0]
        self.left: list[int] = [_LEAF]
        self.right: list[int] = [_LEAF]
        self.value: list[float] = [self._leaf_value(g.sum(), h.sum())]
        depth = {0: 0}

        # heap entries: (-gain, tiebreak, node_id, plan); leaf-wise pops the
        # globally best leaf; depth-wise degenerates to FIFO order.
        heap: list[tuple[float, int, int, _SplitPlan]] = []
        counter = 0

        def consider(node_id: int, idx: np.ndarray) -> None:
            nonlocal counter
            if self.max_depth >= 0 and depth[node_id] >= self.max_depth:
                return
            plan = self._best_split(X, g, h, idx, features)
            if plan is not None:
                key = -plan.gain if self.leaf_wise else float(counter)
                heapq.heappush(heap, (key, counter, node_id, plan))
                counter += 1

        consider(0, np.arange(n))
        n_leaves = 1
        while heap and n_leaves < self.num_leaves:
            _, _, node_id, plan = heapq.heappop(heap)
            if self.feature[node_id] != _LEAF:
                continue  # stale entry: node already split
            left_idx = plan.idx[plan.go_left]
            right_idx = plan.idx[~plan.go_left]
            for child_idx in (left_idx, right_idx):
                self.feature.append(_LEAF)
                self.threshold.append(0.0)
                self.left.append(_LEAF)
                self.right.append(_LEAF)
                self.value.append(
                    self._leaf_value(g[child_idx].sum(), h[child_idx].sum())
                )
            left_id, right_id = len(self.feature) - 2, len(self.feature) - 1
            depth[left_id] = depth[right_id] = depth[node_id] + 1
            self.feature[node_id] = plan.feature
            self.threshold[node_id] = plan.threshold
            self.left[node_id] = left_id
            self.right[node_id] = right_id
            n_leaves += 1
            consider(left_id, left_idx)
            consider(right_id, right_idx)

        self._feature = np.array(self.feature, dtype=np.int64)
        self._threshold = np.array(self.threshold, dtype=np.float64)
        self._left = np.array(self.left, dtype=np.int64)
        self._right = np.array(self.right, dtype=np.int64)
        self._value = np.array(self.value, dtype=np.float64)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        node = np.zeros(X.shape[0], dtype=np.int64)
        active = self._feature[node] != _LEAF
        while active.any():
            rows = np.flatnonzero(active)
            cur = node[rows]
            go_left = X[rows, self._feature[cur]] <= self._threshold[cur]
            node[rows] = np.where(go_left, self._left[cur], self._right[cur])
            active[rows] = self._feature[node[rows]] != _LEAF
        return self._value[node]


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class LGBMClassifier(BaseEstimator, ClassifierMixin):
    """Gradient-boosted decision trees with leaf-wise growth.

    Parameters
    ----------
    n_estimators:
        Boosting rounds (trees per class).
    num_leaves:
        Maximum leaves per tree (LightGBM's primary capacity knob).
    learning_rate:
        Shrinkage applied to each tree's contribution.
    max_depth:
        Depth cap; ``-1`` means unlimited (LightGBM convention).
    colsample_bytree:
        Fraction of features sampled (without replacement) per tree.
    reg_lambda:
        L2 regularization on leaf values.
    min_child_samples:
        Minimum samples per leaf.
    growth:
        ``"leaf"`` (LightGBM-style, default) or ``"depth"`` — retained for
        the DESIGN.md §5 growth-policy ablation.
    splitter:
        ``"exact"`` (default) argsorts candidate features per node;
        ``"hist"`` quantile-bins the matrix once per fit
        (:class:`repro.mlcore.binning.Binner`) and searches weighted bin
        histograms — the real LightGBM's strategy. Boosting reuses the
        same codes for every round and every per-class tree.
    max_bins:
        Bins per feature for the hist splitter (ignored for exact). The
        GBM keeps the fine 256-bin default: unlike a forest there is no
        cross-tree averaging to wash out quantization.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        num_leaves: int = 31,
        learning_rate: float = 0.1,
        max_depth: int = -1,
        colsample_bytree: float = 1.0,
        reg_lambda: float = 1.0,
        min_child_samples: int = 1,
        min_split_gain: float = 1e-12,
        growth: str = "leaf",
        splitter: str = "exact",
        max_bins: int = DEFAULT_MAX_BINS,
        random_state: int | np.random.Generator | None = None,
    ):
        self.n_estimators = n_estimators
        self.num_leaves = num_leaves
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.colsample_bytree = colsample_bytree
        self.reg_lambda = reg_lambda
        self.min_child_samples = min_child_samples
        self.min_split_gain = min_split_gain
        self.growth = growth
        self.splitter = splitter
        self.max_bins = max_bins
        self.random_state = random_state

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LGBMClassifier":
        """Boost ``n_estimators`` rounds of per-class regression trees."""
        if self.growth not in ("leaf", "depth"):
            raise ValueError(f"growth must be 'leaf' or 'depth', got {self.growth!r}")
        if self.splitter not in ("exact", "hist"):
            raise ValueError(
                f"splitter must be 'exact' or 'hist', got {self.splitter!r}"
            )
        if not 0.0 < self.colsample_bytree <= 1.0:
            raise ValueError(
                f"colsample_bytree must be in (0, 1], got {self.colsample_bytree}"
            )
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        self.classes_, codes = encode_labels(y)
        n, m = X.shape
        k = len(self.classes_)
        self.n_features_in_ = m
        # bin once per fit; every boosting round and per-class tree shares
        # the same code matrix and edge list
        edges: list[np.ndarray] | None = None
        X_split = X
        if self.splitter == "hist":
            binner = Binner(self.max_bins)
            X_split = binner.fit_transform(X)
            edges = binner.bin_edges_
        onehot = np.zeros((n, k))
        onehot[np.arange(n), codes] = 1.0

        raw = np.zeros((n, k))
        self._trees: list[list[_RegressionTree]] = []
        n_cols = max(1, int(round(self.colsample_bytree * m)))
        for _ in range(self.n_estimators):
            p = _softmax(raw)
            grad = p - onehot
            hess = np.maximum(p * (1.0 - p), 1e-6)
            round_trees: list[_RegressionTree] = []
            for c in range(k):
                feats = (
                    rng.choice(m, size=n_cols, replace=False)
                    if n_cols < m
                    else np.arange(m)
                )
                tree = _RegressionTree(
                    num_leaves=self.num_leaves,
                    max_depth=self.max_depth,
                    min_child_samples=self.min_child_samples,
                    reg_lambda=self.reg_lambda,
                    min_split_gain=self.min_split_gain,
                    leaf_wise=self.growth == "leaf",
                    edges=edges,
                ).fit(X_split, grad[:, c], hess[:, c], feats)
                raw[:, c] += self.learning_rate * tree.predict(X)
                round_trees.append(tree)
            self._trees.append(round_trees)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw (pre-softmax) per-class boosted scores."""
        X = check_array(X)
        raw = np.zeros((X.shape[0], len(self.classes_)))
        for round_trees in self._trees:
            for c, tree in enumerate(round_trees):
                raw[:, c] += self.learning_rate * tree.predict(X)
        return raw

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Softmax over the boosted scores."""
        return _softmax(self.decision_function(X))
