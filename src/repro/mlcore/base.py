"""Estimator protocol and shared validation utilities.

This module plays the role scikit-learn's ``sklearn.base`` plays for the
paper's implementation: a tiny, uniform estimator contract so that model
selection (grid search, cross-validation) and the active-learning loop can
treat every classifier interchangeably.

Conventions (mirroring scikit-learn so the paper's Table IV hyperparameter
grids translate directly):

* constructor arguments are hyperparameters, stored verbatim on ``self``;
* ``fit(X, y)`` learns state into attributes with a trailing underscore and
  returns ``self``;
* ``predict(X)`` returns integer class labels, ``predict_proba(X)`` returns
  an ``(n_samples, n_classes)`` row-stochastic matrix over ``classes_``;
* :func:`clone` builds an unfitted copy from hyperparameters only.
"""

from __future__ import annotations

import copy
import inspect
from typing import Any

import numpy as np

__all__ = [
    "BaseEstimator",
    "ClassifierMixin",
    "clone",
    "check_X_y",
    "check_array",
    "check_random_state",
    "encode_labels",
]


class BaseEstimator:
    """Minimal estimator base with parameter introspection.

    Subclasses must store every constructor argument on ``self`` under the
    same name; ``get_params``/``set_params`` then work for free, and
    :func:`clone` can rebuild unfitted copies — which is what grid search
    and repeated train/test splits rely on.
    """

    @classmethod
    def _param_names(cls) -> list[str]:
        sig = inspect.signature(cls.__init__)
        return [
            name
            for name, p in sig.parameters.items()
            if name != "self" and p.kind not in (p.VAR_POSITIONAL, p.VAR_KEYWORD)
        ]

    def get_params(self) -> dict[str, Any]:
        """Return hyperparameters as a dict (unfitted state only)."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params: Any) -> "BaseEstimator":
        """Set hyperparameters in place; unknown names raise ``ValueError``."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"invalid parameter {name!r} for {type(self).__name__}; "
                    f"valid parameters: {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"


class ClassifierMixin:
    """Shared behaviour for classifiers: accuracy scoring and label decoding."""

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy of ``predict(X)`` against ``y``."""
        return float(np.mean(self.predict(X) == np.asarray(y)))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Default predict: argmax of ``predict_proba`` mapped to ``classes_``."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """Return an unfitted copy constructed from the estimator's parameters.

    Parameter values are deep-copied so mutable defaults (lists of hidden
    layer sizes, etc.) are not shared between the clone and the original.
    """
    params = {k: copy.deepcopy(v) for k, v in estimator.get_params().items()}
    return type(estimator)(**params)


def check_array(X: Any, *, dtype: type = np.float64, name: str = "X") -> np.ndarray:
    """Validate a 2-D numeric array: finite values, at least one sample."""
    X = np.asarray(X, dtype=dtype)
    if X.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {X.shape}")
    if X.shape[0] == 0:
        raise ValueError(f"{name} has no samples")
    if not np.all(np.isfinite(X)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return X


def check_X_y(X: Any, y: Any) -> tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix / label vector pair with matching lengths."""
    X = check_array(X)
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"y must be 1-D, got shape {y.shape}")
    if len(y) != X.shape[0]:
        raise ValueError(f"X has {X.shape[0]} samples but y has {len(y)}")
    return X, y


def check_random_state(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalize a seed / Generator / None into a ``numpy.random.Generator``.

    Explicit generators are threaded through every stochastic component so
    that experiments are reproducible end to end (see DESIGN.md §6).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def encode_labels(y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Map arbitrary labels to contiguous integer codes.

    Returns ``(classes, codes)`` where ``classes`` is sorted-unique and
    ``codes[i]`` indexes ``classes``. All classifiers train on codes and
    decode back through ``classes_`` at prediction time.
    """
    classes, codes = np.unique(np.asarray(y), return_inverse=True)
    return classes, codes.astype(np.int64)
