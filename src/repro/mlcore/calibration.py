"""Probability calibration diagnostics and temperature scaling.

The active-learning strategies consume raw class probabilities (Eqs. 1–4),
so *how calibrated* a model's probabilities are directly shapes which
samples get queried: an overconfident model under-reports uncertainty and
starves the query strategy of signal. This module provides:

* :func:`reliability_curve` — binned confidence vs accuracy;
* :func:`expected_calibration_error` — the standard ECE summary;
* :class:`TemperatureScaler` — post-hoc single-parameter calibration
  (Guo et al. 2017) fit on held-out data, wrapping any probabilistic
  classifier without retraining it.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize_scalar

from .base import BaseEstimator, check_array

__all__ = [
    "reliability_curve",
    "expected_calibration_error",
    "TemperatureScaler",
]


def _validate_proba(proba: np.ndarray) -> np.ndarray:
    proba = np.asarray(proba, dtype=np.float64)
    if proba.ndim != 2:
        raise ValueError(f"probabilities must be 2-D, got {proba.shape}")
    if not np.allclose(proba.sum(axis=1), 1.0, atol=1e-6):
        raise ValueError("probability rows must sum to 1")
    return proba


def reliability_curve(
    proba: np.ndarray,
    y_true: np.ndarray,
    classes: np.ndarray,
    n_bins: int = 10,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Confidence-binned accuracy (the reliability diagram's data).

    Returns ``(bin_confidence, bin_accuracy, bin_count)`` over equal-width
    confidence bins; empty bins carry NaN confidence/accuracy and count 0.
    """
    if n_bins < 2:
        raise ValueError(f"n_bins must be >= 2, got {n_bins}")
    proba = _validate_proba(proba)
    y_true = np.asarray(y_true)
    classes = np.asarray(classes)
    if len(y_true) != len(proba):
        raise ValueError("proba / y_true length mismatch")
    confidence = proba.max(axis=1)
    predicted = classes[np.argmax(proba, axis=1)]
    correct = (predicted == y_true).astype(float)
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    # right-inclusive last bin so confidence 1.0 lands in bin n-1
    bins = np.clip(np.digitize(confidence, edges[1:-1]), 0, n_bins - 1)
    conf_out = np.full(n_bins, np.nan)
    acc_out = np.full(n_bins, np.nan)
    count_out = np.zeros(n_bins, dtype=np.int64)
    for b in range(n_bins):
        mask = bins == b
        count_out[b] = int(mask.sum())
        if count_out[b]:
            conf_out[b] = confidence[mask].mean()
            acc_out[b] = correct[mask].mean()
    return conf_out, acc_out, count_out


def expected_calibration_error(
    proba: np.ndarray,
    y_true: np.ndarray,
    classes: np.ndarray,
    n_bins: int = 10,
) -> float:
    """ECE: count-weighted mean |confidence − accuracy| over bins."""
    conf, acc, count = reliability_curve(proba, y_true, classes, n_bins)
    total = count.sum()
    if total == 0:
        return 0.0
    filled = count > 0
    return float(np.sum(count[filled] * np.abs(conf[filled] - acc[filled])) / total)


class TemperatureScaler(BaseEstimator):
    """Post-hoc temperature scaling over a fitted probabilistic classifier.

    Sharpens (T < 1) or softens (T > 1) the base model's probabilities:
    ``p_T ∝ p^(1/T)``. The temperature minimizing validation NLL is found
    by bounded scalar optimization; the wrapped object exposes the usual
    ``predict`` / ``predict_proba`` so it drops into the AL loop.
    """

    def __init__(self, model=None, max_temperature: float = 10.0):
        self.model = model
        self.max_temperature = max_temperature

    def fit(self, X_val: np.ndarray, y_val: np.ndarray) -> "TemperatureScaler":
        """Fit T on held-out data (the base model stays frozen)."""
        if self.model is None or not hasattr(self.model, "classes_"):
            raise ValueError("TemperatureScaler needs a fitted base model")
        X_val = check_array(X_val)
        y_val = np.asarray(y_val)
        proba = np.clip(self.model.predict_proba(X_val), 1e-12, 1.0)
        classes = list(self.model.classes_)
        try:
            codes = np.array([classes.index(y) for y in y_val])
        except ValueError:
            raise ValueError("y_val contains classes the base model never saw")
        log_p = np.log(proba)

        def nll(T: float) -> float:
            scaled = log_p / T
            scaled -= scaled.max(axis=1, keepdims=True)
            p = np.exp(scaled)
            p /= p.sum(axis=1, keepdims=True)
            return float(-np.mean(np.log(p[np.arange(len(codes)), codes] + 1e-12)))

        res = minimize_scalar(
            nll, bounds=(0.05, self.max_temperature), method="bounded"
        )
        self.temperature_ = float(res.x)
        self.classes_ = self.model.classes_
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Temperature-scaled probabilities of the base model."""
        if not hasattr(self, "temperature_"):
            raise RuntimeError("fit() the scaler on validation data first")
        proba = np.clip(self.model.predict_proba(X), 1e-12, 1.0)
        scaled = np.log(proba) / self.temperature_
        scaled -= scaled.max(axis=1, keepdims=True)
        p = np.exp(scaled)
        return p / p.sum(axis=1, keepdims=True)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Argmax labels (temperature never changes the argmax)."""
        return self.model.predict(X)
