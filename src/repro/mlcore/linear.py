"""Multinomial logistic regression with L1/L2 penalties (LR in Table IV).

The paper's grid: ``penalty`` ∈ {l1, l2}, ``C`` ∈ {0.001, 0.01, 0.1, 1, 10},
with L1 selected on both systems. L2 problems are smooth and solved with
L-BFGS (scipy); L1 is non-smooth, so we use FISTA (accelerated proximal
gradient with soft-thresholding), which handles the sparsity-inducing
penalty exactly rather than by subgradient approximation.

LR is also the supervised head of the Proctor baseline
(:mod:`repro.active.baselines`).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from .base import (
    BaseEstimator,
    ClassifierMixin,
    check_array,
    check_X_y,
    encode_labels,
)

__all__ = ["LogisticRegression"]


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def _nll_and_grad(
    W: np.ndarray, b: np.ndarray, X: np.ndarray, onehot: np.ndarray
) -> tuple[float, np.ndarray, np.ndarray]:
    """Mean cross-entropy and its gradients w.r.t. weights and intercepts."""
    n = X.shape[0]
    p = _softmax(X @ W + b)
    eps = 1e-12
    loss = -np.sum(onehot * np.log(p + eps)) / n
    diff = (p - onehot) / n
    return loss, X.T @ diff, diff.sum(axis=0)


class LogisticRegression(BaseEstimator, ClassifierMixin):
    """Multinomial (softmax) logistic regression.

    Parameters
    ----------
    penalty:
        ``"l1"`` or ``"l2"``. Intercepts are never penalized.
    C:
        Inverse regularization strength (scikit-learn convention): the
        objective is ``mean_CE + (1 / (C * n)) * R(W)``.
    max_iter:
        Iteration cap for the solver (L-BFGS iterations or FISTA steps).
    tol:
        Convergence tolerance on the objective / gradient.
    """

    def __init__(
        self,
        penalty: str = "l2",
        C: float = 1.0,
        max_iter: int = 500,
        tol: float = 1e-6,
    ):
        self.penalty = penalty
        self.C = C
        self.max_iter = max_iter
        self.tol = tol

    # ------------------------------------------------------------------
    def _fit_l2(self, X: np.ndarray, onehot: np.ndarray) -> None:
        n, m = X.shape
        k = onehot.shape[1]
        lam = 1.0 / (self.C * n)

        def objective(theta: np.ndarray) -> tuple[float, np.ndarray]:
            W = theta[: m * k].reshape(m, k)
            b = theta[m * k :]
            loss, gW, gb = _nll_and_grad(W, b, X, onehot)
            loss += 0.5 * lam * np.sum(W * W)
            gW = gW + lam * W
            return loss, np.concatenate([gW.ravel(), gb])

        theta0 = np.zeros(m * k + k)
        res = minimize(
            objective,
            theta0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter, "gtol": self.tol},
        )
        self.coef_ = res.x[: m * k].reshape(m, k)
        self.intercept_ = res.x[m * k :]
        self.n_iter_ = int(res.nit)

    def _fit_l1(self, X: np.ndarray, onehot: np.ndarray) -> None:
        """FISTA with soft-thresholding prox on the weight matrix."""
        n, m = X.shape
        k = onehot.shape[1]
        lam = 1.0 / (self.C * n)
        # Lipschitz constant of the softmax CE gradient is bounded by
        # ||X||^2 / (2n); power iteration gives the spectral norm cheaply.
        v = np.ones(m) / np.sqrt(m)
        for _ in range(32):
            v = X.T @ (X @ v)
            norm = np.linalg.norm(v)
            if norm == 0:
                break
            v /= norm
        L = max(norm / (2.0 * n), 1e-12) if norm else 1e-12
        step = 1.0 / L

        W = np.zeros((m, k))
        b = np.zeros(k)
        Wy, by, t = W.copy(), b.copy(), 1.0
        prev_obj = np.inf
        for it in range(self.max_iter):
            loss, gW, gb = _nll_and_grad(Wy, by, X, onehot)
            W_next = Wy - step * gW
            # prox of lam * ||W||_1
            W_next = np.sign(W_next) * np.maximum(np.abs(W_next) - step * lam, 0.0)
            b_next = by - step * gb
            t_next = (1.0 + np.sqrt(1.0 + 4.0 * t * t)) / 2.0
            Wy = W_next + ((t - 1.0) / t_next) * (W_next - W)
            by = b_next + ((t - 1.0) / t_next) * (b_next - b)
            W, b, t = W_next, b_next, t_next
            obj = loss + lam * np.abs(W).sum()
            if abs(prev_obj - obj) < self.tol * max(1.0, abs(obj)):
                break
            prev_obj = obj
        self.coef_ = W
        self.intercept_ = b
        self.n_iter_ = it + 1

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        """Fit the softmax model by L-BFGS (l2) or FISTA (l1)."""
        if self.penalty not in ("l1", "l2"):
            raise ValueError(f"penalty must be 'l1' or 'l2', got {self.penalty!r}")
        if self.C <= 0:
            raise ValueError(f"C must be positive, got {self.C}")
        X, y = check_X_y(X, y)
        self.classes_, codes = encode_labels(y)
        self.n_features_in_ = X.shape[1]
        k = len(self.classes_)
        onehot = np.zeros((X.shape[0], k))
        onehot[np.arange(X.shape[0]), codes] = 1.0
        if self.penalty == "l2":
            self._fit_l2(X, onehot)
        else:
            self._fit_l1(X, onehot)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw linear scores ``X @ W + b``."""
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, expected {self.n_features_in_}"
            )
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Softmax class probabilities."""
        return _softmax(self.decision_function(X))

    @property
    def sparsity_(self) -> float:
        """Fraction of exactly-zero weights (L1 should drive this up)."""
        return float(np.mean(self.coef_ == 0.0))
