"""Preprocessing: Min-Max scaling and label encoding.

The paper applies a *Min-Max* scaler fit on the training split and reused on
the test split (Sec. IV-E2); the active-learning experiments rely on the
scaler being fit once on the AL training pool so queried samples and test
samples share the same coordinate system. Chi-square feature selection also
requires non-negative inputs, which Min-Max scaling guarantees.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, check_array

__all__ = ["MinMaxScaler", "LabelEncoder"]


class MinMaxScaler(BaseEstimator):
    """Scale each feature to ``feature_range`` using train-split min/max.

    Constant features (max == min) map to the range minimum rather than
    dividing by zero — matching scikit-learn's behaviour.
    """

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0), clip: bool = False):
        self.feature_range = feature_range
        self.clip = clip

    def fit(self, X: np.ndarray, y: np.ndarray | None = None) -> "MinMaxScaler":
        """Record per-feature min and range from ``X``."""
        lo, hi = self.feature_range
        if lo >= hi:
            raise ValueError(f"feature_range must be increasing, got {self.feature_range}")
        X = check_array(X)
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        span = self.data_max_ - self.data_min_
        with np.errstate(over="ignore"):
            self.scale_ = np.where(
                span > 0, (hi - lo) / np.where(span > 0, span, 1.0), 0.0
            )
        # subnormal spans overflow the reciprocal; treat them as constant
        self.scale_ = np.where(np.isfinite(self.scale_), self.scale_, 0.0)
        self.min_ = lo - self.data_min_ * self.scale_
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the learned affine map; optionally clip to the range."""
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, expected {self.n_features_in_}"
            )
        out = X * self.scale_ + self.min_
        if self.clip:
            out = np.clip(out, *self.feature_range)
        return out

    def fit_transform(self, X: np.ndarray, y: np.ndarray | None = None) -> np.ndarray:
        """Fit on ``X`` then transform it."""
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        """Undo the scaling (constant features recover their single value)."""
        X = check_array(X)
        scale = np.where(self.scale_ > 0, self.scale_, 1.0)
        out = (X - self.min_) / scale
        const = self.scale_ == 0
        if const.any():
            out[:, const] = self.data_min_[const]
        return out


class LabelEncoder(BaseEstimator):
    """Map arbitrary hashable labels to contiguous integers and back."""

    def __init__(self):
        pass

    def fit(self, y: np.ndarray) -> "LabelEncoder":
        """Learn the sorted-unique class list."""
        self.classes_ = np.unique(np.asarray(y))
        return self

    def transform(self, y: np.ndarray) -> np.ndarray:
        """Encode labels as indices into ``classes_``; unseen labels raise."""
        y = np.asarray(y)
        codes = np.searchsorted(self.classes_, y)
        bad = (codes >= len(self.classes_)) | (self.classes_[np.clip(codes, 0, len(self.classes_) - 1)] != y)
        if bad.any():
            raise ValueError(f"unseen labels: {np.unique(y[bad])!r}")
        return codes

    def fit_transform(self, y: np.ndarray) -> np.ndarray:
        """Fit then encode in one call."""
        return self.fit(y).transform(y)

    def inverse_transform(self, codes: np.ndarray) -> np.ndarray:
        """Decode integer codes back to original labels."""
        codes = np.asarray(codes, dtype=np.int64)
        if codes.size and (codes.min() < 0 or codes.max() >= len(self.classes_)):
            raise ValueError("codes out of range")
        return self.classes_[codes]
