"""Histogram binning for the tree-training hot path (LightGBM-style).

The paper's experiment loop retrains a random forest after every
active-learning query, so split search dominates end-to-end wall clock.
Exact split search argsorts every candidate feature at every node —
O(n log n) per (node, feature). Quantile-binning the matrix **once** into
``uint8`` codes turns the per-node work into an O(n) bincount over at most
256 bins, and lets the whole stack share one compact representation:

* :class:`Binner` learns per-feature bin edges (density-aware quantile
  cuts placed at midpoints between adjacent distinct values) and maps raw
  values to codes;
* :class:`BinnedDataset` bundles the code matrix with its binner so a
  forest can be fit from codes alone and the active-learning loop can
  cache the representation across refits, re-binning only new rows.

Semantics that make binned training interchangeable with exact training:

* every edge lies strictly between two adjacent distinct training values,
  so ``code(x) <= b  ⟺  x <= edges[b]`` — a tree grown on codes emits the
  real-valued edge as its threshold and predicts on raw matrices with the
  exact same partition it trained on;
* ties share a bin (values equal to an edge go left, matching the exact
  splitter's ``<=`` convention);
* NaN/inf are rejected up front (same contract as ``check_array``).
"""

from __future__ import annotations

import numpy as np

from .base import check_array

__all__ = ["Binner", "BinnedDataset", "DEFAULT_MAX_BINS"]

DEFAULT_MAX_BINS = 256


class _CodeBuffer:
    """Amortized-doubling backing store shared by a BinnedDataset lineage.

    The active-learning loop appends one code row per query; reallocating
    (or ``np.vstack``-ing) the whole matrix every round is O(rounds · n)
    copies. This buffer doubles capacity on overflow, so a lineage of
    appends costs O(n) amortized, and it maintains the feature-major
    transpose *incrementally*: once built, each append writes ``m`` new
    columns instead of re-transposing the matrix.

    Several :class:`BinnedDataset` instances may share one buffer (each
    records its own row count); only the dataset whose length equals the
    buffer's high-water mark may grow in place — anyone else gets a
    private copy, so a parent's rows can never be overwritten by a
    sibling's append.
    """

    __slots__ = ("rows", "n_used", "_rows_T", "_t_filled", "_t_view", "_t_view_n")

    def __init__(self, codes: np.ndarray):
        self.rows = codes  # (capacity, f); rows beyond n_used are free
        self.n_used = len(codes)
        self._rows_T: np.ndarray | None = None
        self._t_filled = 0  # columns of the transpose kept in sync
        self._t_view: np.ndarray | None = None  # memoized transpose slice
        self._t_view_n = -1

    def append(self, new_codes: np.ndarray, at_n: int) -> int | None:
        """Append rows at the tail; returns the new length or ``None``.

        ``None`` means ``at_n`` is not the buffer tail (another dataset
        already grew past it) and the caller must copy instead.
        """
        if at_n != self.n_used:
            return None
        m = len(new_codes)
        need = self.n_used + m
        cap = len(self.rows)
        if need > cap:
            new_cap = max(2 * cap, need)
            grown = np.empty((new_cap, self.rows.shape[1]), dtype=np.uint8)
            grown[: self.n_used] = self.rows[: self.n_used]
            self.rows = grown
            if self._rows_T is not None:
                grown_T = np.empty(
                    (self.rows.shape[1], new_cap), dtype=np.uint8
                )
                grown_T[:, : self._t_filled] = self._rows_T[:, : self._t_filled]
                self._rows_T = grown_T
                self._t_view = None
                self._t_view_n = -1
        self.rows[self.n_used : need] = new_codes
        if self._rows_T is not None and self._t_filled == self.n_used:
            self._rows_T[:, self.n_used : need] = new_codes.T
            self._t_filled = need
        self.n_used = need
        return need

    def transpose(self, n: int) -> np.ndarray:
        """Feature-major view of the first ``n`` rows, built lazily.

        The returned view is memoized per requested length, so repeated
        reads of an unchanged dataset hand back the identical object
        (callers key shared-memory exports and caches on identity).
        """
        if self._rows_T is None:
            self._rows_T = np.empty(
                (self.rows.shape[1], len(self.rows)), dtype=np.uint8
            )
            self._rows_T[:, : self.n_used] = self.rows[: self.n_used].T
            self._t_filled = self.n_used
        elif self._t_filled < n:
            self._rows_T[:, self._t_filled : n] = self.rows[self._t_filled : n].T
            self._t_filled = n
        if self._t_view_n != n:
            self._t_view = self._rows_T[:, :n]
            self._t_view_n = n
        return self._t_view

    def __getstate__(self) -> dict:
        # compact on pickle: ship only the live rows, drop the transpose
        return {"rows": np.ascontiguousarray(self.rows[: self.n_used])}

    def __setstate__(self, state: dict) -> None:
        self.rows = state["rows"]
        self.n_used = len(self.rows)
        self._rows_T = None
        self._t_filled = 0
        self._t_view = None
        self._t_view_n = -1


def _feature_edges(col: np.ndarray, max_bins: int) -> np.ndarray:
    """Bin edges for one feature column: at most ``max_bins - 1`` cuts.

    Small cardinality gets exact midpoints between every pair of adjacent
    distinct values (binned split search then sees the *same* candidate
    thresholds as the exact splitter). High cardinality gets quantile
    cuts snapped to midpoints between the distinct values around them,
    which keeps bins roughly equal-mass.
    """
    uniq = np.unique(col)
    if len(uniq) <= max_bins:
        return (uniq[:-1] + uniq[1:]) / 2.0
    qs = np.linspace(0.0, 1.0, max_bins + 1)[1:-1]
    cuts = np.quantile(col, qs)
    # snap each cut between the nearest distinct values so no edge ever
    # coincides with a data value (keeps the <= tie rule unambiguous)
    j = np.clip(np.searchsorted(uniq, cuts, side="right"), 1, len(uniq) - 1)
    return np.unique((uniq[j - 1] + uniq[j]) / 2.0)


def _rank_cut_positions(n: int, max_bins: int) -> np.ndarray:
    """Equal-mass cut positions for a tie-free column of ``n`` values.

    Cut ``m`` sits between sorted positions ``j_m - 1`` and ``j_m`` where
    ``j_m = floor(m (n-1) / max_bins) + 1`` — the rank the ``m/max_bins``
    quantile falls next to. Positions are data-independent, so one vector
    serves every tie-free column of the matrix; they are strictly
    increasing whenever ``n > max_bins``.
    """
    m = np.arange(1, max_bins)
    return (m * (n - 1)) // max_bins + 1


class Binner:
    """Per-feature quantile binning into ``uint8`` codes.

    Parameters
    ----------
    max_bins:
        Upper bound on bins per feature; must fit ``uint8`` (<= 256).
    """

    def __init__(self, max_bins: int = DEFAULT_MAX_BINS):
        if not 2 <= max_bins <= 256:
            raise ValueError(f"max_bins must be in [2, 256], got {max_bins}")
        self.max_bins = max_bins

    def fit(self, X: np.ndarray) -> "Binner":
        """Learn bin edges from ``X`` (one edge array per feature)."""
        X = check_array(X)
        Xs = np.sort(np.asfortranarray(X), axis=0)
        self._edges_from_sorted(Xs)
        return self

    def _edges_from_sorted(self, Xs: np.ndarray) -> np.ndarray:
        """Edges from a column-sorted matrix; returns the tie-free mask.

        Tie-free columns all share the same rank-space cut positions
        (:func:`_rank_cut_positions`), so their edges come from two row
        gathers instead of 2000 per-column quantile calls. Columns with
        repeated values (or fewer distinct values than bins) fall back to
        the per-column density-aware path.
        """
        n, f = Xs.shape
        self.n_features_in_ = f
        edges: list[np.ndarray | None] = [None] * f
        if n > self.max_bins:
            tie_free = ~(Xs[1:] == Xs[:-1]).any(axis=0)
        else:
            tie_free = np.zeros(f, dtype=bool)
        if tie_free.any():
            cuts = _rank_cut_positions(n, self.max_bins)
            mids = (Xs[cuts - 1] + Xs[cuts]) / 2.0
            for j in np.flatnonzero(tie_free):
                edges[j] = mids[:, j]
        for j in np.flatnonzero(~tie_free):
            edges[j] = _feature_edges(Xs[:, j], self.max_bins)
        self.bin_edges_ = edges
        return tie_free

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Map raw values to bin codes; rows append-cheap (O(log bins))."""
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, expected {self.n_features_in_}"
            )
        codes = np.empty(X.shape, dtype=np.uint8)
        for j, edges in enumerate(self.bin_edges_):
            # side="left": count of edges strictly below x, hence
            # code <= b  ⟺  x <= edges[b]
            codes[:, j] = np.searchsorted(edges, X[:, j], side="left")
        return codes

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """``fit(X)`` then ``transform(X)``, sharing one sort.

        For tie-free columns the training codes are pure rank arithmetic:
        the value at sorted position ``i`` lands in bin
        ``#{cuts <= i}``, a vector shared by every such column, scattered
        back through the argsort permutation. Only columns with repeated
        values pay a per-column ``searchsorted``.
        """
        X = check_array(X)
        order = np.argsort(np.asfortranarray(X), axis=0)
        Xs = np.take_along_axis(X, order, axis=0)
        tie_free = self._edges_from_sorted(Xs)
        codes = np.empty(X.shape, dtype=np.uint8)
        if tie_free.any():
            cuts = _rank_cut_positions(X.shape[0], self.max_bins)
            pos_codes = np.searchsorted(
                cuts, np.arange(X.shape[0]), side="right"
            ).astype(np.uint8)
            np.put_along_axis(codes, order, pos_codes[:, None], axis=0)
        for j in np.flatnonzero(~tie_free):
            codes[:, j] = np.searchsorted(
                self.bin_edges_[j], X[:, j], side="left"
            )
        return codes

    def fit_dataset(self, X: np.ndarray) -> "BinnedDataset":
        """``fit_transform`` bundled with this binner (the fast entry)."""
        return BinnedDataset(self.fit_transform(X), self)

    def bin_dataset(self, X: np.ndarray) -> "BinnedDataset":
        """Transform ``X`` and bundle the codes with this binner."""
        return BinnedDataset(self.transform(X), self)


class BinnedDataset:
    """A code matrix plus the binner that produced it.

    The handle the forest trains from and the active-learning loop caches
    across refits: growing the labeled set appends already computed codes
    into an amortized-doubling buffer (:class:`_CodeBuffer`), never a
    re-quantization — or even a full copy — of the whole matrix.
    """

    def __init__(self, codes: np.ndarray, binner: Binner):
        codes = np.asarray(codes)
        if codes.dtype != np.uint8:
            raise ValueError(f"codes must be uint8, got {codes.dtype}")
        if codes.ndim != 2:
            raise ValueError(f"codes must be 2-D, got shape {codes.shape}")
        if codes.shape[1] != binner.n_features_in_:
            raise ValueError(
                f"codes have {codes.shape[1]} features, "
                f"binner expects {binner.n_features_in_}"
            )
        self._buf = _CodeBuffer(codes)
        self._n = len(codes)
        self.binner = binner

    @classmethod
    def _from_buffer(
        cls, buf: _CodeBuffer, n: int, binner: Binner
    ) -> "BinnedDataset":
        ds = cls.__new__(cls)
        ds._buf = buf
        ds._n = n
        ds.binner = binner
        return ds

    @property
    def codes(self) -> np.ndarray:
        """Row-major view of this dataset's code rows (never a copy)."""
        return self._buf.rows[: self._n]

    @property
    def codes_T(self) -> np.ndarray:
        """Feature-major codes, built lazily and maintained incrementally.

        Every tree's histogram kernels gather (bootstrap rows × candidate
        features) blocks; the transposed layout makes each candidate
        feature a contiguous row. The transpose lives in the shared
        growth buffer: the first access pays one full transpose, after
        which each :meth:`append_codes` keeps it current by writing only
        the new columns — refit rounds never re-transpose the matrix.
        """
        return self._buf.transpose(self._n)

    @property
    def n_samples(self) -> int:
        return self._n

    @property
    def n_features(self) -> int:
        return self._buf.rows.shape[1]

    @property
    def bin_edges_(self) -> list[np.ndarray]:
        return self.binner.bin_edges_

    def share(self):
        """Copy codes and the feature-major transpose into shared memory.

        Returns a ``(codes_owner, codes_T_owner)`` pair of
        :class:`~repro.parallel.shm.SharedArray` owners (close both —
        ideally via ``with`` — to unlink). Workers attach through the
        picklable handles, so a forest refit ships seed chunks instead
        of re-pickling the code matrix per task. The transpose is built
        (and cached) here, in the owner process, once for all workers.
        """
        from ..parallel.shm import SharedArray

        return SharedArray(self.codes), SharedArray(self.codes_T)

    def take(self, idx: np.ndarray) -> "BinnedDataset":
        """Row subset (bootstrap resamples share edges, copy codes)."""
        return BinnedDataset(self.codes[idx], self.binner)

    def append_codes(self, code_rows: np.ndarray) -> "BinnedDataset":
        """New dataset with already-binned rows stacked underneath.

        O(rows) amortized: when this dataset sits at its buffer's tail
        the rows are written in place (doubling capacity as needed) and
        the returned dataset shares the buffer — including the
        incrementally maintained transpose. Otherwise (a sibling grew the
        buffer first) the lineage forks with one copy. ``self`` is never
        mutated either way: its views cover only its own rows.
        """
        code_rows = np.asarray(code_rows, dtype=np.uint8)
        if code_rows.ndim != 2 or code_rows.shape[1] != self.n_features:
            raise ValueError(
                f"code rows must be (m, {self.n_features}), "
                f"got shape {code_rows.shape}"
            )
        new_n = self._buf.append(code_rows, self._n)
        if new_n is None:  # not at the tail: fork the lineage with a copy
            forked = _CodeBuffer(
                np.vstack([self.codes, code_rows]).astype(np.uint8)
            )
            return BinnedDataset._from_buffer(forked, forked.n_used, self.binner)
        return BinnedDataset._from_buffer(self._buf, new_n, self.binner)

    def append_rows(self, X_rows: np.ndarray) -> "BinnedDataset":
        """New dataset with freshly binned ``X_rows`` stacked underneath."""
        return self.append_codes(self.binner.transform(X_rows))
