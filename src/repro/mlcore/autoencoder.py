"""Deep autoencoder — substrate for the Proctor baseline.

Proctor (Aksar et al., ISC 2021; the paper's strongest semi-supervised
baseline) trains a deep autoencoder on the *unlabeled* pool to learn a
compressed representation of node telemetry, then fits a logistic-regression
head on the code-layer embedding of the few labeled samples. The paper's
instantiation: 2000-unit code layer, ``adadelta`` optimizer, MSE loss,
100 epochs — all reproduced here with the code width scaled to our dataset
sizes (see DESIGN.md §2 scale note).
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, check_array, check_random_state

__all__ = ["Autoencoder"]


class Autoencoder(BaseEstimator):
    """Symmetric fully-connected autoencoder trained with Adadelta + MSE.

    Parameters
    ----------
    code_size:
        Width of the bottleneck (code) layer whose activations serve as the
        learned representation (``transform``).
    hidden_layer_sizes:
        Encoder hidden widths between input and code; the decoder mirrors
        them. Empty tuple gives input → code → input.
    max_iter:
        Training epochs (paper: 100).
    rho / eps:
        Adadelta decay rate and stabilizer (Zeiler 2012 defaults).
    """

    def __init__(
        self,
        code_size: int = 32,
        hidden_layer_sizes: tuple[int, ...] = (),
        max_iter: int = 100,
        batch_size: int = 32,
        rho: float = 0.95,
        eps: float = 1e-6,
        random_state: int | np.random.Generator | None = None,
    ):
        self.code_size = code_size
        self.hidden_layer_sizes = hidden_layer_sizes
        self.max_iter = max_iter
        self.batch_size = batch_size
        self.rho = rho
        self.eps = eps
        self.random_state = random_state

    # ------------------------------------------------------------------
    def _forward(self, X: np.ndarray) -> list[np.ndarray]:
        """Activations per layer; ReLU everywhere except a linear output."""
        acts = [X]
        last = len(self.weights_) - 1
        for i, (W, b) in enumerate(zip(self.weights_, self.biases_)):
            z = acts[-1] @ W + b
            acts.append(z if i == last else np.maximum(z, 0.0))
        return acts

    def fit(self, X: np.ndarray, y: np.ndarray | None = None) -> "Autoencoder":
        """Train to reconstruct ``X``; ``y`` is accepted and ignored."""
        if self.code_size < 1:
            raise ValueError(f"code_size must be >= 1, got {self.code_size}")
        X = check_array(X)
        rng = check_random_state(self.random_state)
        n, m = X.shape
        self.n_features_in_ = m
        hidden = tuple(int(h) for h in self.hidden_layer_sizes)
        sizes = [m, *hidden, self.code_size, *reversed(hidden), m]
        self._code_layer = len(hidden) + 1  # activation index of the code

        self.weights_: list[np.ndarray] = []
        self.biases_: list[np.ndarray] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            bound = np.sqrt(6.0 / (fan_in + fan_out))
            self.weights_.append(rng.uniform(-bound, bound, size=(fan_in, fan_out)))
            self.biases_.append(np.zeros(fan_out))

        # Adadelta accumulators: squared gradients and squared updates
        eg_W = [np.zeros_like(W) for W in self.weights_]
        ed_W = [np.zeros_like(W) for W in self.weights_]
        eg_b = [np.zeros_like(b) for b in self.biases_]
        ed_b = [np.zeros_like(b) for b in self.biases_]
        rho, eps = self.rho, self.eps
        batch = min(self.batch_size, n)

        self.loss_curve_: list[float] = []
        for _epoch in range(self.max_iter):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch):
                rows = order[start : start + batch]
                acts = self._forward(X[rows])
                recon = acts[-1]
                err = recon - X[rows]
                epoch_loss += float(np.sum(err * err))
                delta = 2.0 * err / (len(rows) * m)  # d(MSE)/d(recon)
                for layer in range(len(self.weights_) - 1, -1, -1):
                    gW = acts[layer].T @ delta
                    gb = delta.sum(axis=0)
                    if layer > 0:
                        delta = (delta @ self.weights_[layer].T) * (acts[layer] > 0)
                    for g, E_g, E_d, param in (
                        (gW, eg_W, ed_W, self.weights_),
                        (gb, eg_b, ed_b, self.biases_),
                    ):
                        E_g[layer] = rho * E_g[layer] + (1 - rho) * g * g
                        update = (
                            -np.sqrt(E_d[layer] + eps)
                            / np.sqrt(E_g[layer] + eps)
                            * g
                        )
                        E_d[layer] = rho * E_d[layer] + (1 - rho) * update * update
                        param[layer] += update
            self.loss_curve_.append(epoch_loss / (n * m))
        self.n_iter_ = len(self.loss_curve_)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Code-layer embedding of ``X`` (Proctor's learned representation)."""
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, expected {self.n_features_in_}"
            )
        return self._forward(X)[self._code_layer]

    def reconstruct(self, X: np.ndarray) -> np.ndarray:
        """Full encode-decode pass."""
        X = check_array(X)
        return self._forward(X)[-1]

    def reconstruction_error(self, X: np.ndarray) -> np.ndarray:
        """Per-sample MSE — the classic AE anomaly-detection score."""
        err = self.reconstruct(X) - X
        return np.mean(err * err, axis=1)
