"""Multi-layer perceptron classifier (MLP in the paper's Table IV).

Fully-connected ReLU network with a softmax output, trained by mini-batch
Adam on cross-entropy plus L2 weight decay (``alpha``), mirroring
scikit-learn's ``MLPClassifier`` defaults closely enough that the Table IV
grid (``max_iter``, ``hidden_layer_sizes``, ``alpha``) carries over.

All math is batched NumPy; the backward pass reuses forward activations so
each epoch is two GEMMs per layer — the hot path has no per-sample Python.
"""

from __future__ import annotations

import numpy as np

from .base import (
    BaseEstimator,
    ClassifierMixin,
    check_array,
    check_random_state,
    check_X_y,
    encode_labels,
)

__all__ = ["MLPClassifier"]


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class MLPClassifier(BaseEstimator, ClassifierMixin):
    """ReLU MLP with softmax output trained by Adam.

    Parameters
    ----------
    hidden_layer_sizes:
        Tuple of hidden widths, e.g. ``(50, 100, 50)`` (Table IV options:
        ``(10,10,10)``, ``(50,100,50)``, ``(100,)``).
    alpha:
        L2 penalty coefficient on weights (not biases).
    max_iter:
        Number of epochs.
    batch_size:
        Mini-batch size; clipped to the dataset size.
    learning_rate_init:
        Adam step size.
    tol / n_iter_no_change:
        Early stopping on training loss plateau (scikit-learn semantics).
    """

    def __init__(
        self,
        hidden_layer_sizes: tuple[int, ...] = (100,),
        alpha: float = 1e-4,
        max_iter: int = 200,
        batch_size: int = 32,
        learning_rate_init: float = 1e-3,
        tol: float = 1e-4,
        n_iter_no_change: int = 10,
        random_state: int | np.random.Generator | None = None,
    ):
        self.hidden_layer_sizes = hidden_layer_sizes
        self.alpha = alpha
        self.max_iter = max_iter
        self.batch_size = batch_size
        self.learning_rate_init = learning_rate_init
        self.tol = tol
        self.n_iter_no_change = n_iter_no_change
        self.random_state = random_state

    # ------------------------------------------------------------------
    def _init_weights(self, sizes: list[int], rng: np.random.Generator) -> None:
        self.weights_: list[np.ndarray] = []
        self.biases_: list[np.ndarray] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            # Glorot-uniform, as in scikit-learn
            bound = np.sqrt(6.0 / (fan_in + fan_out))
            self.weights_.append(rng.uniform(-bound, bound, size=(fan_in, fan_out)))
            self.biases_.append(np.zeros(fan_out))

    def _forward(self, X: np.ndarray) -> list[np.ndarray]:
        """Return activations per layer; the last entry is softmax output."""
        acts = [X]
        for i, (W, b) in enumerate(zip(self.weights_, self.biases_)):
            z = acts[-1] @ W + b
            if i < len(self.weights_) - 1:
                acts.append(np.maximum(z, 0.0))
            else:
                acts.append(_softmax(z))
        return acts

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        """Train with mini-batch Adam; stops early on loss plateau."""
        hidden = tuple(int(h) for h in self.hidden_layer_sizes)
        if any(h < 1 for h in hidden):
            raise ValueError(f"hidden layer sizes must be >= 1: {hidden}")
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        self.classes_, codes = encode_labels(y)
        n, m = X.shape
        k = len(self.classes_)
        self.n_features_in_ = m
        onehot = np.zeros((n, k))
        onehot[np.arange(n), codes] = 1.0

        self._init_weights([m, *hidden, k], rng)
        mW = [np.zeros_like(W) for W in self.weights_]
        vW = [np.zeros_like(W) for W in self.weights_]
        mB = [np.zeros_like(b) for b in self.biases_]
        vB = [np.zeros_like(b) for b in self.biases_]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        batch = min(self.batch_size, n)

        best_loss = np.inf
        stale = 0
        self.loss_curve_: list[float] = []
        for _epoch in range(self.max_iter):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch):
                rows = order[start : start + batch]
                acts = self._forward(X[rows])
                probs = acts[-1]
                epoch_loss += -np.sum(
                    onehot[rows] * np.log(probs + 1e-12)
                )
                delta = (probs - onehot[rows]) / len(rows)
                step += 1
                for layer in range(len(self.weights_) - 1, -1, -1):
                    gW = acts[layer].T @ delta + self.alpha * self.weights_[layer]
                    gb = delta.sum(axis=0)
                    if layer > 0:
                        delta = (delta @ self.weights_[layer].T) * (
                            acts[layer] > 0
                        )
                    # Adam update
                    mW[layer] = beta1 * mW[layer] + (1 - beta1) * gW
                    vW[layer] = beta2 * vW[layer] + (1 - beta2) * gW * gW
                    mB[layer] = beta1 * mB[layer] + (1 - beta1) * gb
                    vB[layer] = beta2 * vB[layer] + (1 - beta2) * gb * gb
                    mW_hat = mW[layer] / (1 - beta1**step)
                    vW_hat = vW[layer] / (1 - beta2**step)
                    mB_hat = mB[layer] / (1 - beta1**step)
                    vB_hat = vB[layer] / (1 - beta2**step)
                    self.weights_[layer] -= (
                        self.learning_rate_init * mW_hat / (np.sqrt(vW_hat) + eps)
                    )
                    self.biases_[layer] -= (
                        self.learning_rate_init * mB_hat / (np.sqrt(vB_hat) + eps)
                    )
            epoch_loss /= n
            self.loss_curve_.append(epoch_loss)
            if epoch_loss < best_loss - self.tol:
                best_loss = epoch_loss
                stale = 0
            else:
                stale += 1
                if stale >= self.n_iter_no_change:
                    break
        self.n_iter_ = len(self.loss_curve_)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Softmax output of the forward pass."""
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, expected {self.n_features_in_}"
            )
        return self._forward(X)[-1]
