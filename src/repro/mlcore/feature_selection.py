"""Chi-square feature scoring and top-k selection (paper Sec. III-B).

The paper computes a chi-square statistic between each (non-negative)
feature and the class label, sorts descending, and keeps the top ``k``
features (sweeping k ∈ {250, 500, 1000, 2000, 4000, 6436}; best = 2000).
The statistic here matches scikit-learn's ``chi2``: observed per-class
feature sums vs. expected sums under feature/class independence.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, check_array, check_X_y, encode_labels

__all__ = ["chi2_scores", "SelectKBest"]


def chi2_scores(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Chi-square statistic of each feature against the labels.

    ``X`` must be non-negative (apply :class:`~repro.mlcore.preprocessing.MinMaxScaler`
    first, as the paper does). Higher scores mean stronger dependence on the
    label and therefore higher selection priority.
    """
    X, y = check_X_y(X, y)
    if (X < 0).any():
        raise ValueError("chi2 requires non-negative features; scale first")
    _, codes = encode_labels(y)
    k = codes.max() + 1
    n = X.shape[0]
    # observed[c, j]: total mass of feature j within class c
    onehot = np.zeros((n, k))
    onehot[np.arange(n), codes] = 1.0
    observed = onehot.T @ X  # (k, m)
    feature_totals = X.sum(axis=0)  # (m,)
    class_priors = onehot.mean(axis=0)  # (k,)
    expected = np.outer(class_priors, feature_totals)  # (k, m)
    with np.errstate(invalid="ignore", divide="ignore"):
        terms = (observed - expected) ** 2 / expected
    # features with zero total mass are constant-zero: chi2 = 0
    terms = np.where(expected > 0, terms, 0.0)
    return terms.sum(axis=0)


class SelectKBest(BaseEstimator):
    """Keep the ``k`` highest-scoring features under a scoring function.

    Parameters
    ----------
    k:
        Number of features to retain; clipped to the available count, so the
        paper's "k = all features" ceiling case needs no special handling.
    score_func:
        Callable ``(X, y) -> scores``; defaults to :func:`chi2_scores`.
    """

    def __init__(self, k: int = 2000, score_func=chi2_scores):
        self.k = k
        self.score_func = score_func

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SelectKBest":
        """Score features on the training split and record the kept indices."""
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        X, y = check_X_y(X, y)
        self.scores_ = self.score_func(X, y)
        k = min(self.k, X.shape[1])
        # stable top-k: sort by (-score, index) so ties keep original order
        order = np.lexsort((np.arange(len(self.scores_)), -self.scores_))
        self.support_ = np.sort(order[:k])
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Project onto the selected feature subset."""
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, expected {self.n_features_in_}"
            )
        return X[:, self.support_]

    def fit_transform(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Fit on ``(X, y)`` then transform ``X``."""
        return self.fit(X, y).transform(X)

    def get_support(self) -> np.ndarray:
        """Indices of the selected features (sorted ascending)."""
        return self.support_.copy()
