"""repro.mlcore — from-scratch ML substrate (scikit-learn / LightGBM stand-in).

Implements every model and utility the paper's pipeline uses: the four
classifiers of Table IV (random forest, LGBM, logistic regression, MLP),
the Proctor autoencoder, Min-Max scaling, chi-square feature selection,
stratified splitting / K-fold CV / grid search, and the paper's metrics
(macro F1, false alarm rate, anomaly miss rate). NumPy-only.
"""

from .autoencoder import Autoencoder
from .base import BaseEstimator, ClassifierMixin, clone
from .binning import BinnedDataset, Binner
from .calibration import (
    TemperatureScaler,
    expected_calibration_error,
    reliability_curve,
)
from .dummy import MajorityClassifier, StratifiedRandomClassifier
from .feature_selection import SelectKBest, chi2_scores
from .forest import RandomForestClassifier
from .gbm import LGBMClassifier
from .linear import LogisticRegression
from .metrics import (
    accuracy_score,
    anomaly_miss_rate,
    balanced_accuracy_score,
    matthews_corrcoef,
    classification_report,
    confusion_matrix,
    f1_score,
    false_alarm_rate,
    precision_recall_f1,
    precision_score,
    recall_score,
)
from .mlp import MLPClassifier
from .model_selection import (
    GridSearchCV,
    StratifiedKFold,
    cross_val_score,
    learning_curve,
    train_test_split,
)
from .preprocessing import LabelEncoder, MinMaxScaler
from .tree import DecisionTreeClassifier

__all__ = [
    "Autoencoder",
    "BaseEstimator",
    "BinnedDataset",
    "Binner",
    "ClassifierMixin",
    "DecisionTreeClassifier",
    "GridSearchCV",
    "LGBMClassifier",
    "LabelEncoder",
    "LogisticRegression",
    "MLPClassifier",
    "MajorityClassifier",
    "MinMaxScaler",
    "RandomForestClassifier",
    "SelectKBest",
    "StratifiedRandomClassifier",
    "TemperatureScaler",
    "StratifiedKFold",
    "accuracy_score",
    "anomaly_miss_rate",
    "balanced_accuracy_score",
    "chi2_scores",
    "classification_report",
    "clone",
    "confusion_matrix",
    "cross_val_score",
    "expected_calibration_error",
    "f1_score",
    "false_alarm_rate",
    "learning_curve",
    "matthews_corrcoef",
    "precision_recall_f1",
    "precision_score",
    "recall_score",
    "reliability_curve",
    "train_test_split",
]
