"""Evaluation metrics used throughout the paper's Sec. V.

Three headline quantities:

* **macro F1** — harmonic mean of per-class precision/recall, averaged
  unweighted over classes (the paper's "F1-score");
* **false alarm rate** — fraction of *healthy* samples classified as any
  anomaly class (false-positive rate of the anomaly superclass);
* **anomaly miss rate** — fraction of *anomalous* samples (any anomaly)
  classified as healthy (false-negative rate of the superclass).

The diagnosis task is multi-class, but false-alarm/miss rates collapse it to
healthy-vs-anomalous, exactly as the paper defines them.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "confusion_matrix",
    "precision_recall_f1",
    "f1_score",
    "precision_score",
    "recall_score",
    "accuracy_score",
    "balanced_accuracy_score",
    "matthews_corrcoef",
    "false_alarm_rate",
    "anomaly_miss_rate",
    "classification_report",
]

HEALTHY_LABEL = "healthy"


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ValueError(
            f"y_true {y_true.shape} and y_pred {y_pred.shape} must be equal-length 1-D"
        )
    if len(y_true) == 0:
        raise ValueError("empty label arrays")
    return y_true, y_pred


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, labels: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(matrix, labels)`` with rows = true class, cols = predicted."""
    y_true, y_pred = _validate(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = np.asarray(labels)
    index = {label: i for i, label in enumerate(labels)}
    k = len(labels)
    cm = np.zeros((k, k), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        cm[index[t], index[p]] += 1
    return cm, labels


def precision_recall_f1(
    y_true: np.ndarray, y_pred: np.ndarray, labels: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-class precision, recall, F1 and the label order.

    Classes absent from both predictions and truth contribute 0 to each
    metric (scikit-learn's ``zero_division=0`` behaviour).
    """
    cm, labels = confusion_matrix(y_true, y_pred, labels)
    tp = np.diag(cm).astype(float)
    pred_totals = cm.sum(axis=0).astype(float)
    true_totals = cm.sum(axis=1).astype(float)
    with np.errstate(invalid="ignore", divide="ignore"):
        precision = np.where(pred_totals > 0, tp / np.where(pred_totals > 0, pred_totals, 1), 0.0)
        recall = np.where(true_totals > 0, tp / np.where(true_totals > 0, true_totals, 1), 0.0)
        denom = precision + recall
        f1 = np.where(denom > 0, 2 * precision * recall / np.where(denom > 0, denom, 1), 0.0)
    return precision, recall, f1, labels


def f1_score(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    average: str = "macro",
    labels: np.ndarray | None = None,
) -> float | np.ndarray:
    """Macro / weighted / per-class F1 (paper reports macro)."""
    precision, recall, f1, lab = precision_recall_f1(y_true, y_pred, labels)
    if average == "macro":
        return float(f1.mean())
    if average == "weighted":
        y_true = np.asarray(y_true)
        weights = np.array([np.sum(y_true == c) for c in lab], dtype=float)
        total = weights.sum()
        return float((f1 * weights).sum() / total) if total else 0.0
    if average is None or average == "none":
        return f1
    raise ValueError(f"unknown average {average!r}")


def precision_score(y_true: np.ndarray, y_pred: np.ndarray, average: str = "macro") -> float:
    """Macro-averaged precision."""
    precision, _, _, _ = precision_recall_f1(y_true, y_pred)
    if average != "macro":
        raise ValueError("only macro precision is exposed")
    return float(precision.mean())


def recall_score(y_true: np.ndarray, y_pred: np.ndarray, average: str = "macro") -> float:
    """Macro-averaged recall."""
    _, recall, _, _ = precision_recall_f1(y_true, y_pred)
    if average != "macro":
        raise ValueError("only macro recall is exposed")
    return float(recall.mean())


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Plain accuracy."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def balanced_accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean per-class recall — accuracy that class imbalance cannot flatter.

    On a 90%-healthy stream, predicting everything healthy scores 0.9
    accuracy but only ``1 / n_classes`` balanced accuracy.
    """
    _, recall, _, labels = precision_recall_f1(y_true, y_pred)
    y_true = np.asarray(y_true)
    present = np.array([np.any(y_true == label) for label in labels])
    if not present.any():
        return 0.0
    return float(recall[present].mean())


def matthews_corrcoef(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Multi-class Matthews correlation (Gorodkin's R_K statistic).

    +1 = perfect, 0 = no better than chance, negative = anti-correlated.
    Degenerate marginals (all-one-class truth or prediction) return 0.
    """
    cm, _ = confusion_matrix(y_true, y_pred)
    cm = cm.astype(np.float64)
    n = cm.sum()
    t = cm.sum(axis=1)  # true per class
    p = cm.sum(axis=0)  # predicted per class
    correct = np.trace(cm)
    cov_tp = correct * n - t @ p
    cov_tt = n * n - t @ t
    cov_pp = n * n - p @ p
    denom = np.sqrt(cov_tt * cov_pp)
    if denom == 0:
        return 0.0
    return float(cov_tp / denom)


def false_alarm_rate(
    y_true: np.ndarray, y_pred: np.ndarray, healthy_label: object = HEALTHY_LABEL
) -> float:
    """Fraction of healthy samples predicted as any anomaly class.

    Returns 0 when no healthy samples exist (nothing to falsely alarm on).
    """
    y_true, y_pred = _validate(y_true, y_pred)
    healthy = y_true == healthy_label
    n_healthy = int(healthy.sum())
    if n_healthy == 0:
        return 0.0
    return float(np.sum(y_pred[healthy] != healthy_label) / n_healthy)


def anomaly_miss_rate(
    y_true: np.ndarray, y_pred: np.ndarray, healthy_label: object = HEALTHY_LABEL
) -> float:
    """Fraction of anomalous samples (any anomaly type) predicted healthy.

    Misdiagnosis *between* anomaly classes does not count as a miss — the
    paper's definition only penalizes anomalous→healthy errors.
    """
    y_true, y_pred = _validate(y_true, y_pred)
    anomalous = y_true != healthy_label
    n_anom = int(anomalous.sum())
    if n_anom == 0:
        return 0.0
    return float(np.sum(y_pred[anomalous] == healthy_label) / n_anom)


def classification_report(y_true: np.ndarray, y_pred: np.ndarray) -> str:
    """Human-readable per-class precision/recall/F1 table."""
    precision, recall, f1, labels = precision_recall_f1(y_true, y_pred)
    y_true = np.asarray(y_true)
    width = max((len(str(label)) for label in labels), default=5)
    lines = [f"{'class':<{width}}  precision  recall  f1      support"]
    for i, label in enumerate(labels):
        support = int(np.sum(y_true == label))
        lines.append(
            f"{str(label):<{width}}  {precision[i]:>9.3f}  {recall[i]:>6.3f}  "
            f"{f1[i]:>6.3f}  {support:>7d}"
        )
    lines.append(
        f"{'macro':<{width}}  {precision.mean():>9.3f}  {recall.mean():>6.3f}  "
        f"{f1.mean():>6.3f}  {len(y_true):>7d}"
    )
    return "\n".join(lines)
