"""Trivial baseline classifiers (sanity floors for every experiment).

Any claimed result should clear these: ``MajorityClassifier`` predicts the
most frequent training class (on a 90%-healthy pool that already looks
"accurate" while diagnosing nothing — which is precisely why the paper
reports macro F1 and the two operational rates instead of accuracy);
``StratifiedRandomClassifier`` samples predictions from the training
class distribution.
"""

from __future__ import annotations

import numpy as np

from .base import (
    BaseEstimator,
    ClassifierMixin,
    check_array,
    check_random_state,
    check_X_y,
)

__all__ = ["MajorityClassifier", "StratifiedRandomClassifier"]


class MajorityClassifier(BaseEstimator, ClassifierMixin):
    """Always predicts the most frequent training class."""

    def __init__(self):
        pass

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MajorityClassifier":
        """Record class frequencies; ties break toward the smaller label."""
        X, y = check_X_y(X, y)
        self.classes_, counts = np.unique(y, return_counts=True)
        self._proba = counts / counts.sum()
        self._winner = int(np.argmax(counts))
        self.n_features_in_ = X.shape[1]
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Every row is the training class distribution."""
        X = check_array(X)
        return np.tile(self._proba, (X.shape[0], 1))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """The majority class, for every sample."""
        X = check_array(X)
        return np.full(X.shape[0], self.classes_[self._winner])


class StratifiedRandomClassifier(BaseEstimator, ClassifierMixin):
    """Predicts labels drawn from the training class distribution."""

    def __init__(self, random_state: int | np.random.Generator | None = None):
        self.random_state = random_state

    def fit(self, X: np.ndarray, y: np.ndarray) -> "StratifiedRandomClassifier":
        """Record the empirical class distribution."""
        X, y = check_X_y(X, y)
        self.classes_, counts = np.unique(y, return_counts=True)
        self._proba = counts / counts.sum()
        self._rng = check_random_state(self.random_state)
        self.n_features_in_ = X.shape[1]
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Every row is the training class distribution."""
        X = check_array(X)
        return np.tile(self._proba, (X.shape[0], 1))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Independent draws from the training distribution."""
        X = check_array(X)
        return self._rng.choice(self.classes_, size=X.shape[0], p=self._proba)
