"""``python -m repro`` — the ALBADross command-line interface."""

from .cli import main

raise SystemExit(main())
