"""Deterministic fault-injection harness for chaos-style tests.

Production failure modes — a wedged extractor, a model that dies
transiently, a scorer that silently truncates its output or emits NaN
confidences — are exactly the ones unit tests never exercise by
accident. This module makes them reproducible: a :class:`FaultPlan`
decides, per call, which fault to apply (scripted, or seeded-random),
and :class:`FaultInjector` wraps any callable — a ``predict_fn``, a
registry ``load``, a feature extractor — with that schedule.

Actions (strings, so plans read like incident timelines):

``"ok"``
    Delegate untouched.
``"raise"`` / ``"raise:N"``
    Raise :class:`InjectedFault` (``N`` repeats the action N calls).
``"stall:SECONDS"``
    Sleep, then delegate — models a slow dependency; pair with engine
    deadlines or the watchdog's stall timeout.
``"hang"``
    Block until the injector's :attr:`FaultInjector.release` event is
    set (bounded by ``hang_limit_s`` so a buggy test cannot wedge CI).
``"truncate"`` / ``"truncate:N"``
    Delegate, then drop the last ``N`` (default 1) elements of a
    sequence result — the contract violation that used to hang
    micro-batcher futures forever.
``"nan"``
    Delegate, then replace every ``Diagnosis`` confidence with NaN.

Everything is deterministic: scripted plans replay verbatim, random
plans derive from an explicit seed, and the injector logs every decision
in :attr:`FaultInjector.log` for assertions.
"""

from __future__ import annotations

import math
import random
import threading
import time
from dataclasses import replace
from typing import Callable, Sequence

from ..core.framework import Diagnosis

__all__ = ["InjectedFault", "FaultPlan", "FaultInjector"]


class InjectedFault(RuntimeError):
    """The error raised by a ``"raise"`` action (clearly not a real bug)."""


class FaultPlan:
    """A per-call schedule of fault actions.

    Build one with :meth:`script` (explicit timeline, repeats expanded,
    exhausted plans keep returning ``"ok"``) or :meth:`random` (seeded
    Bernoulli faults, fully reproducible).
    """

    def __init__(self, next_action: Callable[[int], str]):
        self._next_action = next_action
        self._calls = 0
        self._lock = threading.Lock()

    @classmethod
    def script(cls, actions: Sequence[str]) -> "FaultPlan":
        """Replay ``actions`` in order; ``"ok"`` forever after the end."""
        expanded: list[str] = []
        for action in actions:
            kind, _, arg = action.partition(":")
            if kind in ("raise", "truncate") and arg and arg.isdigit():
                expanded.extend([kind] * int(arg))
            else:
                expanded.append(action)

        def pick(i: int) -> str:
            return expanded[i] if i < len(expanded) else "ok"

        return cls(pick)

    @classmethod
    def random(
        cls, seed: int, p_fault: float = 0.5, action: str = "raise"
    ) -> "FaultPlan":
        """Apply ``action`` with probability ``p_fault`` per call, seeded."""
        if not 0.0 <= p_fault <= 1.0:
            raise ValueError(f"p_fault must be in [0, 1], got {p_fault}")
        rng = random.Random(seed)

        def pick(i: int) -> str:
            return action if rng.random() < p_fault else "ok"

        return cls(pick)

    def next_action(self) -> str:
        with self._lock:
            action = self._next_action(self._calls)
            self._calls += 1
        return action

    @property
    def calls(self) -> int:
        with self._lock:
            return self._calls


class FaultInjector:
    """Wrap callables so they fail on a :class:`FaultPlan` schedule.

    One injector can wrap several collaborators (predict, registry load,
    extractor) against a single shared plan, or each can get its own.
    ``release`` unblocks every ``"hang"`` in progress — set it from the
    test once the stall has been observed.
    """

    def __init__(self, plan: FaultPlan, hang_limit_s: float = 30.0):
        if hang_limit_s <= 0:
            raise ValueError(f"hang_limit_s must be > 0, got {hang_limit_s}")
        self.plan = plan
        self.hang_limit_s = hang_limit_s
        self.release = threading.Event()
        self.stalled = threading.Event()  # set when a stall/hang begins
        self.log: list[str] = []
        self._lock = threading.Lock()

    def wrap(self, fn: Callable) -> Callable:
        """Return ``fn`` guarded by this injector's schedule."""

        def wrapped(*args, **kwargs):
            action = self.plan.next_action()
            with self._lock:
                self.log.append(action)
            kind, _, arg = action.partition(":")
            if kind == "raise":
                raise InjectedFault(f"injected fault (call {self.plan.calls})")
            if kind == "stall":
                self.stalled.set()
                time.sleep(float(arg or "0.1"))
            elif kind == "hang":
                self.stalled.set()
                self.release.wait(self.hang_limit_s)
            out = fn(*args, **kwargs)
            if kind == "truncate":
                drop = int(arg or "1")
                return list(out)[: max(0, len(out) - drop)]
            if kind == "nan":
                return [
                    replace(d, confidence=math.nan)
                    if isinstance(d, Diagnosis)
                    else d
                    for d in out
                ]
            return out

        return wrapped

    # convenience: injector(predict_fn) == injector.wrap(predict_fn)
    __call__ = wrap
