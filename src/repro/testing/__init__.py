"""repro.testing — deterministic chaos tooling for the serving stack.

* :mod:`repro.testing.faults` — seeded fault-injection wrappers that make
  any ``predict_fn``/registry/extractor raise, stall, truncate results,
  or return NaNs on a reproducible schedule.
"""

from .faults import FaultInjector, FaultPlan, InjectedFault

__all__ = ["FaultInjector", "FaultPlan", "InjectedFault"]
