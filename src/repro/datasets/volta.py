"""The Volta dataset configuration (paper Sec. IV-A(1)).

Volta: Cray XC30m testbed, 52 nodes; 11 applications (Table I) run over 4
compute nodes with 3 inputs each for 10–15 minutes; 721 LDMS metrics at
1 Hz; anomalies injected at 6 intensities (2–100%).

``volta_config`` defaults to a *scaled* campaign (shorter runs, smaller
metric catalog, fewer repetitions) so that experiments complete in minutes
on one machine while preserving the dataset's structure; ``scale=1.0``
reproduces the paper's full metric catalog and run lengths.
"""

from __future__ import annotations

from ..anomalies.base import VOLTA_INTENSITIES
from ..apps.volta_apps import VOLTA_APPS
from ..telemetry.catalog import volta_catalog
from ..telemetry.node import VOLTA_NODE
from .generate import SystemConfig

__all__ = ["volta_config"]


def volta_config(
    scale: float = 0.1,
    n_healthy_per_app_input: int = 10,
    n_anomalous_per_app_anomaly: int = 6,
    duration: int | None = None,
) -> SystemConfig:
    """Build a Volta campaign configuration.

    ``scale`` controls the metric catalog size (0.1 → ~76 metrics;
    1.0 → the paper's 721) and, unless overridden, the run duration
    (scale 1.0 → 750 s ≈ the paper's 10–15 min; scaled runs stay above
    120 s so the oscillation structure survives feature extraction).
    """
    if duration is None:
        duration = max(120, int(750 * scale))
    return SystemConfig(
        name="volta",
        apps=VOLTA_APPS,
        catalog=volta_catalog(scale=scale),
        node=VOLTA_NODE,
        intensities=VOLTA_INTENSITIES,
        node_counts=(4,),
        duration=duration,
        n_healthy_per_app_input=n_healthy_per_app_input,
        n_anomalous_per_app_anomaly=n_anomalous_per_app_anomaly,
    )
