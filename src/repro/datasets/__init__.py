"""repro.datasets — campaign generation and experiment splits.

Volta / Eclipse campaign configurations, the run generator, and the
Fig. 2 / app-holdout / input-holdout split builders with the in-split
preprocessing (Min-Max + chi-square) of Sec. IV-E2.
"""

from .eclipse import eclipse_config
from .generate import SystemConfig, build_dataset, generate_corpus, generate_runs
from .runs_io import load_runs, save_runs
from .splits import (
    PreparedSplit,
    SplitBundle,
    make_app_holdout_split,
    make_input_holdout_split,
    make_standard_split,
    prepare,
)
from .volta import volta_config

__all__ = [
    "PreparedSplit",
    "SplitBundle",
    "SystemConfig",
    "build_dataset",
    "eclipse_config",
    "generate_corpus",
    "generate_runs",
    "load_runs",
    "save_runs",
    "make_app_holdout_split",
    "make_input_holdout_split",
    "make_standard_split",
    "prepare",
    "volta_config",
]
