"""Dataset splitting for the paper's experimental scenarios (Fig. 2, Sec. V).

Three split shapes:

* **standard** (Fig. 2): the corpus divides into a *test* dataset and an
  *active-learning training* dataset; the latter further divides into the
  labeled **seed** (one sample per (application, class) pair — healthy
  included by default, see ``_pick_seed`` for the paper-literal variant)
  and the unlabeled **pool**, rebalanced to the paper's 10% anomaly ratio.
* **app holdout** (Figs. 6/7): seed and pool contain only the chosen
  training applications; the test dataset contains only the held-out apps.
* **input holdout** (Fig. 8): seed and pool contain only runs of the first
  input deck; the test dataset contains the remaining decks.

``prepare`` then applies the paper's preprocessing *within* a split:
Min-Max scaling and chi-square top-k selection are fit on the AL training
portion (seed ∪ pool) and applied to everything — the test set stays
withheld, as Sec. IV-E2 requires.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..features.pipeline import FeatureDataset
from ..mlcore.base import check_random_state
from ..mlcore.feature_selection import SelectKBest
from ..mlcore.preprocessing import MinMaxScaler

__all__ = [
    "SplitBundle",
    "PreparedSplit",
    "make_standard_split",
    "make_app_holdout_split",
    "make_input_holdout_split",
    "prepare",
]

HEALTHY = "healthy"


@dataclass
class SplitBundle:
    """Seed / pool / test datasets for one experiment replicate."""

    seed: FeatureDataset
    pool: FeatureDataset
    test: FeatureDataset

    @property
    def train(self) -> FeatureDataset:
        """Seed ∪ pool — the paper's "active learning training dataset"."""
        return FeatureDataset(
            X=np.vstack([self.seed.X, self.pool.X]),
            labels=np.concatenate([self.seed.labels, self.pool.labels]),
            apps=np.concatenate([self.seed.apps, self.pool.apps]),
            input_decks=np.concatenate([self.seed.input_decks, self.pool.input_decks]),
            intensities=np.concatenate([self.seed.intensities, self.pool.intensities]),
            node_counts=np.concatenate([self.seed.node_counts, self.pool.node_counts]),
            feature_names=self.seed.feature_names,
        )


@dataclass
class PreparedSplit:
    """A split after scaling + chi-square selection, ready for models."""

    X_seed: np.ndarray
    y_seed: np.ndarray
    X_pool: np.ndarray
    y_pool: np.ndarray
    pool_apps: np.ndarray
    X_test: np.ndarray
    y_test: np.ndarray
    scaler: MinMaxScaler
    selector: SelectKBest


def _pick_seed(
    ds: FeatureDataset,
    rng: np.random.Generator,
    candidate_mask: np.ndarray,
    include_healthy: bool = True,
) -> np.ndarray:
    """One sample per (application, class) pair from the candidates.

    The paper's Fig. 2 calls this "one sample from each application and
    anomaly pair". Read literally that excludes healthy seeds — but then
    the initial model could never predict *healthy*, capping the starting
    macro F1 far below the paper's reported 0.86/0.72, so by default we
    include one healthy sample per application as well (and expose the
    literal reading via ``include_healthy=False``; see EXPERIMENTS.md).
    """
    idx: list[int] = []
    labels = ds.labels
    apps = ds.apps
    for app in np.unique(apps[candidate_mask]):
        for label in np.unique(labels[candidate_mask]):
            if label == HEALTHY and not include_healthy:
                continue
            members = np.flatnonzero(
                candidate_mask & (apps == app) & (labels == label)
            )
            if len(members):
                idx.append(int(rng.choice(members)))
    if not idx:
        raise ValueError("no samples available for the seed set")
    return np.array(sorted(idx))


def _balance_pool(
    ds: FeatureDataset,
    pool_idx: np.ndarray,
    anomaly_ratio: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Subsample anomalous pool rows down to the target anomaly ratio."""
    labels = ds.labels[pool_idx]
    healthy_idx = pool_idx[labels == HEALTHY]
    anom_idx = pool_idx[labels != HEALTHY]
    if len(healthy_idx) == 0:
        raise ValueError("pool has no healthy samples; increase campaign size")
    # ratio = A / (A + H)  =>  A = H * ratio / (1 - ratio)
    target_anom = int(round(len(healthy_idx) * anomaly_ratio / (1.0 - anomaly_ratio)))
    target_anom = min(target_anom, len(anom_idx))
    if target_anom < len(anom_idx):
        # stratify the subsample over anomaly types so no class vanishes
        kept: list[int] = []
        anom_labels = ds.labels[anom_idx]
        types = np.unique(anom_labels)
        per_type = max(1, target_anom // len(types))
        for t in types:
            members = anom_idx[anom_labels == t]
            take = min(per_type, len(members))
            kept.extend(rng.choice(members, size=take, replace=False).tolist())
        anom_idx = np.array(sorted(kept))
    return np.sort(np.concatenate([healthy_idx, anom_idx]))


def make_standard_split(
    ds: FeatureDataset,
    rng: int | np.random.Generator | None = None,
    test_frac: float = 0.35,
    pool_anomaly_ratio: float = 0.10,
    seed_healthy: bool = True,
) -> SplitBundle:
    """The Fig. 2 split: stratified test carve-out, anomalous seed, 10% pool.

    Stratification is per (label, app) cell so the test set mirrors the
    corpus composition, matching the paper's stratified 5-repeat protocol.
    """
    if not 0.0 < test_frac < 1.0:
        raise ValueError(f"test_frac must be in (0, 1), got {test_frac}")
    rng = check_random_state(rng)
    n = len(ds)
    test_mask = np.zeros(n, dtype=bool)
    for app in np.unique(ds.apps):
        for label in np.unique(ds.labels):
            members = np.flatnonzero((ds.apps == app) & (ds.labels == label))
            if len(members) == 0:
                continue
            rng.shuffle(members)
            n_test = int(round(test_frac * len(members)))
            if len(members) >= 3:
                n_test = min(max(n_test, 1), len(members) - 2)
            test_mask[members[:n_test]] = True

    train_mask = ~test_mask
    seed_idx = _pick_seed(ds, rng, train_mask, include_healthy=seed_healthy)
    pool_candidates = np.flatnonzero(train_mask)
    pool_candidates = pool_candidates[~np.isin(pool_candidates, seed_idx)]
    pool_idx = _balance_pool(ds, pool_candidates, pool_anomaly_ratio, rng)
    return SplitBundle(
        seed=ds.subset(seed_idx),
        pool=ds.subset(pool_idx),
        test=ds.subset(np.flatnonzero(test_mask)),
    )


def make_app_holdout_split(
    ds: FeatureDataset,
    train_apps: list[str],
    rng: int | np.random.Generator | None = None,
    pool_anomaly_ratio: float = 0.10,
    seed_healthy: bool = True,
) -> SplitBundle:
    """Figs. 6/7: train on ``train_apps``, test on every other application."""
    rng = check_random_state(rng)
    train_apps_arr = np.asarray(train_apps)
    unknown = set(train_apps_arr) - set(ds.apps)
    if unknown:
        raise ValueError(f"apps not in dataset: {sorted(unknown)}")
    train_mask = np.isin(ds.apps, train_apps_arr)
    test_mask = ~train_mask
    if not test_mask.any():
        raise ValueError("no held-out applications left for the test set")
    seed_idx = _pick_seed(ds, rng, train_mask, include_healthy=seed_healthy)
    pool_candidates = np.flatnonzero(train_mask)
    pool_candidates = pool_candidates[~np.isin(pool_candidates, seed_idx)]
    pool_idx = _balance_pool(ds, pool_candidates, pool_anomaly_ratio, rng)
    return SplitBundle(
        seed=ds.subset(seed_idx),
        pool=ds.subset(pool_idx),
        test=ds.subset(np.flatnonzero(test_mask)),
    )


def make_input_holdout_split(
    ds: FeatureDataset,
    train_input: int = 0,
    rng: int | np.random.Generator | None = None,
    pool_anomaly_ratio: float = 0.10,
    seed_healthy: bool = True,
) -> SplitBundle:
    """Fig. 8: train on one input deck, test on all the others."""
    rng = check_random_state(rng)
    train_mask = ds.input_decks == train_input
    if not train_mask.any():
        raise ValueError(f"no runs with input deck {train_input}")
    test_mask = ~train_mask
    if not test_mask.any():
        raise ValueError("corpus has a single input deck; nothing to hold out")
    seed_idx = _pick_seed(ds, rng, train_mask, include_healthy=seed_healthy)
    pool_candidates = np.flatnonzero(train_mask)
    pool_candidates = pool_candidates[~np.isin(pool_candidates, seed_idx)]
    pool_idx = _balance_pool(ds, pool_candidates, pool_anomaly_ratio, rng)
    return SplitBundle(
        seed=ds.subset(seed_idx),
        pool=ds.subset(pool_idx),
        test=ds.subset(np.flatnonzero(test_mask)),
    )


def prepare(
    bundle: SplitBundle,
    k_features: int = 500,
    selection_cache: "str | None" = None,
) -> PreparedSplit:
    """Scale + select features within a split (test set withheld from fits).

    The Min-Max scaler and the chi-square selector are fit on the AL
    training portion (seed ∪ pool, using the pool's ground-truth labels —
    the same offline-calibration convention the paper uses when sweeping
    the feature count), then applied to seed, pool, and test alike.

    ``selection_cache`` names a directory for
    :func:`repro.experiments.cache.cached_selection`: the chi-square fit
    is content-addressed by (scaled training matrix, labels, k), so
    repeated preparations of the same split replicate — e.g. several
    benches sharing one corpus — pay for the selector once.
    """
    train = bundle.train
    scaler = MinMaxScaler(clip=True).fit(train.X)
    scaled = scaler.transform(train.X)
    if selection_cache is not None:
        from ..experiments.cache import cached_selection

        selector = cached_selection(scaled, train.labels, k_features, selection_cache)
    else:
        selector = SelectKBest(k=k_features).fit(scaled, train.labels)

    def _prep(X: np.ndarray) -> np.ndarray:
        return selector.transform(scaler.transform(X))

    return PreparedSplit(
        X_seed=_prep(bundle.seed.X),
        y_seed=bundle.seed.labels.copy(),
        X_pool=_prep(bundle.pool.X),
        y_pool=bundle.pool.labels.copy(),
        pool_apps=bundle.pool.apps.copy(),
        X_test=_prep(bundle.test.X),
        y_test=bundle.test.labels.copy(),
        scaler=scaler,
        selector=selector,
    )
