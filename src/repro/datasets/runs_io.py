"""Raw run-record persistence (.npz archives).

The CLI's campaign/train/diagnose stages exchange *raw* telemetry runs,
not featurized matrices — feature extraction belongs to the trained
framework (its drop-mask and scaler are fit state). This module packs a
list of :class:`~repro.telemetry.collector.RunRecord` into one compressed
archive: a stacked data tensor (runs must share duration and catalog) plus
parallel metadata arrays.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

from ..telemetry.collector import RunRecord

__all__ = ["save_runs", "load_runs"]


def save_runs(runs: Sequence[RunRecord], path: str | Path) -> Path:
    """Write runs to a compressed ``.npz``; all runs must be homogeneous."""
    if not runs:
        raise ValueError("no runs to save")
    durations = {r.data.shape[0] for r in runs}
    widths = {r.data.shape[1] for r in runs}
    if len(durations) != 1 or len(widths) != 1:
        raise ValueError(
            f"runs are heterogeneous: durations {sorted(durations)}, "
            f"metric counts {sorted(widths)}"
        )
    names = runs[0].metric_names
    for r in runs:
        if r.metric_names != names:
            raise ValueError("runs disagree on metric names")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        data=np.stack([r.data for r in runs]),
        app=np.array([r.app for r in runs]),
        input_deck=np.array([r.input_deck for r in runs]),
        node_count=np.array([r.node_count for r in runs]),
        node_id=np.array([r.node_id for r in runs]),
        anomaly=np.array([r.anomaly or "" for r in runs]),
        intensity=np.array([r.intensity for r in runs]),
        metric_names=np.array(names, dtype=object),
    )
    return path


def load_runs(path: str | Path) -> list[RunRecord]:
    """Restore runs written by :func:`save_runs`."""
    with np.load(Path(path), allow_pickle=True) as z:
        names = list(z["metric_names"])
        return [
            RunRecord(
                app=str(z["app"][i]),
                input_deck=int(z["input_deck"][i]),
                node_count=int(z["node_count"][i]),
                node_id=int(z["node_id"][i]),
                anomaly=str(z["anomaly"][i]) or None,
                intensity=float(z["intensity"][i]),
                data=z["data"][i],
                metric_names=names,
            )
            for i in range(len(z["app"]))
        ]
