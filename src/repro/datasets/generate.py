"""Run-campaign generation (paper Sec. IV-A/IV-C data collection).

A *campaign* runs every application with every input deck many times,
healthy and with each synthetic anomaly at each intensity setting, and
records per-node telemetry — the raw material behind both the Volta and
Eclipse datasets. :class:`SystemConfig` captures everything that differs
between the two systems (applications, node hardware, metric catalog,
intensity grid, node counts, run durations), and
:func:`generate_runs` / :func:`build_dataset` execute the campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

import numpy as np

from ..anomalies import get_anomaly
from ..apps.base import AppSignature
from ..features.pipeline import FeatureDataset, FeatureExtractor
from ..mlcore.base import check_random_state
from ..telemetry.catalog import MetricCatalog
from ..telemetry.collector import Collector, RunRecord
from ..telemetry.node import NodeProfile

__all__ = ["SystemConfig", "generate_runs", "build_dataset"]


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to run a data-collection campaign on one system.

    ``n_healthy_per_app_input`` healthy runs are collected for every
    (application, input deck) pair; ``n_anomalous_per_app_anomaly``
    anomalous runs for every (application, anomaly) pair, cycling through
    input decks, node counts, and the intensity grid so the anomalous
    corpus covers the full condition matrix.
    """

    name: str
    apps: Mapping[str, AppSignature]
    catalog: MetricCatalog
    node: NodeProfile
    anomaly_names: tuple[str, ...] = (
        "cpuoccupy",
        "cachecopy",
        "membw",
        "memleak",
        "dial",
    )
    intensities: tuple[float, ...] = (0.1, 0.5, 1.0)
    node_counts: tuple[int, ...] = (4,)
    duration: int = 120
    n_healthy_per_app_input: int = 10
    n_anomalous_per_app_anomaly: int = 6
    missing_rate: float = 0.005

    def __post_init__(self) -> None:
        if not self.apps:
            raise ValueError("campaign needs at least one application")
        if self.duration < 32:
            raise ValueError(f"duration too short for feature extraction: {self.duration}")
        if self.n_healthy_per_app_input < 1 or self.n_anomalous_per_app_anomaly < 1:
            raise ValueError("need at least one run per condition")

    @property
    def classes(self) -> tuple[str, ...]:
        """The diagnosis label set: healthy plus every anomaly."""
        return ("healthy", *self.anomaly_names)


def generate_runs(
    config: SystemConfig,
    rng: int | np.random.Generator | None = None,
) -> list[RunRecord]:
    """Execute the full campaign and return every collected run."""
    rng = check_random_state(rng)
    collector = Collector(config.catalog, config.node, config.missing_rate)
    runs: list[RunRecord] = []
    for app_name, app in sorted(config.apps.items()):
        n_inputs = min(app.n_inputs, 3)
        for deck in range(n_inputs):
            for _ in range(config.n_healthy_per_app_input):
                node_count = config.node_counts[
                    int(rng.integers(len(config.node_counts)))
                ]
                runs.append(
                    collector.collect(
                        app,
                        input_deck=deck,
                        duration=config.duration,
                        node_count=node_count,
                        rng=rng,
                    )
                )
        for anomaly_name in config.anomaly_names:
            anomaly = get_anomaly(anomaly_name)
            for i in range(config.n_anomalous_per_app_anomaly):
                deck = i % n_inputs
                intensity = config.intensities[i % len(config.intensities)]
                node_count = config.node_counts[i % len(config.node_counts)]
                runs.append(
                    collector.collect(
                        app,
                        input_deck=deck,
                        duration=config.duration,
                        anomaly=anomaly,
                        intensity=intensity,
                        node_count=node_count,
                        rng=rng,
                    )
                )
    return runs


def build_dataset(
    config: SystemConfig,
    method: str = "mvts",
    rng: int | np.random.Generator | None = None,
    map_fn: Callable[..., Iterable[np.ndarray]] | None = None,
) -> tuple[FeatureDataset, FeatureExtractor]:
    """Run the campaign and featurize it in one call.

    Returns the featurized corpus plus the fitted extractor (whose drop
    mask must be reused on any later runs from the same system).
    """
    runs = generate_runs(config, rng)
    extractor = FeatureExtractor(config.catalog, method=method, map_fn=map_fn)
    return extractor.fit_transform(runs), extractor
