"""Run-campaign generation (paper Sec. IV-A/IV-C data collection).

A *campaign* runs every application with every input deck many times,
healthy and with each synthetic anomaly at each intensity setting, and
records per-node telemetry — the raw material behind both the Volta and
Eclipse datasets. :class:`SystemConfig` captures everything that differs
between the two systems (applications, node hardware, metric catalog,
intensity grid, node counts, run durations), and
:func:`generate_runs` / :func:`build_dataset` execute the campaign.

Two execution modes:

* ``n_jobs=None`` (default) — the legacy serial path: one shared RNG is
  consumed run by run, byte-identical to every corpus this repo has ever
  generated. Cached ``.npz`` snapshots and seeded experiment numbers
  stay valid.
* ``n_jobs=<int>`` — the *seed-streamed* data plane: the full
  (app × deck × anomaly × repeat) condition grid is materialized up
  front and every run draws from its own RNG stream derived from the
  master seed plus the run's grid coordinates (the same trick as the
  forest's per-tree streams). Because no run reads another run's stream,
  the corpus is bit-identical at any worker count — ``n_jobs=1`` and
  ``n_jobs=8`` produce the same bytes — and the grid fans out over
  :class:`repro.parallel.Executor` with workers returning packed
  :class:`~repro.telemetry.corpus.RunCorpus` chunks (one contiguous
  buffer each, no per-record pickling). See ``docs/data_plane.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

import numpy as np

from ..anomalies import get_anomaly
from ..apps.base import AppSignature
from ..features.pipeline import FeatureDataset, FeatureExtractor
from ..mlcore.base import check_random_state
from ..parallel import block_partition, shared_executor
from ..telemetry.catalog import MetricCatalog
from ..telemetry.collector import Collector, RunRecord
from ..telemetry.corpus import RunCorpus
from ..telemetry.node import NodeProfile

__all__ = ["SystemConfig", "generate_runs", "generate_corpus", "build_dataset"]


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to run a data-collection campaign on one system.

    ``n_healthy_per_app_input`` healthy runs are collected for every
    (application, input deck) pair; ``n_anomalous_per_app_anomaly``
    anomalous runs for every (application, anomaly) pair, cycling through
    input decks, node counts, and the intensity grid so the anomalous
    corpus covers the full condition matrix.
    """

    name: str
    apps: Mapping[str, AppSignature]
    catalog: MetricCatalog
    node: NodeProfile
    anomaly_names: tuple[str, ...] = (
        "cpuoccupy",
        "cachecopy",
        "membw",
        "memleak",
        "dial",
    )
    intensities: tuple[float, ...] = (0.1, 0.5, 1.0)
    node_counts: tuple[int, ...] = (4,)
    duration: int = 120
    n_healthy_per_app_input: int = 10
    n_anomalous_per_app_anomaly: int = 6
    missing_rate: float = 0.005

    def __post_init__(self) -> None:
        if not self.apps:
            raise ValueError("campaign needs at least one application")
        if self.duration < 32:
            raise ValueError(f"duration too short for feature extraction: {self.duration}")
        if self.n_healthy_per_app_input < 1 or self.n_anomalous_per_app_anomaly < 1:
            raise ValueError("need at least one run per condition")

    @property
    def classes(self) -> tuple[str, ...]:
        """The diagnosis label set: healthy plus every anomaly."""
        return ("healthy", *self.anomaly_names)


# ----------------------------------------------------------------------
# the condition grid and per-run seed streams (parallel data plane)

@dataclass(frozen=True)
class _RunSpec:
    """One cell of the campaign grid, with its RNG stream coordinates.

    ``stream_key`` identifies the run's independent seed stream: healthy
    runs use ``(app_idx, 0, deck, repeat)``, anomalous runs
    ``(app_idx, 1 + anomaly_idx, repeat)``. The key depends only on the
    grid coordinates — never on enumeration order or worker count.
    ``node_count`` is ``None`` for healthy runs: the legacy campaign
    draws it at collection time, so streamed runs draw it from their own
    stream as the first variate.
    """

    app_name: str
    input_deck: int
    anomaly_name: str | None
    intensity: float
    node_count: int | None
    stream_key: tuple[int, ...]


def _campaign_grid(config: SystemConfig) -> list[_RunSpec]:
    """Materialize every (app × deck × anomaly × repeat) cell, in the
    canonical (legacy-enumeration) corpus order."""
    specs: list[_RunSpec] = []
    for app_idx, (app_name, app) in enumerate(sorted(config.apps.items())):
        n_inputs = min(app.n_inputs, 3)
        for deck in range(n_inputs):
            for rep in range(config.n_healthy_per_app_input):
                specs.append(
                    _RunSpec(
                        app_name=app_name,
                        input_deck=deck,
                        anomaly_name=None,
                        intensity=0.0,
                        node_count=None,
                        stream_key=(app_idx, 0, deck, rep),
                    )
                )
        for anomaly_idx, anomaly_name in enumerate(config.anomaly_names):
            for rep in range(config.n_anomalous_per_app_anomaly):
                specs.append(
                    _RunSpec(
                        app_name=app_name,
                        input_deck=rep % n_inputs,
                        anomaly_name=anomaly_name,
                        intensity=config.intensities[rep % len(config.intensities)],
                        node_count=config.node_counts[rep % len(config.node_counts)],
                        stream_key=(app_idx, 1 + anomaly_idx, rep),
                    )
                )
    return specs


def _master_entropy(rng: int | np.random.Generator | None) -> int:
    """The campaign-level seed the per-run streams branch from."""
    if rng is None:
        return int(np.random.SeedSequence().entropy)  # repro-lint: disable=DET003 -- rng=None explicitly requests OS entropy; all deterministic paths pass a seed
    if isinstance(rng, np.random.Generator):
        return int(rng.integers(np.iinfo(np.int64).max))
    return int(rng)


class _SpecCollector:
    """Worker body: collect grid chunks into packed corpora.

    Holds the campaign config and master seed so the executor's function
    cache ships them **once per pool**; each task is just a spec list.
    Every run still derives its RNG purely from ``(master, stream_key)``,
    so results are independent of chunking and worker count.
    """

    def __init__(self, config: SystemConfig, master: int):
        self.config = config
        self.master = master

    def __call__(self, specs: list[_RunSpec]) -> RunCorpus:
        return _collect_chunk((self.config, self.master, specs))


def _collect_chunk(payload: tuple[SystemConfig, int, list[_RunSpec]]) -> RunCorpus:
    """Worker body: collect one grid chunk into a packed corpus."""
    config, master, specs = payload
    collector = Collector(config.catalog, config.node, config.missing_rate)
    runs: list[RunRecord] = []
    for spec in specs:
        seq = np.random.SeedSequence(entropy=master, spawn_key=spec.stream_key)
        rng = np.random.default_rng(seq)
        node_count = spec.node_count
        if node_count is None:
            node_count = config.node_counts[int(rng.integers(len(config.node_counts)))]
        anomaly = get_anomaly(spec.anomaly_name) if spec.anomaly_name else None
        runs.append(
            collector.collect(
                config.apps[spec.app_name],
                input_deck=spec.input_deck,
                duration=config.duration,
                anomaly=anomaly,
                intensity=spec.intensity,
                node_count=node_count,
                rng=rng,
            )
        )
    return RunCorpus.from_records(runs)


def generate_corpus(
    config: SystemConfig,
    rng: int | np.random.Generator | None = None,
    n_jobs: int = 1,
    backend: str = "auto",
) -> RunCorpus:
    """Execute the campaign with per-run seed streams, packed.

    The output is bit-identical for every ``n_jobs`` and either backend;
    pass the same seed to get the same corpus whether it was built by
    one process or eight. Fan-out rides the process-wide warm pool
    (:func:`repro.parallel.shared_executor`), so the featurize and fit
    stages that follow reuse the same workers.
    """
    master = _master_entropy(rng)
    specs = _campaign_grid(config)
    n_jobs = max(1, int(n_jobs))
    if n_jobs == 1 or len(specs) == 1:
        return _collect_chunk((config, master, specs))
    executor = shared_executor(n_jobs, backend=backend)
    if executor.n_workers <= 1:
        # backend="auto" on a one-core mask degrades to serial: skip the
        # chunk/concat round-trip, the bytes are identical either way
        return _collect_chunk((config, master, specs))
    chunks = [
        [specs[i] for i in idx]
        for idx in block_partition(len(specs), min(len(specs), n_jobs * 4))
        if len(idx)
    ]
    parts = executor.map(_SpecCollector(config, master), chunks)
    return RunCorpus.concat(parts)


# ----------------------------------------------------------------------
def generate_runs(
    config: SystemConfig,
    rng: int | np.random.Generator | None = None,
    n_jobs: int | None = None,
) -> list[RunRecord]:
    """Execute the full campaign and return every collected run.

    ``n_jobs=None`` keeps the legacy shared-RNG serial path (byte-stable
    across releases); any explicit ``n_jobs`` — including 1 — switches to
    the seed-streamed grid of :func:`generate_corpus`, whose output is
    bit-identical at every worker count but differs from the legacy
    stream (each run owns an independent RNG).
    """
    if n_jobs is not None:
        return generate_corpus(config, rng, n_jobs=n_jobs).to_records()
    rng = check_random_state(rng)
    collector = Collector(config.catalog, config.node, config.missing_rate)
    runs: list[RunRecord] = []
    for app_name, app in sorted(config.apps.items()):
        n_inputs = min(app.n_inputs, 3)
        for deck in range(n_inputs):
            for _ in range(config.n_healthy_per_app_input):
                node_count = config.node_counts[
                    int(rng.integers(len(config.node_counts)))
                ]
                runs.append(
                    collector.collect(
                        app,
                        input_deck=deck,
                        duration=config.duration,
                        node_count=node_count,
                        rng=rng,
                    )
                )
        for anomaly_name in config.anomaly_names:
            anomaly = get_anomaly(anomaly_name)
            for i in range(config.n_anomalous_per_app_anomaly):
                deck = i % n_inputs
                intensity = config.intensities[i % len(config.intensities)]
                node_count = config.node_counts[i % len(config.node_counts)]
                runs.append(
                    collector.collect(
                        app,
                        input_deck=deck,
                        duration=config.duration,
                        anomaly=anomaly,
                        intensity=intensity,
                        node_count=node_count,
                        rng=rng,
                    )
                )
    return runs


def build_dataset(
    config: SystemConfig,
    method: str = "mvts",
    rng: int | np.random.Generator | None = None,
    map_fn: Callable[..., Iterable[np.ndarray]] | None = None,
    n_jobs: int | None = None,
    backend: str = "auto",
) -> tuple[FeatureDataset, FeatureExtractor]:
    """Run the campaign and featurize it in one call.

    Returns the featurized corpus plus the fitted extractor (whose drop
    mask must be reused on any later runs from the same system).
    ``n_jobs=None`` is the legacy serial pipeline; an explicit ``n_jobs``
    runs the seed-streamed generator *and* chunk-wise parallel feature
    extraction, with output bit-identical at every worker count.
    """
    if n_jobs is None:
        runs = generate_runs(config, rng)
        extractor = FeatureExtractor(config.catalog, method=method, map_fn=map_fn)
        return extractor.fit_transform(runs), extractor
    corpus = generate_corpus(config, rng, n_jobs=n_jobs, backend=backend)
    extractor = FeatureExtractor(
        config.catalog, method=method, map_fn=map_fn, n_jobs=n_jobs,
        backend=backend,
    )
    return extractor.fit_transform(corpus), extractor
