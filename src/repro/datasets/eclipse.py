"""The Eclipse dataset configuration (paper Sec. IV-A(2)).

Eclipse: 1488-node production system; 6 applications (Table II — three
real, three ECP proxies) run on 4/8/16 nodes with a distinct input per
node count, for 20–45 minutes; 806 LDMS metrics at 1 Hz; 2–3 intensity
settings per anomaly. The Eclipse dataset is the *harder* of the two
(longer, real applications, varying node counts) — the paper's explanation
for its ~10× higher query requirement and lower starting F1.
"""

from __future__ import annotations

from ..anomalies.base import ECLIPSE_INTENSITIES
from ..apps.eclipse_apps import ECLIPSE_APPS
from ..telemetry.catalog import eclipse_catalog
from ..telemetry.node import ECLIPSE_NODE
from .generate import SystemConfig

__all__ = ["eclipse_config"]


def eclipse_config(
    scale: float = 0.1,
    n_healthy_per_app_input: int = 10,
    n_anomalous_per_app_anomaly: int = 6,
    duration: int | None = None,
) -> SystemConfig:
    """Build an Eclipse campaign configuration.

    Same scaling convention as :func:`repro.datasets.volta.volta_config`;
    full scale implies ~1950 s runs (the paper's 20–45 min midpoint) and
    806 metrics. Eclipse runs span three node counts, and each application
    pairs a different input deck with each node count.
    """
    if duration is None:
        duration = max(160, int(1950 * scale))
    return SystemConfig(
        name="eclipse",
        apps=ECLIPSE_APPS,
        catalog=eclipse_catalog(scale=scale),
        node=ECLIPSE_NODE,
        intensities=ECLIPSE_INTENSITIES,
        node_counts=(4, 8, 16),
        duration=duration,
        n_healthy_per_app_input=n_healthy_per_app_input,
        n_anomalous_per_app_anomaly=n_anomalous_per_app_anomaly,
    )
