"""1 Hz telemetry sampling (LDMS data path).

Turns a node's utilization timeline into the raw metric matrix a monitoring
framework would record: per-metric affine response plus noise, cumulative
accumulation for counter metrics, and occasional missing samples (LDMS
loses datapoints in flight; the paper's pipeline linearly interpolates
them — :mod:`repro.features.pipeline` reproduces that repair step, so the
sampler must produce the damage).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mlcore.base import check_random_state
from .catalog import RESOURCE_DIMS, MetricCatalog
from .node import NodeProfile

__all__ = ["TelemetrySampler"]


@dataclass
class TelemetrySampler:
    """Sample a metric catalog against a demand timeline.

    Parameters
    ----------
    catalog:
        Which metrics exist and how each responds to resource demand.
    node:
        Hardware envelope; demand saturates through
        :meth:`NodeProfile.utilize` before metrics observe it.
    missing_rate:
        Per-(timestep, metric) probability of a lost sample (NaN).
    missing_burst:
        Expected length of a missing run — LDMS drops tend to be bursty
        (a sampler stall loses consecutive ticks, not isolated ones).
    """

    catalog: MetricCatalog
    node: NodeProfile
    missing_rate: float = 0.005
    missing_burst: float = 3.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.missing_rate < 1.0:
            raise ValueError(f"missing_rate must be in [0, 1), got {self.missing_rate}")
        if self.missing_burst < 1.0:
            raise ValueError(f"missing_burst must be >= 1, got {self.missing_burst}")

    def sample(
        self,
        demand: np.ndarray,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Produce the (T, n_metrics) raw telemetry matrix.

        Gauges read ``baseline + response·utilization + noise`` at each
        tick; counters accumulate the same quantity (floored at zero —
        hardware counters never decrement) via a cumulative sum, matching
        the "calculate the difference between each step for cumulative
        performance counters" preprocessing the paper applies.
        """
        rng = check_random_state(rng)
        demand = np.asarray(demand, dtype=np.float64)
        if demand.ndim != 2 or demand.shape[1] != len(RESOURCE_DIMS):
            raise ValueError(
                f"demand must be (T, {len(RESOURCE_DIMS)}), got {demand.shape}"
            )
        T = demand.shape[0]
        util = self.node.utilize(demand)
        gains = self.catalog.response_matrix  # (M, D)
        base = self.catalog.baselines  # (M,)
        noise_scale = self.catalog.noise_scales  # (M,)

        rates = base[None, :] + util @ gains.T  # (T, M)
        rates = rates + rng.normal(scale=noise_scale, size=rates.shape)

        counters = self.catalog.counter_mask
        values = rates.copy()
        if counters.any():
            # counters integrate the (non-negative) rate
            values[:, counters] = np.cumsum(
                np.maximum(rates[:, counters], 0.0), axis=0
            )

        if self.missing_rate > 0:
            values[self._missing_mask(T, values.shape[1], rng)] = np.nan
        return values

    def _missing_mask(
        self, T: int, M: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Bursty missing-sample mask with the configured marginal rate."""
        start_rate = self.missing_rate / self.missing_burst
        starts = rng.random((T, M)) < start_rate
        mask = np.zeros((T, M), dtype=bool)
        burst = max(1, int(round(self.missing_burst)))
        for offset in range(burst):
            shifted = np.zeros_like(starts)
            if offset < T:
                shifted[offset:] = starts[: T - offset]
            mask |= shifted
        return mask
