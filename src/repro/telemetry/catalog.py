"""Metric catalog — the LDMS metric inventory (paper Sec. IV-B).

LDMS samples hundreds of resource-utilization metrics per node at 1 Hz:
806 on Eclipse, 721 on Volta, spanning memory/virtual-memory, per-core CPU,
network, shared-filesystem, and Cray performance-counter subsystems. This
module reproduces that inventory as a typed catalog: every metric knows its
subsystem, whether it is a *gauge* (instantaneous value) or a *cumulative
counter* (monotone; consumers must difference it, exactly the preprocessing
the paper describes in Sec. IV-E1), and how strongly it responds to each
modeled resource dimension.

Metric response coefficients are derived deterministically from the metric
name, so two catalogs built with the same parameters are identical — runs
generated on different days or processes line up feature-for-feature.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import Enum

import numpy as np

__all__ = [
    "Subsystem",
    "MetricKind",
    "MetricSpec",
    "MetricCatalog",
    "RESOURCE_DIMS",
    "build_catalog",
    "volta_catalog",
    "eclipse_catalog",
]

# The modeled resource dimensions ("demands") a workload or anomaly exerts.
# Application signatures and anomaly injectors are expressed in this space;
# the catalog maps it onto individual metrics.
RESOURCE_DIMS = ("cpu", "cache", "membw", "mem", "net", "io")


class Subsystem(str, Enum):
    """Telemetry subsystems LDMS collects from (paper's bullet list)."""

    MEMORY = "memory"
    VMSTAT = "vmstat"
    CPU = "cpu"
    NETWORK = "network"
    FILESYSTEM = "filesystem"
    CRAY = "cray"


class MetricKind(str, Enum):
    """Gauge = instantaneous reading; counter = cumulative, must be diffed."""

    GAUGE = "gauge"
    COUNTER = "counter"


def _hash_unit(name: str, salt: str) -> float:
    """Deterministic float in [0, 1) from a metric name — stable coefficients."""
    digest = hashlib.sha256(f"{salt}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class MetricSpec:
    """One metric: identity plus its response to the resource dimensions.

    ``response`` is a length-``len(RESOURCE_DIMS)`` vector of gains; the
    sampled value is ``baseline + response · demand + noise`` (gauges) or
    the cumulative sum of that rate (counters). ``noise_scale`` is relative
    to the metric's dynamic range.
    """

    name: str
    subsystem: Subsystem
    kind: MetricKind
    baseline: float
    response: tuple[float, ...]
    noise_scale: float

    def respond(self, demand: np.ndarray) -> np.ndarray:
        """Instantaneous rate/value for a (T, n_dims) demand timeline."""
        return self.baseline + demand @ np.asarray(self.response)


def _make_spec(
    name: str,
    subsystem: Subsystem,
    kind: MetricKind,
    primary: dict[str, float],
) -> MetricSpec:
    """Build a spec whose response is dominated by ``primary`` dimensions.

    Every metric also picks up small hash-derived couplings to the other
    dimensions (real metrics are never perfectly orthogonal), and a
    hash-derived baseline/noise so the catalog has realistic diversity.
    """
    response = []
    for i, dim in enumerate(RESOURCE_DIMS):
        main = primary.get(dim, 0.0)
        cross = 0.05 * _hash_unit(name, f"cross{i}")
        response.append(main * (0.8 + 0.4 * _hash_unit(name, f"gain{i}")) + cross)
    baseline = 0.2 + 0.8 * _hash_unit(name, "baseline")
    noise = 0.02 + 0.06 * _hash_unit(name, "noise")
    return MetricSpec(
        name=name,
        subsystem=subsystem,
        kind=kind,
        baseline=baseline,
        response=tuple(response),
        noise_scale=noise,
    )


@dataclass(frozen=True)
class MetricCatalog:
    """Immutable collection of metric specs with vectorized access."""

    specs: tuple[MetricSpec, ...]

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    @property
    def names(self) -> list[str]:
        """Metric names in catalog order (column order of collected runs)."""
        return [s.name for s in self.specs]

    @property
    def response_matrix(self) -> np.ndarray:
        """(n_metrics, n_dims) gain matrix for vectorized sampling."""
        return np.array([s.response for s in self.specs])

    @property
    def baselines(self) -> np.ndarray:
        """(n_metrics,) baseline vector."""
        return np.array([s.baseline for s in self.specs])

    @property
    def noise_scales(self) -> np.ndarray:
        """(n_metrics,) relative noise amplitudes."""
        return np.array([s.noise_scale for s in self.specs])

    @property
    def counter_mask(self) -> np.ndarray:
        """(n_metrics,) boolean mask of cumulative counters."""
        return np.array([s.kind is MetricKind.COUNTER for s in self.specs])

    def by_subsystem(self, subsystem: Subsystem) -> list[MetricSpec]:
        """All specs of one subsystem."""
        return [s for s in self.specs if s.subsystem is subsystem]


def build_catalog(
    n_cores: int = 8,
    n_nics: int = 2,
    n_extra_cray: int = 10,
) -> MetricCatalog:
    """Construct a catalog shaped like an LDMS deployment.

    ``n_cores`` scales the per-core CPU group (the bulk of a real catalog:
    Volta exposes 48 hyper-threaded cores × several counters each);
    reducing it shrinks the catalog for fast experiments without changing
    its structure.
    """
    if n_cores < 1 or n_nics < 1:
        raise ValueError("need at least one core and one NIC")
    specs: list[MetricSpec] = []

    # memory gauges (meminfo-style)
    for name, primary in [
        ("MemFree", {"mem": -1.0}),
        ("MemAvailable", {"mem": -0.9}),
        ("Active", {"mem": 0.9}),
        ("Inactive", {"mem": 0.4}),
        ("Cached", {"cache": 0.5, "io": 0.3}),
        ("Buffers", {"io": 0.6}),
        ("Dirty", {"io": 0.8}),
        ("Writeback", {"io": 0.7}),
        ("AnonPages", {"mem": 1.0}),
        ("Mapped", {"mem": 0.6}),
        ("Shmem", {"mem": 0.3}),
        ("Slab", {"mem": 0.2, "io": 0.2}),
        ("KernelStack", {"cpu": 0.2}),
        ("PageTables", {"mem": 0.5}),
        ("CommitLimit", {}),
        ("Committed_AS", {"mem": 0.8}),
    ]:
        specs.append(
            _make_spec(f"meminfo.{name}", Subsystem.MEMORY, MetricKind.GAUGE, primary)
        )

    # vmstat counters
    for name, primary in [
        ("pgfault", {"mem": 0.8, "cpu": 0.2}),
        ("pgmajfault", {"io": 0.5, "mem": 0.3}),
        ("pgpgin", {"io": 0.9}),
        ("pgpgout", {"io": 0.9}),
        ("pswpin", {"mem": 0.4, "io": 0.3}),
        ("pswpout", {"mem": 0.5, "io": 0.3}),
        ("numa_hit", {"membw": 0.8}),
        ("numa_miss", {"membw": 0.5}),
        ("numa_local", {"membw": 0.7}),
        ("thp_fault_alloc", {"mem": 0.6}),
    ]:
        specs.append(
            _make_spec(f"vmstat.{name}", Subsystem.VMSTAT, MetricKind.COUNTER, primary)
        )

    # per-core CPU counters (procstat-style)
    for core in range(n_cores):
        for field, primary in [
            ("user", {"cpu": 1.0}),
            ("sys", {"io": 0.4, "net": 0.3, "cpu": 0.2}),
            ("idle", {"cpu": -1.0}),
            ("iowait", {"io": 0.8}),
        ]:
            specs.append(
                _make_spec(
                    f"procstat.cpu{core}.{field}",
                    Subsystem.CPU,
                    MetricKind.COUNTER,
                    primary,
                )
            )

    # network counters per NIC
    for nic in range(n_nics):
        for field, primary in [
            ("rx_packets", {"net": 1.0}),
            ("tx_packets", {"net": 1.0}),
            ("rx_bytes", {"net": 0.9}),
            ("tx_bytes", {"net": 0.9}),
            ("rx_dropped", {"net": 0.2}),
        ]:
            specs.append(
                _make_spec(
                    f"procnetdev.ipogif{nic}.{field}",
                    Subsystem.NETWORK,
                    MetricKind.COUNTER,
                    primary,
                )
            )

    # shared-filesystem counters (Lustre-style)
    for field, primary in [
        ("open", {"io": 0.8}),
        ("close", {"io": 0.8}),
        ("read_bytes", {"io": 1.0}),
        ("write_bytes", {"io": 1.0}),
        ("getattr", {"io": 0.5}),
        ("setattr", {"io": 0.4}),
        ("seek", {"io": 0.3}),
        ("fsync", {"io": 0.6}),
    ]:
        specs.append(
            _make_spec(
                f"lustre.{field}", Subsystem.FILESYSTEM, MetricKind.COUNTER, primary
            )
        )

    # Cray performance counters: power, memory traffic, NIC flits
    cray_fields: list[tuple[str, MetricKind, dict[str, float]]] = [
        ("power", MetricKind.GAUGE, {"cpu": 0.8, "membw": 0.4}),
        ("energy", MetricKind.COUNTER, {"cpu": 0.8, "membw": 0.4}),
        ("WB_hits", MetricKind.COUNTER, {"cache": 1.0}),
        ("WB_misses", MetricKind.COUNTER, {"cache": 0.6, "membw": 0.6}),
        ("flits_in", MetricKind.COUNTER, {"net": 0.9}),
        ("flits_out", MetricKind.COUNTER, {"net": 0.9}),
        ("stalls", MetricKind.COUNTER, {"membw": 0.8, "cache": 0.4}),
        ("freq", MetricKind.GAUGE, {"cpu": 0.3}),
    ]
    for i in range(n_extra_cray):
        field, kind, primary = cray_fields[i % len(cray_fields)]
        suffix = "" if i < len(cray_fields) else f".{i // len(cray_fields)}"
        specs.append(
            _make_spec(f"cray.{field}{suffix}", Subsystem.CRAY, kind, primary)
        )

    return MetricCatalog(specs=tuple(specs))


def volta_catalog(scale: float = 1.0) -> MetricCatalog:
    """Volta-shaped catalog: 721 metrics at ``scale=1`` (48 HT cores).

    ``scale`` < 1 shrinks the per-core group proportionally for fast
    experiments (the structure — subsystem mix, counter/gauge split —
    is preserved).
    """
    n_cores = max(1, int(round(48 * scale)))
    n_extra = max(4, int(round(485 * scale))) if scale < 1 else 485
    # 16 mem + 10 vmstat + 4*48 cpu + 2*5 net + 8 fs + 485 cray = 721
    return build_catalog(n_cores=n_cores, n_nics=2, n_extra_cray=n_extra)


def eclipse_catalog(scale: float = 1.0) -> MetricCatalog:
    """Eclipse-shaped catalog: 806 metrics at ``scale=1`` (72 HT cores)."""
    n_cores = max(1, int(round(72 * scale)))
    n_extra = max(4, int(round(474 * scale))) if scale < 1 else 474
    # 16 + 10 + 4*72 + 10 + 8 + 474 = 806
    return build_catalog(n_cores=n_cores, n_nics=2, n_extra_cray=n_extra)
