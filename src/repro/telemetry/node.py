"""Compute-node resource model.

A node turns *demand* (what the application plus any co-running anomaly ask
of each resource dimension) into *utilization* (what the hardware actually
delivers), which is what monitoring metrics observe. The two differ when a
resource saturates: an application asking for 80% of memory bandwidth while
a membw anomaly asks for another 50% does not get 130% — both get squeezed,
and the squeeze is precisely the performance-variation signal the paper's
anomalies create on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .catalog import RESOURCE_DIMS

__all__ = ["NodeProfile", "VOLTA_NODE", "ECLIPSE_NODE"]


@dataclass(frozen=True)
class NodeProfile:
    """Hardware envelope of one compute node.

    Capacities are expressed in normalized demand units (1.0 = the nominal
    full capacity of that dimension); ``contention_sharpness`` controls how
    abruptly utilization saturates as demand approaches capacity.
    """

    name: str
    n_cores: int
    mem_gb: int
    capacity: tuple[float, ...] = (1.0,) * len(RESOURCE_DIMS)
    contention_sharpness: float = 4.0

    def __post_init__(self) -> None:
        if len(self.capacity) != len(RESOURCE_DIMS):
            raise ValueError(
                f"capacity must have {len(RESOURCE_DIMS)} entries, got {len(self.capacity)}"
            )
        if any(c <= 0 for c in self.capacity):
            raise ValueError("capacities must be positive")

    def utilize(self, demand: np.ndarray) -> np.ndarray:
        """Map a (T, n_dims) demand timeline to delivered utilization.

        Uses a soft-min saturating response
        ``u = d / (1 + (d / cap)^s)^(1/s)`` — essentially linear while
        demand stays below capacity (sub-capacity signal passes through
        undistorted) and asymptoting to ``cap`` once demand exceeds it.
        ``contention_sharpness`` sets how abrupt the knee is. Demand is
        clipped at zero (negative demand is meaningless).
        """
        demand = np.asarray(demand, dtype=np.float64)
        if demand.ndim != 2 or demand.shape[1] != len(RESOURCE_DIMS):
            raise ValueError(
                f"demand must be (T, {len(RESOURCE_DIMS)}), got {demand.shape}"
            )
        d = np.maximum(demand, 0.0)
        cap = np.asarray(self.capacity)
        s = self.contention_sharpness
        return d / (1.0 + (d / cap) ** s) ** (1.0 / s)

    def slowdown(self, app_demand: np.ndarray, total_demand: np.ndarray) -> np.ndarray:
        """Per-timestep application slowdown factor in (0, 1].

        When total demand on any dimension exceeds capacity, the application
        only receives its proportional share; the most-contended dimension
        bounds progress (Amdahl-style). Returns 1.0 where nothing saturates.
        """
        app = np.maximum(np.asarray(app_demand, dtype=np.float64), 0.0)
        total = np.maximum(np.asarray(total_demand, dtype=np.float64), 1e-12)
        cap = np.asarray(self.capacity)
        over = total / cap  # >1 means oversubscribed
        share = np.where(over > 1.0, 1.0 / over, 1.0)
        # only dimensions the app actually uses can slow it down
        relevant = app > 1e-3
        share = np.where(relevant, share, 1.0)
        return share.min(axis=1)


VOLTA_NODE = NodeProfile(name="volta-xc30m", n_cores=48, mem_gb=64)
ECLIPSE_NODE = NodeProfile(name="eclipse", n_cores=72, mem_gb=128)
