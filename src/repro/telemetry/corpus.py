"""Packed run-corpus container: the data plane's zero-copy unit of work.

``list[RunRecord]`` is the friendly API surface, but on the hot path it is
a poor transport: shipping a chunk of records to a worker process pickles
every dataclass, every per-record ``metric_names`` list, and every small
``data`` array separately. :class:`RunCorpus` packs a whole campaign into
*one* contiguous ``(sum_T, M)`` float64 buffer plus ragged row offsets and
flat metadata arrays, so

* a chunk handed to a worker is a handful of array slices (one buffer
  memcpy each when crossing a process boundary, no per-record pickling),
* featurization can walk runs as views into the shared buffer, and
* metadata columns (labels, apps, decks, …) are already the flat arrays
  :class:`~repro.features.pipeline.FeatureDataset` wants.

Conversion to/from ``list[RunRecord]`` is lossless; ``record(i)`` returns
views (no copies) into the packed buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from ..parallel.shm import SharedArray
from .collector import HEALTHY, RunRecord

__all__ = ["RunCorpus", "plan_length_groups", "DEFAULT_MAX_PANEL_ELEMS"]

# Cap on T * B * M float64 elements per extraction panel (~32 MB of
# telemetry); the batched extractor materializes roughly three arrays of
# this size at once (hstack panel, interpolated copy, differenced output),
# so the bound keeps peak extra memory around ~100 MB regardless of how
# large a campaign is featurized in one call.
DEFAULT_MAX_PANEL_ELEMS = 1 << 22


def plan_length_groups(
    lengths: np.ndarray,
    n_metrics: int,
    max_panel_elems: int = DEFAULT_MAX_PANEL_ELEMS,
) -> list[np.ndarray]:
    """Plan run-batched extraction panels: group run indices by length.

    Runs whose raw length ``T`` matches trim to the same post-trim length,
    so their ``(T, M)`` matrices can be ``hstack``-ed into one ``(T, B*M)``
    panel and preprocessed + featurized in a single kernel pass (every
    reduction in the extractors is per-column). Returns index arrays into
    ``lengths``, each holding runs of one identical ``T``; groups larger
    than ``max_panel_elems / (T * n_metrics)`` runs are split so the panel
    working set stays bounded. The plan is deterministic: groups are
    ordered by ``T``, and indices inside a group keep corpus order.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    if n_metrics <= 0:
        raise ValueError(f"n_metrics must be positive, got {n_metrics}")
    if max_panel_elems <= 0:
        raise ValueError(f"max_panel_elems must be positive, got {max_panel_elems}")
    groups: list[np.ndarray] = []
    for T in np.unique(lengths):
        idx = np.flatnonzero(lengths == T)
        per_panel = max(1, int(max_panel_elems // max(1, int(T) * n_metrics)))
        for lo in range(0, len(idx), per_panel):
            groups.append(idx[lo:lo + per_panel])
    return groups


@dataclass
class RunCorpus:
    """A campaign's runs packed into one buffer + flat metadata arrays.

    ``buffer`` stacks every run's ``(T_i, M)`` telemetry matrix along axis
    0; run ``i`` occupies rows ``offsets[i]:offsets[i + 1]``. The metadata
    arrays are aligned per run. ``anomalies`` stores ``""`` for healthy
    runs (fixed-width unicode arrays cannot hold ``None``).
    """

    buffer: np.ndarray  # (sum_T, M) float64
    offsets: np.ndarray  # (n_runs + 1,) int64
    apps: np.ndarray
    input_decks: np.ndarray
    node_counts: np.ndarray
    node_ids: np.ndarray
    anomalies: np.ndarray
    intensities: np.ndarray
    metric_names: list[str] = field(repr=False, default_factory=list)

    def __post_init__(self) -> None:
        self.buffer = np.asarray(self.buffer, dtype=np.float64)
        self.offsets = np.asarray(self.offsets, dtype=np.int64)
        if self.buffer.ndim != 2:
            raise ValueError(f"buffer must be (sum_T, M), got {self.buffer.shape}")
        if self.offsets.ndim != 1 or len(self.offsets) < 1:
            raise ValueError("offsets must be a 1-D array of length n_runs + 1")
        if self.offsets[0] != 0 or self.offsets[-1] != self.buffer.shape[0]:
            raise ValueError("offsets must span the buffer exactly")
        if np.any(np.diff(self.offsets) <= 0):
            raise ValueError("offsets must be strictly increasing (no empty runs)")
        n = len(self)
        for name in ("apps", "input_decks", "node_counts", "node_ids",
                     "anomalies", "intensities"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"{name} length does not match run count {n}")
        if self.metric_names and len(self.metric_names) != self.buffer.shape[1]:
            raise ValueError("metric_names / buffer column mismatch")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.offsets) - 1

    @property
    def n_metrics(self) -> int:
        return self.buffer.shape[1]

    @property
    def lengths(self) -> np.ndarray:
        """Per-run raw sample counts ``T_i`` (the group-by key for batching)."""
        return np.diff(self.offsets)

    @property
    def labels(self) -> np.ndarray:
        """Per-run diagnosis labels (anomaly name or ``"healthy"``)."""
        return np.where(self.anomalies == "", HEALTHY, self.anomalies)

    def run_data(self, i: int) -> np.ndarray:
        """Zero-copy view of run ``i``'s ``(T_i, M)`` telemetry matrix."""
        return self.buffer[self.offsets[i]:self.offsets[i + 1]]

    def record(self, i: int) -> RunRecord:
        """Materialize run ``i`` as a :class:`RunRecord` (data is a view)."""
        i = int(i)
        if not 0 <= i < len(self):
            raise IndexError(f"run index {i} out of range for {len(self)} runs")
        anomaly = str(self.anomalies[i]) or None
        return RunRecord(
            app=str(self.apps[i]),
            input_deck=int(self.input_decks[i]),
            node_count=int(self.node_counts[i]),
            node_id=int(self.node_ids[i]),
            anomaly=anomaly,
            intensity=float(self.intensities[i]),
            data=self.run_data(i),
            metric_names=self.metric_names,
        )

    def __iter__(self) -> Iterator[RunRecord]:
        return (self.record(i) for i in range(len(self)))

    def to_records(self) -> list[RunRecord]:
        """The friendly representation (data arrays are buffer views)."""
        return [self.record(i) for i in range(len(self))]

    # ------------------------------------------------------------------
    def share(self) -> SharedArray:
        """Copy the packed buffer into one shared-memory segment.

        The returned :class:`~repro.parallel.shm.SharedArray` is the
        parent-side owner (close it — ideally via ``with`` — to unlink);
        workers attach through its picklable ``handle`` and index runs
        with this corpus's ``offsets``, so fanning a campaign over a
        process pool ships row offsets instead of telemetry.
        """
        return SharedArray(self.buffer)

    def chunk(self, lo: int, hi: int) -> "RunCorpus":
        """Runs ``lo:hi`` as a new corpus sharing this one's buffer.

        The buffer slice is a contiguous view, so shipping a chunk to a
        worker pickles one flat memory block instead of ``hi - lo``
        individual records.
        """
        if not 0 <= lo < hi <= len(self):
            raise ValueError(f"bad chunk bounds [{lo}, {hi}) for {len(self)} runs")
        base = self.offsets[lo]
        return RunCorpus(
            buffer=self.buffer[base:self.offsets[hi]],
            offsets=self.offsets[lo:hi + 1] - base,
            apps=self.apps[lo:hi],
            input_decks=self.input_decks[lo:hi],
            node_counts=self.node_counts[lo:hi],
            node_ids=self.node_ids[lo:hi],
            anomalies=self.anomalies[lo:hi],
            intensities=self.intensities[lo:hi],
            metric_names=self.metric_names,
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_records(cls, runs: Sequence[RunRecord]) -> "RunCorpus":
        """Pack a record list; all runs must share the metric catalog."""
        if not runs:
            raise ValueError("cannot pack an empty run list")
        widths = {r.data.shape[1] for r in runs}
        if len(widths) != 1:
            raise ValueError(f"runs disagree on metric count: {sorted(widths)}")
        names = runs[0].metric_names
        for r in runs:
            if r.metric_names != names:
                raise ValueError("runs disagree on metric names")
        lengths = np.array([r.data.shape[0] for r in runs], dtype=np.int64)
        offsets = np.zeros(len(runs) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        return cls(
            buffer=np.concatenate([r.data for r in runs], axis=0),
            offsets=offsets,
            apps=np.array([r.app for r in runs]),
            input_decks=np.array([r.input_deck for r in runs], dtype=np.int64),
            node_counts=np.array([r.node_count for r in runs], dtype=np.int64),
            node_ids=np.array([r.node_id for r in runs], dtype=np.int64),
            anomalies=np.array([r.anomaly or "" for r in runs]),
            intensities=np.array([r.intensity for r in runs], dtype=np.float64),
            metric_names=list(names),
        )

    @classmethod
    def concat(cls, parts: Sequence["RunCorpus"]) -> "RunCorpus":
        """Stitch chunk results back into one corpus (order preserved)."""
        if not parts:
            raise ValueError("cannot concatenate zero corpus chunks")
        if len(parts) == 1:
            return parts[0]
        names = parts[0].metric_names
        widths = {p.n_metrics for p in parts}
        if len(widths) != 1:
            raise ValueError(f"chunks disagree on metric count: {sorted(widths)}")
        for p in parts:
            if p.metric_names != names:
                raise ValueError("chunks disagree on metric names")
        sizes = np.array([p.offsets[-1] for p in parts], dtype=np.int64)
        bases = np.concatenate([[0], np.cumsum(sizes)[:-1]])
        offsets = np.concatenate(
            [[0]] + [p.offsets[1:] + base for p, base in zip(parts, bases)]
        )
        return cls(
            buffer=np.concatenate([p.buffer for p in parts], axis=0),
            offsets=offsets,
            apps=np.concatenate([p.apps for p in parts]),
            input_decks=np.concatenate([p.input_decks for p in parts]),
            node_counts=np.concatenate([p.node_counts for p in parts]),
            node_ids=np.concatenate([p.node_ids for p in parts]),
            anomalies=np.concatenate([p.anomalies for p in parts]),
            intensities=np.concatenate([p.intensities for p in parts]),
            metric_names=list(names),
        )
