"""repro.telemetry — LDMS-style monitoring substrate.

Metric catalogs shaped like the paper's Volta (721 metrics) and Eclipse
(806 metrics) deployments, a compute-node resource/contention model, a
1 Hz sampler with cumulative counters and bursty sample loss, and the
per-run :class:`RunRecord` collection unit.
"""

from .catalog import (
    RESOURCE_DIMS,
    MetricCatalog,
    MetricKind,
    MetricSpec,
    Subsystem,
    build_catalog,
    eclipse_catalog,
    volta_catalog,
)
from .collector import Collector, RunRecord
from .corpus import RunCorpus
from .node import ECLIPSE_NODE, VOLTA_NODE, NodeProfile
from .sampler import TelemetrySampler

__all__ = [
    "Collector",
    "ECLIPSE_NODE",
    "MetricCatalog",
    "MetricKind",
    "MetricSpec",
    "NodeProfile",
    "RESOURCE_DIMS",
    "RunCorpus",
    "RunRecord",
    "Subsystem",
    "TelemetrySampler",
    "VOLTA_NODE",
    "build_catalog",
    "eclipse_catalog",
    "volta_catalog",
]
