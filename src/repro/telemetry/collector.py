"""Per-run telemetry collection: the (T × M) sample of the paper.

A *sample* in the paper is "the whole set of telemetry data collected
during the execution of an application on a compute node". ``RunRecord``
is that unit: the raw metric matrix plus the ground-truth metadata
(application, input deck, node count, anomaly label and intensity) the
experiments need for labeling, splitting, and drill-down analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..mlcore.base import check_random_state
from .catalog import MetricCatalog
from .node import NodeProfile
from .sampler import TelemetrySampler

__all__ = ["RunRecord", "Collector"]

HEALTHY = "healthy"


@dataclass
class RunRecord:
    """One application execution on one compute node.

    ``label`` is the diagnosis target: the anomaly name if an anomaly ran
    alongside the application on this node, else ``"healthy"``.
    """

    app: str
    input_deck: int
    node_count: int
    node_id: int
    anomaly: str | None
    intensity: float
    data: np.ndarray  # (T, n_metrics), may contain NaNs
    metric_names: list[str] = field(repr=False, default_factory=list)

    @property
    def label(self) -> str:
        """Ground-truth diagnosis label (anomaly name or ``"healthy"``)."""
        return self.anomaly if self.anomaly is not None else HEALTHY

    @property
    def duration(self) -> int:
        """Number of 1 Hz samples collected."""
        return self.data.shape[0]

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=np.float64)
        if self.data.ndim != 2:
            raise ValueError(f"data must be (T, M), got {self.data.shape}")
        if self.metric_names and len(self.metric_names) != self.data.shape[1]:
            raise ValueError("metric_names / data column mismatch")
        if not 0.0 <= self.intensity <= 1.0:
            raise ValueError(f"intensity must be in [0, 1], got {self.intensity}")


class Collector:
    """Run applications (optionally with an anomaly) and record telemetry.

    Wires an application signature's demand timeline through the anomaly
    injector and the node model into the sampler — the whole left column of
    the paper's Fig. 1.
    """

    def __init__(
        self,
        catalog: MetricCatalog,
        node: NodeProfile,
        missing_rate: float = 0.005,
    ):
        self.catalog = catalog
        self.node = node
        self.sampler = TelemetrySampler(
            catalog=catalog, node=node, missing_rate=missing_rate
        )

    def collect(
        self,
        app,
        input_deck: int,
        duration: int,
        anomaly=None,
        intensity: float = 0.0,
        node_count: int = 4,
        node_id: int = 0,
        rng: int | np.random.Generator | None = None,
    ) -> RunRecord:
        """Execute one run and return its :class:`RunRecord`.

        ``app`` is an :class:`repro.apps.base.AppSignature`; ``anomaly`` an
        optional :class:`repro.anomalies.base.Anomaly`. Following the paper,
        an anomaly runs on the *first* allocated node only, so passing
        ``node_id > 0`` with an anomaly raises.
        """
        rng = check_random_state(rng)
        if anomaly is not None and node_id != 0:
            raise ValueError("anomalies run on the first allocated node (node_id 0)")
        demand = app.demand_timeline(
            duration, input_deck=input_deck, node_count=node_count, rng=rng
        )
        if anomaly is not None:
            demand = anomaly.inject(demand, intensity=intensity, rng=rng)
        data = self.sampler.sample(demand, rng=rng)
        return RunRecord(
            app=app.name,
            input_deck=input_deck,
            node_count=node_count,
            node_id=node_id,
            anomaly=None if anomaly is None else anomaly.name,
            intensity=float(intensity) if anomaly is not None else 0.0,
            data=data,
            metric_names=self.catalog.names,
        )
