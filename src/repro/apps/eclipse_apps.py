"""The six Eclipse applications (paper Table II).

Three real applications — LAMMPS (molecular dynamics), HACC (cosmology),
sw4 (seismic) — and three ECP proxies — ExaMiniMD, SWFFT, sw4lite. Real
applications are longer, run on varying node counts (4/8/16 with a distinct
input per count), and show richer internal phase structure than the Volta
benchmarks; the paper attributes Eclipse's ~10× higher query requirement to
this complexity. We encode that complexity as: more phases per app, higher
run variation, and proxy apps that *deliberately shadow* their parent
application's profile (ExaMiniMD ≈ LAMMPS, sw4lite ≈ sw4, SWFFT ≈ HACC's
FFT core) — inter-class confusability the Volta set doesn't have.
"""

from __future__ import annotations

import dataclasses

from .base import AppSignature, Phase, demand_vector as dv

__all__ = ["ECLIPSE_APPS", "eclipse_app"]

# Production-system conditions (vs the quiet Volta testbed): more OS/service
# noise on the nodes, and input decks that reshape the workload more —
# Eclipse pairs a different deck with every node count (4/8/16), so deck
# effects compound with communication scaling. These are what make Eclipse
# the harder dataset in the paper (starting F1 0.72 vs 0.86, ~10x more
# queries to the same target).
_PRODUCTION_NOISE = {
    "noise_burst_rate": 3.5,
    "noise_burst_amp": 0.45,
    "input_mix_strength": 0.35,
}

_INIT = Phase("init", 0.05, dv(cpu=0.15, io=0.45, mem=0.30))
_TEARDOWN = Phase("teardown", 0.04, dv(io=0.55, cpu=0.1))


ECLIPSE_APPS: dict[str, AppSignature] = {
    "LAMMPS": AppSignature(
        name="LAMMPS",
        suite="real",
        phases=(
            _INIT,
            Phase("pair-forces", 0.48, dv(cpu=0.70, cache=0.60, mem=0.40, net=0.18),
                  osc_amp=0.10, osc_period=12.0),
            Phase("kspace", 0.25, dv(cpu=0.50, membw=0.55, net=0.40, mem=0.42),
                  osc_amp=0.14, osc_period=12.0),
            Phase("output-dump", 0.08, dv(io=0.65, cpu=0.20, mem=0.40),
                  osc_amp=0.20, osc_period=40.0),
            Phase("pair-forces-2", 0.12, dv(cpu=0.68, cache=0.58, mem=0.44, net=0.18),
                  osc_amp=0.10, osc_period=12.0),
            _TEARDOWN,
        ),
        run_variation=0.09,
        comm_per_node=0.015,
    ),
    "HACC": AppSignature(
        name="HACC",
        suite="real",
        phases=(
            _INIT,
            Phase("short-force", 0.40, dv(cpu=0.82, cache=0.45, mem=0.55),
                  osc_amp=0.08, osc_period=17.0),
            Phase("fft-long-range", 0.30, dv(cpu=0.45, membw=0.50, net=0.68, mem=0.58),
                  osc_amp=0.18, osc_period=17.0),
            Phase("particle-exchange", 0.14, dv(net=0.70, cpu=0.25, mem=0.55),
                  osc_amp=0.22, osc_period=17.0),
            Phase("analysis-io", 0.07, dv(io=0.70, cpu=0.30, mem=0.55),
                  osc_amp=0.0),
            _TEARDOWN,
        ),
        run_variation=0.08,
        comm_per_node=0.02,
    ),
    "sw4": AppSignature(
        name="sw4",
        suite="real",
        phases=(
            _INIT,
            Phase("stencil-update", 0.55, dv(cpu=0.60, membw=0.68, cache=0.40, mem=0.60, net=0.22),
                  osc_amp=0.12, osc_period=22.0),
            Phase("boundary-comm", 0.20, dv(net=0.55, cpu=0.30, membw=0.35, mem=0.58),
                  osc_amp=0.15, osc_period=22.0),
            Phase("checkpoint", 0.10, dv(io=0.72, cpu=0.18, mem=0.58),
                  osc_amp=0.25, osc_period=45.0),
            _TEARDOWN,
        ),
        run_variation=0.10,
        comm_per_node=0.015,
    ),
    # ECP proxies: each shadows its parent's kernel with simpler structure
    "ExaMiniMD": AppSignature(
        name="ExaMiniMD",
        suite="ECP-proxy",
        phases=(
            _INIT,
            Phase("pair-forces", 0.72, dv(cpu=0.66, cache=0.56, mem=0.36, net=0.16),
                  osc_amp=0.10, osc_period=11.0),
            Phase("neighbor-rebuild", 0.18, dv(cpu=0.42, membw=0.52, mem=0.38),
                  osc_amp=0.12, osc_period=26.0),
            _TEARDOWN,
        ),
        run_variation=0.10,
        comm_per_node=0.012,
    ),
    "SWFFT": AppSignature(
        name="SWFFT",
        suite="ECP-proxy",
        phases=(
            _INIT,
            Phase("fft-compute", 0.50, dv(cpu=0.52, membw=0.48, mem=0.52),
                  osc_amp=0.14, osc_period=16.0),
            Phase("all-to-all", 0.40, dv(net=0.72, cpu=0.25, membw=0.35, mem=0.52),
                  osc_amp=0.20, osc_period=16.0),
            _TEARDOWN,
        ),
        run_variation=0.09,
        comm_per_node=0.02,
    ),
    "sw4lite": AppSignature(
        name="sw4lite",
        suite="ECP-proxy",
        phases=(
            _INIT,
            Phase("stencil-update", 0.70, dv(cpu=0.58, membw=0.64, cache=0.38, mem=0.55, net=0.20),
                  osc_amp=0.12, osc_period=20.0),
            Phase("boundary-comm", 0.20, dv(net=0.50, cpu=0.28, membw=0.32, mem=0.54),
                  osc_amp=0.15, osc_period=20.0),
            _TEARDOWN,
        ),
        run_variation=0.10,
        comm_per_node=0.014,
    ),
}


ECLIPSE_APPS = {
    name: dataclasses.replace(app, **_PRODUCTION_NOISE)
    for name, app in ECLIPSE_APPS.items()
}


def eclipse_app(name: str) -> AppSignature:
    """Look up an Eclipse application signature by name."""
    try:
        return ECLIPSE_APPS[name]
    except KeyError:
        raise ValueError(
            f"unknown Eclipse app {name!r}; available: {sorted(ECLIPSE_APPS)}"
        ) from None
