"""repro.apps — synthetic HPC application workload signatures.

Phase-program models of every application the paper runs: the eleven Volta
benchmarks/proxies (Table I) and the six Eclipse real/ECP-proxy
applications (Table II), each with three input decks and characteristic
run-to-run variability.
"""

from .base import AppSignature, Phase, demand_vector
from .eclipse_apps import ECLIPSE_APPS, eclipse_app
from .volta_apps import VOLTA_APPS, volta_app

__all__ = [
    "AppSignature",
    "ECLIPSE_APPS",
    "Phase",
    "VOLTA_APPS",
    "demand_vector",
    "eclipse_app",
    "volta_app",
]
