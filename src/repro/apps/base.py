"""Application workload signatures (the paper's Tables I & II substrate).

Each HPC application is modeled as a *phase program*: an ordered list of
phases (init, compute, communication, I/O, teardown), each exerting a
characteristic demand on the node's resource dimensions, plus an iterative
oscillation (solvers sweep, exchange halos, checkpoint — telemetry shows it
as periodic structure) and run-to-run variation (same input deck, different
execution — the paper's motivating performance-variability phenomenon).

The classifier sees apps exactly as the paper's does: through statistical
features of the resulting telemetry. Apps are distinguishable because their
phase programs differ; some are deliberately high-variance (Kripke, MiniMD,
MiniAMR — the apps whose healthy runs the paper found most queried, i.e.
hardest to separate from anomalous behaviour).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..mlcore.base import check_random_state
from ..telemetry.catalog import RESOURCE_DIMS

__all__ = ["Phase", "AppSignature", "demand_vector"]


def _deck_hash_unit(app: str, deck: int, salt: str) -> float:
    """Deterministic float in [0, 1) tied to an (app, input deck) pair."""
    digest = hashlib.sha256(f"{app}:deck{deck}:{salt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def demand_vector(**dims: float) -> np.ndarray:
    """Build a demand vector from keyword dims, e.g. ``demand_vector(cpu=0.8)``."""
    vec = np.zeros(len(RESOURCE_DIMS))
    for name, value in dims.items():
        try:
            vec[RESOURCE_DIMS.index(name)] = value
        except ValueError:
            raise ValueError(
                f"unknown resource dim {name!r}; valid: {RESOURCE_DIMS}"
            ) from None
    return vec


@dataclass(frozen=True)
class Phase:
    """One phase of an application's execution.

    ``weight`` is the phase's share of total runtime; ``demand`` its mean
    resource demand; ``osc_amp``/``osc_period`` describe the iterative
    oscillation riding on top (period in seconds at 1 Hz).
    """

    name: str
    weight: float
    demand: np.ndarray
    osc_amp: float = 0.0
    osc_period: float = 20.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"phase weight must be positive, got {self.weight}")
        if self.osc_period <= 0:
            raise ValueError(f"osc_period must be positive, got {self.osc_period}")
        if np.asarray(self.demand).shape != (len(RESOURCE_DIMS),):
            raise ValueError(
                f"demand must have shape ({len(RESOURCE_DIMS)},)"
            )


@dataclass(frozen=True)
class AppSignature:
    """A named application with its phase program and variability knobs.

    Parameters
    ----------
    phases:
        Phase program; weights are normalized internally.
    input_scales:
        Per-input-deck overall multipliers on demand. On top of this, each
        deck applies a deterministic per-dimension *mix* (problem size
        changes cache residency, communication surface, I/O volume — not
        just intensity) and stretches the iteration period. Different
        decks therefore shift the application's whole signature, which is
        exactly what breaks classifiers in the Fig. 8 unseen-input test
        (the paper measures an initial F1 of 0.2 there).
    input_mix_strength:
        Half-width of the per-dimension deck multiplier (0.25 → each deck
        scales each resource dimension by a factor in [0.75, 1.25]).
    run_variation:
        Std-dev of the per-run lognormal demand scaling — the natural
        performance variability of the application.
    comm_per_node:
        Extra network demand per additional allocated node (multi-node runs
        communicate more; Eclipse runs span 4/8/16 nodes).
    noise_burst_rate:
        Expected number of benign OS-noise transients per 100 s — short
        bursts of daemon/cron/kernel activity on random resource dimensions.
        They are part of *healthy* behaviour, yet resemble weak anomalies;
        they are why healthy is the hardest class to pin down from few
        samples (the paper's Fig. 4: healthy is the most-queried label).
    noise_burst_amp:
        Peak demand amplitude of those transients.
    """

    name: str
    phases: tuple[Phase, ...]
    input_scales: tuple[float, ...] = (1.0, 1.15, 0.85)
    run_variation: float = 0.05
    comm_per_node: float = 0.01
    suite: str = ""
    noise_burst_rate: float = 2.0
    noise_burst_amp: float = 0.35
    input_mix_strength: float = 0.25

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("an application needs at least one phase")
        if not self.input_scales:
            raise ValueError("need at least one input deck scale")

    @property
    def n_inputs(self) -> int:
        """Number of defined input decks."""
        return len(self.input_scales)

    def demand_timeline(
        self,
        duration: int,
        input_deck: int = 0,
        node_count: int = 4,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Generate the (duration, n_dims) demand timeline for one run.

        The timeline concatenates the phase program (durations proportional
        to weights), applies the input-deck scale, a per-run lognormal
        variation drawn once, per-phase oscillation, extra network demand
        from the node count, and small temporal jitter.
        """
        if duration < len(self.phases):
            raise ValueError(
                f"duration {duration} shorter than the {len(self.phases)}-phase program"
            )
        if not 0 <= input_deck < self.n_inputs:
            raise ValueError(
                f"input_deck {input_deck} out of range [0, {self.n_inputs})"
            )
        if node_count < 1:
            raise ValueError(f"node_count must be >= 1, got {node_count}")
        rng = check_random_state(rng)

        weights = np.array([p.weight for p in self.phases], dtype=float)
        weights /= weights.sum()
        # largest-remainder allocation so phase lengths sum to duration
        raw = weights * duration
        lengths = np.floor(raw).astype(int)
        remainder = duration - lengths.sum()
        order = np.argsort(-(raw - lengths))
        lengths[order[:remainder]] += 1
        lengths = np.maximum(lengths, 1)
        # trimming may overshoot; shave from the longest phases
        while lengths.sum() > duration:
            lengths[np.argmax(lengths)] -= 1

        deck_scale = self.input_scales[input_deck]
        # per-deck per-dimension mix: a different input deck is a different
        # problem, with its own balance of compute / cache / bandwidth / IO
        s = self.input_mix_strength
        deck_mix = np.array(
            [
                1.0 - s + 2.0 * s * _deck_hash_unit(self.name, input_deck, f"mix{i}")
                for i in range(len(RESOURCE_DIMS))
            ]
        )
        # the iteration period stretches with problem size too
        period_scale = 0.75 + 0.5 * _deck_hash_unit(self.name, input_deck, "period")
        run_scale = rng.lognormal(mean=0.0, sigma=self.run_variation)
        comm_extra = demand_vector(net=self.comm_per_node * max(0, node_count - 1))

        rows: list[np.ndarray] = []
        t0 = 0
        phase_jitter = rng.normal(scale=0.02, size=len(self.phases))
        for p, length, jitter in zip(self.phases, lengths, phase_jitter):
            t = np.arange(t0, t0 + length)
            base = p.demand * deck_mix * deck_scale * run_scale * (1.0 + jitter)
            seg = np.tile(base, (length, 1))
            if p.osc_amp > 0:
                phase_shift = rng.uniform(0, 2 * np.pi)
                osc = p.osc_amp * np.sin(
                    2 * np.pi * t / (p.osc_period * period_scale) + phase_shift
                )
                # oscillation modulates the dimensions the phase uses
                mask = base > 1e-6
                seg[:, mask] *= (1.0 + osc)[:, None]
            seg += comm_extra
            rows.append(seg)
            t0 += length
        timeline = np.vstack(rows)
        timeline += rng.normal(scale=0.01, size=timeline.shape)
        self._add_noise_bursts(timeline, rng)
        return np.maximum(timeline, 0.0)

    def _add_noise_bursts(self, timeline: np.ndarray, rng: np.random.Generator) -> None:
        """Superimpose benign OS-noise transients (in place).

        Each burst hits 1–2 random resource dimensions for 2–8 s with a
        random amplitude up to ``noise_burst_amp`` — cron jobs, kernel
        housekeeping, filesystem flushes. Healthy runs therefore have
        heavy-tailed feature distributions that a single labeled sample
        cannot summarize.
        """
        T = timeline.shape[0]
        n_bursts = rng.poisson(self.noise_burst_rate * T / 100.0)
        for _ in range(n_bursts):
            start = int(rng.integers(0, T))
            length = int(rng.integers(2, 9))
            dims = rng.choice(len(RESOURCE_DIMS), size=int(rng.integers(1, 3)), replace=False)
            amp = rng.uniform(0.1, self.noise_burst_amp)
            timeline[start : start + length, dims] += amp
