"""The eleven Volta applications (paper Table I).

NAS Parallel Benchmarks (BT, CG, FT, LU, MG, SP), Mantevo proxies (MiniMD,
CoMD, MiniGhost, MiniAMR), and Kripke. Each signature encodes the
qualitative resource profile of the real code:

* BT / SP — structured-grid implicit solvers: CPU-heavy with strong
  per-sweep oscillation and moderate memory traffic (SP slightly more
  memory-bound, shorter sweeps).
* CG — sparse matrix-vector: memory-bandwidth- and cache-miss-bound.
* FT — 3-D FFT: alternating compute and all-to-all communication bursts.
* LU — Gauss-Seidel pipelined sweeps: CPU + neighbor communication.
* MG — multigrid V-cycles: strided memory access across levels (membw),
  characteristic long-period oscillation.
* MiniMD / CoMD — molecular dynamics: cache-friendly compute with periodic
  neighbor-list rebuilds; CoMD slightly more cache-intensive.
* MiniGhost — halo exchange stencil: network-heavy, steady compute.
* MiniAMR — adaptive refinement: bursty, irregular (high run variation).
* Kripke — sweep transport: deep pipeline, phase-heavy and highly variable
  between runs.

Kripke, MiniMD, and MiniAMR carry the largest ``run_variation`` — the paper
found their healthy runs were the most-queried (most confusable) samples.
"""

from __future__ import annotations

from .base import AppSignature, Phase, demand_vector as dv

__all__ = ["VOLTA_APPS", "volta_app"]


def _std_phases(
    compute: Phase, extra: tuple[Phase, ...] = ()
) -> tuple[Phase, ...]:
    """Wrap a compute kernel with the init/teardown the paper trims."""
    init = Phase("init", 0.06, dv(cpu=0.15, io=0.35, mem=0.25), osc_amp=0.0)
    teardown = Phase("teardown", 0.04, dv(io=0.45, cpu=0.1), osc_amp=0.0)
    return (init, *extra, compute, teardown) if extra else (init, compute, teardown)


VOLTA_APPS: dict[str, AppSignature] = {
    "BT": AppSignature(
        name="BT",
        suite="NAS",
        phases=_std_phases(
            Phase("adi-sweeps", 0.90, dv(cpu=0.78, membw=0.30, cache=0.35, mem=0.45),
                  osc_amp=0.18, osc_period=24.0),
        ),
        run_variation=0.04,
    ),
    "CG": AppSignature(
        name="CG",
        suite="NAS",
        phases=_std_phases(
            Phase("spmv", 0.90, dv(cpu=0.40, membw=0.82, cache=0.65, mem=0.50, net=0.12),
                  osc_amp=0.10, osc_period=9.0),
        ),
        run_variation=0.05,
    ),
    "FT": AppSignature(
        name="FT",
        suite="NAS",
        phases=_std_phases(
            Phase("fft-compute", 0.55, dv(cpu=0.70, membw=0.45, cache=0.40, mem=0.60),
                  osc_amp=0.12, osc_period=16.0),
            extra=(
                Phase("all-to-all", 0.35, dv(net=0.75, cpu=0.25, membw=0.30, mem=0.60),
                      osc_amp=0.22, osc_period=16.0),
            ),
        ),
        run_variation=0.05,
    ),
    "LU": AppSignature(
        name="LU",
        suite="NAS",
        phases=_std_phases(
            Phase("ssor-sweeps", 0.90, dv(cpu=0.72, membw=0.35, cache=0.45, mem=0.40, net=0.28),
                  osc_amp=0.15, osc_period=13.0),
        ),
        run_variation=0.04,
    ),
    "MG": AppSignature(
        name="MG",
        suite="NAS",
        phases=_std_phases(
            Phase("v-cycles", 0.90, dv(cpu=0.50, membw=0.72, cache=0.30, mem=0.68, net=0.18),
                  osc_amp=0.25, osc_period=32.0),
        ),
        run_variation=0.05,
    ),
    "SP": AppSignature(
        name="SP",
        suite="NAS",
        phases=_std_phases(
            Phase("penta-sweeps", 0.90, dv(cpu=0.68, membw=0.48, cache=0.38, mem=0.42),
                  osc_amp=0.16, osc_period=18.0),
        ),
        run_variation=0.04,
    ),
    "MiniMD": AppSignature(
        name="MiniMD",
        suite="Mantevo",
        phases=_std_phases(
            Phase("md-steps", 0.84, dv(cpu=0.62, cache=0.58, mem=0.30, net=0.15),
                  osc_amp=0.10, osc_period=11.0),
            extra=(
                Phase("neighbor-rebuild", 0.06, dv(cpu=0.45, membw=0.55, mem=0.35),
                      osc_amp=0.0),
            ),
        ),
        run_variation=0.11,
    ),
    "CoMD": AppSignature(
        name="CoMD",
        suite="Mantevo",
        phases=_std_phases(
            Phase("md-steps", 0.90, dv(cpu=0.58, cache=0.68, mem=0.28, net=0.14),
                  osc_amp=0.09, osc_period=12.5),
        ),
        run_variation=0.06,
    ),
    "MiniGhost": AppSignature(
        name="MiniGhost",
        suite="Mantevo",
        phases=_std_phases(
            Phase("halo-stencil", 0.90, dv(cpu=0.52, membw=0.40, net=0.62, mem=0.38),
                  osc_amp=0.14, osc_period=15.0),
        ),
        run_variation=0.05,
    ),
    "MiniAMR": AppSignature(
        name="MiniAMR",
        suite="Mantevo",
        phases=_std_phases(
            Phase("stencil", 0.62, dv(cpu=0.55, membw=0.42, mem=0.50, net=0.22),
                  osc_amp=0.12, osc_period=14.0),
            extra=(
                Phase("refine", 0.28, dv(cpu=0.35, mem=0.72, membw=0.30, io=0.18),
                      osc_amp=0.30, osc_period=27.0),
            ),
        ),
        run_variation=0.12,
    ),
    "Kripke": AppSignature(
        name="Kripke",
        suite="Other",
        phases=_std_phases(
            Phase("sweep", 0.55, dv(cpu=0.60, cache=0.50, membw=0.38, mem=0.45),
                  osc_amp=0.20, osc_period=21.0),
            extra=(
                Phase("scatter", 0.35, dv(cpu=0.38, membw=0.52, net=0.35, mem=0.45),
                      osc_amp=0.18, osc_period=21.0),
            ),
        ),
        run_variation=0.13,
    ),
}


def volta_app(name: str) -> AppSignature:
    """Look up a Volta application signature by name."""
    try:
        return VOLTA_APPS[name]
    except KeyError:
        raise ValueError(
            f"unknown Volta app {name!r}; available: {sorted(VOLTA_APPS)}"
        ) from None
