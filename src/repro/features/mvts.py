"""MVTS-style statistical feature extraction (paper Sec. III-A).

The MVTS-Data Toolkit computes 48 statistical features per metric:
descriptive statistics, absolute differences between the first- and
second-half statistics of the series, and long-run trend features (longest
monotonic increase, etc.). This module reproduces that inventory exactly —
48 named features per metric — with every feature computed as a vectorized
operation over the whole (T, M) run matrix at once: the hot path contains
no per-metric Python loop.

Every kernel here treats columns independently (all reductions run over
axis 0 with width-stable accumulation), so the extractor accepts
arbitrary column counts: *B* runs of equal length can be ``hstack``-ed
into one ``(T, B*M)`` panel and featurized in a single pass, bit-identical
to extracting each run separately. The batched pipeline
(:mod:`repro.features.pipeline`) leans on exactly this contract.

Input series must be NaN-free (the pipeline interpolates first).
"""

from __future__ import annotations

import numpy as np

__all__ = ["MVTS_FEATURE_NAMES", "extract_mvts", "feature_names_for"]


def _longest_true_run(mask: np.ndarray) -> np.ndarray:
    """Per-column length of the longest run of True in a (T, M) mask."""
    T, M = mask.shape
    best = np.zeros(M, dtype=np.int64)
    current = np.zeros(M, dtype=np.int64)
    for t in range(T):
        current = np.where(mask[t], current + 1, 0)
        best = np.maximum(best, current)
    return best


def _autocorr(X: np.ndarray, lag: int) -> np.ndarray:
    """Per-column lag-k autocorrelation; 0 for constant columns."""
    T = X.shape[0]
    if lag >= T:
        return np.zeros(X.shape[1])
    mu = X.mean(axis=0)
    var = X.var(axis=0)
    cov = np.mean((X[:-lag] - mu) * (X[lag:] - mu), axis=0)
    with np.errstate(invalid="ignore", divide="ignore"):
        ac = np.where(var > 1e-18, cov / np.where(var > 1e-18, var, 1.0), 0.0)
    return ac


def _linfit(X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-column least-squares slope and intercept against time.

    The time-weighted sum is an explicit ``np.sum`` over axis 0 rather
    than a ``@`` matmul: BLAS picks its accumulation order from the
    matrix *width*, so a matmul would make each column's slope depend on
    how many sibling columns ride in the same call — breaking the
    bit-identity contract between per-run and run-batched extraction.
    """
    T = X.shape[0]
    t = np.arange(T, dtype=np.float64)
    t_mean = t.mean()
    t_var = np.sum((t - t_mean) ** 2)
    mu = X.mean(axis=0)
    slope = np.sum((t - t_mean)[:, None] * (X - mu), axis=0) / t_var
    intercept = mu - slope * t_mean
    return slope, intercept


# the canonical, ordered 48-feature inventory
MVTS_FEATURE_NAMES: tuple[str, ...] = (
    "mean", "median", "std", "var", "min", "max", "range", "iqr",
    "q1", "q3", "skew", "kurtosis", "rms", "abs_mean", "total", "abs_energy",
    "mean_abs_change", "mean_change", "mean_second_derivative",
    "count_above_mean", "count_below_mean",
    "longest_strike_above_mean", "longest_strike_below_mean",
    "longest_monotonic_increase", "longest_monotonic_decrease",
    "n_mean_crossings", "linear_slope", "linear_intercept",
    "first_loc_of_max", "first_loc_of_min", "last_loc_of_max", "last_loc_of_min",
    "half_diff_mean", "half_diff_median", "half_diff_std", "half_diff_var",
    "half_diff_min", "half_diff_max", "half_diff_q1", "half_diff_q3",
    "autocorr_lag1", "autocorr_lag2",
    "ratio_beyond_1sigma", "ratio_beyond_2sigma",
    "variation_coefficient", "p5", "p95", "median_abs_deviation",
)

assert len(MVTS_FEATURE_NAMES) == 48


def extract_mvts(X: np.ndarray) -> np.ndarray:
    """Compute the 48 MVTS features for every column of a (T, M) matrix.

    Returns a flat ``(M * 48,)`` vector ordered metric-major: all 48
    features of metric 0, then metric 1, … (matching
    :func:`feature_names_for`).
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"expected (T, M), got {X.shape}")
    T, M = X.shape
    if T < 4:
        raise ValueError(f"need at least 4 timesteps, got {T}")
    if np.isnan(X).any():
        raise ValueError("input contains NaNs; interpolate first (see pipeline)")

    feats = np.empty((48, M))
    mu = X.mean(axis=0)
    sd = X.std(axis=0)
    q1, med, q3 = np.percentile(X, [25, 50, 75], axis=0)
    mn, mx = X.min(axis=0), X.max(axis=0)
    diffs = np.diff(X, axis=0)

    feats[0] = mu
    feats[1] = med
    feats[2] = sd
    feats[3] = sd**2
    feats[4] = mn
    feats[5] = mx
    feats[6] = mx - mn
    feats[7] = q3 - q1
    feats[8] = q1
    feats[9] = q3
    centered = X - mu
    safe_sd = np.where(sd > 1e-18, sd, 1.0)
    z = centered / safe_sd
    feats[10] = np.where(sd > 1e-18, np.mean(z**3, axis=0), 0.0)  # skew
    feats[11] = np.where(sd > 1e-18, np.mean(z**4, axis=0) - 3.0, 0.0)  # ex. kurtosis
    feats[12] = np.sqrt(np.mean(X**2, axis=0))  # rms
    feats[13] = np.mean(np.abs(X), axis=0)
    feats[14] = X.sum(axis=0)
    feats[15] = np.sum(X**2, axis=0)
    feats[16] = np.mean(np.abs(diffs), axis=0)
    feats[17] = np.mean(diffs, axis=0)
    feats[18] = np.mean(X[2:] - 2 * X[1:-1] + X[:-2], axis=0)
    above = X > mu
    below = X < mu
    feats[19] = above.sum(axis=0)
    feats[20] = below.sum(axis=0)
    feats[21] = _longest_true_run(above)
    feats[22] = _longest_true_run(below)
    feats[23] = _longest_true_run(diffs > 0) + 1  # run length in points
    feats[24] = _longest_true_run(diffs < 0) + 1
    sign = np.sign(X - mu)
    feats[25] = np.sum(np.abs(np.diff(sign, axis=0)) > 1, axis=0)  # mean crossings
    slope, intercept = _linfit(X)
    feats[26] = slope
    feats[27] = intercept
    feats[28] = np.argmax(X, axis=0) / T
    feats[29] = np.argmin(X, axis=0) / T
    feats[30] = (T - 1 - np.argmax(X[::-1], axis=0)) / T
    feats[31] = (T - 1 - np.argmin(X[::-1], axis=0)) / T
    half = T // 2
    A, B = X[:half], X[half:]
    feats[32] = np.abs(A.mean(axis=0) - B.mean(axis=0))
    feats[33] = np.abs(np.median(A, axis=0) - np.median(B, axis=0))
    feats[34] = np.abs(A.std(axis=0) - B.std(axis=0))
    feats[35] = np.abs(A.var(axis=0) - B.var(axis=0))
    feats[36] = np.abs(A.min(axis=0) - B.min(axis=0))
    feats[37] = np.abs(A.max(axis=0) - B.max(axis=0))
    feats[38] = np.abs(
        np.percentile(A, 25, axis=0) - np.percentile(B, 25, axis=0)
    )
    feats[39] = np.abs(
        np.percentile(A, 75, axis=0) - np.percentile(B, 75, axis=0)
    )
    feats[40] = _autocorr(X, 1)
    feats[41] = _autocorr(X, 2)
    feats[42] = np.mean(np.abs(centered) > safe_sd, axis=0)
    feats[43] = np.mean(np.abs(centered) > 2 * safe_sd, axis=0)
    with np.errstate(invalid="ignore", divide="ignore"):
        feats[44] = np.where(np.abs(mu) > 1e-18, sd / np.where(np.abs(mu) > 1e-18, mu, 1.0), 0.0)
    feats[45] = np.percentile(X, 5, axis=0)
    feats[46] = np.percentile(X, 95, axis=0)
    feats[47] = np.median(np.abs(X - med), axis=0)

    return feats.T.ravel()  # metric-major


def feature_names_for(metric_names: list[str]) -> list[str]:
    """Full feature-name list matching :func:`extract_mvts` output order."""
    return [f"{m}::{f}" for m in metric_names for f in MVTS_FEATURE_NAMES]
