"""Run → feature-vector pipeline (paper Sec. IV-E1).

Reproduces the paper's data preparation exactly, in order:

1. **Trim** the initialization and termination intervals (their metrics
   "fluctuate significantly from their expected values").
2. **Difference** cumulative performance counters — "we are interested in
   the change, not the raw value".
3. **Linearly interpolate** missing values (LDMS loses samples in flight).
4. **Extract** statistical features per metric (MVTS or TSFRESH-lite).
5. **Drop** features that are NaN or identically zero across the dataset.

Step 5 is a *fit* operation (the survivor mask is learned on the training
corpus and reapplied to new runs), mirroring how the paper reports post-drop
feature counts per dataset (6436 MVTS / 80839 TSFRESH on Eclipse, …).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from ..telemetry.catalog import MetricCatalog
from ..telemetry.collector import RunRecord
from .mvts import MVTS_FEATURE_NAMES, extract_mvts
from .tsfresh_lite import TSFRESH_FEATURE_NAMES, extract_tsfresh

__all__ = [
    "interpolate_missing",
    "preprocess_run",
    "FeatureDataset",
    "FeatureExtractor",
]

_EXTRACTORS: dict[str, tuple[Callable[[np.ndarray], np.ndarray], tuple[str, ...]]] = {
    "mvts": (extract_mvts, MVTS_FEATURE_NAMES),
    "tsfresh": (extract_tsfresh, TSFRESH_FEATURE_NAMES),
}


def interpolate_missing(data: np.ndarray) -> np.ndarray:
    """Linearly interpolate NaNs per column; edge NaNs take the nearest value.

    Columns that are entirely NaN become zero (they will be dropped by the
    zero-feature filter downstream).
    """
    data = np.asarray(data, dtype=np.float64).copy()
    T = data.shape[0]
    t = np.arange(T)
    for j in range(data.shape[1]):
        col = data[:, j]
        bad = np.isnan(col)
        if not bad.any():
            continue
        good = ~bad
        if not good.any():
            data[:, j] = 0.0
            continue
        data[bad, j] = np.interp(t[bad], t[good], col[good])
    return data


def preprocess_run(
    data: np.ndarray,
    counter_mask: np.ndarray,
    trim_frac: tuple[float, float] = (0.08, 0.06),
) -> np.ndarray:
    """Apply steps 1–3 to one raw (T, M) run matrix.

    ``counter_mask`` flags cumulative counters: those columns are first
    differenced (rates), shrinking the matrix by one row; gauge columns
    simply drop their first row to stay aligned. Trimming removes
    ``trim_frac`` = (head, tail) fractions of the run.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"expected (T, M), got {data.shape}")
    counter_mask = np.asarray(counter_mask, dtype=bool)
    if counter_mask.shape != (data.shape[1],):
        raise ValueError("counter_mask / data column mismatch")
    head, tail = trim_frac
    if head < 0 or tail < 0 or head + tail >= 0.9:
        raise ValueError(f"unreasonable trim fractions: {trim_frac}")

    T = data.shape[0]
    lo = int(np.floor(head * T))
    hi = T - int(np.floor(tail * T))
    if hi - lo < 8:
        raise ValueError(f"run too short after trimming: {hi - lo} samples")
    data = data[lo:hi]
    data = interpolate_missing(data)
    out = data[1:].copy()
    if counter_mask.any():
        out[:, counter_mask] = np.diff(data[:, counter_mask], axis=0)
    return out


@dataclass
class FeatureDataset:
    """A featurized run corpus: matrix + aligned metadata.

    Rows of ``X`` correspond one-to-one with entries of the metadata
    arrays; ``feature_names`` matches the columns.
    """

    X: np.ndarray
    labels: np.ndarray
    apps: np.ndarray
    input_decks: np.ndarray
    intensities: np.ndarray
    node_counts: np.ndarray
    feature_names: list[str] = field(repr=False, default_factory=list)

    def __post_init__(self) -> None:
        n = self.X.shape[0]
        for name in ("labels", "apps", "input_decks", "intensities", "node_counts"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"{name} length does not match X rows")

    def __len__(self) -> int:
        return self.X.shape[0]

    def subset(self, mask: np.ndarray) -> "FeatureDataset":
        """Row-filtered view (boolean mask or index array)."""
        return FeatureDataset(
            X=self.X[mask],
            labels=self.labels[mask],
            apps=self.apps[mask],
            input_decks=self.input_decks[mask],
            intensities=self.intensities[mask],
            node_counts=self.node_counts[mask],
            feature_names=self.feature_names,
        )


class FeatureExtractor:
    """End-to-end extraction over a run corpus, with the NaN/zero drop.

    Parameters
    ----------
    catalog:
        The metric catalog the runs were collected with (provides the
        counter mask and metric names).
    method:
        ``"mvts"`` (48 features/metric) or ``"tsfresh"`` (84/metric).
    trim_frac:
        Head/tail trim fractions passed to :func:`preprocess_run`.
    map_fn:
        Optional parallel map (e.g. :meth:`repro.parallel.Executor.map`)
        used to spread per-run extraction over processes.
    """

    def __init__(
        self,
        catalog: MetricCatalog,
        method: str = "mvts",
        trim_frac: tuple[float, float] = (0.08, 0.06),
        map_fn: Callable[..., Iterable[np.ndarray]] | None = None,
    ):
        if method not in _EXTRACTORS:
            raise ValueError(
                f"unknown method {method!r}; available: {sorted(_EXTRACTORS)}"
            )
        self.catalog = catalog
        self.method = method
        self.trim_frac = trim_frac
        self.map_fn = map_fn
        self._extract, per_metric_names = _EXTRACTORS[method]
        self._all_names = [
            f"{m}::{f}" for m in catalog.names for f in per_metric_names
        ]
        self.keep_mask_: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _featurize_one(self, run: RunRecord) -> np.ndarray:
        clean = preprocess_run(run.data, self.catalog.counter_mask, self.trim_frac)
        return self._extract(clean)

    def _featurize_all(self, runs: Sequence[RunRecord]) -> np.ndarray:
        mapper = self.map_fn if self.map_fn is not None else map
        return np.vstack(list(mapper(self._featurize_one, runs)))

    def fit_transform(self, runs: Sequence[RunRecord]) -> FeatureDataset:
        """Featurize a corpus and learn the NaN/zero drop mask from it."""
        if len(runs) == 0:
            raise ValueError("empty run corpus")
        raw = self._featurize_all(runs)
        nan_cols = np.isnan(raw).any(axis=0)
        zero_cols = np.all(raw == 0.0, axis=0)
        self.keep_mask_ = ~(nan_cols | zero_cols)
        return self._package(runs, raw[:, self.keep_mask_])

    def transform(self, runs: Sequence[RunRecord]) -> FeatureDataset:
        """Featurize new runs with the already-learned drop mask."""
        if self.keep_mask_ is None:
            raise RuntimeError("call fit_transform on a training corpus first")
        raw = self._featurize_all(runs)
        kept = raw[:, self.keep_mask_]
        # test-time NaNs (e.g. all-missing metric) are zero-filled: the
        # model must not crash on a degraded run
        return self._package(runs, np.nan_to_num(kept))

    def _package(self, runs: Sequence[RunRecord], X: np.ndarray) -> FeatureDataset:
        names = [n for n, keep in zip(self._all_names, self.keep_mask_) if keep]
        return FeatureDataset(
            X=X,
            labels=np.array([r.label for r in runs]),
            apps=np.array([r.app for r in runs]),
            input_decks=np.array([r.input_deck for r in runs]),
            intensities=np.array([r.intensity for r in runs]),
            node_counts=np.array([r.node_count for r in runs]),
            feature_names=names,
        )

    @property
    def n_features_raw(self) -> int:
        """Feature count before the NaN/zero drop."""
        return len(self._all_names)
