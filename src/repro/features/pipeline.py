"""Run → feature-vector pipeline (paper Sec. IV-E1).

Reproduces the paper's data preparation exactly, in order:

1. **Trim** the initialization and termination intervals (their metrics
   "fluctuate significantly from their expected values").
2. **Difference** cumulative performance counters — "we are interested in
   the change, not the raw value".
3. **Linearly interpolate** missing values (LDMS loses samples in flight).
4. **Extract** statistical features per metric (MVTS or TSFRESH-lite).
5. **Drop** features that are NaN or identically zero across the dataset.

Step 5 is a *fit* operation (the survivor mask is learned on the training
corpus and reapplied to new runs), mirroring how the paper reports post-drop
feature counts per dataset (6436 MVTS / 80839 TSFRESH on Eclipse, …).

Extraction is **run-batched**: since every kernel in
:mod:`~repro.features.mvts` / :mod:`~repro.features.tsfresh_lite` reduces
per-column, runs of equal length are ``hstack``-ed into one ``(T, B*M)``
panel and pushed through steps 1–4 in a single kernel pass per group
(:func:`batched_feature_rows`). The output is bit-identical to featurizing
each run separately; what changes is that the fixed Python/numpy dispatch
cost of the ~hundreds of kernels is paid once per *corpus*, not once per
*run*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from ..parallel import SharedArrayHandle, block_partition, shared_executor
from ..telemetry.catalog import MetricCatalog
from ..telemetry.collector import RunRecord
from ..telemetry.corpus import (
    DEFAULT_MAX_PANEL_ELEMS,
    RunCorpus,
    plan_length_groups,
)
from .mvts import MVTS_FEATURE_NAMES, extract_mvts
from .tsfresh_lite import TSFRESH_FEATURE_NAMES, extract_tsfresh

__all__ = [
    "interpolate_missing",
    "preprocess_run",
    "batched_feature_rows",
    "FeatureDataset",
    "FeatureExtractor",
]

_EXTRACTORS: dict[str, tuple[Callable[[np.ndarray], np.ndarray], tuple[str, ...]]] = {
    "mvts": (extract_mvts, MVTS_FEATURE_NAMES),
    "tsfresh": (extract_tsfresh, TSFRESH_FEATURE_NAMES),
}


def interpolate_missing(data: np.ndarray) -> np.ndarray:
    """Linearly interpolate NaNs per column; edge NaNs take the nearest value.

    Columns that are entirely NaN become zero (they will be dropped by the
    zero-feature filter downstream).

    The whole matrix is filled in one masked-gather pass — the previous-
    and next-good-sample indices come from prefix max/min scans, so there
    is no per-column Python loop. The arithmetic mirrors ``np.interp``
    (``slope * (t - t_prev) + v_prev`` in float64), keeping the output
    bit-identical to the historical per-column implementation.
    """
    data = np.asarray(data, dtype=np.float64).copy()
    bad = np.isnan(data)
    if not bad.any():
        return data
    T = data.shape[0]
    t_idx = np.arange(T, dtype=np.int64)[:, None]
    # index of the last good sample at or before t (-1: none yet) and the
    # first good sample at or after t (T: none remaining), per column
    prev = np.maximum.accumulate(np.where(bad, -1, t_idx), axis=0)
    nxt = np.where(bad, T, t_idx)[::-1]
    nxt = np.minimum.accumulate(nxt, axis=0)[::-1]
    vp = np.take_along_axis(data, np.clip(prev, 0, T - 1), axis=0)
    vn = np.take_along_axis(data, np.clip(nxt, 0, T - 1), axis=0)
    denom = (nxt - prev).astype(np.float64)
    denom[denom == 0.0] = 1.0  # only at good rows, which are never written
    slope = (vn - vp) / denom
    interior = slope * (t_idx.astype(np.float64) - prev) + vp
    filled = np.where(prev < 0, vn, np.where(nxt >= T, vp, interior))
    data[bad] = filled[bad]
    all_bad = bad.all(axis=0)
    if all_bad.any():
        data[:, all_bad] = 0.0
    return data


def preprocess_run(
    data: np.ndarray,
    counter_mask: np.ndarray,
    trim_frac: tuple[float, float] = (0.08, 0.06),
) -> np.ndarray:
    """Apply steps 1–3 to one raw (T, M) run matrix.

    ``counter_mask`` flags cumulative counters: those columns are first
    differenced (rates), shrinking the matrix by one row; gauge columns
    simply drop their first row to stay aligned. Trimming removes
    ``trim_frac`` = (head, tail) fractions of the run.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"expected (T, M), got {data.shape}")
    counter_mask = np.asarray(counter_mask, dtype=bool)
    if counter_mask.shape != (data.shape[1],):
        raise ValueError("counter_mask / data column mismatch")
    head, tail = trim_frac
    if head < 0 or tail < 0 or head + tail >= 0.9:
        raise ValueError(f"unreasonable trim fractions: {trim_frac}")

    T = data.shape[0]
    lo = int(np.floor(head * T))
    hi = T - int(np.floor(tail * T))
    if hi - lo < 8:
        raise ValueError(f"run too short after trimming: {hi - lo} samples")
    data = data[lo:hi]
    data = interpolate_missing(data)
    out = data[1:].copy()
    if counter_mask.any():
        out[:, counter_mask] = np.diff(data[:, counter_mask], axis=0)
    return out


@dataclass
class FeatureDataset:
    """A featurized run corpus: matrix + aligned metadata.

    Rows of ``X`` correspond one-to-one with entries of the metadata
    arrays; ``feature_names`` matches the columns.
    """

    X: np.ndarray
    labels: np.ndarray
    apps: np.ndarray
    input_decks: np.ndarray
    intensities: np.ndarray
    node_counts: np.ndarray
    feature_names: list[str] = field(repr=False, default_factory=list)

    def __post_init__(self) -> None:
        n = self.X.shape[0]
        for name in ("labels", "apps", "input_decks", "intensities", "node_counts"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"{name} length does not match X rows")

    def __len__(self) -> int:
        return self.X.shape[0]

    def subset(self, mask: np.ndarray) -> "FeatureDataset":
        """Row-filtered view (boolean mask or index array)."""
        return FeatureDataset(
            X=self.X[mask],
            labels=self.labels[mask],
            apps=self.apps[mask],
            input_decks=self.input_decks[mask],
            intensities=self.intensities[mask],
            node_counts=self.node_counts[mask],
            feature_names=self.feature_names,
        )


def batched_feature_rows(
    buffer: np.ndarray,
    offsets: np.ndarray,
    counter_mask: np.ndarray,
    trim_frac: tuple[float, float],
    method: str,
    max_panel_elems: int = DEFAULT_MAX_PANEL_ELEMS,
) -> np.ndarray:
    """Featurize every run of a packed buffer in one kernel pass per length.

    ``buffer[offsets[i]:offsets[i + 1]]`` is run ``i``'s ``(T_i, M)``
    matrix (offsets need not start at zero — shared-memory workers pass
    absolute offsets into the campaign segment). Runs are grouped by raw
    length via :func:`~repro.telemetry.corpus.plan_length_groups`; each
    group's matrices are ``hstack``-ed into a ``(T, B*M)`` panel, the
    counter mask is tiled across the B runs (so column semantics survive
    the stacking and the trim/diff), and ``preprocess_run`` + the
    extractor run **once** for the whole group. Because every kernel in
    the extractors reduces per-column with width-stable accumulation, the
    scattered per-run rows are bit-identical to featurizing each run
    separately — the batching only amortizes the fixed cost of hundreds
    of numpy/scipy dispatches over the whole group.

    A run too short to survive trimming raises the same ``ValueError`` as
    the per-run path (``preprocess_run`` checks post-trim length before
    touching the data, and every run in a group shares one length).
    """
    extract = _EXTRACTORS[method][0]
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.diff(offsets)
    out: np.ndarray | None = None
    for idx in plan_length_groups(lengths, buffer.shape[1], max_panel_elems):
        mats = [buffer[offsets[i]:offsets[i + 1]] for i in idx]
        if len(mats) == 1:
            panel, mask = mats[0], counter_mask
        else:
            panel = np.hstack(mats)
            mask = np.tile(counter_mask, len(mats))
        clean = preprocess_run(panel, mask, trim_frac)
        rows = extract(clean).reshape(len(mats), -1)
        if out is None:
            out = np.empty((len(lengths), rows.shape[1]))
        out[idx] = rows
    assert out is not None  # plan_length_groups never returns empty plans
    return out


class _ChunkFeaturizer:
    """Picklable worker body: featurize every run of a corpus chunk.

    A chunk arrives as a :class:`RunCorpus` view (one contiguous buffer);
    under the thread backend the view *is* the parent's memory, so
    nothing is copied at all. Runs inside the chunk are featurized
    run-batched (:func:`batched_feature_rows`), which is bit-identical to
    the historical per-run loop at any chunking.
    """

    def __init__(self, counter_mask: np.ndarray, trim_frac: tuple[float, float],
                 method: str,
                 max_panel_elems: int = DEFAULT_MAX_PANEL_ELEMS):
        self.counter_mask = counter_mask
        self.trim_frac = trim_frac
        self.method = method
        self.max_panel_elems = max_panel_elems

    def __call__(self, chunk: RunCorpus) -> np.ndarray:
        return batched_feature_rows(
            chunk.buffer, chunk.offsets, self.counter_mask, self.trim_frac,
            self.method, self.max_panel_elems,
        )


class _ShmChunkFeaturizer:
    """Worker body bound to a corpus buffer living in shared memory.

    The whole object is shipped **once per pool** (the executor's
    function cache); each work item is only a chunk's absolute row-offset
    array into the shared buffer — a few hundred bytes — so scaling the
    corpus never scales the task pickles. Workers attach to the segment,
    featurize their chunk run-batched as views into it
    (:func:`batched_feature_rows` takes the absolute offsets directly),
    and detach; the parent owns (and unlinks) the segment.
    """

    def __init__(self, handle: SharedArrayHandle, counter_mask: np.ndarray,
                 trim_frac: tuple[float, float], method: str,
                 max_panel_elems: int = DEFAULT_MAX_PANEL_ELEMS):
        self.handle = handle
        self.counter_mask = counter_mask
        self.trim_frac = trim_frac
        self.method = method
        self.max_panel_elems = max_panel_elems

    def __call__(self, offsets: np.ndarray) -> np.ndarray:
        with self.handle.open() as att:
            return batched_feature_rows(
                att.array, offsets, self.counter_mask, self.trim_frac,
                self.method, self.max_panel_elems,
            )


class FeatureExtractor:
    """End-to-end extraction over a run corpus, with the NaN/zero drop.

    Accepts either a ``Sequence[RunRecord]`` or a packed
    :class:`~repro.telemetry.corpus.RunCorpus`; record lists are packed
    into a corpus up front so both entry points share one code path.
    Extraction is **run-batched**: runs of equal length are stacked into
    one ``(T, B*M)`` panel and preprocessed + featurized in a single
    kernel pass (:func:`batched_feature_rows`), amortizing the fixed
    dispatch overhead of the ~hundreds of numpy/scipy kernels per call
    over the whole corpus — bit-identical to per-run extraction, just
    without paying the dispatch tax once per run.

    With ``n_jobs > 1`` the corpus is split into contiguous chunks (many
    runs per task, each chunk batching internally) that fan out over the
    process-wide warm pool (:func:`repro.parallel.shared_executor`) —
    results are bit-identical to serial extraction at any worker count
    and either backend. Under the process backend the corpus buffer
    crosses into workers through one :class:`repro.parallel.SharedArray`
    segment (workers attach, nothing is pickled but row offsets); the
    thread backend shares the parent's memory outright.

    Parameters
    ----------
    catalog:
        The metric catalog the runs were collected with (provides the
        counter mask and metric names).
    method:
        ``"mvts"`` (48 features/metric) or ``"tsfresh"`` (84/metric).
    trim_frac:
        Head/tail trim fractions passed to :func:`preprocess_run`.
    map_fn:
        Optional parallel map (e.g. :meth:`repro.parallel.Executor.map`)
        used to spread per-run extraction over processes (legacy hook;
        prefer ``n_jobs``, which ships packed chunks instead of records).
    n_jobs:
        Workers for chunk-wise extraction; ``None`` or 1 keeps
        extraction serial and in-process.
    backend:
        ``"auto"`` (default), ``"thread"``, or ``"process"`` — see
        :func:`repro.parallel.resolve_backend`. The extraction kernels
        (interpolation, entropy, bincounts) release the GIL, so the
        thread backend parallelizes them with near-zero overhead.
    max_panel_elems:
        Cap on ``T * B * M`` elements per batched-extraction panel
        (:func:`~repro.telemetry.corpus.plan_length_groups`); bounds peak
        memory without changing a single output bit.
    """

    def __init__(
        self,
        catalog: MetricCatalog,
        method: str = "mvts",
        trim_frac: tuple[float, float] = (0.08, 0.06),
        map_fn: Callable[..., Iterable[np.ndarray]] | None = None,
        n_jobs: int | None = None,
        backend: str = "auto",
        max_panel_elems: int = DEFAULT_MAX_PANEL_ELEMS,
    ):
        if method not in _EXTRACTORS:
            raise ValueError(
                f"unknown method {method!r}; available: {sorted(_EXTRACTORS)}"
            )
        self.catalog = catalog
        self.method = method
        self.trim_frac = trim_frac
        self.map_fn = map_fn
        self.n_jobs = n_jobs
        self.backend = backend
        self.max_panel_elems = max_panel_elems
        self._extract, per_metric_names = _EXTRACTORS[method]
        self._all_names = [
            f"{m}::{f}" for m in catalog.names for f in per_metric_names
        ]
        self.keep_mask_: np.ndarray | None = None

    def __setstate__(self, state: dict) -> None:
        # extractors pickled before the parallel data plane lack its knobs
        state.setdefault("n_jobs", None)
        state.setdefault("backend", "auto")
        state.setdefault("max_panel_elems", DEFAULT_MAX_PANEL_ELEMS)
        state.pop("_executor", None)  # pre-shm extractors owned a pool
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    def _featurize_one(self, run: RunRecord) -> np.ndarray:
        clean = preprocess_run(run.data, self.catalog.counter_mask, self.trim_frac)
        return self._extract(clean)

    def _featurize_corpus(self, corpus: RunCorpus) -> np.ndarray:
        n_jobs = self.n_jobs or 1
        if n_jobs <= 1 or len(corpus) == 1:
            return _ChunkFeaturizer(
                self.catalog.counter_mask, self.trim_frac, self.method,
                self.max_panel_elems,
            )(corpus)
        executor = shared_executor(n_jobs, backend=self.backend)
        if executor.n_workers <= 1:
            # backend="auto" on a one-core mask degrades to serial: skip
            # the chunk/vstack round-trip, the bytes are identical anyway
            return _ChunkFeaturizer(
                self.catalog.counter_mask, self.trim_frac, self.method,
                self.max_panel_elems,
            )(corpus)
        parts = [
            idx
            for idx in block_partition(len(corpus), min(len(corpus), n_jobs * 4))
            if len(idx)
        ]
        if executor.backend == "process":
            # one segment for the whole campaign buffer; tasks carry only
            # their chunk's row offsets, workers attach instead of copying
            with corpus.share() as shared:
                worker = _ShmChunkFeaturizer(
                    shared.handle, self.catalog.counter_mask,
                    self.trim_frac, self.method, self.max_panel_elems,
                )
                items = [
                    np.asarray(corpus.offsets[int(idx[0]):int(idx[-1]) + 2])
                    for idx in parts
                ]
                return np.vstack(executor.map(worker, items))
        worker = _ChunkFeaturizer(
            self.catalog.counter_mask, self.trim_frac, self.method,
            self.max_panel_elems,
        )
        chunks = [corpus.chunk(int(idx[0]), int(idx[-1]) + 1) for idx in parts]
        return np.vstack(executor.map(worker, chunks))

    def _featurize_all(self, runs: Sequence[RunRecord] | RunCorpus) -> np.ndarray:
        if isinstance(runs, RunCorpus):
            return self._featurize_corpus(runs)
        if self.map_fn is not None:
            # legacy hook: caller owns the parallel map, per-run tasks
            return np.vstack(list(self.map_fn(self._featurize_one, runs)))
        try:
            # pack record lists up front: serving micro-batches and
            # serial callers get the run-batched kernel pass too, and
            # parallel chunks ship as flat buffers
            corpus = RunCorpus.from_records(list(runs))
        except ValueError:
            # unpackable lists (empty, or records disagreeing on the
            # metric catalog) keep the historical per-run behavior
            return np.vstack([self._featurize_one(r) for r in runs])
        return self._featurize_corpus(corpus)

    def fit_transform(self, runs: Sequence[RunRecord] | RunCorpus) -> FeatureDataset:
        """Featurize a corpus and learn the NaN/zero drop mask from it."""
        if len(runs) == 0:
            raise ValueError("empty run corpus")
        raw = self._featurize_all(runs)
        nan_cols = np.isnan(raw).any(axis=0)
        zero_cols = np.all(raw == 0.0, axis=0)
        self.keep_mask_ = ~(nan_cols | zero_cols)
        return self._package(runs, raw[:, self.keep_mask_])

    def transform(self, runs: Sequence[RunRecord] | RunCorpus) -> FeatureDataset:
        """Featurize new runs with the already-learned drop mask."""
        if self.keep_mask_ is None:
            raise RuntimeError("call fit_transform on a training corpus first")
        raw = self._featurize_all(runs)
        kept = raw[:, self.keep_mask_]
        # test-time NaNs (e.g. all-missing metric) are zero-filled: the
        # model must not crash on a degraded run
        return self._package(runs, np.nan_to_num(kept))

    def _package(
        self, runs: Sequence[RunRecord] | RunCorpus, X: np.ndarray
    ) -> FeatureDataset:
        names = [n for n, keep in zip(self._all_names, self.keep_mask_) if keep]
        if isinstance(runs, RunCorpus):
            return FeatureDataset(
                X=X,
                labels=runs.labels,
                apps=runs.apps.copy(),
                input_decks=runs.input_decks.copy(),
                intensities=runs.intensities.copy(),
                node_counts=runs.node_counts.copy(),
                feature_names=names,
            )
        return FeatureDataset(
            X=X,
            labels=np.array([r.label for r in runs]),
            apps=np.array([r.app for r in runs]),
            input_decks=np.array([r.input_deck for r in runs]),
            intensities=np.array([r.intensity for r in runs]),
            node_counts=np.array([r.node_count for r in runs]),
            feature_names=names,
        )

    @property
    def n_features_raw(self) -> int:
        """Feature count before the NaN/zero drop."""
        return len(self._all_names)
