"""repro.features — statistical feature extraction (MVTS / TSFRESH stand-ins).

48 MVTS features and 84 TSFRESH-lite features per metric, plus the
preprocessing pipeline (trim, counter differencing, interpolation,
NaN/zero-feature dropping) of the paper's Sec. IV-E1.
"""

from .mvts import MVTS_FEATURE_NAMES, extract_mvts
from .pipeline import (
    FeatureDataset,
    FeatureExtractor,
    interpolate_missing,
    preprocess_run,
)
from .tsfresh_lite import TSFRESH_FEATURE_NAMES, extract_tsfresh

__all__ = [
    "FeatureDataset",
    "FeatureExtractor",
    "MVTS_FEATURE_NAMES",
    "TSFRESH_FEATURE_NAMES",
    "extract_mvts",
    "extract_tsfresh",
    "interpolate_missing",
    "preprocess_run",
]
