"""TSFRESH-style extended feature extraction (paper Sec. III-A).

TSFRESH computes 794 features per metric from 63 characterization methods;
the paper highlights approximate entropy, power spectral density (Welch),
and variation coefficients as the advanced additions beyond MVTS. This
module reproduces the *families* rather than the full 794: every metric
gets the 48 MVTS features plus 36 advanced features (84 total per metric),
spanning entropy measures, Welch spectral statistics, nonlinearity scores,
complexity estimates, distribution quantiles, energy localization, and
autocorrelation aggregates. Strictly more expressive than MVTS — which is
what drives the paper's Volta result (TSFRESH wins there, Table V).

Every feature — approximate entropy included — is vectorized across all
M columns: ApEn builds its pairwise Chebyshev distance tensor for whole
blocks of columns at once (:func:`_approx_entropy_matrix`), and the
distinct-value counts come from a single sort along axis 0. The hot path
contains no per-metric Python loop.

Like :mod:`repro.features.mvts`, every kernel treats columns
independently with width-stable accumulation, so the column count is
arbitrary: the batched pipeline ``hstack``s equal-length runs into one
``(T, B*M)`` panel and calls :func:`extract_tsfresh` once, bit-identical
to per-run extraction. ApEn's column blocking is sized for such wide
panels (see :func:`_approx_entropy_matrix`).
"""

from __future__ import annotations

import numpy as np
from scipy import signal

from .mvts import MVTS_FEATURE_NAMES, _autocorr, _longest_true_run, extract_mvts

__all__ = ["TSFRESH_FEATURE_NAMES", "extract_tsfresh", "feature_names_for"]

_EXTRA_NAMES: tuple[str, ...] = (
    "approx_entropy",
    "psd_band0", "psd_band1", "psd_band2", "psd_band3",
    "spectral_centroid", "spectral_entropy", "max_psd_freq",
    "cid_ce", "c3_lag1", "time_reversal_asymmetry",
    "binned_entropy", "number_peaks",
    "quantile_10", "quantile_30", "quantile_70", "quantile_90", "quantile_99",
    "energy_chunk0", "energy_chunk1", "energy_chunk2", "energy_chunk3",
    "index_mass_q25", "index_mass_q50", "index_mass_q75",
    "autocorr_mean_1_10", "autocorr_std_1_10", "autocorr_lag5", "autocorr_lag10",
    "longest_strike_above_median", "longest_strike_below_median",
    "count_above_q3", "count_below_q1",
    "fft_abs_mean", "fft_abs_std", "fft_abs_coeff1",
    # second wave: trend/AR/spectral-shape/duplication families
    "agg_trend_slope", "agg_trend_stderr",
    "change_quantiles_mean_abs", "change_quantiles_std",
    "ratio_unique_values", "has_duplicate_max", "has_duplicate_min",
    "ar_coef_1", "ar_coef_2", "pacf_lag2",
    "psd_variance", "psd_skewness", "psd_kurtosis",
    "mean_abs_max_7", "crossings_median", "range_count_1sigma",
    "variance_gt_std", "pct_reoccurring_points",
    "quantile_40", "quantile_60",
    "c3_lag2", "trev_lag2",
    "number_peaks_s1", "number_peaks_s5",
    "first_loc_above_q90", "last_loc_above_q90",
    "sum_abs_changes", "cid_ce_unnormalized",
)

TSFRESH_FEATURE_NAMES: tuple[str, ...] = MVTS_FEATURE_NAMES + _EXTRA_NAMES

assert len(TSFRESH_FEATURE_NAMES) == 112


def _approx_entropy_column(
    x: np.ndarray, m: int = 2, r_frac: float = 0.2, max_len: int = 128
) -> float:
    """Approximate entropy of one series (Pincus 1991), vectorized.

    Uses embedding dimension ``m`` and tolerance ``r = r_frac * std``.
    Constant series return 0. The O(T²) pairwise comparison is computed on
    the first ``max_len`` samples — ApEn is routinely estimated on short
    windows, and this keeps long-run extraction linear in practice.

    Kept as the reference implementation; the hot path uses the
    whole-matrix :func:`_approx_entropy_matrix` (bit-identical output).
    """
    if len(x) > max_len:
        x = x[:max_len]
    T = len(x)
    sd = x.std()
    if sd < 1e-18 or T <= m + 1:
        return 0.0
    r = r_frac * sd

    def phi(mm: int) -> float:
        n = T - mm + 1
        # embedding matrix (n, mm)
        emb = np.lib.stride_tricks.sliding_window_view(x, mm)
        # pairwise Chebyshev distances via broadcasting: (n, n)
        dist = np.max(np.abs(emb[:, None, :] - emb[None, :, :]), axis=2)
        counts = np.mean(dist <= r, axis=1)
        return float(np.mean(np.log(counts)))

    return phi(m) - phi(m + 1)


def _approx_entropy_matrix(
    X: np.ndarray, m: int = 2, r_frac: float = 0.2, max_len: int = 128,
    block_elems: int = 1 << 16,
) -> np.ndarray:
    """Approximate entropy of every column of ``(T, M)`` at once.

    Same algorithm and float ordering as :func:`_approx_entropy_column`
    (all reductions run over the trailing axis, so the pairwise-summation
    blocking matches the per-column code and results are bit-identical),
    but the per-column Python loop is gone: the pairwise Chebyshev
    distance tensor is built for a whole block of columns per numpy call.

    ``block_elems`` bounds the ``(cols, n, n)`` working set — and because
    column blocking never mixes columns, the bound changes *nothing* about
    the output bytes, only the temporary-allocation size. The default is
    batch-aware: run-batched extraction feeds panels of thousands of
    columns (B runs × M metrics), and a 64Ki-element block (~0.5 MB dist
    tensor, ~1.5 MB live temporaries) keeps each block L2-resident, which
    on a wide panel measures ~3x faster than letting the tensor grow to
    tens of MB and thrash memory bandwidth.
    """
    T = min(X.shape[0], max_len)
    M = X.shape[1]
    if T <= m + 1:
        return np.zeros(M)
    # column-major copy: every reduction below runs over the last axis of
    # a contiguous array, matching the 1-D reductions of the reference
    Xt = np.ascontiguousarray(X[:T].T)  # (M, T)
    sd = Xt.std(axis=1)
    r = r_frac * sd
    out = np.empty(M)
    cols_per_block = max(1, block_elems // max(1, (T - m) * (T - m)))

    def phi(xb: np.ndarray, rb: np.ndarray, mm: int) -> np.ndarray:
        n = T - mm + 1
        # dist[c, a, b] = max_k |x[c, a+k] - x[c, b+k]|, built by
        # accumulating the elementwise max over the mm offsets
        dist = np.abs(xb[:, :n, None] - xb[:, None, :n])
        for k in range(1, mm):
            np.maximum(
                dist,
                np.abs(xb[:, k:k + n, None] - xb[:, None, k:k + n]),
                out=dist,
            )
        counts = np.mean(dist <= rb[:, None, None], axis=2)
        return np.mean(np.log(counts), axis=1)

    for lo in range(0, M, cols_per_block):
        hi = min(M, lo + cols_per_block)
        xb, rb = Xt[lo:hi], r[lo:hi]
        out[lo:hi] = phi(xb, rb, m) - phi(xb, rb, m + 1)
    return np.where(sd < 1e-18, 0.0, out)


def extract_tsfresh(X: np.ndarray) -> np.ndarray:
    """Compute the 84 TSFRESH-lite features per column of a (T, M) matrix.

    Returns a flat ``(M * 84,)`` vector, metric-major, ordered per
    :data:`TSFRESH_FEATURE_NAMES`. Because the layout is column-major a
    ``(T, B*M)`` panel of B equal-length runs yields ``(B*M*84,)``, which
    reshapes to one ``(B, M*84)`` feature row per run.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"expected (T, M), got {X.shape}")
    T, M = X.shape
    if T < 8:
        raise ValueError(f"need at least 8 timesteps, got {T}")
    if np.isnan(X).any():
        raise ValueError("input contains NaNs; interpolate first (see pipeline)")

    base = extract_mvts(X).reshape(M, len(MVTS_FEATURE_NAMES))
    extra = np.empty((len(_EXTRA_NAMES), M))

    # approximate entropy, whole matrix at once
    extra[0] = _approx_entropy_matrix(X)

    # Welch PSD over all columns at once
    nperseg = min(T, 64)
    freqs, psd = signal.welch(X, fs=1.0, nperseg=nperseg, axis=0)
    total_power = psd.sum(axis=0)
    safe_power = np.where(total_power > 1e-18, total_power, 1.0)
    bands = np.array_split(np.arange(len(freqs)), 4)
    for b, idx in enumerate(bands):
        extra[1 + b] = psd[idx].sum(axis=0) / safe_power
    # spectral centroid — np.sum, not `freqs @ psd`: BLAS accumulation
    # order varies with matrix width, which would break per-run vs
    # run-batched bit-identity (see _linfit in mvts.py)
    extra[5] = np.sum(freqs[:, None] * psd, axis=0) / safe_power
    p_norm = psd / safe_power
    with np.errstate(invalid="ignore", divide="ignore"):
        log_p = np.where(p_norm > 0, np.log(np.where(p_norm > 0, p_norm, 1.0)), 0.0)
    extra[6] = -np.sum(p_norm * log_p, axis=0)  # spectral entropy
    extra[7] = freqs[np.argmax(psd, axis=0)]  # dominant frequency

    # complexity / nonlinearity
    diffs = np.diff(X, axis=0)
    sd = X.std(axis=0)
    safe_sd = np.where(sd > 1e-18, sd, 1.0)
    extra[8] = np.sqrt(np.sum((diffs / safe_sd) ** 2, axis=0))  # normalized CID
    extra[9] = np.mean(X[2:] * X[1:-1] * X[:-2], axis=0)  # c3, lag 1
    extra[10] = np.mean(X[2:] ** 2 * X[1:-1] - X[1:-1] * X[:-2] ** 2, axis=0)

    # binned entropy, 10 bins per column
    mn, mx = X.min(axis=0), X.max(axis=0)
    span = np.where(mx - mn > 1e-18, mx - mn, 1.0)
    bins = np.clip(((X - mn) / span * 10).astype(int), 0, 9)
    be = np.zeros(M)
    for b in range(10):
        p = np.mean(bins == b, axis=0)
        with np.errstate(invalid="ignore", divide="ignore"):
            be -= np.where(p > 0, p * np.log(np.where(p > 0, p, 1.0)), 0.0)
    extra[11] = be

    # peaks with support 3 (strictly greater than 3 neighbors each side)
    support = 3
    peak = np.ones((T - 2 * support, M), dtype=bool)
    center = X[support : T - support]
    for off in range(1, support + 1):
        peak &= center > X[support - off : T - support - off]
        peak &= center > X[support + off : T - support + off]
    extra[12] = peak.sum(axis=0)

    q10, q30, q70, q90, q99 = np.percentile(X, [10, 30, 70, 90, 99], axis=0)
    extra[13], extra[14], extra[15], extra[16], extra[17] = q10, q30, q70, q90, q99

    # energy localization: chunk energies as fractions of total
    sq = X**2
    total_energy = np.where(sq.sum(axis=0) > 1e-18, sq.sum(axis=0), 1.0)
    for b, idx in enumerate(np.array_split(np.arange(T), 4)):
        extra[18 + b] = sq[idx].sum(axis=0) / total_energy

    # index mass quantiles: relative index where cumulative |x| mass passes q
    absX = np.abs(X)
    mass = np.cumsum(absX, axis=0)
    total_mass = np.where(mass[-1] > 1e-18, mass[-1], 1.0)
    rel = mass / total_mass
    for b, q in enumerate((0.25, 0.5, 0.75)):
        extra[22 + b] = (np.argmax(rel >= q, axis=0) + 1) / T

    # autocorrelation aggregates
    acs = np.stack([_autocorr(X, lag) for lag in range(1, 11)])
    extra[25] = acs.mean(axis=0)
    extra[26] = acs.std(axis=0)
    extra[27] = acs[4]
    extra[28] = acs[9]

    med = np.median(X, axis=0)
    extra[29] = _longest_true_run(X > med)
    extra[30] = _longest_true_run(X < med)
    q1, q3 = np.percentile(X, [25, 75], axis=0)
    extra[31] = np.sum(X > q3, axis=0)
    extra[32] = np.sum(X < q1, axis=0)

    F = np.abs(np.fft.rfft(X, axis=0))
    extra[33] = F.mean(axis=0)
    extra[34] = F.std(axis=0)
    extra[35] = F[1] if F.shape[0] > 1 else np.zeros(M)

    # ---- second wave ---------------------------------------------------
    # aggregated linear trend over 4 chunk means
    chunk_means = np.stack(
        [X[idx].mean(axis=0) for idx in np.array_split(np.arange(T), 4)]
    )  # (4, M)
    tc = np.arange(4, dtype=np.float64)
    tc_c = tc - tc.mean()
    slope = np.sum(
        tc_c[:, None] * (chunk_means - chunk_means.mean(axis=0)), axis=0
    ) / np.sum(tc_c**2)
    fitted = chunk_means.mean(axis=0) + np.outer(tc_c, slope)
    resid = chunk_means - fitted
    extra[36] = slope
    extra[37] = np.sqrt(np.mean(resid**2, axis=0))

    # change statistics restricted to the interquartile corridor
    in_corridor = (X[:-1] >= q1) & (X[:-1] <= q3) & (X[1:] >= q1) & (X[1:] <= q3)
    abs_d = np.abs(diffs)
    n_in = np.maximum(in_corridor.sum(axis=0), 1)
    extra[38] = np.where(
        in_corridor.any(axis=0), (abs_d * in_corridor).sum(axis=0) / n_in, 0.0
    )
    corridor_mean = extra[38]
    sq_dev = ((abs_d - corridor_mean) ** 2) * in_corridor
    extra[39] = np.where(
        in_corridor.any(axis=0), np.sqrt(sq_dev.sum(axis=0) / n_in), 0.0
    )

    # duplication structure: distinct-value counts come from one
    # sort-along-axis-0 pass (adjacent inequalities in sorted order),
    # replacing the per-column np.unique loop
    mx_ = X.max(axis=0)
    mn_ = X.min(axis=0)
    n_unique = 1 + np.count_nonzero(np.diff(np.sort(X, axis=0), axis=0), axis=0)
    extra[40] = n_unique / T
    extra[41] = (np.sum(X == mx_, axis=0) > 1).astype(float)
    extra[42] = (np.sum(X == mn_, axis=0) > 1).astype(float)

    # AR(2) coefficients via Yule-Walker, and the lag-2 PACF
    r1 = _autocorr(X, 1)
    r2 = _autocorr(X, 2)
    denom = np.where(np.abs(1 - r1**2) > 1e-12, 1 - r1**2, 1.0)
    phi2 = (r2 - r1**2) / denom  # lag-2 partial autocorrelation
    phi1 = r1 * (1 - phi2)
    extra[43] = phi1
    extra[44] = phi2
    extra[45] = phi2  # pacf_lag2 (same quantity, kept under its own name)

    # spectral shape: central moments of the normalized PSD over frequency
    centroid = extra[5]
    fdev = freqs[:, None] - centroid[None, :]
    psd_norm = psd / safe_power
    m2 = np.sum(psd_norm * fdev**2, axis=0)
    safe_m2 = np.where(m2 > 1e-18, m2, 1.0)
    extra[46] = m2
    extra[47] = np.where(
        m2 > 1e-18, np.sum(psd_norm * fdev**3, axis=0) / safe_m2**1.5, 0.0
    )
    extra[48] = np.where(
        m2 > 1e-18, np.sum(psd_norm * fdev**4, axis=0) / safe_m2**2, 0.0
    )

    # order statistics / level-crossing families
    k_top = min(7, T)
    extra[49] = np.mean(
        np.sort(np.abs(X), axis=0)[-k_top:], axis=0
    )  # mean of 7 largest |x|
    med = np.median(X, axis=0)
    sign_med = np.sign(X - med)
    extra[50] = np.sum(np.abs(np.diff(sign_med, axis=0)) > 1, axis=0)
    mu = X.mean(axis=0)
    sd = X.std(axis=0)
    extra[51] = np.mean(np.abs(X - mu) <= sd, axis=0)  # range_count ±1σ
    extra[52] = (sd**2 > sd).astype(float)  # variance larger than std
    extra[53] = 1.0 - n_unique / T  # fraction of reoccurring points
    q40, q60 = np.percentile(X, [40, 60], axis=0)
    extra[54] = q40
    extra[55] = q60

    # higher-lag nonlinearity
    extra[56] = np.mean(X[4:] * X[2:-2] * X[:-4], axis=0)  # c3, lag 2
    extra[57] = np.mean(X[4:] ** 2 * X[2:-2] - X[2:-2] * X[:-4] ** 2, axis=0)

    # peak counts at other supports
    for slot, support_k in ((58, 1), (59, 5)):
        if T <= 2 * support_k:
            extra[slot] = 0.0
            continue
        pk = np.ones((T - 2 * support_k, M), dtype=bool)
        center_k = X[support_k : T - support_k]
        for off in range(1, support_k + 1):
            pk &= center_k > X[support_k - off : T - support_k - off]
            pk &= center_k > X[support_k + off : T - support_k + off]
        extra[slot] = pk.sum(axis=0)

    # where the extreme regime lives in time
    q90 = np.percentile(X, 90, axis=0)
    above = X > q90
    any_above = above.any(axis=0)
    first = np.argmax(above, axis=0) / T
    last = (T - 1 - np.argmax(above[::-1], axis=0)) / T
    extra[60] = np.where(any_above, first, 1.0)
    extra[61] = np.where(any_above, last, 0.0)

    extra[62] = np.sum(np.abs(diffs), axis=0)
    extra[63] = np.sqrt(np.sum(diffs**2, axis=0))  # unnormalized CID

    return np.hstack([base, extra.T]).ravel()


def feature_names_for(metric_names: list[str]) -> list[str]:
    """Full feature-name list matching :func:`extract_tsfresh` output order."""
    return [f"{m}::{f}" for m in metric_names for f in TSFRESH_FEATURE_NAMES]
