"""Human-annotator simulator (the paper's label oracle).

The paper assumes "a human annotator is available to provide the label of a
selected sample upon request" (Sec. I). For evaluation the annotator is a
ground-truth lookup; this class adds the bookkeeping the experiments need:
query accounting, the Fig. 4 drill-down log (which applications / anomaly
types were queried), and optional label noise for robustness testing beyond
the paper.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from ..mlcore.base import check_random_state

__all__ = ["Oracle", "QueryRecord"]


@dataclass(frozen=True)
class QueryRecord:
    """One answered query: pool index, returned label, and metadata."""

    pool_index: int
    label: object
    app: str | None = None
    anomaly: object = None


@dataclass
class Oracle:
    """Answer label queries from ground truth, with full accounting.

    Parameters
    ----------
    y_true:
        Ground-truth labels of the unlabeled pool, indexable by pool row.
    apps:
        Optional per-sample application names (enables the Fig. 4
        drill-down of queried application types).
    noise_rate:
        Probability of returning a uniformly random *wrong* label —
        simulates imperfect annotators (0 reproduces the paper).
    random_state:
        Seed for the noise draw.
    """

    y_true: np.ndarray
    apps: np.ndarray | None = None
    noise_rate: float = 0.0
    random_state: int | np.random.Generator | None = None
    history: list[QueryRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.y_true = np.asarray(self.y_true)
        if self.apps is not None:
            self.apps = np.asarray(self.apps)
            if len(self.apps) != len(self.y_true):
                raise ValueError("apps and y_true length mismatch")
        if not 0.0 <= self.noise_rate < 1.0:
            raise ValueError(f"noise_rate must be in [0, 1), got {self.noise_rate}")
        self._rng = check_random_state(self.random_state)
        self._classes = np.unique(self.y_true)

    def label(self, pool_index: int) -> object:
        """Return the (possibly noisy) label for one pool sample."""
        if not 0 <= pool_index < len(self.y_true):
            raise IndexError(f"pool index {pool_index} out of range")
        true = self.y_true[pool_index]
        answer = true
        if self.noise_rate > 0 and self._rng.random() < self.noise_rate:
            wrong = self._classes[self._classes != true]
            if len(wrong):
                answer = self._rng.choice(wrong)
        self.history.append(
            QueryRecord(
                pool_index=int(pool_index),
                label=answer,
                app=None if self.apps is None else str(self.apps[pool_index]),
                anomaly=answer,
            )
        )
        return answer

    @property
    def n_queries(self) -> int:
        """Total labels provided so far."""
        return len(self.history)

    def label_counts(self, first_n: int | None = None) -> Counter:
        """Distribution of queried *labels* (Fig. 4, right side)."""
        records = self.history if first_n is None else self.history[:first_n]
        return Counter(str(r.label) for r in records)

    def app_counts(self, first_n: int | None = None) -> Counter:
        """Distribution of queried *applications* (Fig. 4, left side)."""
        records = self.history if first_n is None else self.history[:first_n]
        return Counter(r.app for r in records if r.app is not None)
