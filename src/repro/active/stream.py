"""Stream-based selective sampling (paper Sec. II-A's second AL scenario).

The paper deploys *pool-based* sampling (Sec. III-D) because production
telemetry arrives in bulk, but its related-work section lays out the
stream alternative: samples arrive one at a time and the learner decides
on the spot whether to spend an annotator query, against a pre-defined
uncertainty threshold. This module implements that scenario — it is the
natural online deployment mode for a monitoring pipeline, and the paper's
own future-work direction of live deployment needs it.

The threshold self-tunes: a budget controller nudges it so the realized
query rate tracks a target fraction (spend annotator time evenly instead
of exhausting it on the first confusing burst).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..mlcore.base import BaseEstimator, check_X_y, clone
from .strategies import uncertainty_scores

__all__ = ["StreamDecision", "StreamActiveLearner", "ThresholdController"]


@dataclass
class ThresholdController:
    """Self-tuning uncertainty threshold with a query-rate budget.

    The budget controller of this module, factored out so the serving
    escalation queue (:mod:`repro.serving.escalation`) can reuse the exact
    same policy: query when ``U(x) >= threshold``, then nudge the
    threshold so the realized query rate tracks ``target_rate``.
    """

    threshold: float = 0.35
    target_rate: float | None = 0.1
    adapt_step: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {self.threshold}")
        if self.target_rate is not None and not 0.0 < self.target_rate < 1.0:
            raise ValueError(f"target_rate must be in (0, 1), got {self.target_rate}")
        self.n_seen = 0
        self.n_queried = 0

    def should_query(self, uncertainty: float) -> bool:
        """Decide one sample and update the adaptive threshold."""
        queried = uncertainty >= self.threshold
        self.n_seen += 1
        if queried:
            self.n_queried += 1
        self._adapt(queried)
        return queried

    def _adapt(self, queried: bool) -> None:
        if self.target_rate is None:
            return
        if queried:
            # spent budget: become pickier
            self.threshold = min(1.0, self.threshold * (1 + self.adapt_step))
        else:
            self.threshold = max(
                0.0, self.threshold * (1 - self.adapt_step * self.target_rate)
            )

    @property
    def query_rate(self) -> float:
        """Realized fraction of observed samples that were queried."""
        return self.n_queried / self.n_seen if self.n_seen else 0.0


@dataclass(frozen=True)
class StreamDecision:
    """Outcome of one streamed sample: queried or passed, with the score."""

    queried: bool
    uncertainty: float
    threshold: float
    prediction: object


@dataclass
class StreamActiveLearner:
    """Selective sampling over a sample stream with an adaptive threshold.

    Parameters
    ----------
    estimator:
        Prototype classifier; refit on the labeled set after each accepted
        query (mirroring :class:`~repro.active.learner.ActiveLearner`).
    threshold:
        Initial uncertainty threshold: query when ``U(x) >= threshold``.
    target_rate:
        Desired long-run fraction of samples queried. ``None`` disables
        adaptation (fixed threshold).
    adapt_step:
        Multiplicative threshold adjustment per observed sample.
    refit_every:
        Refit cadence in accepted queries.
    """

    estimator: BaseEstimator
    threshold: float = 0.35
    target_rate: float | None = 0.1
    adapt_step: float = 0.02
    refit_every: int = 1

    _X: list = field(default_factory=list, repr=False)
    _y: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        # the controller validates threshold/target_rate and owns adaptation
        self._controller = ThresholdController(
            threshold=self.threshold,
            target_rate=self.target_rate,
            adapt_step=self.adapt_step,
        )
        if self.refit_every < 1:
            raise ValueError(f"refit_every must be >= 1, got {self.refit_every}")
        self.n_seen = 0
        self.n_queried = 0
        self._pending = 0
        self.model = None

    # ------------------------------------------------------------------
    def initialize(self, X_seed: np.ndarray, y_seed: np.ndarray) -> "StreamActiveLearner":
        """Train the starting model on the labeled seed."""
        X_seed, y_seed = check_X_y(X_seed, y_seed)
        self._X = [row for row in X_seed]
        self._y = list(y_seed)
        self.model = clone(self.estimator)
        self.model.fit(np.vstack(self._X), np.asarray(self._y))
        return self

    def observe(self, x: np.ndarray) -> StreamDecision:
        """Score one streamed sample and decide whether to query its label.

        Does *not* learn anything yet — call :meth:`feed_label` with the
        annotator's answer when the decision was to query.
        """
        if self.model is None:
            raise RuntimeError("call initialize() with the labeled seed first")
        x = np.asarray(x, dtype=np.float64).reshape(1, -1)
        proba = self.model.predict_proba(x)
        u = float(uncertainty_scores(proba)[0])
        threshold_used = self._controller.threshold
        queried = self._controller.should_query(u)
        prediction = self.model.classes_[int(np.argmax(proba[0]))]
        decision = StreamDecision(
            queried=queried,
            uncertainty=u,
            threshold=threshold_used,
            prediction=prediction,
        )
        self.n_seen = self._controller.n_seen
        self.n_queried = self._controller.n_queried
        self.threshold = self._controller.threshold
        return decision

    def feed_label(self, x: np.ndarray, y: object) -> None:
        """Teach the label of a sample :meth:`observe` decided to query."""
        if self.model is None:
            raise RuntimeError("call initialize() first")
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.shape[0] != self._X[0].shape[0]:
            raise ValueError(
                f"sample has {x.shape[0]} features, expected {self._X[0].shape[0]}"
            )
        self._X.append(x)
        self._y.append(y)
        self._pending += 1
        if self._pending >= self.refit_every:
            self.model = clone(self.estimator)
            self.model.fit(np.vstack(self._X), np.asarray(self._y))
            self._pending = 0

    # ------------------------------------------------------------------
    @property
    def query_rate(self) -> float:
        """Realized fraction of observed samples that were queried."""
        return self._controller.query_rate

    @property
    def n_labeled(self) -> int:
        """Current labeled-set size."""
        return len(self._y)
