"""The active-learning experiment loop (Fig. 1 steps 2–4, Sec. V-A protocol).

``run_active_learning`` drives the full cycle the paper evaluates: start
from the labeled seed set, repeatedly (query strategy → oracle label →
teach/re-train), and score F1 / false-alarm / anomaly-miss on a held-out
test set after every query. It handles pool bookkeeping (selected samples
leave the pool), supports both real strategies and the Random / Equal App /
Proctor baselines, and stops at the query budget or a target F1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..mlcore.base import BaseEstimator, check_random_state, clone
from ..mlcore.metrics import (
    HEALTHY_LABEL,
    anomaly_miss_rate,
    f1_score,
    false_alarm_rate,
)
from .baselines import EqualAppSelector, ProctorModel, clone_with_representation
from .learner import ActiveLearner
from .oracle import Oracle
from .strategies import DeltaPoolScorer, StrategyFn, select_from_proba, strategy_name

__all__ = ["ALResult", "run_active_learning", "queries_to_reach"]


@dataclass
class ALResult:
    """Learning curves and query log from one active-learning run.

    ``n_labeled[i]`` is the labeled-set size after the i-th evaluation
    (index 0 is the seed set, before any query). The metric arrays are
    aligned with ``n_labeled``.
    """

    n_labeled: np.ndarray
    f1: np.ndarray
    far: np.ndarray
    amr: np.ndarray
    oracle: Oracle
    queried_labels: list = field(default_factory=list)
    queried_apps: list = field(default_factory=list)

    @property
    def initial_f1(self) -> float:
        """F1 of the seed-trained model (Table V "Starting F1-score")."""
        return float(self.f1[0])

    @property
    def final_f1(self) -> float:
        """F1 after the last query."""
        return float(self.f1[-1])


def queries_to_reach(result: ALResult, target_f1: float) -> int | None:
    """Minimum *additional* labeled samples to first reach ``target_f1``.

    Returns 0 if the seed model already passes (Table V "Already Passed"),
    or ``None`` if the target was never reached within the budget.
    """
    hit = np.flatnonzero(result.f1 >= target_f1)
    if len(hit) == 0:
        return None
    return int(result.n_labeled[hit[0]] - result.n_labeled[0])


def run_active_learning(
    estimator: BaseEstimator,
    strategy: str | StrategyFn,
    X_seed: np.ndarray,
    y_seed: np.ndarray,
    X_pool: np.ndarray,
    y_pool: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
    *,
    n_queries: int = 100,
    target_f1: float | None = None,
    pool_apps: np.ndarray | None = None,
    healthy_label: object = HEALTHY_LABEL,
    eval_every: int = 1,
    oracle_noise: float = 0.0,
    bin_cache: bool | str = "auto",
    warm_start: bool | str = False,
    refresh_fraction: float = 0.25,
    random_state: int | np.random.Generator | None = None,
) -> ALResult:
    """Run one full query→label→re-train→evaluate experiment.

    Parameters
    ----------
    estimator:
        Classifier prototype. A :class:`ProctorModel` gets its autoencoder
        pretrained on the unlabeled pool here (its defining behaviour) and
        keeps that representation across refits.
    strategy:
        ``"uncertainty"`` / ``"margin"`` / ``"entropy"``, a custom callable,
        or a baseline selector (``RandomSelector()`` /
        ``EqualAppSelector(pool_apps)``).
    n_queries:
        Query budget; also bounded by the pool size.
    target_f1:
        Optional early stop once the test F1 reaches this value.
    pool_apps:
        Per-pool-sample application names; required by Equal App and used
        for the Fig. 4 drill-down log.
    eval_every:
        Evaluate metrics every k-th query (curves stay aligned via
        ``n_labeled``); 1 reproduces the paper's per-query curves.
    bin_cache:
        Cross-refit bin cache. ``"auto"`` (default) activates for
        estimators that train from bin codes (a ``splitter="hist"``
        forest): seed + pool are quantile-binned **once** up front, every
        refit row-stacks cached codes, and each queried sample's codes
        are looked up instead of recomputed. ``True`` forces it (raises
        if the estimator has no ``fit_binned``), ``False`` disables.
    warm_start:
        Incremental refits. ``"auto"`` activates when the bin cache is on
        and the estimator supports ``refit`` (a ``splitter="hist"``
        forest): trees survive across rounds, each refit regrows only a
        seeded ``refresh_fraction`` subset and folds the new row into the
        kept trees' leaf counts. Named strategies then also use **delta
        pool scoring** — only replaced trees re-descend the pool each
        round, and the maintained scores are bitwise-equal to full
        re-scoring. ``True`` forces it (raises without cache/refit
        support), ``False`` (default) keeps cold per-round refits.
    refresh_fraction:
        Fraction of trees regrown per warm refit. ``1.0`` makes every
        round bit-identical to the cold path (same queries, same curves);
        smaller fractions trade fidelity for refit cost.

    Returns
    -------
    ALResult with metric curves, the oracle (query accounting), and the
    per-query label/app log.
    """
    rng = check_random_state(random_state)
    X_pool = np.asarray(X_pool, dtype=np.float64)
    y_pool = np.asarray(y_pool)
    if len(X_pool) != len(y_pool):
        raise ValueError("X_pool and y_pool length mismatch")
    if pool_apps is not None and len(pool_apps) != len(X_pool):
        raise ValueError("pool_apps and X_pool length mismatch")
    if eval_every < 1:
        raise ValueError(f"eval_every must be >= 1, got {eval_every}")

    oracle = Oracle(
        y_true=y_pool,
        apps=None if pool_apps is None else np.asarray(pool_apps),
        noise_rate=oracle_noise,
        random_state=rng,
    )

    clone_fn: Callable[[BaseEstimator], BaseEstimator] = clone
    if isinstance(estimator, ProctorModel):
        estimator.fit_unlabeled(X_pool)
        clone_fn = clone_with_representation

    if bin_cache not in (True, False, "auto"):
        raise ValueError(f"bin_cache must be True/False/'auto', got {bin_cache!r}")
    use_cache = bin_cache is True or (
        bin_cache == "auto"
        and getattr(estimator, "splitter", None) == "hist"
        and hasattr(estimator, "fit_binned")
    )
    if bin_cache is True and not hasattr(estimator, "fit_binned"):
        raise TypeError(
            f"bin_cache=True needs an estimator with fit_binned; "
            f"{type(estimator).__name__} has none"
        )
    binner = seed_codes = pool_codes = None
    if use_cache:
        from ..mlcore.binning import DEFAULT_MAX_BINS, Binner

        X_seed = np.asarray(X_seed, dtype=np.float64)
        # bin seed + pool together so every sample the loop can ever teach
        # already has its code row — refits never re-quantize anything
        binner = Binner(getattr(estimator, "max_bins", DEFAULT_MAX_BINS))
        codes_all = binner.fit_transform(np.vstack([X_seed, X_pool]))
        seed_codes = codes_all[: len(X_seed)]
        pool_codes = codes_all[len(X_seed) :]

    if warm_start not in (True, False, "auto"):
        raise ValueError(
            f"warm_start must be True/False/'auto', got {warm_start!r}"
        )
    use_warm = warm_start is True or (
        warm_start == "auto" and use_cache and hasattr(estimator, "refit")
    )
    if warm_start is True:
        if not use_cache:
            raise TypeError(
                "warm_start=True needs the bin cache; pass bin_cache=True "
                "or use a hist-splitter estimator"
            )
        if not hasattr(estimator, "refit"):
            raise TypeError(
                f"warm_start=True needs an estimator with refit; "
                f"{type(estimator).__name__} has none"
            )

    learner = ActiveLearner(
        estimator,
        strategy,
        X_seed,
        y_seed,
        random_state=rng,
        clone_fn=clone_fn,
        binner=binner,
        initial_codes=seed_codes,
        warm_start=use_warm,
        refresh_fraction=refresh_fraction,
    )

    # delta pool scoring: only meaningful under warm refits (the model
    # object persists) and only for named strategies whose selection rule
    # we can apply to a maintained probability matrix
    sel_name = strategy_name(strategy) if use_warm else None
    scorer = DeltaPoolScorer(learner.model, X_pool) if sel_name else None

    def evaluate() -> tuple[float, float, float]:
        pred = learner.predict(X_test)
        return (
            f1_score(y_test, pred, average="macro"),
            false_alarm_rate(y_test, pred, healthy_label),
            anomaly_miss_rate(y_test, pred, healthy_label),
        )

    # live pool state; indices into the *original* pool for oracle lookups
    alive = np.arange(len(X_pool))
    n_labeled = [learner.n_labeled]
    f1_curve, far_curve, amr_curve = [], [], []
    f1_0, far_0, amr_0 = evaluate()
    f1_curve.append(f1_0)
    far_curve.append(far_0)
    amr_curve.append(amr_0)
    queried_labels: list = []
    queried_apps: list = []

    budget = min(n_queries, len(X_pool))
    equal_app = strategy if isinstance(strategy, EqualAppSelector) else None

    for q in range(budget):
        if target_f1 is not None and f1_curve[-1] >= target_f1:
            break
        if scorer is not None:
            local_idx = select_from_proba(sel_name, scorer.proba())
        else:
            local_idx = learner.query(X_pool[alive])
        orig_idx = int(alive[local_idx])
        label = oracle.label(orig_idx)
        queried_labels.append(label)
        if pool_apps is not None:
            queried_apps.append(str(np.asarray(pool_apps)[orig_idx]))
        learner.teach(
            X_pool[orig_idx],
            label,
            codes=None if pool_codes is None else pool_codes[orig_idx],
        )
        alive = np.delete(alive, local_idx)
        if scorer is not None:
            scorer.drop(local_idx)
            scorer.apply(learner.take_refit_report(), X_pool[alive])
        if equal_app is not None:
            equal_app.remove(local_idx)
        if (q + 1) % eval_every == 0 or q == budget - 1:
            learner.flush()
            if scorer is not None:
                scorer.apply(learner.take_refit_report(), X_pool[alive])
            f1_q, far_q, amr_q = evaluate()
            n_labeled.append(learner.n_labeled)
            f1_curve.append(f1_q)
            far_curve.append(far_q)
            amr_curve.append(amr_q)

    return ALResult(
        n_labeled=np.array(n_labeled),
        f1=np.array(f1_curve),
        far=np.array(far_curve),
        amr=np.array(amr_curve),
        oracle=oracle,
        queried_labels=queried_labels,
        queried_apps=queried_apps,
    )
