"""Pool-based query strategies (paper Sec. III-D, Eqs. 1–4).

Each strategy scores every unlabeled sample from the model's predicted class
probabilities and returns the index of the most informative one:

* **classification uncertainty** — ``U(x) = 1 − max_k p_k``; pick max U.
* **classification margin** — ``M(x) = p_(1) − p_(2)`` (top-two gap);
  pick *min* M.
* **classification entropy** — ``H(x) = −Σ p_k log p_k``; pick max H.

The module exposes both the raw scoring functions (used by tests to verify
the paper's worked example in Eq. 2) and selector callables with the
uniform signature ``(model, X_pool, rng) -> int`` that the
:class:`~repro.active.learner.ActiveLearner` consumes. Ties are broken by
lowest index, matching modAL's argmax/argmin semantics.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

__all__ = [
    "uncertainty_scores",
    "margin_scores",
    "entropy_scores",
    "uncertainty_sampling",
    "margin_sampling",
    "entropy_sampling",
    "get_strategy",
    "STRATEGIES",
]


class _ProbabilisticModel(Protocol):
    def predict_proba(self, X: np.ndarray) -> np.ndarray: ...


def _check_proba(proba: np.ndarray) -> np.ndarray:
    proba = np.asarray(proba, dtype=np.float64)
    if proba.ndim != 2:
        raise ValueError(f"probabilities must be 2-D, got shape {proba.shape}")
    return proba


def uncertainty_scores(proba: np.ndarray) -> np.ndarray:
    """Eq. 1: one minus the top class probability, per sample."""
    proba = _check_proba(proba)
    return 1.0 - proba.max(axis=1)


def margin_scores(proba: np.ndarray) -> np.ndarray:
    """Eq. 3: gap between the two most likely classes, per sample.

    With a single class the margin is the top probability itself (the
    second-best is zero), which makes one-class pools degenerate but
    well-defined.
    """
    proba = _check_proba(proba)
    if proba.shape[1] == 1:
        return proba[:, 0].copy()
    part = np.partition(proba, -2, axis=1)
    return part[:, -1] - part[:, -2]


def entropy_scores(proba: np.ndarray) -> np.ndarray:
    """Eq. 4: Shannon entropy of the class distribution, per sample (nats)."""
    proba = _check_proba(proba)
    with np.errstate(invalid="ignore", divide="ignore"):
        terms = np.where(proba > 0, proba * np.log(np.where(proba > 0, proba, 1.0)), 0.0)
    return -terms.sum(axis=1)


def uncertainty_sampling(
    model: _ProbabilisticModel, X_pool: np.ndarray, rng: np.random.Generator | None = None
) -> int:
    """Index of the pool sample with maximal classification uncertainty."""
    return int(np.argmax(uncertainty_scores(model.predict_proba(X_pool))))


def margin_sampling(
    model: _ProbabilisticModel, X_pool: np.ndarray, rng: np.random.Generator | None = None
) -> int:
    """Index of the pool sample with the smallest top-two margin."""
    return int(np.argmin(margin_scores(model.predict_proba(X_pool))))


def entropy_sampling(
    model: _ProbabilisticModel, X_pool: np.ndarray, rng: np.random.Generator | None = None
) -> int:
    """Index of the pool sample with maximal predictive entropy."""
    return int(np.argmax(entropy_scores(model.predict_proba(X_pool))))


StrategyFn = Callable[[_ProbabilisticModel, np.ndarray, np.random.Generator | None], int]

STRATEGIES: dict[str, StrategyFn] = {
    "uncertainty": uncertainty_sampling,
    "margin": margin_sampling,
    "entropy": entropy_sampling,
}


def get_strategy(name: str) -> StrategyFn:
    """Look up a query strategy by its paper name."""
    try:
        return STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; available: {sorted(STRATEGIES)}"
        ) from None
