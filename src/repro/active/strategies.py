"""Pool-based query strategies (paper Sec. III-D, Eqs. 1–4).

Each strategy scores every unlabeled sample from the model's predicted class
probabilities and returns the index of the most informative one:

* **classification uncertainty** — ``U(x) = 1 − max_k p_k``; pick max U.
* **classification margin** — ``M(x) = p_(1) − p_(2)`` (top-two gap);
  pick *min* M.
* **classification entropy** — ``H(x) = −Σ p_k log p_k``; pick max H.

The module exposes both the raw scoring functions (used by tests to verify
the paper's worked example in Eq. 2) and selector callables with the
uniform signature ``(model, X_pool, rng) -> int`` that the
:class:`~repro.active.learner.ActiveLearner` consumes. Ties are broken by
lowest index, matching modAL's argmax/argmin semantics.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

__all__ = [
    "uncertainty_scores",
    "margin_scores",
    "entropy_scores",
    "uncertainty_sampling",
    "margin_sampling",
    "entropy_sampling",
    "get_strategy",
    "strategy_name",
    "select_from_proba",
    "DeltaPoolScorer",
    "STRATEGIES",
]


class _ProbabilisticModel(Protocol):
    def predict_proba(self, X: np.ndarray) -> np.ndarray: ...


def _check_proba(proba: np.ndarray) -> np.ndarray:
    proba = np.asarray(proba, dtype=np.float64)
    if proba.ndim != 2:
        raise ValueError(f"probabilities must be 2-D, got shape {proba.shape}")
    return proba


def uncertainty_scores(proba: np.ndarray) -> np.ndarray:
    """Eq. 1: one minus the top class probability, per sample."""
    proba = _check_proba(proba)
    return 1.0 - proba.max(axis=1)


def margin_scores(proba: np.ndarray) -> np.ndarray:
    """Eq. 3: gap between the two most likely classes, per sample.

    With a single class the margin is the top probability itself (the
    second-best is zero), which makes one-class pools degenerate but
    well-defined.
    """
    proba = _check_proba(proba)
    if proba.shape[1] == 1:
        return proba[:, 0].copy()
    part = np.partition(proba, -2, axis=1)
    return part[:, -1] - part[:, -2]


def entropy_scores(proba: np.ndarray) -> np.ndarray:
    """Eq. 4: Shannon entropy of the class distribution, per sample (nats)."""
    proba = _check_proba(proba)
    with np.errstate(invalid="ignore", divide="ignore"):
        terms = np.where(proba > 0, proba * np.log(np.where(proba > 0, proba, 1.0)), 0.0)
    return -terms.sum(axis=1)


def uncertainty_sampling(
    model: _ProbabilisticModel, X_pool: np.ndarray, rng: np.random.Generator | None = None
) -> int:
    """Index of the pool sample with maximal classification uncertainty."""
    return int(np.argmax(uncertainty_scores(model.predict_proba(X_pool))))


def margin_sampling(
    model: _ProbabilisticModel, X_pool: np.ndarray, rng: np.random.Generator | None = None
) -> int:
    """Index of the pool sample with the smallest top-two margin."""
    return int(np.argmin(margin_scores(model.predict_proba(X_pool))))


def entropy_sampling(
    model: _ProbabilisticModel, X_pool: np.ndarray, rng: np.random.Generator | None = None
) -> int:
    """Index of the pool sample with maximal predictive entropy."""
    return int(np.argmax(entropy_scores(model.predict_proba(X_pool))))


StrategyFn = Callable[[_ProbabilisticModel, np.ndarray, np.random.Generator | None], int]

STRATEGIES: dict[str, StrategyFn] = {
    "uncertainty": uncertainty_sampling,
    "margin": margin_sampling,
    "entropy": entropy_sampling,
}


def get_strategy(name: str) -> StrategyFn:
    """Look up a query strategy by its paper name."""
    try:
        return STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; available: {sorted(STRATEGIES)}"
        ) from None


# scoring function + selection rule per canonical strategy; used by the
# delta-scoring fast path, which works from a maintained probability
# matrix instead of calling model.predict_proba
_SELECTORS: dict[str, tuple[Callable[[np.ndarray], np.ndarray], Callable]] = {
    "uncertainty": (uncertainty_scores, np.argmax),
    "margin": (margin_scores, np.argmin),
    "entropy": (entropy_scores, np.argmax),
}


def strategy_name(strategy: str | StrategyFn) -> str | None:
    """Canonical name of a strategy, or ``None`` for custom callables.

    Accepts both the string form and the canonical selector callables
    (``framework.learn`` resolves names to callables before handing them
    to the loop). Only named strategies can use delta pool scoring — a
    custom callable may inspect the model arbitrarily, so the loop falls
    back to full re-scoring for those.
    """
    if isinstance(strategy, str):
        return strategy if strategy in STRATEGIES else None
    for name, fn in STRATEGIES.items():
        if strategy is fn:
            return name
    return None


def select_from_proba(name: str, proba: np.ndarray) -> int:
    """Apply a named strategy's selection rule to a probability matrix.

    Equivalent to ``STRATEGIES[name](model, X_pool, rng)`` when ``proba``
    equals ``model.predict_proba(X_pool)`` — same scores, same
    argmax/argmin tie-breaking.
    """
    scores, pick = _SELECTORS[name]
    return int(pick(scores(proba)))


class DeltaPoolScorer:
    """Running per-tree probability contributions over the pool.

    ``RandomForestClassifier.predict_proba`` gathers an ``(n, trees,
    classes)`` block of leaf distributions and sums over the tree axis.
    This scorer keeps that block alive between refits: after a
    warm-start :meth:`~repro.mlcore.forest.RandomForestClassifier.refit`
    only the *replaced* trees re-descend the pool and only kept-tree rows
    whose leaf counts actually changed are patched — O(replaced × pool)
    descents per round instead of O(trees × pool).

    :meth:`proba` re-runs the identical ``sum(axis=1) / n_trees``
    reduction over an identically laid-out float64 block, so its output
    is **bitwise equal** to a fresh ``predict_proba`` on the same rows —
    the query sequence cannot drift from the full re-scoring path.
    """

    def __init__(self, forest, X_pool: np.ndarray):
        self._forest = forest
        self._bind(np.asarray(X_pool, dtype=np.float64))

    # ------------------------------------------------------------------
    def _bind(self, X_pool: np.ndarray) -> None:
        """Full rebuild: descend every tree over the current pool."""
        forest = self._forest
        n, T = len(X_pool), len(forest.estimators_)
        K = len(forest.classes_)
        self._leaf = np.empty((n, T), dtype=np.int64)
        self._value = np.zeros((n, T, K), dtype=np.float64)
        for t in range(T):
            self._refresh_tree(t, X_pool)

    def _refresh_tree(self, t: int, X_pool: np.ndarray) -> None:
        """Re-descend one tree; scatter its leaf distributions."""
        tree = self._forest.estimators_[t]
        cmap = self._forest._tree_class_maps[t]
        leaves = tree._leaf_indices(X_pool)
        self._leaf[:, t] = leaves
        self._value[:, t, :] = 0.0
        self._value[:, t, cmap] = tree.tree_value_[leaves]

    # ------------------------------------------------------------------
    def proba(self) -> np.ndarray:
        """Forest probabilities for the tracked pool rows.

        Bitwise-identical to ``forest.predict_proba(X_pool_alive)``: the
        maintained block has the same values, dtype, shape, and memory
        order as the gather inside ``predict_proba``, so the pairwise
        summation runs in the same order.
        """
        return self._value.sum(axis=1) / len(self._forest.estimators_)

    def drop(self, idx: int) -> None:
        """Remove one pool row (it was queried and left the pool)."""
        self._leaf = np.delete(self._leaf, idx, axis=0)
        self._value = np.delete(self._value, idx, axis=0)

    def apply(self, report, X_pool: np.ndarray) -> None:
        """Fold one :class:`~repro.mlcore.forest.RefitReport` in.

        ``X_pool`` must be the *current* alive pool rows (after
        :meth:`drop`). ``None`` means no refit happened this round. A
        forest-wide class change (or any shape drift) invalidates every
        scattered row, so those trigger a full rebuild.
        """
        if report is None:
            return
        forest = self._forest
        X_pool = np.asarray(X_pool, dtype=np.float64)
        if (
            report.classes_changed
            or self._value.shape[0] != len(X_pool)
            or self._value.shape[1] != len(forest.estimators_)
            or self._value.shape[2] != len(forest.classes_)
        ):
            self._bind(X_pool)
            return
        for t in report.replaced:
            self._refresh_tree(int(t), X_pool)
        K = self._value.shape[2]
        for t, leaves in report.touched_leaves:
            if len(leaves) == 0:
                continue
            rows = np.flatnonzero(np.isin(self._leaf[:, t], leaves))
            if len(rows) == 0:
                continue
            tree = forest.estimators_[t]
            cmap = forest._tree_class_maps[t]
            sub = np.zeros((len(rows), K), dtype=np.float64)
            sub[:, cmap] = tree.tree_value_[self._leaf[rows, t]]
            self._value[rows, t, :] = sub
