"""repro.active — pool-based active learning (modAL stand-in + paper loop).

Query strategies (uncertainty / margin / entropy, Eqs. 1–4), the
:class:`ActiveLearner` query/teach cycle, the label :class:`Oracle`, the
Random / Equal App / Proctor baselines, and :func:`run_active_learning`,
the experiment driver behind every curve in the paper's Sec. V.
"""

from .advanced import (
    DensityWeightedUncertainty,
    QueryByCommittee,
    information_density,
)
from .batch import RankedBatchSelector, select_ranked_batch
from .baselines import EqualAppSelector, ProctorModel, RandomSelector
from .learner import ActiveLearner
from .loop import ALResult, queries_to_reach, run_active_learning
from .oracle import Oracle, QueryRecord
from .stream import StreamActiveLearner, StreamDecision, ThresholdController
from .strategies import (
    STRATEGIES,
    entropy_sampling,
    entropy_scores,
    get_strategy,
    margin_sampling,
    margin_scores,
    uncertainty_sampling,
    uncertainty_scores,
)

__all__ = [
    "ALResult",
    "DensityWeightedUncertainty",
    "QueryByCommittee",
    "StreamActiveLearner",
    "StreamDecision",
    "ThresholdController",
    "information_density",
    "RankedBatchSelector",
    "select_ranked_batch",
    "ActiveLearner",
    "EqualAppSelector",
    "Oracle",
    "ProctorModel",
    "QueryRecord",
    "RandomSelector",
    "STRATEGIES",
    "entropy_sampling",
    "entropy_scores",
    "get_strategy",
    "margin_sampling",
    "margin_scores",
    "queries_to_reach",
    "run_active_learning",
    "uncertainty_sampling",
    "uncertainty_scores",
]
