"""Advanced query strategies (the paper's future-work direction).

The paper's conclusion proposes "a custom query strategy for multivariate
time series data to further reduce the necessary labeled samples". Two
well-grounded candidates are implemented here, both drop-in compatible
with :class:`~repro.active.learner.ActiveLearner`:

* **Information-density weighting** (Settles & Craven 2008): plain
  uncertainty chases outliers — samples the model is unsure about because
  they are *weird*, not because they are *representative*. Density
  weighting multiplies uncertainty by the sample's average similarity to
  the rest of the pool, steering queries toward dense, representative
  regions.
* **Query-by-committee** (Seung et al. 1992, the paper's ref [26]): train
  a small committee on bootstrap replicas of the labeled set and query
  where the members disagree most (vote entropy). Disagreement captures
  model-space ambiguity that a single model's softmax cannot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mlcore.base import BaseEstimator, check_random_state, clone
from .strategies import uncertainty_scores

__all__ = ["DensityWeightedUncertainty", "QueryByCommittee", "information_density"]


def information_density(X_pool: np.ndarray, beta: float = 1.0) -> np.ndarray:
    """Average cosine similarity of each pool sample to the whole pool.

    Returns per-sample densities raised to ``beta``. Zero vectors get
    density 0 (they are degenerate, not representative).
    """
    X = np.asarray(X_pool, dtype=np.float64)
    norms = np.linalg.norm(X, axis=1)
    safe = np.where(norms > 0, norms, 1.0)
    unit = X / safe[:, None]
    sims = unit @ unit.T  # (n, n) cosine similarities
    density = sims.mean(axis=1)
    density = np.where(norms > 0, np.clip(density, 0.0, None), 0.0)
    return density**beta


@dataclass
class DensityWeightedUncertainty:
    """Select ``argmax U(x) * density(x)^beta`` over the pool.

    ``beta`` trades off informativeness against representativeness:
    ``beta=0`` recovers plain uncertainty sampling.
    """

    beta: float = 1.0

    def __call__(
        self,
        model: BaseEstimator,
        X_pool: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> int:
        if len(X_pool) == 0:
            raise ValueError("empty pool")
        scores = uncertainty_scores(model.predict_proba(X_pool))
        if self.beta != 0.0:
            scores = scores * information_density(X_pool, self.beta)
        return int(np.argmax(scores))


@dataclass
class QueryByCommittee:
    """Vote-entropy disagreement over a bootstrap committee.

    The committee is retrained from the *current* model's training data on
    every call — the learner refits after each teach, so the committee must
    track it. ``committee_size`` members are cloned from the learner's
    estimator and fit on bootstrap resamples.

    Requires the model to expose its training data; the ActiveLearner does
    via ``X_labeled`` / ``y_labeled``, so this strategy is built from the
    learner with :meth:`from_learner`, or constructed with an explicit
    ``get_training_data`` callable.
    """

    committee_size: int = 5
    get_training_data = None  # callable () -> (X, y); set post-construction

    def __call__(
        self,
        model: BaseEstimator,
        X_pool: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> int:
        if len(X_pool) == 0:
            raise ValueError("empty pool")
        if self.get_training_data is None:
            raise RuntimeError(
                "QueryByCommittee needs get_training_data; use bind_learner()"
            )
        rng = check_random_state(rng)
        X, y = self.get_training_data()
        n = len(y)
        votes = []
        for _ in range(self.committee_size):
            idx = rng.integers(0, n, size=n)
            # keep every class represented so members share the label space
            for _retry in range(8):
                if len(np.unique(np.asarray(y)[idx])) == len(np.unique(y)):
                    break
                idx = rng.integers(0, n, size=n)
            member = clone(model)
            member.fit(np.asarray(X)[idx], np.asarray(y)[idx])
            votes.append(member.predict(X_pool))
        votes_arr = np.stack(votes)  # (committee, n_pool)
        classes = np.unique(votes_arr)
        counts = np.stack(
            [(votes_arr == c).sum(axis=0) for c in classes], axis=1
        ).astype(float)
        p = counts / self.committee_size
        with np.errstate(invalid="ignore", divide="ignore"):
            terms = np.where(p > 0, p * np.log(np.where(p > 0, p, 1.0)), 0.0)
        vote_entropy = -terms.sum(axis=1)
        return int(np.argmax(vote_entropy))

    def bind_learner(self, learner) -> "QueryByCommittee":
        """Wire the committee to an ActiveLearner's growing labeled set."""
        self.get_training_data = lambda: (learner.X_labeled, learner.y_labeled)
        return self
