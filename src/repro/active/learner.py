"""Pool-based active learner (modAL's ``ActiveLearner`` stand-in).

Wraps any :mod:`repro.mlcore` classifier with the query/teach cycle of
Fig. 1: ``query`` asks the strategy for the most informative unlabeled
sample, ``teach`` appends the newly labeled sample and re-trains the model
on the grown labeled set (the paper re-trains incrementally rather than
from scratch; for our estimators a refit on the grown set is the exact
equivalent and stays cheap at experiment scale).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..mlcore.base import BaseEstimator, check_random_state, check_X_y, clone
from .strategies import StrategyFn, get_strategy

__all__ = ["ActiveLearner"]


class ActiveLearner:
    """A classifier plus a query strategy over an unlabeled pool.

    Parameters
    ----------
    estimator:
        Prototype classifier; a clone is (re)fit on every ``teach``.
    query_strategy:
        Strategy name (``"uncertainty"`` / ``"margin"`` / ``"entropy"``) or
        a callable ``(model, X_pool, rng) -> int``.
    X_initial, y_initial:
        The labeled seed set — in the paper, one sample per
        (application, anomaly) pair.
    refit_every:
        Re-train after every ``refit_every`` teaches (1 = paper behaviour).
    clone_fn:
        How to produce a fresh model for each refit. Defaults to
        :func:`repro.mlcore.base.clone`; Proctor passes
        :func:`repro.active.baselines.clone_with_representation` so the
        pretrained autoencoder survives refits.
    binner:
        Optional fitted :class:`repro.mlcore.binning.Binner`. When given,
        the learner keeps a growable :class:`BinnedDataset` of code rows
        alongside the labeled samples and refits via the estimator's
        ``fit_binned`` — re-training on a grown labeled set then costs an
        amortized O(1) code append instead of a fresh quantization (the
        cross-refit bin cache).
    initial_codes:
        Pre-binned codes for ``X_initial`` (skips one ``transform`` when
        the caller binned seed and pool together).
    warm_start:
        When true, refits go through the estimator's ``refit`` — trees
        survive across rounds, a seeded schedule regrows a
        ``refresh_fraction`` subset, kept trees absorb the new rows into
        their leaf counts. Requires the bin cache and a ``refit``-capable
        estimator. The :class:`RefitReport` of the latest warm refit is
        exposed via :meth:`take_refit_report` for delta pool scoring.
    refresh_fraction:
        Fraction of trees regrown per warm refit (``1.0`` is bit-exact
        to a cold refit on the stacked data).
    """

    def __init__(
        self,
        estimator: BaseEstimator,
        query_strategy: str | StrategyFn,
        X_initial: np.ndarray,
        y_initial: np.ndarray,
        refit_every: int = 1,
        random_state: int | np.random.Generator | None = None,
        clone_fn: Callable[[BaseEstimator], BaseEstimator] = clone,
        binner=None,
        initial_codes: np.ndarray | None = None,
        warm_start: bool = False,
        refresh_fraction: float = 0.25,
    ):
        if refit_every < 1:
            raise ValueError(f"refit_every must be >= 1, got {refit_every}")
        X_initial, y_initial = check_X_y(X_initial, y_initial)
        self._strategy: StrategyFn = (
            get_strategy(query_strategy)
            if isinstance(query_strategy, str)
            else query_strategy
        )
        self._rng = check_random_state(random_state)
        self._prototype = estimator
        self._clone_fn = clone_fn
        self.refit_every = refit_every
        self._X = [row for row in X_initial]
        self._y = list(y_initial)
        self._binner = binner
        self._binned = None
        if binner is not None:
            if not hasattr(estimator, "fit_binned"):
                raise TypeError(
                    f"{type(estimator).__name__} has no fit_binned; "
                    "the bin cache needs a binned-training estimator"
                )
            if initial_codes is None:
                initial_codes = binner.transform(X_initial)
            from ..mlcore.binning import BinnedDataset

            self._binned = BinnedDataset(
                np.ascontiguousarray(np.asarray(initial_codes, dtype=np.uint8)),
                binner,
            )
        if warm_start:
            if binner is None:
                raise TypeError("warm_start needs the bin cache (binner=...)")
            if not hasattr(estimator, "refit"):
                raise TypeError(
                    f"{type(estimator).__name__} has no refit; "
                    "warm_start needs a warm-refittable estimator"
                )
            if not 0.0 < refresh_fraction <= 1.0:
                raise ValueError(
                    f"refresh_fraction must be in (0, 1], got {refresh_fraction}"
                )
        self.warm_start = warm_start
        self.refresh_fraction = refresh_fraction
        # rows taught since the last warm refit: (x, y, code_row) triples
        self._pending_warm: list[tuple[np.ndarray, object, np.ndarray]] = []
        self._last_report = None
        self._pending = 0
        self.model = clone_fn(estimator)
        self._fit_model()

    def _fit_model(self) -> None:
        if self._binned is not None:
            self.model.fit_binned(self._binned, self.y_labeled)
        else:
            self.model.fit(self.X_labeled, self.y_labeled)

    # ------------------------------------------------------------------
    @property
    def X_labeled(self) -> np.ndarray:
        """Current labeled feature matrix (seed + taught samples)."""
        return np.vstack(self._X)

    @property
    def y_labeled(self) -> np.ndarray:
        """Current labeled targets."""
        return np.asarray(self._y)

    @property
    def n_labeled(self) -> int:
        """Number of labeled samples the model has seen."""
        return len(self._y)

    def query(self, X_pool: np.ndarray) -> int:
        """Index (into ``X_pool``) of the next sample to label."""
        if len(X_pool) == 0:
            raise ValueError("cannot query an empty pool")
        return self._strategy(self.model, X_pool, self._rng)

    def teach(
        self, x: np.ndarray, y: object, codes: np.ndarray | None = None
    ) -> "ActiveLearner":
        """Add one labeled sample and re-train (respecting ``refit_every``).

        ``codes`` is the sample's pre-binned row when the caller already
        holds it (the AL loop bins the whole pool up front); without it a
        cache-enabled learner bins the single new row — still O(log bins)
        per feature, never a re-quantization of the labeled set.
        """
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.shape[0] != self._X[0].shape[0]:
            raise ValueError(
                f"sample has {x.shape[0]} features, expected {self._X[0].shape[0]}"
            )
        self._X.append(x)
        self._y.append(y)
        if self._binned is not None:
            if codes is None:
                codes = self._binner.transform(x[None, :])[0]
            codes = np.asarray(codes, dtype=np.uint8).ravel()
            if self.warm_start:
                # the forest owns dataset growth inside refit; only stash
                # the row until the next warm refit folds it in
                self._pending_warm.append((x, y, codes))
            else:
                self._binned = self._binned.append_codes(codes[None, :])
        self._pending += 1
        if self._pending >= self.refit_every:
            self._refit()
        return self

    def _refit(self) -> None:
        if self.warm_start:
            self._last_report = self.model.refit(
                np.vstack([p[0] for p in self._pending_warm]),
                np.asarray([p[1] for p in self._pending_warm]),
                codes=np.vstack([p[2] for p in self._pending_warm]),
                refresh_fraction=self.refresh_fraction,
            )
            self._binned = self.model.binned_dataset_
            self._pending_warm.clear()
        else:
            self.model = self._clone_fn(self._prototype)
            self._fit_model()
            self._last_report = None
        self._pending = 0

    def flush(self) -> None:
        """Force a refit if any taught samples are pending."""
        if self._pending:
            self._refit()

    def take_refit_report(self):
        """Pop the :class:`RefitReport` of the latest warm refit (or None).

        Consumed by the AL loop's delta pool scorer; a cold refit (or no
        refit since the last call) yields ``None``.
        """
        report, self._last_report = self._last_report, None
        return report

    # convenience passthroughs -----------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict with the current model."""
        return self.model.predict(X)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class probabilities from the current model."""
        return self.model.predict_proba(X)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy of the current model."""
        return self.model.score(X, y)


# re-export for type hints in user code
QueryStrategy = Callable[[BaseEstimator, np.ndarray, np.random.Generator | None], int]
