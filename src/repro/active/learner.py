"""Pool-based active learner (modAL's ``ActiveLearner`` stand-in).

Wraps any :mod:`repro.mlcore` classifier with the query/teach cycle of
Fig. 1: ``query`` asks the strategy for the most informative unlabeled
sample, ``teach`` appends the newly labeled sample and re-trains the model
on the grown labeled set (the paper re-trains incrementally rather than
from scratch; for our estimators a refit on the grown set is the exact
equivalent and stays cheap at experiment scale).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..mlcore.base import BaseEstimator, check_random_state, check_X_y, clone
from .strategies import StrategyFn, get_strategy

__all__ = ["ActiveLearner"]


class ActiveLearner:
    """A classifier plus a query strategy over an unlabeled pool.

    Parameters
    ----------
    estimator:
        Prototype classifier; a clone is (re)fit on every ``teach``.
    query_strategy:
        Strategy name (``"uncertainty"`` / ``"margin"`` / ``"entropy"``) or
        a callable ``(model, X_pool, rng) -> int``.
    X_initial, y_initial:
        The labeled seed set — in the paper, one sample per
        (application, anomaly) pair.
    refit_every:
        Re-train after every ``refit_every`` teaches (1 = paper behaviour).
    clone_fn:
        How to produce a fresh model for each refit. Defaults to
        :func:`repro.mlcore.base.clone`; Proctor passes
        :func:`repro.active.baselines.clone_with_representation` so the
        pretrained autoencoder survives refits.
    binner:
        Optional fitted :class:`repro.mlcore.binning.Binner`. When given,
        the learner keeps a bin-code row alongside every labeled sample
        and refits via the estimator's ``fit_binned`` — re-training on a
        grown labeled set then costs a row-stack of cached codes instead
        of a fresh quantization (the cross-refit bin cache).
    initial_codes:
        Pre-binned codes for ``X_initial`` (skips one ``transform`` when
        the caller binned seed and pool together).
    """

    def __init__(
        self,
        estimator: BaseEstimator,
        query_strategy: str | StrategyFn,
        X_initial: np.ndarray,
        y_initial: np.ndarray,
        refit_every: int = 1,
        random_state: int | np.random.Generator | None = None,
        clone_fn: Callable[[BaseEstimator], BaseEstimator] = clone,
        binner=None,
        initial_codes: np.ndarray | None = None,
    ):
        if refit_every < 1:
            raise ValueError(f"refit_every must be >= 1, got {refit_every}")
        X_initial, y_initial = check_X_y(X_initial, y_initial)
        self._strategy: StrategyFn = (
            get_strategy(query_strategy)
            if isinstance(query_strategy, str)
            else query_strategy
        )
        self._rng = check_random_state(random_state)
        self._prototype = estimator
        self._clone_fn = clone_fn
        self.refit_every = refit_every
        self._X = [row for row in X_initial]
        self._y = list(y_initial)
        self._binner = binner
        self._codes: list[np.ndarray] | None = None
        if binner is not None:
            if not hasattr(estimator, "fit_binned"):
                raise TypeError(
                    f"{type(estimator).__name__} has no fit_binned; "
                    "the bin cache needs a binned-training estimator"
                )
            if initial_codes is None:
                initial_codes = binner.transform(X_initial)
            self._codes = [row for row in np.asarray(initial_codes)]
        self._pending = 0
        self.model = clone_fn(estimator)
        self._fit_model()

    def _fit_model(self) -> None:
        if self._binner is not None:
            from ..mlcore.binning import BinnedDataset

            self.model.fit_binned(
                BinnedDataset(np.vstack(self._codes), self._binner),
                self.y_labeled,
            )
        else:
            self.model.fit(self.X_labeled, self.y_labeled)

    # ------------------------------------------------------------------
    @property
    def X_labeled(self) -> np.ndarray:
        """Current labeled feature matrix (seed + taught samples)."""
        return np.vstack(self._X)

    @property
    def y_labeled(self) -> np.ndarray:
        """Current labeled targets."""
        return np.asarray(self._y)

    @property
    def n_labeled(self) -> int:
        """Number of labeled samples the model has seen."""
        return len(self._y)

    def query(self, X_pool: np.ndarray) -> int:
        """Index (into ``X_pool``) of the next sample to label."""
        if len(X_pool) == 0:
            raise ValueError("cannot query an empty pool")
        return self._strategy(self.model, X_pool, self._rng)

    def teach(
        self, x: np.ndarray, y: object, codes: np.ndarray | None = None
    ) -> "ActiveLearner":
        """Add one labeled sample and re-train (respecting ``refit_every``).

        ``codes`` is the sample's pre-binned row when the caller already
        holds it (the AL loop bins the whole pool up front); without it a
        cache-enabled learner bins the single new row — still O(log bins)
        per feature, never a re-quantization of the labeled set.
        """
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.shape[0] != self._X[0].shape[0]:
            raise ValueError(
                f"sample has {x.shape[0]} features, expected {self._X[0].shape[0]}"
            )
        self._X.append(x)
        self._y.append(y)
        if self._codes is not None:
            if codes is None:
                codes = self._binner.transform(x[None, :])[0]
            self._codes.append(np.asarray(codes, dtype=np.uint8).ravel())
        self._pending += 1
        if self._pending >= self.refit_every:
            self._refit()
        return self

    def _refit(self) -> None:
        self.model = self._clone_fn(self._prototype)
        self._fit_model()
        self._pending = 0

    def flush(self) -> None:
        """Force a refit if any taught samples are pending."""
        if self._pending:
            self._refit()

    # convenience passthroughs -----------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict with the current model."""
        return self.model.predict(X)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class probabilities from the current model."""
        return self.model.predict_proba(X)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy of the current model."""
        return self.model.score(X, y)


# re-export for type hints in user code
QueryStrategy = Callable[[BaseEstimator, np.ndarray, np.random.Generator | None], int]
