"""Batch-mode query selection (ranked batch, Cardoso et al. 2017).

The paper queries one sample per iteration; in practice annotators label
in sessions, so asking for *k* samples at once matters. Naively taking the
top-k most uncertain samples wastes queries on near-duplicates; ranked
batch-mode selection greedily picks samples that are both uncertain and
*far from everything already selected or labeled*, trading informativeness
against batch diversity — the same idea modAL ships as ``ranked_batch``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .strategies import uncertainty_scores

__all__ = ["RankedBatchSelector", "select_ranked_batch"]


def _min_distances(X_pool: np.ndarray, X_ref: np.ndarray) -> np.ndarray:
    """Per-pool-sample Euclidean distance to the nearest reference row."""
    # (n, m) vs (r, m): compute in chunks to bound memory
    n = X_pool.shape[0]
    out = np.empty(n)
    chunk = max(1, 2_000_000 // max(1, X_ref.shape[0]))
    for start in range(0, n, chunk):
        block = X_pool[start : start + chunk]
        d2 = (
            np.sum(block**2, axis=1)[:, None]
            - 2.0 * block @ X_ref.T
            + np.sum(X_ref**2, axis=1)[None, :]
        )
        out[start : start + chunk] = np.sqrt(np.maximum(d2.min(axis=1), 0.0))
    return out


def select_ranked_batch(
    model,
    X_pool: np.ndarray,
    X_labeled: np.ndarray,
    batch_size: int,
) -> list[int]:
    """Greedy ranked-batch selection of ``batch_size`` pool indices.

    Each greedy step scores every remaining candidate as

    ``alpha * similarity_penalty + (1 - alpha) * uncertainty``

    with ``alpha = |unlabeled| / (|unlabeled| + |labeled|)`` (diversity
    matters most while the labeled set is small) and the similarity
    penalty ``1 / (1 + exp(-d))``-free formulation of modAL:
    ``1 - 1/(1 + d)`` where ``d`` is the distance to the nearest
    labeled-or-selected sample.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    X_pool = np.asarray(X_pool, dtype=np.float64)
    n = len(X_pool)
    if n == 0:
        raise ValueError("empty pool")
    batch_size = min(batch_size, n)
    uncertainty = uncertainty_scores(model.predict_proba(X_pool))
    reference = np.asarray(X_labeled, dtype=np.float64)
    selected: list[int] = []
    remaining = np.arange(n)
    n_labeled = len(reference)
    for _ in range(batch_size):
        d = _min_distances(X_pool[remaining], reference)
        similarity_penalty = 1.0 - 1.0 / (1.0 + d)
        n_unlabeled = len(remaining)
        alpha = n_unlabeled / (n_unlabeled + n_labeled)
        scores = alpha * similarity_penalty + (1.0 - alpha) * uncertainty[remaining]
        pick_pos = int(np.argmax(scores))
        pick = int(remaining[pick_pos])
        selected.append(pick)
        reference = np.vstack([reference, X_pool[pick][None, :]])
        n_labeled += 1
        remaining = np.delete(remaining, pick_pos)
    return selected


@dataclass
class RankedBatchSelector:
    """ActiveLearner-compatible wrapper: yields one batch, one index at a time.

    The :class:`~repro.active.learner.ActiveLearner` protocol asks for one
    index per query; this selector computes a ranked batch when its queue
    is empty and replays it one index per call, recomputing every
    ``batch_size`` queries. The labeled reference set comes from a bound
    learner (:meth:`bind_learner`); unbound, the current pool's first row
    seeds the diversity reference.

    The caller must remove each returned index from the pool before the
    next call (the convention of :func:`repro.active.loop.run_active_learning`);
    queued indices are shifted accordingly.
    """

    batch_size: int = 10
    get_labeled = None  # callable () -> X_labeled; set via bind_learner

    def __post_init__(self) -> None:
        self._queue: list[int] = []
        self._expected_pool = -1

    def bind_learner(self, learner) -> "RankedBatchSelector":
        """Use an ActiveLearner's labeled set as the diversity reference."""
        self.get_labeled = lambda: learner.X_labeled
        return self

    def __call__(self, model, X_pool: np.ndarray, rng=None) -> int:
        if not self._queue or len(X_pool) != self._expected_pool:
            reference = (
                self.get_labeled() if self.get_labeled is not None else X_pool[:1]
            )
            self._queue = select_ranked_batch(
                model, X_pool, reference, self.batch_size
            )
            self._expected_pool = len(X_pool)
        idx = self._queue.pop(0)
        self._expected_pool -= 1
        self._queue = [i - 1 if i > idx else i for i in self._queue]
        return idx
