"""Baseline sample-selection policies (paper Sec. IV-D).

* **Random** — uniformly random pool sample each iteration; the canonical
  active-learning control.
* **Equal App** — assumes the running applications are known and queries in
  application round-robin: each round supplies one random sample from every
  application type, guaranteeing balanced app coverage.
* **Proctor** — the semi-supervised baseline of Aksar et al. (ISC 2021): a
  deep autoencoder trained on the *unlabeled* pool provides an embedding; a
  logistic-regression head is trained on the embedded labeled set; new
  labels are acquired at Random. Its curve stays flat in the paper because
  random labels add little information to the fixed representation.

All baselines are expressed as selector callables compatible with
:class:`~repro.active.learner.ActiveLearner`, so the experiment loop treats
strategies and baselines uniformly.
"""

from __future__ import annotations

import numpy as np

from ..mlcore.autoencoder import Autoencoder
from ..mlcore.base import BaseEstimator, check_random_state, clone
from ..mlcore.linear import LogisticRegression

__all__ = ["RandomSelector", "EqualAppSelector", "ProctorModel"]


class RandomSelector:
    """Uniformly random pool index — the Random baseline."""

    def __call__(
        self, model: object, X_pool: np.ndarray, rng: np.random.Generator | None
    ) -> int:
        rng = check_random_state(rng)
        return int(rng.integers(0, len(X_pool)))


class EqualAppSelector:
    """Application round-robin selection — the Equal App baseline.

    Holds a reference to the pool's per-sample application labels, which the
    experiment loop keeps aligned with the shrinking pool via
    :meth:`remove`. Within each round the selector cycles through the
    application types in sorted order, choosing a random sample of the
    current app; apps exhausted from the pool are skipped.
    """

    def __init__(self, pool_apps: np.ndarray):
        self._apps = list(np.asarray(pool_apps))
        self._app_cycle = sorted(set(str(a) for a in self._apps))
        if not self._app_cycle:
            raise ValueError("pool has no application labels")
        self._cursor = 0

    def __call__(
        self, model: object, X_pool: np.ndarray, rng: np.random.Generator | None
    ) -> int:
        if len(X_pool) != len(self._apps):
            raise RuntimeError(
                "pool/app bookkeeping out of sync: call remove() after each query"
            )
        rng = check_random_state(rng)
        apps_arr = np.array([str(a) for a in self._apps])
        for _ in range(len(self._app_cycle)):
            target = self._app_cycle[self._cursor % len(self._app_cycle)]
            self._cursor += 1
            candidates = np.flatnonzero(apps_arr == target)
            if len(candidates):
                return int(rng.choice(candidates))
        # every cycling app exhausted: fall back to random
        return int(rng.integers(0, len(X_pool)))

    def remove(self, pool_index: int) -> None:
        """Drop the selected sample's app entry to stay aligned with the pool."""
        del self._apps[pool_index]


class ProctorModel(BaseEstimator):
    """Autoencoder embedding + logistic-regression head (Proctor).

    ``fit_unlabeled`` trains the representation once on the pool; ``fit``
    then only refits the lightweight LR head on embedded labeled samples,
    which is why Proctor plugs into the same AL loop as any classifier.

    Parameters mirror the paper's setup (deep AE, adadelta, MSE, 100
    epochs, LR head) with the code width scaled to our feature counts.
    """

    def __init__(
        self,
        code_size: int = 64,
        hidden_layer_sizes: tuple[int, ...] = (128,),
        ae_epochs: int = 100,
        lr_C: float = 1.0,
        random_state: int | np.random.Generator | None = None,
    ):
        self.code_size = code_size
        self.hidden_layer_sizes = hidden_layer_sizes
        self.ae_epochs = ae_epochs
        self.lr_C = lr_C
        self.random_state = random_state

    def fit_unlabeled(self, X_unlabeled: np.ndarray) -> "ProctorModel":
        """Train the autoencoder representation on the unlabeled pool."""
        self.autoencoder_ = Autoencoder(
            code_size=self.code_size,
            hidden_layer_sizes=self.hidden_layer_sizes,
            max_iter=self.ae_epochs,
            random_state=self.random_state,
        ).fit(X_unlabeled)
        return self

    def fit(self, X: np.ndarray, y: np.ndarray) -> "ProctorModel":
        """Fit the LR head on the embedding of the labeled samples.

        If ``fit_unlabeled`` was never called (e.g. cloned by the AL loop),
        the AE is trained on the labeled data itself as a fallback.
        """
        if not hasattr(self, "autoencoder_"):
            self.fit_unlabeled(X)
        self.head_ = LogisticRegression(penalty="l2", C=self.lr_C)
        self.head_.fit(self.autoencoder_.transform(X), np.asarray(y))
        self.classes_ = self.head_.classes_
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Diagnose through the frozen embedding."""
        return self.head_.predict(self.autoencoder_.transform(X))

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class probabilities through the frozen embedding."""
        return self.head_.predict_proba(self.autoencoder_.transform(X))

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy through the frozen embedding."""
        return float(np.mean(self.predict(X) == np.asarray(y)))


def clone_with_representation(proctor: ProctorModel) -> ProctorModel:
    """Clone hyperparameters but share the trained autoencoder.

    The AL loop refits models on every teach; retraining the AE each time
    would be both wasteful and wrong (Proctor's representation is fixed
    after unsupervised pretraining). Sharing the fitted AE across clones
    preserves the intended semantics.
    """
    fresh = clone(proctor)
    if hasattr(proctor, "autoencoder_"):
        fresh.autoencoder_ = proctor.autoencoder_
    return fresh
