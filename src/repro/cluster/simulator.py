"""Cluster simulator: schedule jobs onto nodes, collect per-node telemetry.

Models the piece of the paper's testbed the single-node
:class:`~repro.telemetry.collector.Collector` cannot: a machine with many
compute nodes, a first-fit scheduler handing node sets to jobs, and
per-node telemetry for every node of every job. The anomaly runs on the
job's first allocated node (HPAS protocol); the job's remaining nodes
contribute *healthy* samples from the same execution — matching how the
paper's datasets actually mix healthy and anomalous samples of one run.

Node ranks also perturb the workload slightly (rank 0 does I/O
aggregation, higher ranks do a bit more halo communication), so per-node
samples of one job are correlated but not identical — as in real MPI jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..mlcore.base import check_random_state
from ..telemetry.catalog import RESOURCE_DIMS, MetricCatalog
from ..telemetry.collector import RunRecord
from ..telemetry.node import NodeProfile
from ..telemetry.sampler import TelemetrySampler
from .job import Job
from .topology import SwitchTopology, contention_factors

__all__ = ["JobPlacement", "ClusterSim"]


@dataclass(frozen=True)
class JobPlacement:
    """Where a job landed: global node ids, in rank order."""

    job: Job
    node_ids: tuple[int, ...]


@dataclass
class ClusterSim:
    """A fixed pool of compute nodes executing jobs one placement at a time.

    Parameters
    ----------
    catalog / node_profile:
        Telemetry and hardware models shared by all nodes (homogeneous
        cluster, like Volta's 52 identical XC30m nodes).
    n_nodes:
        Cluster size; jobs larger than this are rejected.
    missing_rate:
        Telemetry sample-loss rate per node.
    """

    catalog: MetricCatalog
    node_profile: NodeProfile
    n_nodes: int = 52  # Volta's size
    missing_rate: float = 0.005
    topology: SwitchTopology | None = None
    placements: list[JobPlacement] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        self._sampler = TelemetrySampler(
            catalog=self.catalog,
            node=self.node_profile,
            missing_rate=self.missing_rate,
        )
        self._next_free = 0

    # ------------------------------------------------------------------
    def _allocate(self, count: int) -> tuple[int, ...]:
        """First-fit-cyclic allocation over the node pool."""
        if count > self.n_nodes:
            raise ValueError(
                f"job wants {count} nodes but the cluster has {self.n_nodes}"
            )
        ids = tuple(
            (self._next_free + i) % self.n_nodes for i in range(count)
        )
        self._next_free = (self._next_free + count) % self.n_nodes
        return ids

    @staticmethod
    def _rank_adjust(demand: np.ndarray, rank: int, node_count: int) -> np.ndarray:
        """Per-rank workload asymmetry within one job.

        Rank 0 aggregates I/O (more io demand); interior ranks exchange
        more halo data (slightly more net). Effects are small — per-node
        samples of one job stay strongly correlated.
        """
        out = demand.copy()
        io = RESOURCE_DIMS.index("io")
        net = RESOURCE_DIMS.index("net")
        if rank == 0:
            out[:, io] *= 1.25
        else:
            out[:, net] *= 1.0 + 0.1 * min(rank, 4) / 4.0
        return out

    def run_job(
        self,
        job: Job,
        rng: int | np.random.Generator | None = None,
    ) -> list[RunRecord]:
        """Execute one job; return one RunRecord per allocated node.

        Records are ordered by rank; record 0 carries the anomaly label if
        the job is anomalous, all others are healthy (the paper's rule).
        """
        rng = check_random_state(rng)
        node_ids = self._allocate(job.node_count)
        self.placements.append(JobPlacement(job=job, node_ids=node_ids))
        base_demand = job.app.demand_timeline(
            job.duration,
            input_deck=job.input_deck,
            node_count=job.node_count,
            rng=rng,
        )
        records: list[RunRecord] = []
        labels = job.label_for_node
        for rank, node_id in enumerate(node_ids):
            demand = self._rank_adjust(base_demand, rank, job.node_count)
            if rank == 0 and job.anomaly is not None:
                demand = job.anomaly.inject(demand, intensity=job.intensity, rng=rng)
            data = self._sampler.sample(demand, rng=rng)
            records.append(
                RunRecord(
                    app=job.app.name,
                    input_deck=job.input_deck,
                    node_count=job.node_count,
                    node_id=node_id,
                    anomaly=None if labels[rank] == "healthy" else labels[rank],
                    intensity=job.intensity if labels[rank] != "healthy" else 0.0,
                    data=data,
                    metric_names=self.catalog.names,
                )
            )
        return records

    def run_campaign(
        self,
        jobs: list[Job],
        rng: int | np.random.Generator | None = None,
    ) -> list[RunRecord]:
        """Run a list of jobs back to back; flat list of per-node records."""
        rng = check_random_state(rng)
        records: list[RunRecord] = []
        for job in jobs:
            records.extend(self.run_job(job, rng=rng))
        return records

    def run_concurrent(
        self,
        jobs: list[Job],
        rng: int | np.random.Generator | None = None,
    ) -> list[RunRecord]:
        """Run several jobs *at the same time*, with switch contention.

        Requires a :class:`SwitchTopology` and equal job durations. Each
        job's per-node demand is generated independently; nodes sharing an
        oversubscribed switch then have their network demand scaled down
        by :func:`contention_factors` — a communication-heavy neighbor
        genuinely slows other jobs' network activity, producing unlabeled
        performance variation in their telemetry (the paper's cited
        "nearby jobs" effect).

        Returns per-node records for all jobs, job-major / rank order.
        """
        if self.topology is None:
            raise RuntimeError("run_concurrent needs a SwitchTopology")
        if not jobs:
            return []
        durations = {job.duration for job in jobs}
        if len(durations) != 1:
            raise ValueError(
                f"concurrent jobs must share a duration, got {sorted(durations)}"
            )
        total_nodes = sum(job.node_count for job in jobs)
        if total_nodes > self.n_nodes:
            raise ValueError(
                f"concurrent batch wants {total_nodes} nodes, cluster has {self.n_nodes}"
            )
        rng = check_random_state(rng)
        net = RESOURCE_DIMS.index("net")

        # phase 1: placements and raw per-node demand
        staged: list[tuple[Job, tuple[int, ...], list[np.ndarray]]] = []
        node_net: dict[int, float] = {}
        for job in jobs:
            node_ids = self._allocate(job.node_count)
            self.placements.append(JobPlacement(job=job, node_ids=node_ids))
            base = job.app.demand_timeline(
                job.duration,
                input_deck=job.input_deck,
                node_count=job.node_count,
                rng=rng,
            )
            demands = []
            for rank, node_id in enumerate(node_ids):
                demand = self._rank_adjust(base, rank, job.node_count)
                if rank == 0 and job.anomaly is not None:
                    demand = job.anomaly.inject(
                        demand, intensity=job.intensity, rng=rng
                    )
                demands.append(demand)
                node_net[node_id] = float(demand[:, net].mean())
            staged.append((job, node_ids, demands))

        # phase 2: switch contention scales network activity per node
        factors = contention_factors(self.topology, node_net)

        records: list[RunRecord] = []
        for job, node_ids, demands in staged:
            labels = job.label_for_node
            for rank, (node_id, demand) in enumerate(zip(node_ids, demands)):
                demand = demand.copy()
                demand[:, net] *= factors[node_id]
                data = self._sampler.sample(demand, rng=rng)
                records.append(
                    RunRecord(
                        app=job.app.name,
                        input_deck=job.input_deck,
                        node_count=job.node_count,
                        node_id=node_id,
                        anomaly=None if labels[rank] == "healthy" else labels[rank],
                        intensity=job.intensity if labels[rank] != "healthy" else 0.0,
                        data=data,
                        metric_names=self.catalog.names,
                    )
                )
        return records

    @property
    def utilization_history(self) -> dict[int, int]:
        """How many job-placements each node participated in."""
        counts: dict[int, int] = {i: 0 for i in range(self.n_nodes)}
        for placement in self.placements:
            for node_id in placement.node_ids:
                counts[node_id] += 1
        return counts
