"""Jobs: multi-node application executions (paper Sec. IV-A).

The paper runs every application over several compute nodes (4 on Volta;
4/8/16 on Eclipse) and collects one telemetry sample *per node*. When an
anomaly is injected, it runs on the **first allocated node only** — so a
single anomalous job yields one anomalous sample and N−1 healthy samples
from the same execution. That per-node labeling is what
:class:`~repro.cluster.simulator.ClusterSim` reproduces; this module
defines the job description it schedules.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..anomalies.base import Anomaly
from ..apps.base import AppSignature

__all__ = ["Job"]


@dataclass(frozen=True)
class Job:
    """One scheduled application execution.

    Parameters
    ----------
    app:
        The application signature to run.
    input_deck:
        Which input deck (0-based; must exist on the app).
    node_count:
        Number of compute nodes the job spans.
    duration:
        Wall-clock seconds (= telemetry samples at 1 Hz).
    anomaly:
        Optional anomaly co-scheduled on the job's first allocated node.
    intensity:
        Anomaly intensity in (0, 1]; ignored when ``anomaly`` is None.
    """

    app: AppSignature
    input_deck: int = 0
    node_count: int = 4
    duration: int = 120
    anomaly: Anomaly | None = None
    intensity: float = 0.0

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise ValueError(f"node_count must be >= 1, got {self.node_count}")
        if self.duration < 8:
            raise ValueError(f"duration too short: {self.duration}")
        if not 0 <= self.input_deck < self.app.n_inputs:
            raise ValueError(
                f"input_deck {self.input_deck} out of range for {self.app.name}"
            )
        if self.anomaly is not None and not 0.0 < self.intensity <= 1.0:
            raise ValueError(
                f"anomalous job needs intensity in (0, 1], got {self.intensity}"
            )

    @property
    def label_for_node(self) -> dict[int, str]:
        """Ground-truth label per local node rank (paper's labeling rule)."""
        labels = {rank: "healthy" for rank in range(self.node_count)}
        if self.anomaly is not None:
            labels[0] = self.anomaly.name
        return labels
