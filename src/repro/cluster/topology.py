"""Network topology and neighbor-job interference.

Volta is "52 computing nodes organized in 13 connected switches, each with
four nodes" (paper Sec. IV-A). Nodes sharing a switch share injection
bandwidth, so a communication-heavy job degrades its switch neighbors —
the "there goes the neighborhood" effect the paper cites ([6]) as a real
source of production performance variation. This module models that layer:

* :class:`SwitchTopology` — the node→switch map and per-switch bandwidth;
* :func:`contention_factors` — given concurrent jobs' placements and their
  network demands, the per-node slowdown of network-coupled activity.

:class:`~repro.cluster.simulator.ClusterSim` applies these factors when
constructed with a topology, turning co-scheduled communication-heavy jobs
into genuine (unlabeled!) performance variation in each other's telemetry
— background noise the diagnosis model must be robust to.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SwitchTopology", "VOLTA_TOPOLOGY", "contention_factors"]


@dataclass(frozen=True)
class SwitchTopology:
    """Nodes grouped under shared switches.

    Parameters
    ----------
    n_nodes:
        Total compute nodes.
    nodes_per_switch:
        Group size; node ``i`` hangs off switch ``i // nodes_per_switch``.
    switch_bandwidth:
        Aggregate network capacity of one switch, in the same normalized
        units as node-level ``net`` demand (1.0 = one node's full rate).
    """

    n_nodes: int
    nodes_per_switch: int = 4
    switch_bandwidth: float = 2.5

    def __post_init__(self) -> None:
        if self.n_nodes < 1 or self.nodes_per_switch < 1:
            raise ValueError("need positive node and group counts")
        if self.switch_bandwidth <= 0:
            raise ValueError("switch_bandwidth must be positive")

    @property
    def n_switches(self) -> int:
        """Number of switches (last one may be partially filled)."""
        return -(-self.n_nodes // self.nodes_per_switch)

    def switch_of(self, node_id: int) -> int:
        """Which switch a node hangs off."""
        if not 0 <= node_id < self.n_nodes:
            raise ValueError(f"node {node_id} outside [0, {self.n_nodes})")
        return node_id // self.nodes_per_switch

    def neighbors(self, node_id: int) -> list[int]:
        """Other nodes on the same switch."""
        s = self.switch_of(node_id)
        lo = s * self.nodes_per_switch
        hi = min(lo + self.nodes_per_switch, self.n_nodes)
        return [n for n in range(lo, hi) if n != node_id]


VOLTA_TOPOLOGY = SwitchTopology(n_nodes=52, nodes_per_switch=4)


def contention_factors(
    topology: SwitchTopology,
    node_net_demand: dict[int, float],
) -> dict[int, float]:
    """Per-node network slowdown from switch oversubscription.

    ``node_net_demand`` maps node id → that node's mean network demand.
    When a switch's total demand exceeds its bandwidth, every node on it
    receives its proportional share: factor = bandwidth / total ≤ 1.
    Nodes on uncontended switches get factor 1.0.
    """
    totals: dict[int, float] = {}
    for node_id, demand in node_net_demand.items():
        if demand < 0:
            raise ValueError(f"negative net demand on node {node_id}")
        s = topology.switch_of(node_id)
        totals[s] = totals.get(s, 0.0) + demand
    factors: dict[int, float] = {}
    for node_id in node_net_demand:
        s = topology.switch_of(node_id)
        total = totals[s]
        factors[node_id] = (
            1.0 if total <= topology.switch_bandwidth
            else topology.switch_bandwidth / total
        )
    return factors
