"""Production workload generation: job streams for the cluster simulator.

The paper's campaigns are exhaustive grids (every app × input × anomaly ×
intensity). A *production* stream looks different: jobs arrive with an
application mix, sizes follow the site's allocation habits, and anomalies
strike a small random fraction of jobs. This generator produces such
streams for deployment-shaped experiments (drift monitoring, stream-based
selective sampling, endurance tests) where grid campaigns would be the
wrong distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..anomalies.injectors import ANOMALIES
from ..apps.base import AppSignature
from ..mlcore.base import check_random_state
from .job import Job

__all__ = ["WorkloadSpec", "generate_stream"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Distributional description of a site's job stream.

    Parameters
    ----------
    apps:
        Available application signatures.
    app_weights:
        Relative submission frequency per app name; missing apps get 0.
        Empty mapping = uniform.
    node_counts / node_count_weights:
        Allocation size distribution (Eclipse-style 4/8/16 mixes).
    duration:
        Job runtime in seconds (fixed per stream so concurrent batches
        stay schedulable; production variation comes from the apps).
    anomaly_rate:
        Fraction of jobs that carry an anomaly on their first node —
        the paper observed 2–7% outlier runs in production and capped its
        pools at 10%.
    anomaly_weights:
        Relative frequency per anomaly name; empty = uniform over HPAS.
    intensities:
        Intensity grid anomalous jobs draw from.
    """

    apps: Mapping[str, AppSignature]
    app_weights: Mapping[str, float] = field(default_factory=dict)
    node_counts: Sequence[int] = (4,)
    node_count_weights: Sequence[float] = ()
    duration: int = 180
    anomaly_rate: float = 0.05
    anomaly_weights: Mapping[str, float] = field(default_factory=dict)
    intensities: Sequence[float] = (0.1, 0.5, 1.0)

    def __post_init__(self) -> None:
        if not self.apps:
            raise ValueError("workload needs at least one application")
        if not 0.0 <= self.anomaly_rate < 1.0:
            raise ValueError(f"anomaly_rate must be in [0, 1), got {self.anomaly_rate}")
        unknown = set(self.app_weights) - set(self.apps)
        if unknown:
            raise ValueError(f"weights for unknown apps: {sorted(unknown)}")
        unknown_anoms = set(self.anomaly_weights) - set(ANOMALIES)
        if unknown_anoms:
            raise ValueError(f"weights for unknown anomalies: {sorted(unknown_anoms)}")
        if self.node_count_weights and len(self.node_count_weights) != len(
            self.node_counts
        ):
            raise ValueError("node_count_weights / node_counts length mismatch")

    # ------------------------------------------------------------------
    def _normalized(self, names: Sequence[str], weights: Mapping[str, float]) -> np.ndarray:
        w = np.array([max(0.0, float(weights.get(n, 0.0))) for n in names])
        if not weights:
            w = np.ones(len(names))
        total = w.sum()
        if total <= 0:
            raise ValueError("weights sum to zero")
        return w / total


def generate_stream(
    spec: WorkloadSpec,
    n_jobs: int,
    rng: int | np.random.Generator | None = None,
) -> list[Job]:
    """Draw ``n_jobs`` jobs from the workload distribution."""
    if n_jobs < 0:
        raise ValueError(f"n_jobs must be >= 0, got {n_jobs}")
    rng = check_random_state(rng)
    app_names = sorted(spec.apps)
    app_p = spec._normalized(app_names, spec.app_weights)
    anomaly_names = sorted(ANOMALIES)
    anomaly_p = spec._normalized(anomaly_names, spec.anomaly_weights)
    if spec.node_count_weights:
        node_p = np.asarray(spec.node_count_weights, dtype=float)
        node_p = node_p / node_p.sum()
    else:
        node_p = np.full(len(spec.node_counts), 1.0 / len(spec.node_counts))

    jobs: list[Job] = []
    for _ in range(n_jobs):
        app = spec.apps[app_names[int(rng.choice(len(app_names), p=app_p))]]
        node_count = int(
            np.asarray(spec.node_counts)[int(rng.choice(len(spec.node_counts), p=node_p))]
        )
        deck = int(rng.integers(0, app.n_inputs))
        if rng.random() < spec.anomaly_rate:
            anomaly = ANOMALIES[
                anomaly_names[int(rng.choice(len(anomaly_names), p=anomaly_p))]
            ]
            intensity = float(
                np.asarray(spec.intensities)[int(rng.integers(len(spec.intensities)))]
            )
            jobs.append(
                Job(
                    app=app,
                    input_deck=deck,
                    node_count=node_count,
                    duration=spec.duration,
                    anomaly=anomaly,
                    intensity=intensity,
                )
            )
        else:
            jobs.append(
                Job(
                    app=app,
                    input_deck=deck,
                    node_count=node_count,
                    duration=spec.duration,
                )
            )
    return jobs
