"""repro.cluster — multi-node cluster simulation.

Jobs spanning several compute nodes, first-fit scheduling over a fixed
node pool, and per-node telemetry collection with the paper's labeling
rule (anomaly on the first allocated node; other nodes of the same job
contribute healthy samples).
"""

from .job import Job
from .simulator import ClusterSim, JobPlacement
from .topology import VOLTA_TOPOLOGY, SwitchTopology, contention_factors
from .workload import WorkloadSpec, generate_stream

__all__ = [
    "ClusterSim",
    "Job",
    "JobPlacement",
    "SwitchTopology",
    "VOLTA_TOPOLOGY",
    "contention_factors",
    "WorkloadSpec",
    "generate_stream",
]
