"""Annotation escalation queue: the online half of the paper's AL loop.

Pool-based ALBADross asks the annotator about the most uncertain pool
samples; in a live service the "pool" is the request stream itself. Every
diagnosis the service emits passes through an :class:`EscalationQueue`,
which reuses the self-tuning uncertainty threshold of
:class:`repro.active.stream.ThresholdController` — predictions whose
uncertainty (``1 - confidence``) clears the threshold are parked for a
human, and the controller keeps the escalation rate near the annotator's
budget instead of flooding them during a confusing burst.

Drained, annotated items feed :func:`apply_annotations`, which folds the
labels back into the framework (``ALBADross.absorb``) and publishes the
refit model as the next registry version — closing the loop the paper
runs offline.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from ..active.stream import ThresholdController
from ..core.framework import ALBADross, Diagnosis
from ..telemetry.collector import RunRecord

if TYPE_CHECKING:  # pragma: no cover
    from .jobs import JobQueue
    from .registry import ModelRegistry, ModelVersion

__all__ = ["EscalationItem", "EscalationQueue", "apply_annotations"]


@dataclass(frozen=True)
class EscalationItem:
    """One low-confidence prediction awaiting a human label."""

    run: RunRecord
    diagnosis: Diagnosis
    uncertainty: float
    threshold: float


class EscalationQueue:
    """Bounded queue of predictions the model was not confident about.

    Parameters
    ----------
    controller:
        Threshold policy; defaults to the stream learner's self-tuning
        controller with a 10% target escalation rate.
    maxlen:
        Queue bound; beyond it the *oldest* unserviced item is dropped
        (the annotator was never going to reach it anyway) and the drop is
        counted.
    store:
        Optional durable :class:`~repro.serving.jobs.JobQueue`. When set,
        this in-memory queue becomes the *front-end*: offers still park
        here (cheap, on the dispatcher thread), and
        :meth:`flush_to_store` moves them into durable ``escalation``
        jobs that survive a process crash. The fleet flushes on shard
        death and at shutdown; callers may flush on any cadence.
    """

    def __init__(
        self,
        controller: ThresholdController | None = None,
        maxlen: int = 256,
        store: "JobQueue | None" = None,
    ):
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        self.controller = controller or ThresholdController()
        self.store = store
        self._items: deque[EscalationItem] = deque(maxlen=maxlen)
        self.n_dropped = 0
        self.n_refused = 0
        self.n_forced = 0
        # offer() runs on the engine's dispatcher thread while drain() runs
        # on whatever control thread owns the annotator; the controller
        # mutates on every offer, so the whole decision must be atomic
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def offer(self, run: RunRecord, diagnosis: Diagnosis) -> bool:
        """Consider one served prediction; enqueue it if uncertain enough."""
        uncertainty = 1.0 - diagnosis.confidence
        with self._lock:
            threshold_used = self.controller.threshold
            if not self.controller.should_query(uncertainty):
                return False
            if len(self._items) == self._items.maxlen:
                self.n_dropped += 1
            self._items.append(
                EscalationItem(
                    run=run,
                    diagnosis=diagnosis,
                    uncertainty=uncertainty,
                    threshold=threshold_used,
                )
            )
        return True

    def offer_forced(self, run: RunRecord, diagnosis: Diagnosis) -> bool:
        """Enqueue without consulting (or tuning) the adaptive controller.

        The degraded-mode path: fallback verdicts carry a synthetic
        confidence of 0.0, so feeding them through :meth:`offer` during a
        breaker-open storm would skew the self-tuning threshold toward the
        outage and evict genuine low-confidence items from the bounded
        queue. Forced offers leave the controller untouched and are
        *refused* (counted in ``n_refused``) when the queue is full,
        instead of evicting.
        """
        uncertainty = 1.0 - diagnosis.confidence
        with self._lock:
            if len(self._items) == self._items.maxlen:
                self.n_refused += 1
                return False
            self.n_forced += 1
            self._items.append(
                EscalationItem(
                    run=run,
                    diagnosis=diagnosis,
                    uncertainty=uncertainty,
                    threshold=self.controller.threshold,
                )
            )
        return True

    def flush_to_store(self, n: int | None = None) -> int:
        """Drain up to ``n`` parked items into the durable job store.

        Each item becomes one at-least-once ``escalation`` job (see
        :mod:`repro.serving.jobs`); once enqueued it survives process
        death and shard reroutes. Returns the number of jobs written.
        Raises :class:`RuntimeError` when the queue was built without a
        ``store``.
        """
        if self.store is None:
            raise RuntimeError("escalation queue was built without a store")
        from .jobs import ESCALATION_KIND, escalation_payload

        flushed = 0
        for item in self.drain(n):
            self.store.enqueue(ESCALATION_KIND, escalation_payload(item))
            flushed += 1
        return flushed

    def drain(self, n: int | None = None) -> list[EscalationItem]:
        """Hand up to ``n`` items (oldest first) to the annotator."""
        drained: list[EscalationItem] = []
        with self._lock:
            if n is None:
                n = len(self._items)
            while self._items and len(drained) < n:
                drained.append(self._items.popleft())
        return drained

    def __len__(self) -> int:
        return len(self._items)

    @property
    def escalation_rate(self) -> float:
        """Realized fraction of offered predictions that were escalated."""
        return self.controller.query_rate


def apply_annotations(
    framework: ALBADross,
    items: Sequence[EscalationItem],
    annotator: Callable[[EscalationItem], str],
    registry: "ModelRegistry | None" = None,
    tag: str | None = None,
    warm: bool | None = None,
) -> "tuple[ALBADross, ModelVersion | None]":
    """Label escalated items, refit the framework, publish the next version.

    ``annotator`` maps an :class:`EscalationItem` to its true label — in
    production an interactive session (see
    :class:`repro.core.annotation.AnnotationSession`), in tests/examples
    the ground truth. ``warm`` selects the incremental refit path (see
    :meth:`ALBADross.absorb`; ``None`` defers to the framework config).
    Returns the refit framework and the newly published version (``None``
    when no registry was given or nothing was labeled).
    """
    labeled_runs: list[RunRecord] = []
    labels: list[str] = []
    for item in items:
        label = annotator(item)
        if label is None:
            continue  # annotator skipped this one
        labeled_runs.append(item.run)
        labels.append(str(label))
    if not labeled_runs:
        return framework, None
    framework.absorb(labeled_runs, labels, warm=warm)
    version = None
    if registry is not None:
        version = registry.publish(framework, tag=tag)
    return framework, version
