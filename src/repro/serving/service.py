"""The DiagnosisService façade: registry + engine + cache + escalation.

This is the object a monitoring pipeline embeds. It warm-loads the
registry's ``CURRENT`` framework, owns a :class:`MicroBatcher` whose
vectorized predict path runs extractor→scaler→selector→model once per
coalesced batch, memoizes results by run fingerprint, routes
low-confidence verdicts to the :class:`EscalationQueue`, and hot-swaps to
a newly published registry version *between* batches — queued requests
are raw runs, so none are lost or scored against a torn model during a
swap.

Reliability wiring (see :mod:`repro.serving.reliability`): requests may
carry deadlines, transient scoring failures retry with backoff, an
optional watchdog restarts a crashed/stuck dispatch loop, and an
optional circuit breaker turns a failing model path into flagged
``degraded`` fallback verdicts (still escalated to the annotator) rather
than an error for every caller. :meth:`DiagnosisService.health` and
:meth:`DiagnosisService.ready` expose liveness/readiness probes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import TimeoutError as FuturesTimeout
from typing import Callable, Sequence

from ..core.framework import ALBADross, Diagnosis
from ..core.persistence import run_fingerprint
from ..telemetry.collector import RunRecord
from .engine import MicroBatcher
from .escalation import EscalationItem, EscalationQueue, apply_annotations
from .registry import ModelRegistry, ModelVersion
from .reliability import (
    CircuitBreaker,
    DeadlineExceeded,
    DispatcherWatchdog,
    RetryPolicy,
    fallback_diagnosis,
    sync_wait_s,
)
from .stats import ServiceStats

__all__ = ["DiagnosisService"]


class DiagnosisService:
    """Long-running online diagnosis over a registry-published framework.

    Parameters
    ----------
    registry:
        Source of versions; the service starts on ``CURRENT``.
    max_batch / max_linger_s / queue_size / policy:
        Micro-batcher knobs (see :class:`~repro.serving.engine.MicroBatcher`).
    cache_size:
        LRU result-cache capacity in runs; ``0`` disables caching.
    escalation:
        Optional :class:`EscalationQueue`; omit to serve without an
        annotation loop.
    default_deadline_s:
        Optional per-request TTL forwarded to the engine; expired
        requests fail fast with
        :class:`~repro.serving.reliability.DeadlineExceeded`.
    retry:
        Optional :class:`~repro.serving.reliability.RetryPolicy` for
        transient scoring failures.
    breaker:
        Optional :class:`~repro.serving.reliability.CircuitBreaker`;
        after its failure threshold trips, callers receive flagged
        ``degraded`` fallback diagnoses (still escalated) instead of
        errors, until a recovery probe succeeds.
    watchdog_stall_s:
        When set, :meth:`start` also starts a
        :class:`~repro.serving.reliability.DispatcherWatchdog` that fails
        and restarts a dispatch loop stuck longer than this many seconds.
    predict_wrapper:
        Optional decorator applied to the batch scorer before it is
        handed to the engine — the chaos/replay hook: wrap this service's
        predict path in a :class:`~repro.testing.faults.FaultInjector`
        without touching the model. ``None`` (default) serves unwrapped.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        max_batch: int = 32,
        max_linger_s: float = 0.005,
        queue_size: int = 1024,
        policy: str = "block",
        cache_size: int = 4096,
        escalation: EscalationQueue | None = None,
        default_deadline_s: float | None = None,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        watchdog_stall_s: float | None = None,
        predict_wrapper: Callable | None = None,
    ):
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        if watchdog_stall_s is not None and watchdog_stall_s <= 0:
            raise ValueError(
                f"watchdog_stall_s must be > 0, got {watchdog_stall_s}"
            )
        self.registry = registry
        self.escalation = escalation
        self.breaker = breaker
        self.stats = ServiceStats()
        self._cache_size = cache_size
        self._cache: OrderedDict[str, Diagnosis] = OrderedDict()
        self._swap_lock = threading.Lock()
        self._framework: ALBADross | None = None
        self._version: ModelVersion | None = None
        self._engine: MicroBatcher | None = None
        self._watchdog: DispatcherWatchdog | None = None
        self._watchdog_stall_s = watchdog_stall_s
        self._predict_wrapper = predict_wrapper
        self._engine_opts = dict(
            max_batch=max_batch,
            max_linger_s=max_linger_s,
            queue_size=queue_size,
            policy=policy,
            default_deadline_s=default_deadline_s,
            retry=retry,
        )

    # ------------------------------------------------------------------
    def start(self, ref: str = "current") -> "DiagnosisService":
        """Warm-load a registry version and start the dispatcher."""
        framework, version = self.registry.load(ref)
        self._framework, self._version = framework, version
        predict = self._predict_batch
        if self._predict_wrapper is not None:
            predict = self._predict_wrapper(predict)
        self._engine = MicroBatcher(
            predict, stats=self.stats, **self._engine_opts
        )
        if self._watchdog_stall_s is not None:
            self._watchdog = DispatcherWatchdog(
                self._engine, stall_timeout_s=self._watchdog_stall_s
            ).start()
        return self

    def stop(self) -> None:
        """Drain in-flight requests and shut the engine down.

        Idempotent: stopping a stopped (or never-started) service is a
        no-op, so shutdown paths may overlap without errors.
        """
        if self._watchdog is not None:
            self._watchdog.stop()
            self._watchdog = None
        if self._engine is not None:
            self._engine.close()
            self._engine = None

    def __enter__(self) -> "DiagnosisService":
        if self._engine is None:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def version(self) -> ModelVersion:
        """The registry version currently serving."""
        if self._version is None:
            raise RuntimeError("service is not started")
        return self._version

    # ------------------------------------------------------------------
    def submit(self, run: RunRecord, deadline_s: float | None = None):
        """Asynchronous single-run scoring; returns a future of Diagnosis.

        Cache hits resolve immediately without touching the queue.
        ``deadline_s`` overrides the service-wide default TTL.
        """
        engine = self._require_engine()
        cached = self._cache_get(run)
        if cached is not None:
            from concurrent.futures import Future

            future: Future = Future()
            future.set_result(cached)
            self.stats.record_request()
            return future
        return engine.submit(run, deadline_s=deadline_s)

    def diagnose(self, run: RunRecord, timeout_s: float | None = None) -> Diagnosis:
        """Synchronous single-run scoring (waits for the micro-batch).

        The wait is bounded: ``timeout_s`` if given, else the configured
        ``default_deadline_s`` plus a scoring grace period, else a flat
        default (see :func:`~repro.serving.reliability.sync_wait_s`).
        Raises :class:`~repro.serving.reliability.DeadlineExceeded` if the
        result does not arrive in time.
        """
        wait_s = sync_wait_s(
            timeout_s, self._engine_opts.get("default_deadline_s")
        )
        future = self.submit(run)
        try:
            return future.result(timeout=wait_s)
        except FuturesTimeout:
            future.cancel()
            raise DeadlineExceeded(
                f"diagnose() result did not arrive within {wait_s:.1f}s"
            ) from None

    def diagnose_many(self, runs: Sequence[RunRecord]) -> list[Diagnosis]:
        """Synchronous bulk fast path with cache short-circuiting.

        Request/cache-hit accounting is identical to the :meth:`submit`
        path: every run counts one request at acceptance, every cache hit
        counts one hit — so snapshots from either path agree.
        """
        engine = self._require_engine()
        results: list[Diagnosis | None] = [None] * len(runs)
        misses: list[int] = []
        for i, run in enumerate(runs):
            cached = self._cache_get(run)
            if cached is not None:
                results[i] = cached
                self.stats.record_request()
            else:
                misses.append(i)
        if misses:
            fresh = engine.diagnose_many([runs[i] for i in misses])
            for i, diagnosis in zip(misses, fresh):
                results[i] = diagnosis
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Liveness probe: a plain dict for CLI/exporter consumption."""
        engine = self._engine
        breaker = self.breaker
        return {
            "started": engine is not None,
            "ready": self.ready(),
            "dispatcher_alive": engine.dispatcher_alive if engine else False,
            "heartbeat_age_s": engine.heartbeat_age_s if engine else None,
            "queue_depth": engine.queue_depth if engine else 0,
            "pending": engine.pending if engine else 0,
            "dispatcher_restarts": engine.restarts if engine else 0,
            "breaker_state": breaker.state if breaker else "disabled",
            "version": self._version.version_id if self._version else None,
            "escalation_depth": (
                len(self.escalation) if self.escalation is not None else 0
            ),
            # operators need to see dropped/refused escalations: each one
            # is an annotation request the AL loop silently lost
            "escalation_dropped": (
                self.escalation.n_dropped if self.escalation is not None else 0
            ),
            "escalation_refused": (
                self.escalation.n_refused if self.escalation is not None else 0
            ),
            "escalation_forced": (
                self.escalation.n_forced if self.escalation is not None else 0
            ),
        }

    def ready(self) -> bool:
        """Readiness probe: started, dispatcher alive, breaker not open."""
        engine = self._engine
        if engine is None or engine.closed or not engine.dispatcher_alive:
            return False
        return self.breaker is None or self.breaker.state != "open"

    # ------------------------------------------------------------------
    def refresh(self) -> bool:
        """Re-read the registry pointer; hot-swap if it moved.

        Returns ``True`` when a swap happened. Safe to call from any
        thread and at any time: the engine resolves the predict callable
        per batch, so queued requests simply score on whichever version is
        installed when their batch dispatches — nothing in flight is lost.
        """
        current = self.registry.current_id()
        if current is None or (
            self._version is not None and current == self._version.version_id
        ):
            return False
        self.swap(current)
        return True

    def swap(self, ref: str) -> ModelVersion:
        """Install a specific registry version as the serving model."""
        framework, version = self.registry.load(ref)
        with self._swap_lock:
            self._framework, self._version = framework, version
            self._cache.clear()  # cached verdicts belong to the old version
        self.stats.record_swap()
        return version

    def retrain_and_publish(
        self,
        annotator: Callable[[EscalationItem], str],
        tag: str | None = None,
        max_items: int | None = None,
        adopt: bool = True,
        warm: bool | None = None,
    ) -> ModelVersion | None:
        """Drain the escalation queue, refit, publish, optionally hot-swap.

        The annotation-loop closer: everything the service escalated gets
        labeled by ``annotator``, absorbed into the framework, published
        as the next version, and (with ``adopt``) served immediately.
        ``warm`` routes the refit through the framework's incremental
        path (``None`` defers to its config); a retrain that actually ran
        warm shows up as ``warm_refits`` in the service stats.
        """
        if self.escalation is None:
            raise RuntimeError("service was built without an escalation queue")
        items = self.escalation.drain(max_items)
        if not items:
            return None
        with self._swap_lock:
            framework = self._framework
        framework.last_absorb_warm = False  # absorb may be skipped entirely
        _, version = apply_annotations(
            framework, items, annotator, registry=self.registry, tag=tag,
            warm=warm,
        )
        if getattr(framework, "last_absorb_warm", False):
            self.stats.record_warm_refit()
        if version is not None and adopt:
            self.swap(version.version_id)
        return version

    # ------------------------------------------------------------------
    def _require_engine(self) -> MicroBatcher:
        if self._engine is None:
            raise RuntimeError("service is not started; call start() first")
        return self._engine

    def _cache_get(self, run: RunRecord) -> Diagnosis | None:
        if not self._cache_size:
            return None
        key = run_fingerprint(run)
        with self._swap_lock:
            diagnosis = self._cache.get(key)
            if diagnosis is not None:
                self._cache.move_to_end(key)
                self.stats.record_cache_hit()
        return diagnosis

    def _cache_put(self, run: RunRecord, diagnosis: Diagnosis) -> None:
        if not self._cache_size:
            return
        key = run_fingerprint(run)
        self._cache[key] = diagnosis
        self._cache.move_to_end(key)
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)

    def _predict_batch(self, runs: Sequence[RunRecord]) -> list[Diagnosis]:
        """The engine's vectorized scorer: one stack pass per micro-batch."""
        breaker = self.breaker
        if breaker is not None and not breaker.allow():
            return self._degraded_batch(runs)
        with self._swap_lock:
            framework = self._framework
        if framework is None:
            raise RuntimeError("no framework installed")
        try:
            X = framework.featurize(runs)
            diagnoses = framework.predict_features(X)
        except Exception:
            if breaker is not None:
                breaker.record_failure()
                if breaker.state == "open":
                    # threshold crossed: this and subsequent batches get
                    # flagged fallbacks instead of erroring every caller
                    return self._degraded_batch(runs)
            raise
        if breaker is not None:
            breaker.record_success()
        with self._swap_lock:
            # a swap may have landed mid-batch; don't poison the new cache
            stale = framework is not self._framework
            if not stale:
                for run, diagnosis in zip(runs, diagnoses):
                    self._cache_put(run, diagnosis)
        self._offer_escalation(runs, diagnoses)
        return diagnoses

    def _degraded_batch(self, runs: Sequence[RunRecord]) -> list[Diagnosis]:
        """Flagged fallback verdicts: never cached, escalated out-of-band.

        Fallbacks carry a synthetic confidence of 0.0; routing them through
        the adaptive :meth:`EscalationQueue.offer` would let a breaker-open
        storm tune the active-learning threshold to the outage and evict
        genuine low-confidence items, so they take the forced path that
        bypasses the controller and never evicts.
        """
        diagnoses = [fallback_diagnosis() for _ in runs]
        self.stats.record_degraded(len(runs))
        if self.escalation is not None:
            for run, diagnosis in zip(runs, diagnoses):
                if self.escalation.offer_forced(run, diagnosis):
                    self.stats.record_escalation()
                    self.stats.record_forced_escalation()
                else:
                    self.stats.record_refused_escalation()
        return diagnoses

    def _offer_escalation(
        self, runs: Sequence[RunRecord], diagnoses: Sequence[Diagnosis]
    ) -> None:
        if self.escalation is None:
            return
        for run, diagnosis in zip(runs, diagnoses):
            if self.escalation.offer(run, diagnosis):
                self.stats.record_escalation()
