"""Reliability layer for the online diagnosis path.

The serving stack targets *production* HPC monitoring, where the
diagnosis path must degrade gracefully rather than hang or error every
caller. This module collects the failure-containment primitives the
engine and service compose:

* typed serving errors — every submitted future resolves with a result
  or one of these, never silently hangs;
* :class:`RetryPolicy` — bounded retry with exponential backoff and
  deterministic jitter for transient ``predict_fn`` failures;
* :class:`CircuitBreaker` — after N consecutive batch failures the
  service serves a flagged fallback diagnosis (and keeps escalating)
  instead of erroring every caller, probing for recovery after a
  timeout;
* :class:`DispatcherWatchdog` — detects a crashed or stuck dispatch
  loop, fails the in-flight batch with a typed error, and restarts the
  dispatcher (counted in :class:`~repro.serving.stats.ServiceStats`).

Deadlines/TTLs live in the engine itself (requests carry an expiry and
are dropped at dispatch time, see
:meth:`~repro.serving.engine.MicroBatcher.submit`); this module supplies
the :class:`DeadlineExceeded` error they fail with.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..core.framework import Diagnosis

if TYPE_CHECKING:  # pragma: no cover
    from .engine import MicroBatcher

__all__ = [
    "ServingError",
    "DeadlineExceeded",
    "EngineClosedError",
    "PredictionMismatchError",
    "DispatcherRestarted",
    "RetryPolicy",
    "CircuitBreaker",
    "DispatcherWatchdog",
    "FALLBACK_LABEL",
    "fallback_diagnosis",
    "is_fallback",
    "sync_wait_s",
]

# Synchronous fast paths (service/fleet ``diagnose``) derive their wait
# bound from these: the engine's request TTL plus a grace period for the
# batch actually being scored, or a generous flat default when no TTL is
# configured. Nothing in the serving stack waits forever.
SYNC_WAIT_GRACE_S = 30.0
SYNC_WAIT_DEFAULT_S = 120.0


def sync_wait_s(
    explicit_s: float | None = None,
    deadline_s: float | None = None,
    grace_s: float = SYNC_WAIT_GRACE_S,
    default_s: float = SYNC_WAIT_DEFAULT_S,
) -> float:
    """A finite timeout for a synchronous wait on a request future.

    Precedence: an explicit caller timeout wins; otherwise the configured
    request deadline plus ``grace_s`` (the request either scores or fails
    with :class:`DeadlineExceeded` well inside that window); otherwise
    ``default_s``. The result is always a real number — the unbounded
    ``future.result()`` fast path is a lint violation (BW001).
    """
    if explicit_s is not None:
        return explicit_s
    if deadline_s is not None:
        return deadline_s + grace_s
    return default_s


# ----------------------------------------------------------------------
# typed serving errors
class ServingError(RuntimeError):
    """Base class for errors the serving path sets on request futures."""


class DeadlineExceeded(ServingError):
    """The request expired in the queue before a batch slot scored it."""


class EngineClosedError(ServingError):
    """The engine is closed (or closed before this request was scored)."""


class PredictionMismatchError(ServingError):
    """``predict_fn`` returned a different number of diagnoses than runs."""


class DispatcherRestarted(ServingError):
    """The watchdog failed this in-flight batch and restarted the dispatcher."""


# ----------------------------------------------------------------------
# bounded retry with deterministic jitter
def _default_retryable(exc: BaseException) -> bool:
    """Retry ordinary exceptions; contract/lifecycle errors are final."""
    return isinstance(exc, Exception) and not isinstance(exc, ServingError)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter for transient failures.

    ``delay(attempt)`` is a pure function of ``(seed, attempt)`` — two
    policies built with the same knobs back off identically, so chaos
    tests (and incident replays) are reproducible.

    Parameters
    ----------
    max_retries:
        Additional attempts after the first failure; ``0`` disables retry.
    base_delay_s / max_delay_s:
        Backoff starts at ``base`` and doubles per attempt, capped at ``max``.
    jitter:
        Fractional spread added on top of the capped delay (``0.1`` means
        up to +10%), decorrelating retry storms across engines.
    seed:
        Jitter seed; same seed ⇒ same schedule.
    retryable:
        Predicate deciding whether an exception is transient. The default
        retries any ``Exception`` except typed :class:`ServingError`\\ s.
    """

    max_retries: int = 2
    base_delay_s: float = 0.01
    max_delay_s: float = 1.0
    jitter: float = 0.1
    seed: int = 0
    retryable: Callable[[BaseException], bool] = field(default=_default_retryable)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay_s < 0:
            raise ValueError(f"base_delay_s must be >= 0, got {self.base_delay_s}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based), jitter included."""
        base = min(self.max_delay_s, self.base_delay_s * (2.0**attempt))
        frac = random.Random(self.seed * 1_000_003 + attempt).random()
        return base * (1.0 + self.jitter * frac)


# ----------------------------------------------------------------------
# circuit breaker
class CircuitBreaker:
    """Trip open after N consecutive failures; probe for recovery later.

    States follow the classic pattern: ``closed`` (normal), ``open``
    (every :meth:`allow` is denied until ``recovery_timeout_s`` elapses),
    ``half_open`` (exactly one probe call is admitted; its outcome closes
    or re-opens the breaker). Thread-safe — the engine's dispatcher and
    any control thread may poke it concurrently.

    ``time_fn`` is injectable so recovery tests don't sleep.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_timeout_s: float = 30.0,
        time_fn: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if recovery_timeout_s < 0:
            raise ValueError(
                f"recovery_timeout_s must be >= 0, got {recovery_timeout_s}"
            )
        self.failure_threshold = failure_threshold
        self.recovery_timeout_s = recovery_timeout_s
        self._time = time_fn
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"`` (no transitions)."""
        with self._lock:
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._failures

    def allow(self) -> bool:
        """May the caller attempt a real prediction right now?

        In the open state, the first call after ``recovery_timeout_s``
        transitions to half-open and is admitted as the probe; every
        other open/half-open call is denied (serve the fallback instead).
        """
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self._time() - self._opened_at >= self.recovery_timeout_s:
                    self._state = "half_open"
                    return True
                return False
            return False  # half_open: the probe is already in flight

    def record_success(self) -> None:
        with self._lock:
            self._state = "closed"
            self._failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == "half_open" or self._failures >= self.failure_threshold:
                self._state = "open"
                self._opened_at = self._time()


# ----------------------------------------------------------------------
# degraded-mode fallback verdict
FALLBACK_LABEL = "degraded"
"""Label carried by fallback diagnoses served while the breaker is open."""


def fallback_diagnosis() -> Diagnosis:
    """The flagged verdict served in degraded mode.

    Zero confidence means maximal uncertainty, so an attached
    :class:`~repro.serving.escalation.EscalationQueue` keeps collecting
    these runs for a human — degraded traffic is exactly the traffic the
    annotation loop should see once the model path recovers.
    """
    return Diagnosis(label=FALLBACK_LABEL, confidence=0.0)


def is_fallback(diagnosis: Diagnosis) -> bool:
    """Whether a served verdict is the degraded-mode placeholder."""
    return diagnosis.label == FALLBACK_LABEL


# ----------------------------------------------------------------------
# dispatcher watchdog
class DispatcherWatchdog:
    """Detect a crashed or stuck dispatch loop and restart it.

    Two failure signatures, both unrecoverable from inside the engine:

    * the dispatcher thread *died* (a bug escaped the per-batch guard);
    * a dispatched batch is *stuck* inside ``predict_fn`` past
      ``stall_timeout_s`` (wedged extractor, deadlocked model).

    Python cannot kill the wedged thread, so the watchdog does the next
    best thing: fail every in-flight future with
    :class:`DispatcherRestarted` (submitters stop waiting immediately)
    and start a fresh dispatcher generation. The zombie thread's late
    results are discarded harmlessly — its futures are already resolved
    and its generation token no longer matches.

    Use :meth:`start`/:meth:`stop` for the background thread, or call
    :meth:`check` from your own control loop.
    """

    def __init__(
        self,
        engine: "MicroBatcher",
        stall_timeout_s: float = 5.0,
        poll_interval_s: float = 0.05,
    ):
        if stall_timeout_s <= 0:
            raise ValueError(f"stall_timeout_s must be > 0, got {stall_timeout_s}")
        if poll_interval_s <= 0:
            raise ValueError(f"poll_interval_s must be > 0, got {poll_interval_s}")
        self.engine = engine
        self.stall_timeout_s = stall_timeout_s
        self.poll_interval_s = poll_interval_s
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def check(self) -> bool:
        """One inspection; returns ``True`` when a restart was performed."""
        engine = self.engine
        if engine.closed:
            return False
        if not engine.dispatcher_alive:
            engine.restart_dispatcher("dispatcher thread died")
            return True
        age = engine.oldest_inflight_age()
        if age is not None and age > self.stall_timeout_s:
            engine.restart_dispatcher(
                f"batch stuck in predict_fn for {age:.2f}s "
                f"(stall timeout {self.stall_timeout_s}s)"
            )
            return True
        return False

    def start(self) -> "DispatcherWatchdog":
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-watchdog", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.poll_interval_s):
            self.check()

    def __enter__(self) -> "DispatcherWatchdog":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
