"""Sharded serving fleet: consistent-hash routing over engine shards.

The paper's production target (Eclipse) is 1488 compute nodes emitting
telemetry at 1 Hz; one micro-batcher dispatcher is a single point of
failure and a single point of serialization. This module scales the
:class:`~repro.serving.service.DiagnosisService` out:

* a :class:`ShardRouter` consistently hashes ``node_id → shard`` over a
  virtual-node ring, so each compute node's stream always lands on the
  same shard (stable caches, stable batching locality) and a shard
  failure remaps *only that shard's* nodes;
* a :class:`FleetService` owns a pool of shards — each one a full
  :class:`~repro.serving.service.DiagnosisService` with its own
  :class:`~repro.serving.engine.MicroBatcher`, circuit breaker, and
  dispatcher watchdog (the PR 3 reliability layer, replicated per
  shard) — plus fleet-wide hot version swap via the registry ``CURRENT``
  pointer, health probes, and automatic reroute when a shard dies;
* shard death releases the shard's durable job leases immediately
  (:meth:`~repro.serving.jobs.JobQueue.release`) instead of waiting out
  the visibility timeout, and the shared escalation front-end keeps
  collecting — no annotation request rides on any single shard's life.

Routing never touches model math: every shard serves the same registry
version, so fleet diagnoses are bit-identical to the single-engine path
at any shard count (enforced by ``tests/serving/test_fleet.py``).
"""

from __future__ import annotations

import bisect
import hashlib
import logging
import threading
from concurrent.futures import TimeoutError as FuturesTimeout
from typing import Callable, Sequence

from ..telemetry.collector import RunRecord
from .escalation import EscalationQueue, apply_annotations
from .jobs import (
    ESCALATION_KIND,
    RETRAIN_KIND,
    JobQueue,
    item_from_payload,
)
from .registry import ModelRegistry, ModelVersion
from .reliability import (
    CircuitBreaker,
    DeadlineExceeded,
    EngineClosedError,
    RetryPolicy,
    sync_wait_s,
)
from .service import DiagnosisService
from .stats import ServiceStats

__all__ = ["ShardRouter", "FleetService", "process_one_retrain"]

_LOG = logging.getLogger(__name__)


def _ring_hash(value: str) -> int:
    """Stable 64-bit ring position (sha256-derived, platform-independent)."""
    return int.from_bytes(
        hashlib.sha256(value.encode()).digest()[:8], "big"
    )


class ShardRouter:
    """Consistent-hash ring mapping keys (node ids) to shard ids.

    Each shard contributes ``vnodes`` points to the ring; a key routes to
    the first shard point clockwise from its own hash. Marking a shard
    down simply skips its points, so only the keys that hashed to the
    dead shard move — the classic consistent-hashing property that keeps
    per-shard caches warm through membership changes.
    """

    def __init__(self, shard_ids: Sequence[int], vnodes: int = 64):
        if not shard_ids:
            raise ValueError("need at least one shard")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.shard_ids = list(shard_ids)
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for shard in self.shard_ids:
            for v in range(vnodes):
                points.append((_ring_hash(f"shard-{shard}-vn{v}"), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def route(self, key: int | str, down: frozenset | set = frozenset()) -> int:
        """The shard serving ``key``, skipping any shard in ``down``."""
        if len(down) >= len(self.shard_ids):
            raise EngineClosedError("no live shards to route to")
        h = _ring_hash(str(key))
        start = bisect.bisect_left(self._points, h)
        n = len(self._points)
        for step in range(n):
            owner = self._owners[(start + step) % n]
            if owner not in down:
                return owner
        raise EngineClosedError("no live shards to route to")  # pragma: no cover

    def assignments(
        self, keys: Sequence[int | str], down: frozenset | set = frozenset()
    ) -> dict:
        """``{shard_id: [key, ...]}`` for a batch of keys (routing order)."""
        out: dict[int, list] = {}
        for key in keys:
            out.setdefault(self.route(key, down), []).append(key)
        return out


class FleetService:
    """A pool of diagnosis shards behind a consistent-hash router.

    Parameters
    ----------
    registry:
        Shared model registry; every shard serves the same ``CURRENT``
        version and :meth:`refresh` swaps the whole fleet between
        batches.
    n_shards:
        Pool size. Each shard is a full :class:`DiagnosisService` (own
        micro-batcher, result cache, and — via the factories below — own
        breaker and watchdog), sharing the registry, the escalation
        front-end, and the durable job store.
    escalation:
        Optional shared :class:`EscalationQueue`. With ``jobs`` set and
        no explicit queue, one is created with the job store attached.
    jobs:
        Optional durable :class:`~repro.serving.jobs.JobQueue`. Enables
        :meth:`retrain_and_publish` through at-least-once jobs and
        immediate lease release on shard death.
    breaker_factory:
        ``() -> CircuitBreaker`` built per shard (one shard tripping its
        breaker must not degrade its siblings).
    predict_wrapper_factory:
        ``(shard_id) -> wrapper | None``; a returned wrapper decorates
        that shard's batch scorer. The replay harness uses this to
        fault-inject individual shards.
    vnodes / max_batch / max_linger_s / queue_size / policy / cache_size
    / default_deadline_s / retry / watchdog_stall_s:
        As for :class:`ShardRouter` and :class:`DiagnosisService`.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        n_shards: int = 4,
        vnodes: int = 64,
        escalation: EscalationQueue | None = None,
        jobs: JobQueue | None = None,
        max_batch: int = 32,
        max_linger_s: float = 0.005,
        queue_size: int = 1024,
        policy: str = "block",
        cache_size: int = 4096,
        default_deadline_s: float | None = None,
        retry: RetryPolicy | None = None,
        breaker_factory: Callable[[], CircuitBreaker] | None = None,
        watchdog_stall_s: float | None = None,
        predict_wrapper_factory: Callable[[int], Callable | None] | None = None,
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.registry = registry
        self.jobs = jobs
        if escalation is None and jobs is not None:
            escalation = EscalationQueue(store=jobs)
        self.escalation = escalation
        self.router = ShardRouter(list(range(n_shards)), vnodes=vnodes)
        self._down: set[int] = set()
        self._lock = threading.Lock()
        self._version: ModelVersion | None = None
        self._started = False
        self.reroutes = 0
        self.shard_deaths = 0
        self._shard_opts = dict(
            max_batch=max_batch,
            max_linger_s=max_linger_s,
            queue_size=queue_size,
            policy=policy,
            cache_size=cache_size,
            default_deadline_s=default_deadline_s,
            retry=retry,
            watchdog_stall_s=watchdog_stall_s,
        )
        self.shards: dict[int, DiagnosisService] = {}
        for shard_id in range(n_shards):
            breaker = breaker_factory() if breaker_factory else None
            wrapper = (
                predict_wrapper_factory(shard_id)
                if predict_wrapper_factory
                else None
            )
            self.shards[shard_id] = DiagnosisService(
                registry,
                escalation=escalation,
                breaker=breaker,
                predict_wrapper=wrapper,
                **self._shard_opts,
            )

    # ------------------------------------------------------------------
    def start(self, ref: str = "current") -> "FleetService":
        """Warm-load every shard on the same registry version."""
        for shard in self.shards.values():
            shard.start(ref)
        self._version = next(iter(self.shards.values())).version
        self._started = True
        return self

    def stop(self) -> None:
        """Flush escalations to the durable store, then stop every shard.

        Idempotent: a second stop is a no-op (each shard's stop already
        is, and the flush drains an already-empty queue).
        """
        if (
            self.escalation is not None
            and self.escalation.store is not None
            and len(self.escalation) > 0
        ):
            self.escalation.flush_to_store()
        for shard in self.shards.values():
            shard.stop()
        self._started = False

    def __enter__(self) -> "FleetService":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def version(self) -> ModelVersion:
        if self._version is None:
            raise RuntimeError("fleet is not started")
        return self._version

    @property
    def live_shards(self) -> list[int]:
        with self._lock:
            return [s for s in self.shards if s not in self._down]

    @property
    def down_shards(self) -> list[int]:
        with self._lock:
            return sorted(self._down)

    def shard_name(self, shard_id: int) -> str:
        """The worker name a shard claims durable jobs under."""
        return f"shard-{shard_id}"

    # ------------------------------------------------------------------
    def shard_for(self, run: RunRecord) -> int:
        """The shard this run's node routes to right now."""
        with self._lock:
            down = frozenset(self._down)
        return self.router.route(run.node_id, down)

    def submit(self, run: RunRecord, deadline_s: float | None = None):
        """Route by ``node_id`` and submit; fail over when a shard dies.

        A shard that refuses the submission (closed engine, dead
        dispatcher) is marked down — its durable leases are released and
        subsequent traffic reroutes around it — and the run is resubmitted
        to the next live shard on the ring.
        """
        for _ in range(len(self.shards)):
            shard_id = self.shard_for(run)
            try:
                return self.shards[shard_id].submit(run, deadline_s=deadline_s)
            except (EngineClosedError, RuntimeError):
                self.mark_down(shard_id)
                with self._lock:
                    self.reroutes += 1
        raise EngineClosedError("no live shards accepted the run")

    def diagnose(self, run: RunRecord, timeout_s: float | None = None):
        """Synchronous routed scoring with a bounded wait.

        Mirrors :meth:`DiagnosisService.diagnose`: the timeout derives
        from the fleet-wide ``default_deadline_s`` (plus grace) unless
        overridden, and expiry raises
        :class:`~repro.serving.reliability.DeadlineExceeded`.
        """
        wait_s = sync_wait_s(
            timeout_s, self._shard_opts.get("default_deadline_s")
        )
        future = self.submit(run)
        try:
            return future.result(timeout=wait_s)
        except FuturesTimeout:
            future.cancel()
            raise DeadlineExceeded(
                f"diagnose() result did not arrive within {wait_s:.1f}s"
            ) from None

    def diagnose_many(self, runs: Sequence[RunRecord]) -> list:
        """Synchronous bulk path: fan out per shard, reassemble in order."""
        with self._lock:
            down = frozenset(self._down)
        groups: dict[int, list[int]] = {}
        for i, run in enumerate(runs):
            groups.setdefault(self.router.route(run.node_id, down), []).append(i)
        results: list = [None] * len(runs)
        for shard_id, indices in groups.items():
            out = self.shards[shard_id].diagnose_many([runs[i] for i in indices])
            for i, diagnosis in zip(indices, out):
                results[i] = diagnosis
        return results

    # ------------------------------------------------------------------
    def mark_down(self, shard_id: int) -> None:
        """Take a shard out of the ring and release its durable leases."""
        with self._lock:
            if shard_id in self._down:
                return
            self._down.add(shard_id)
            self.shard_deaths += 1
        self.shards[shard_id].stop()  # fails its pending futures, typed
        if self.jobs is not None:
            self.jobs.release(self.shard_name(shard_id))

    def revive_shard(self, shard_id: int) -> None:
        """Restart a downed shard on the fleet's current version."""
        with self._lock:
            if shard_id not in self._down:
                return
        ref = self._version.version_id if self._version else "current"
        self.shards[shard_id].start(ref)
        with self._lock:
            self._down.discard(shard_id)

    def probe(self) -> list[int]:
        """Health-sweep every live shard; mark dead ones down.

        Returns the shard ids newly declared down. Call it from a control
        loop (the replay harness does, between ticks) or rely on
        :meth:`submit`'s on-error marking.
        """
        newly_down = []
        for shard_id in self.live_shards:
            if not self.shards[shard_id].ready():
                self.mark_down(shard_id)
                newly_down.append(shard_id)
        return newly_down

    def health(self) -> dict:
        """Fleet liveness: per-shard probes plus ring and queue state."""
        shard_health = {
            self.shard_name(s): svc.health() for s, svc in self.shards.items()
        }
        doc = {
            "started": self._started,
            "n_shards": len(self.shards),
            "live_shards": self.live_shards,
            "down_shards": self.down_shards,
            "reroutes": self.reroutes,
            "shard_deaths": self.shard_deaths,
            "version": self._version.version_id if self._version else None,
            "shards": shard_health,
            "escalation_depth": (
                len(self.escalation) if self.escalation is not None else 0
            ),
        }
        if self.jobs is not None:
            doc["jobs"] = self.jobs.counts()
        return doc

    def ready(self) -> bool:
        """At least one shard must be ready to accept traffic."""
        return self._started and any(
            self.shards[s].ready() for s in self.live_shards
        )

    def stats_snapshot(self) -> dict:
        """Aggregated counters across shards plus per-shard snapshots."""
        per_shard = {
            self.shard_name(s): svc.stats.snapshot()
            for s, svc in self.shards.items()
        }
        return {
            "fleet": ServiceStats.merge(list(per_shard.values())),
            "reroutes": self.reroutes,
            "shard_deaths": self.shard_deaths,
            "per_shard": per_shard,
        }

    # ------------------------------------------------------------------
    def refresh(self) -> bool:
        """Fleet-wide hot swap: follow the registry ``CURRENT`` pointer."""
        current = self.registry.current_id()
        if current is None or (
            self._version is not None and current == self._version.version_id
        ):
            return False
        self.swap(current)
        return True

    def swap(self, ref: str) -> ModelVersion:
        """Install one registry version on every live shard."""
        version = None
        for shard_id in self.live_shards:
            version = self.shards[shard_id].swap(ref)
        if version is None:  # every shard is down; resolve for bookkeeping
            version = self.registry.resolve(ref)
        self._version = version
        return version

    def retrain_and_publish(
        self,
        annotator: Callable,
        tag: str | None = None,
        max_items: int | None = None,
        adopt: bool = True,
        warm: bool | None = None,
    ) -> ModelVersion | None:
        """Close the AL loop fleet-wide, durably when a job store exists.

        With a :class:`JobQueue`: parked escalations flush to durable
        ``escalation`` jobs, a ``retrain_publish`` job is enqueued, and
        :func:`process_one_retrain` executes it at-least-once — a crash
        anywhere before the final ack leaves every job claimable again.
        Without one, this degrades to the single-service in-memory path.
        ``warm`` rides along in the retrain order's payload, so the
        worker that eventually executes it uses the same refit path the
        caller asked for.
        """
        if self.escalation is None:
            raise RuntimeError("fleet was built without an escalation queue")
        if self.jobs is None:
            items = self.escalation.drain(max_items)
            if not items:
                return None
            framework, _ = self.registry.load(
                self._version.version_id if self._version else "current"
            )
            framework.last_absorb_warm = False
            _, version = apply_annotations(
                framework, items, annotator, registry=self.registry, tag=tag,
                warm=warm,
            )
            if getattr(framework, "last_absorb_warm", False):
                next(iter(self.shards.values())).stats.record_warm_refit()
        else:
            self.escalation.flush_to_store()
            self.jobs.enqueue(RETRAIN_KIND, {"tag": tag, "warm": warm})
            version = process_one_retrain(
                self.jobs,
                self.registry,
                annotator,
                max_items=max_items,
                worker="fleet-retrainer",
            )
        if version is not None and adopt:
            self.swap(version.version_id)
        return version


# ----------------------------------------------------------------------
def process_one_retrain(
    jobs: JobQueue,
    registry: ModelRegistry,
    annotator: Callable,
    max_items: int | None = None,
    worker: str = "retrainer",
) -> ModelVersion | None:
    """Claim and execute one durable ``retrain_publish`` job.

    The at-least-once worker loop body: claim the retrain order, claim
    every deliverable ``escalation`` job, annotate and absorb them into
    the current registry framework, publish, then ack everything. Any
    exception nacks every claim, so a crash mid-cycle redelivers the
    whole batch to the next worker — no annotation is lost, at the price
    of possibly labeling a run twice (idempotent for a deterministic
    annotator, since ``absorb`` refits from the accumulated label set).

    Returns the published version, or ``None`` when there was no retrain
    order (or no escalations to learn from — the order is acked as a
    no-op).
    """
    orders = jobs.claim(kinds=(RETRAIN_KIND,), n=1, worker=worker)
    if not orders:
        return None
    order = orders[0]
    limit = max_items if max_items is not None else 1_000_000
    claims = jobs.claim(kinds=(ESCALATION_KIND,), n=limit, worker=worker)
    try:
        items = [item_from_payload(job.payload) for job in claims]
        if not items:
            jobs.ack(order.job_id, order.claim_token)
            return None
        framework, _ = registry.load("current")
        _, version = apply_annotations(
            framework,
            items,
            annotator,
            registry=registry,
            tag=order.payload.get("tag"),
            warm=order.payload.get("warm"),
        )
        for job in claims:
            jobs.ack(job.job_id, job.claim_token)
        jobs.ack(order.job_id, order.claim_token)
        return version
    except BaseException as exc:
        for job in claims:
            try:
                jobs.nack(job.job_id, job.claim_token, error=repr(exc))
            except Exception:
                # Lease already lapsed; redelivery covers the job itself,
                # but leave a trace so operators can correlate the churn.
                _LOG.debug("nack failed for %s; lease lapsed", job.job_id)
        try:
            jobs.nack(order.job_id, order.claim_token, error=repr(exc))
        except Exception:
            _LOG.debug("nack failed for order %s; lease lapsed", order.job_id)
        raise
