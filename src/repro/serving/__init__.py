"""repro.serving — the online diagnosis service.

Turns a trained :class:`~repro.core.framework.ALBADross` into a
long-running serving path:

* :mod:`repro.serving.registry` — versioned on-disk model registry with
  an atomic ``CURRENT`` pointer, list and rollback.
* :mod:`repro.serving.engine` — micro-batching inference engine with
  bounded-queue backpressure.
* :mod:`repro.serving.service` — the ``DiagnosisService`` façade: warm
  load, result cache, hot version swap, escalation wiring.
* :mod:`repro.serving.escalation` — annotation escalation queue closing
  the active-learning loop online.
* :mod:`repro.serving.stats` — service counters as a plain-dict snapshot.
"""

from .engine import BackpressureError, MicroBatcher
from .escalation import EscalationItem, EscalationQueue, apply_annotations
from .registry import ModelRegistry, ModelVersion, RegistryError
from .service import DiagnosisService
from .stats import ServiceStats

__all__ = [
    "BackpressureError",
    "DiagnosisService",
    "EscalationItem",
    "EscalationQueue",
    "MicroBatcher",
    "ModelRegistry",
    "ModelVersion",
    "RegistryError",
    "ServiceStats",
    "apply_annotations",
]
