"""repro.serving — the online diagnosis service.

Turns a trained :class:`~repro.core.framework.ALBADross` into a
long-running serving path:

* :mod:`repro.serving.registry` — versioned on-disk model registry with
  an atomic ``CURRENT`` pointer, list and rollback.
* :mod:`repro.serving.engine` — micro-batching inference engine with
  bounded-queue backpressure, per-request deadlines, and retry.
* :mod:`repro.serving.service` — the ``DiagnosisService`` façade: warm
  load, result cache, hot version swap, escalation wiring, health and
  readiness probes.
* :mod:`repro.serving.escalation` — annotation escalation queue closing
  the active-learning loop online.
* :mod:`repro.serving.reliability` — typed serving errors, retry policy,
  circuit breaker, and the dispatcher watchdog.
* :mod:`repro.serving.stats` — service counters as a plain-dict snapshot.
* :mod:`repro.serving.jobs` — durable SQLite-backed at-least-once job
  queue (escalation and retrain orders survive process death).
* :mod:`repro.serving.fleet` — consistent-hash shard router and the
  ``FleetService`` pool for Eclipse-scale serving.
* :mod:`repro.serving.replay` — deterministic 1488-node replay harness
  and throughput/latency reporting.
"""

from .engine import BackpressureError, MicroBatcher
from .escalation import EscalationItem, EscalationQueue, apply_annotations
from .fleet import FleetService, ShardRouter, process_one_retrain
from .jobs import (
    ESCALATION_KIND,
    RETRAIN_KIND,
    Job,
    JobQueue,
    JobQueueError,
    JobState,
    StaleClaimError,
    escalation_payload,
    item_from_payload,
)
from .registry import ModelRegistry, ModelVersion, RegistryError
from .reliability import (
    FALLBACK_LABEL,
    CircuitBreaker,
    DeadlineExceeded,
    DispatcherRestarted,
    DispatcherWatchdog,
    EngineClosedError,
    PredictionMismatchError,
    RetryPolicy,
    ServingError,
    fallback_diagnosis,
    is_fallback,
)
from .replay import (
    ECLIPSE_NODES,
    ReplayEvent,
    ReplayReport,
    ReplayStream,
    fault_wrapper_factory,
    replay,
)
from .service import DiagnosisService
from .stats import ServiceStats

__all__ = [
    "BackpressureError",
    "CircuitBreaker",
    "DeadlineExceeded",
    "DiagnosisService",
    "DispatcherRestarted",
    "DispatcherWatchdog",
    "ECLIPSE_NODES",
    "ESCALATION_KIND",
    "EngineClosedError",
    "EscalationItem",
    "EscalationQueue",
    "FALLBACK_LABEL",
    "FleetService",
    "Job",
    "JobQueue",
    "JobQueueError",
    "JobState",
    "MicroBatcher",
    "ModelRegistry",
    "ModelVersion",
    "PredictionMismatchError",
    "RETRAIN_KIND",
    "RegistryError",
    "ReplayEvent",
    "ReplayReport",
    "ReplayStream",
    "RetryPolicy",
    "ServiceStats",
    "ServingError",
    "ShardRouter",
    "StaleClaimError",
    "apply_annotations",
    "escalation_payload",
    "fallback_diagnosis",
    "fault_wrapper_factory",
    "is_fallback",
    "item_from_payload",
    "process_one_retrain",
    "replay",
]
