"""repro.serving — the online diagnosis service.

Turns a trained :class:`~repro.core.framework.ALBADross` into a
long-running serving path:

* :mod:`repro.serving.registry` — versioned on-disk model registry with
  an atomic ``CURRENT`` pointer, list and rollback.
* :mod:`repro.serving.engine` — micro-batching inference engine with
  bounded-queue backpressure, per-request deadlines, and retry.
* :mod:`repro.serving.service` — the ``DiagnosisService`` façade: warm
  load, result cache, hot version swap, escalation wiring, health and
  readiness probes.
* :mod:`repro.serving.escalation` — annotation escalation queue closing
  the active-learning loop online.
* :mod:`repro.serving.reliability` — typed serving errors, retry policy,
  circuit breaker, and the dispatcher watchdog.
* :mod:`repro.serving.stats` — service counters as a plain-dict snapshot.
"""

from .engine import BackpressureError, MicroBatcher
from .escalation import EscalationItem, EscalationQueue, apply_annotations
from .registry import ModelRegistry, ModelVersion, RegistryError
from .reliability import (
    FALLBACK_LABEL,
    CircuitBreaker,
    DeadlineExceeded,
    DispatcherRestarted,
    DispatcherWatchdog,
    EngineClosedError,
    PredictionMismatchError,
    RetryPolicy,
    ServingError,
    fallback_diagnosis,
    is_fallback,
)
from .service import DiagnosisService
from .stats import ServiceStats

__all__ = [
    "BackpressureError",
    "CircuitBreaker",
    "DeadlineExceeded",
    "DiagnosisService",
    "DispatcherRestarted",
    "DispatcherWatchdog",
    "EngineClosedError",
    "EscalationItem",
    "EscalationQueue",
    "FALLBACK_LABEL",
    "MicroBatcher",
    "ModelRegistry",
    "ModelVersion",
    "PredictionMismatchError",
    "RegistryError",
    "RetryPolicy",
    "ServiceStats",
    "ServingError",
    "apply_annotations",
    "fallback_diagnosis",
    "is_fallback",
]
