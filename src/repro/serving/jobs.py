"""Durable at-least-once job queue backed by a single SQLite file.

The in-memory :class:`~repro.serving.escalation.EscalationQueue` loses
its contents when the serving process dies — acceptable for one archive,
not for a fleet that must never silently drop an annotation request or a
retrain order. This module supplies the persistence layer: a
:class:`JobQueue` over one SQLite database (WAL mode, stdlib ``sqlite3``
only) with the classic at-least-once state machine

::

    PENDING ──claim──▶ CLAIMED ──ack──▶ DONE
       ▲                 │
       │                 ├─nack─▶ FAILED ──(backoff elapses)──▶ PENDING
       │                 │           │
       └───(visibility───┘           └──(attempts exhausted)──▶ DEAD
            timeout)

* **Claims are leases.** ``claim()`` atomically moves jobs to CLAIMED
  under a per-claim token and a visibility deadline; a worker that dies
  mid-claim simply stops heartbeating, the deadline lapses, and the next
  ``claim()`` redelivers the job (counting the lost lease as one
  attempt, so a poison job that kills every worker still terminates in
  DEAD).
* **Acks are fenced.** ``ack``/``nack`` require the claim token; a
  zombie worker whose lease expired and was redelivered elsewhere cannot
  complete the newer delivery — its stale token is refused. Double
  processing remains possible (that is the "at-least-once" contract);
  double *completion* of one delivery is not.
* **Failures back off.** ``nack`` schedules the retry at
  ``backoff_base_s * 2**attempts`` (capped), and moves the job to the
  DEAD shelf once ``max_attempts`` deliveries have failed. DEAD jobs
  stay inspectable until an operator ``requeue``\\ s or ``purge``\\ s
  them.

Escalation items and retrain orders are the two job kinds the fleet
ships through the queue (see :func:`escalation_payload` /
:func:`item_from_payload` and
:meth:`~repro.serving.fleet.FleetService.retrain_and_publish`), but the
queue itself is payload-agnostic: any JSON-serializable dict rides.

``time_fn`` is injectable so lease-expiry tests don't sleep; the file
format uses wall-clock seconds so concurrent *processes* sharing the
database agree on deadlines.
"""

from __future__ import annotations

import base64
import json
import os
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..telemetry.collector import RunRecord
    from .escalation import EscalationItem

__all__ = [
    "JobQueue",
    "Job",
    "JobState",
    "JobQueueError",
    "StaleClaimError",
    "ESCALATION_KIND",
    "RETRAIN_KIND",
    "escalation_payload",
    "item_from_payload",
]

ESCALATION_KIND = "escalation"
"""Job kind carrying one low-confidence run awaiting a human label."""

RETRAIN_KIND = "retrain_publish"
"""Job kind ordering a drain-annotate-refit-publish cycle."""


class JobQueueError(RuntimeError):
    """A queue operation could not be satisfied (unknown job, bad state)."""


class StaleClaimError(JobQueueError):
    """The claim token does not match the job's current lease.

    Raised when a worker tries to ack/nack/extend a delivery that was
    already redelivered (its visibility deadline lapsed) or completed.
    """


class JobState:
    """The five job states (plain strings so SQL rows read directly)."""

    PENDING = "PENDING"
    CLAIMED = "CLAIMED"
    DONE = "DONE"
    FAILED = "FAILED"
    DEAD = "DEAD"

    ALL = (PENDING, CLAIMED, DONE, FAILED, DEAD)


@dataclass(frozen=True)
class Job:
    """One queue row, immutable snapshot at read time."""

    job_id: int
    kind: str
    payload: dict
    state: str
    attempts: int
    max_attempts: int
    not_before: float
    claim_token: str | None
    claim_worker: str | None
    visibility_deadline: float | None
    created_at: float
    updated_at: float
    last_error: str | None


_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id INTEGER PRIMARY KEY AUTOINCREMENT,
    kind TEXT NOT NULL,
    payload TEXT NOT NULL,
    state TEXT NOT NULL DEFAULT 'PENDING',
    attempts INTEGER NOT NULL DEFAULT 0,
    max_attempts INTEGER NOT NULL,
    not_before REAL NOT NULL DEFAULT 0.0,
    claim_token TEXT,
    claim_worker TEXT,
    visibility_deadline REAL,
    created_at REAL NOT NULL,
    updated_at REAL NOT NULL,
    last_error TEXT
);
CREATE INDEX IF NOT EXISTS idx_jobs_state_kind
    ON jobs (state, kind, not_before);
"""


class JobQueue:
    """SQLite-backed at-least-once job queue (one file, WAL, stdlib-only).

    Parameters
    ----------
    path:
        Database file; created (with parents) on first use. Several
        queues — in one process or many — may open the same file; SQLite
        locking plus ``BEGIN IMMEDIATE`` claim transactions keep every
        transition atomic across them.
    visibility_timeout_s:
        Default lease length for :meth:`claim`; a claimed job whose
        deadline lapses without ack/nack/extend is redelivered.
    max_attempts:
        Default delivery budget per job; exhausted jobs land on the DEAD
        shelf.
    backoff_base_s / backoff_max_s:
        Retry schedule after ``nack``: ``base * 2**attempts`` capped at
        ``max``.
    time_fn:
        Clock (wall seconds). Injectable so expiry tests don't sleep;
        cross-process deployments must share the default.
    """

    def __init__(
        self,
        path: str | Path,
        visibility_timeout_s: float = 30.0,
        max_attempts: int = 5,
        backoff_base_s: float = 0.5,
        backoff_max_s: float = 60.0,
        time_fn: Callable[[], float] = time.time,
    ):
        if visibility_timeout_s <= 0:
            raise ValueError(
                f"visibility_timeout_s must be > 0, got {visibility_timeout_s}"
            )
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if backoff_base_s < 0 or backoff_max_s < 0:
            raise ValueError("backoff delays must be >= 0")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.visibility_timeout_s = visibility_timeout_s
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self._time = time_fn
        # one connection guarded by a lock: sqlite3 objects are not
        # thread-safe, and serializing writers in-process avoids busy-spins;
        # cross-process writers serialize on the database lock instead
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(
            str(self.path), timeout=30.0, check_same_thread=False
        )
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            self._conn.commit()

    # ------------------------------------------------------------------
    # producer side
    def enqueue(
        self,
        kind: str,
        payload: dict,
        max_attempts: int | None = None,
        not_before: float | None = None,
    ) -> Job:
        """Append one PENDING job; returns its snapshot (with id)."""
        now = self._time()
        budget = self.max_attempts if max_attempts is None else max_attempts
        if budget < 1:
            raise ValueError(f"max_attempts must be >= 1, got {budget}")
        with self._lock:
            cur = self._conn.execute(
                "INSERT INTO jobs (kind, payload, state, max_attempts,"
                " not_before, created_at, updated_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    kind,
                    json.dumps(payload, sort_keys=True),
                    JobState.PENDING,
                    budget,
                    not_before if not_before is not None else 0.0,
                    now,
                    now,
                ),
            )
            self._conn.commit()
            return self._get_locked(int(cur.lastrowid))

    # ------------------------------------------------------------------
    # consumer side
    def claim(
        self,
        kinds: Sequence[str] | None = None,
        n: int = 1,
        worker: str = "",
        visibility_timeout_s: float | None = None,
    ) -> list[Job]:
        """Atomically lease up to ``n`` deliverable jobs (oldest first).

        Deliverable means: PENDING, or FAILED with its backoff elapsed,
        or CLAIMED with a *lapsed* visibility deadline (the previous
        lease is broken and counted as one attempt — if that exhausts
        the budget the job goes DEAD instead of redelivering, so a
        worker-killing job cannot loop forever).
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        timeout = (
            self.visibility_timeout_s
            if visibility_timeout_s is None
            else visibility_timeout_s
        )
        now = self._time()
        kind_sql, kind_args = self._kind_filter(kinds)
        claimed: list[Job] = []
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                # bury lease-expired jobs that are out of attempts first,
                # so the SELECT below never redelivers a spent job
                self._conn.execute(
                    "UPDATE jobs SET state = ?, attempts = attempts + 1,"
                    " claim_token = NULL, claim_worker = NULL,"
                    " visibility_deadline = NULL, updated_at = ?,"
                    " last_error = COALESCE(last_error, 'lease expired')"
                    " WHERE state = ? AND visibility_deadline <= ?"
                    "   AND attempts + 1 >= max_attempts" + kind_sql,
                    [JobState.DEAD, now, JobState.CLAIMED, now, *kind_args],
                )
                rows = self._conn.execute(
                    "SELECT job_id, state FROM jobs WHERE ("
                    " (state = ? AND not_before <= ?)"
                    " OR (state = ? AND not_before <= ?)"
                    " OR (state = ? AND visibility_deadline <= ?))"
                    + kind_sql
                    + " ORDER BY job_id LIMIT ?",
                    [
                        JobState.PENDING,
                        now,
                        JobState.FAILED,
                        now,
                        JobState.CLAIMED,
                        now,
                        *kind_args,
                        n,
                    ],
                ).fetchall()
                for row in rows:
                    token = uuid.uuid4().hex
                    was_expired_lease = row["state"] == JobState.CLAIMED
                    self._conn.execute(
                        "UPDATE jobs SET state = ?, claim_token = ?,"
                        " claim_worker = ?, visibility_deadline = ?,"
                        " attempts = attempts + ?, updated_at = ?"
                        " WHERE job_id = ?",
                        (
                            JobState.CLAIMED,
                            token,
                            worker,
                            now + timeout,
                            1 if was_expired_lease else 0,
                            now,
                            row["job_id"],
                        ),
                    )
                    claimed.append(self._get_locked(int(row["job_id"])))
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        return claimed

    def ack(self, job_id: int, claim_token: str) -> Job:
        """Complete one delivery: CLAIMED → DONE (token-fenced)."""
        return self._finish_claim(
            job_id, claim_token, JobState.DONE, error=None
        )

    def nack(self, job_id: int, claim_token: str, error: str = "") -> Job:
        """Fail one delivery: CLAIMED → FAILED (backoff) or DEAD.

        The retry becomes claimable after ``backoff_base_s * 2**attempts``
        seconds (capped at ``backoff_max_s``); when the attempt budget is
        spent the job moves to the DEAD shelf instead.
        """
        with self._lock:
            job = self._fence(job_id, claim_token)
            attempts = job.attempts + 1
            now = self._time()
            if attempts >= job.max_attempts:
                state, not_before = JobState.DEAD, 0.0
            else:
                delay = min(
                    self.backoff_max_s, self.backoff_base_s * (2.0**job.attempts)
                )
                state, not_before = JobState.FAILED, now + delay
            self._conn.execute(
                "UPDATE jobs SET state = ?, attempts = ?, not_before = ?,"
                " claim_token = NULL, claim_worker = NULL,"
                " visibility_deadline = NULL, updated_at = ?, last_error = ?"
                " WHERE job_id = ?",
                (state, attempts, not_before, now, error or None, job_id),
            )
            self._conn.commit()
            return self._get_locked(job_id)

    def extend(self, job_id: int, claim_token: str, extra_s: float) -> Job:
        """Heartbeat: push a live lease's visibility deadline out."""
        if extra_s <= 0:
            raise ValueError(f"extra_s must be > 0, got {extra_s}")
        with self._lock:
            self._fence(job_id, claim_token)
            now = self._time()
            self._conn.execute(
                "UPDATE jobs SET visibility_deadline = ?, updated_at = ?"
                " WHERE job_id = ?",
                (now + extra_s, now, job_id),
            )
            self._conn.commit()
            return self._get_locked(job_id)

    # ------------------------------------------------------------------
    # operator side
    def requeue(self, job_id: int) -> Job:
        """DEAD/FAILED/CLAIMED → PENDING with a fresh attempt budget.

        The operator action behind ``repro queue requeue`` and the
        router's shard-death cleanup: an explicit requeue breaks any live
        lease (the old token is fenced out) and zeroes ``attempts`` —
        the operator has presumably fixed whatever was killing the job.
        """
        with self._lock:
            job = self._get_locked(job_id)
            if job.state == JobState.DONE:
                raise JobQueueError(f"job {job_id} is DONE; nothing to requeue")
            now = self._time()
            self._conn.execute(
                "UPDATE jobs SET state = ?, attempts = 0, not_before = 0.0,"
                " claim_token = NULL, claim_worker = NULL,"
                " visibility_deadline = NULL, updated_at = ?"
                " WHERE job_id = ?",
                (JobState.PENDING, now, job_id),
            )
            self._conn.commit()
            return self._get_locked(job_id)

    def release(self, worker: str) -> int:
        """Break every live lease held by ``worker``: CLAIMED → PENDING.

        The fleet router calls this when it declares a shard dead, so the
        shard's in-flight jobs redeliver immediately instead of waiting
        out the visibility timeout. Attempts are preserved (this is a
        reroute, not a failure). Returns the number of jobs released.
        """
        now = self._time()
        with self._lock:
            cur = self._conn.execute(
                "UPDATE jobs SET state = ?, claim_token = NULL,"
                " claim_worker = NULL, visibility_deadline = NULL,"
                " updated_at = ? WHERE state = ? AND claim_worker = ?",
                (JobState.PENDING, now, JobState.CLAIMED, worker),
            )
            self._conn.commit()
            return cur.rowcount

    def purge(self, states: Iterable[str] = (JobState.DONE,)) -> int:
        """Delete rows in the given states; returns the count removed."""
        states = tuple(states)
        for state in states:
            if state not in JobState.ALL:
                raise ValueError(f"unknown job state {state!r}")
        with self._lock:
            cur = self._conn.execute(
                "DELETE FROM jobs WHERE state IN (%s)"
                % ",".join("?" * len(states)),
                states,
            )
            self._conn.commit()
            return cur.rowcount

    # ------------------------------------------------------------------
    # introspection
    def get(self, job_id: int) -> Job:
        """Snapshot one job by id."""
        with self._lock:
            return self._get_locked(job_id)

    def _get_locked(self, job_id: int) -> Job:
        """Fetch one job; the caller must already hold ``self._lock``."""
        row = self._conn.execute(
            "SELECT * FROM jobs WHERE job_id = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise JobQueueError(f"no such job: {job_id}")
        return self._job(row)

    def list_jobs(
        self,
        state: str | None = None,
        kind: str | None = None,
        limit: int = 100,
    ) -> list[Job]:
        """Snapshot jobs, oldest first, optionally filtered."""
        sql = "SELECT * FROM jobs"
        clauses, args = [], []
        if state is not None:
            if state not in JobState.ALL:
                raise ValueError(f"unknown job state {state!r}")
            clauses.append("state = ?")
            args.append(state)
        if kind is not None:
            clauses.append("kind = ?")
            args.append(kind)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY job_id LIMIT ?"
        args.append(limit)
        with self._lock:
            rows = self._conn.execute(sql, args).fetchall()
        return [self._job(r) for r in rows]

    def counts(self) -> dict:
        """``{state: n}`` over every state (zero-filled)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        out = {state: 0 for state in JobState.ALL}
        for row in rows:
            out[row["state"]] = int(row["n"])
        return out

    def pending_count(self, kinds: Sequence[str] | None = None) -> int:
        """Jobs that are deliverable now or will be (not DONE/DEAD)."""
        kind_sql, kind_args = self._kind_filter(kinds)
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) AS n FROM jobs WHERE state IN (?, ?, ?)"
                + kind_sql,
                [JobState.PENDING, JobState.CLAIMED, JobState.FAILED, *kind_args],
            ).fetchone()
        return int(row["n"])

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _kind_filter(
        self, kinds: Sequence[str] | None
    ) -> tuple[str, list[str]]:
        if not kinds:
            return "", []
        return " AND kind IN (%s)" % ",".join("?" * len(kinds)), list(kinds)

    def _fence(self, job_id: int, claim_token: str) -> Job:
        """Assert the caller still holds the live lease (lock held)."""
        job = self._get_locked(job_id)
        if job.state != JobState.CLAIMED or job.claim_token != claim_token:
            raise StaleClaimError(
                f"job {job_id} is {job.state} under a different lease; "
                "this delivery was superseded"
            )
        return job

    def _finish_claim(
        self, job_id: int, claim_token: str, state: str, error: str | None
    ) -> Job:
        with self._lock:
            self._fence(job_id, claim_token)
            self._conn.execute(
                "UPDATE jobs SET state = ?, claim_token = NULL,"
                " claim_worker = NULL, visibility_deadline = NULL,"
                " updated_at = ?, last_error = ? WHERE job_id = ?",
                (state, self._time(), error, job_id),
            )
            self._conn.commit()
            return self._get_locked(job_id)

    @staticmethod
    def _job(row: sqlite3.Row) -> Job:
        return Job(
            job_id=int(row["job_id"]),
            kind=row["kind"],
            payload=json.loads(row["payload"]),
            state=row["state"],
            attempts=int(row["attempts"]),
            max_attempts=int(row["max_attempts"]),
            not_before=float(row["not_before"]),
            claim_token=row["claim_token"],
            claim_worker=row["claim_worker"],
            visibility_deadline=(
                None
                if row["visibility_deadline"] is None
                else float(row["visibility_deadline"])
            ),
            created_at=float(row["created_at"]),
            updated_at=float(row["updated_at"]),
            last_error=row["last_error"],
        )


# ----------------------------------------------------------------------
# escalation payload codec: EscalationItem <-> JSON-safe dict
def escalation_payload(item: "EscalationItem") -> dict:
    """Serialize one escalated run for the durable queue.

    The telemetry matrix rides as base64 of its raw float64 bytes plus
    the shape — exact round-trip, no precision loss — so a redelivered
    job reproduces the *identical* run fingerprint.
    """
    run = item.run
    data = np.ascontiguousarray(run.data, dtype=np.float64)
    return {
        "run": {
            "app": run.app,
            "input_deck": int(run.input_deck),
            "node_count": int(run.node_count),
            "node_id": int(run.node_id),
            "anomaly": run.anomaly,
            "intensity": float(run.intensity),
            "shape": list(data.shape),
            "data_b64": base64.b64encode(data.tobytes()).decode("ascii"),
            "metric_names": list(run.metric_names),
        },
        "diagnosis": {
            "label": item.diagnosis.label,
            "confidence": float(item.diagnosis.confidence),
        },
        "uncertainty": float(item.uncertainty),
        "threshold": float(item.threshold),
    }


def item_from_payload(payload: dict) -> "EscalationItem":
    """Inverse of :func:`escalation_payload` (bit-exact run matrix)."""
    from ..core.framework import Diagnosis
    from ..telemetry.collector import RunRecord
    from .escalation import EscalationItem

    spec = payload["run"]
    data = np.frombuffer(
        base64.b64decode(spec["data_b64"]), dtype=np.float64
    ).reshape(spec["shape"])
    run = RunRecord(
        app=spec["app"],
        input_deck=spec["input_deck"],
        node_count=spec["node_count"],
        node_id=spec["node_id"],
        anomaly=spec["anomaly"],
        intensity=spec["intensity"],
        data=data.copy(),
        metric_names=list(spec["metric_names"]),
    )
    diag = payload["diagnosis"]
    return EscalationItem(
        run=run,
        diagnosis=Diagnosis(label=diag["label"], confidence=diag["confidence"]),
        uncertainty=payload["uncertainty"],
        threshold=payload["threshold"],
    )


# PID-tagged default worker name, so `release(worker=...)` from a fleet
# router never breaks a sibling process's leases by accident
def default_worker_name(prefix: str = "worker") -> str:
    return f"{prefix}-pid{os.getpid()}"
