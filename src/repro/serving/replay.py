"""Deterministic Eclipse-scale replay harness for the serving fleet.

The paper's production system (Eclipse) is 1488 compute nodes emitting
telemetry at 1 Hz. This module replays that shape against any serving
front-end — a single :class:`~repro.serving.service.DiagnosisService` or
a sharded :class:`~repro.serving.fleet.FleetService` — deterministically:

* a :class:`ReplayStream` expands a small pool of template runs into a
  per-tick event schedule over ``n_nodes`` synthetic node ids, with the
  emitting nodes and template choices drawn from per-tick
  ``numpy`` seed streams, so two arms replay the *identical* event
  sequence (the fleet-vs-serial parity tests depend on this);
* :func:`replay` drives the events through ``submit()`` (as a live
  monitoring pipeline would), timestamps every future at completion, and
  reports sustained runs/sec plus p50/p99 end-to-end latency and a typed
  failure census — every accepted future resolves, so the census is
  exhaustive;
* :func:`fault_wrapper_factory` adapts seeded
  :class:`~repro.testing.faults.FaultPlan` schedules to the fleet's
  per-shard ``predict_wrapper_factory`` hook, which is how the benchmark
  replays stalls, hangs, and crashes against individual shards.

The stream replays *as fast as the engines absorb it* rather than in
wall-clock 1 Hz pacing: the number the capacity question needs is how
many node-seconds of telemetry the fleet can sustain per second of
compute, which only shows up under saturation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace as dc_replace
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

import numpy as np

from ..telemetry.collector import RunRecord

if TYPE_CHECKING:  # pragma: no cover
    from ..testing.faults import FaultPlan

__all__ = [
    "ECLIPSE_NODES",
    "ReplayEvent",
    "ReplayStream",
    "ReplayReport",
    "replay",
    "fault_wrapper_factory",
]

ECLIPSE_NODES = 1488
"""Eclipse's production scale: compute nodes emitting 1 Hz telemetry."""


@dataclass(frozen=True)
class ReplayEvent:
    """One node's emission at one tick of the synthetic clock."""

    tick: int
    node_id: int
    run: RunRecord


class ReplayStream:
    """Deterministic node/tick schedule over a pool of template runs.

    Parameters
    ----------
    templates:
        Real (or synthetic) runs to replay; each event clones one with
        the emitting ``node_id`` patched in, so fingerprints — and hence
        routing and cache behavior — are per-node, while the telemetry
        content stays drawn from a realistic pool.
    n_nodes:
        Fleet size; defaults to Eclipse's 1488.
    ticks:
        Synthetic seconds of 1 Hz stream to schedule.
    emit_per_tick:
        Nodes emitting per tick (``None`` = all of them, the saturation
        default).
    seed:
        Schedule seed. The event sequence is a pure function of
        ``(templates, n_nodes, ticks, emit_per_tick, seed)`` — two
        streams built alike yield byte-identical runs in identical
        order.
    """

    def __init__(
        self,
        templates: Sequence[RunRecord],
        n_nodes: int = ECLIPSE_NODES,
        ticks: int = 3,
        emit_per_tick: int | None = None,
        seed: int = 0,
    ):
        if not templates:
            raise ValueError("need at least one template run")
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        if ticks < 1:
            raise ValueError(f"ticks must be >= 1, got {ticks}")
        if emit_per_tick is not None and not 1 <= emit_per_tick <= n_nodes:
            raise ValueError(
                f"emit_per_tick must be in [1, {n_nodes}], got {emit_per_tick}"
            )
        self.templates = list(templates)
        self.n_nodes = n_nodes
        self.ticks = ticks
        self.emit_per_tick = emit_per_tick
        self.seed = seed

    def __len__(self) -> int:
        per_tick = self.emit_per_tick or self.n_nodes
        return per_tick * self.ticks

    def events(self) -> Iterator[ReplayEvent]:
        """Yield the schedule tick by tick, node order randomized per tick."""
        for tick in range(self.ticks):
            # per-tick seed stream keyed by (seed, tick): the schedule is
            # identical however many arms replay it, and extending ticks
            # never perturbs earlier ones
            rng = np.random.default_rng([self.seed, tick])
            if self.emit_per_tick is None:
                nodes = rng.permutation(self.n_nodes)
            else:
                nodes = rng.choice(
                    self.n_nodes, size=self.emit_per_tick, replace=False
                )
            picks = rng.integers(0, len(self.templates), size=len(nodes))
            for node_id, pick in zip(nodes, picks):
                template = self.templates[int(pick)]
                yield ReplayEvent(
                    tick=tick,
                    node_id=int(node_id),
                    run=dc_replace(template, node_id=int(node_id)),
                )


@dataclass
class ReplayReport:
    """What one replay arm did: volume, throughput, latency, failures."""

    n_events: int = 0
    n_ok: int = 0
    n_failed: int = 0
    wall_s: float = 0.0
    sustained_rps: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    failures: dict = field(default_factory=dict)
    diagnoses: list = field(default_factory=list)

    def as_json(self) -> dict:
        """The benchmark-artifact view (drops the raw diagnoses)."""
        return {
            "n_events": self.n_events,
            "n_ok": self.n_ok,
            "n_failed": self.n_failed,
            "wall_s": round(self.wall_s, 4),
            "sustained_rps": round(self.sustained_rps, 1),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "failures": dict(sorted(self.failures.items())),
        }


def replay(
    service,
    stream: ReplayStream,
    probe_between_ticks: bool = False,
    on_tick: Callable[[int], None] | None = None,
    result_timeout_s: float = 60.0,
    keep_diagnoses: bool = False,
) -> ReplayReport:
    """Drive a stream through ``service.submit`` and census the outcome.

    ``service`` is anything with ``submit(run) -> Future`` — a single
    :class:`DiagnosisService` or a :class:`FleetService`. Latency is
    measured per request from submit to future completion (the number a
    node's monitoring agent would see). ``on_tick(tick)`` fires before
    each tick — the chaos hook benchmarks use to kill shards mid-replay —
    and ``probe_between_ticks`` additionally runs the fleet's health
    sweep so reroutes happen at tick granularity, as a control loop
    would.

    Every accepted future resolves (the engine invariant), so
    ``n_ok + n_failed == n_events`` — nothing is silently lost.
    """
    report = ReplayReport()
    submitted: list[tuple] = []  # (future, t_submit, box) ; box <- t_done
    t_start = time.perf_counter()
    current_tick = -1
    for event in stream.events():
        if event.tick != current_tick:
            current_tick = event.tick
            if on_tick is not None:
                on_tick(current_tick)
            if probe_between_ticks and hasattr(service, "probe"):
                service.probe()
        report.n_events += 1
        t_submit = time.perf_counter()
        box: list[float] = []
        try:
            future = service.submit(event.run)
        except Exception as exc:
            report.n_failed += 1
            kind = type(exc).__name__
            report.failures[kind] = report.failures.get(kind, 0) + 1
            continue
        future.add_done_callback(
            lambda _f, b=box: b.append(time.perf_counter())
        )
        submitted.append((future, t_submit, box))
    latencies: list[float] = []
    deadline = time.monotonic() + result_timeout_s
    for future, t_submit, box in submitted:
        remaining = max(0.05, deadline - time.monotonic())
        try:
            diagnosis = future.result(timeout=remaining)
        except Exception as exc:
            report.n_failed += 1
            kind = type(exc).__name__
            report.failures[kind] = report.failures.get(kind, 0) + 1
            continue
        report.n_ok += 1
        if keep_diagnoses:
            report.diagnoses.append(diagnosis)
        if box:
            latencies.append(box[0] - t_submit)
    report.wall_s = time.perf_counter() - t_start
    report.sustained_rps = (
        report.n_ok / report.wall_s if report.wall_s > 0 else 0.0
    )
    if latencies:
        lat_ms = np.asarray(latencies) * 1000.0
        report.p50_ms = float(np.percentile(lat_ms, 50))
        report.p99_ms = float(np.percentile(lat_ms, 99))
    return report


def fault_wrapper_factory(
    plans: dict, hang_limit_s: float = 5.0
) -> Callable:
    """Adapt per-shard :class:`FaultPlan` schedules to the fleet hook.

    ``plans`` maps ``shard_id -> FaultPlan``; shards without a plan serve
    clean. The returned factory plugs into
    :class:`~repro.serving.fleet.FleetService`'s
    ``predict_wrapper_factory`` and exposes the built injectors on its
    ``injectors`` attribute so tests can release hangs and read fault
    logs.
    """
    from ..testing.faults import FaultInjector

    injectors: dict = {}

    def factory(shard_id: int):
        plan: "FaultPlan | None" = plans.get(shard_id)
        if plan is None:
            return None
        injector = FaultInjector(plan, hang_limit_s=hang_limit_s)
        injectors[shard_id] = injector
        return injector.wrap

    factory.injectors = injectors  # type: ignore[attr-defined]
    return factory
