"""Versioned on-disk model registry.

Layers deployment bookkeeping on top of :mod:`repro.core.persistence`:
every :meth:`ModelRegistry.publish` call freezes a trained framework into
an immutable version directory —

::

    <root>/
      CURRENT                  # the active version id (atomically replaced)
      versions/
        v0001/
          model.pkl            # save_framework payload
          manifest.json        # package version, config, fingerprint, ...
        v0002/
          ...

— and flips the ``CURRENT`` pointer with an atomic :func:`os.replace`, so
a serving process that re-reads the pointer between batches either sees
the old version or the new one, never a torn state. ``rollback`` is just
a pointer move: the bytes of every published version stay put.
"""

from __future__ import annotations

import json
import os
import shutil
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from ..core.framework import ALBADross
from ..core.persistence import build_manifest, load_framework, save_framework

__all__ = ["ModelRegistry", "ModelVersion", "RegistryError"]

_MODEL_FILE = "model.pkl"
_MANIFEST_FILE = "manifest.json"
_POINTER_FILE = "CURRENT"


class RegistryError(RuntimeError):
    """A registry operation could not be satisfied (missing/ambiguous ref)."""


@dataclass(frozen=True)
class ModelVersion:
    """One immutable published version: its id, tag, path, and manifest."""

    version_id: str
    path: Path
    manifest: dict

    @property
    def tag(self) -> str | None:
        return self.manifest.get("tag")

    @property
    def created_at(self) -> float:
        return float(self.manifest.get("created_at", 0.0))

    @property
    def model_path(self) -> Path:
        return self.path / _MODEL_FILE

    def load(self) -> ALBADross:
        """Deserialize this version's framework."""
        return load_framework(self.model_path)


class ModelRegistry:
    """Publish, resolve, load, and roll back framework versions.

    Parameters
    ----------
    root:
        Registry directory; created on first use.
    clock:
        Source of ``created_at`` timestamps, defaulting to
        :func:`time.time`. Inject a fake in tests to make published
        manifests reproducible (the same pattern as
        :class:`~repro.serving.reliability.CircuitBreaker`'s ``time_fn``).
    """

    def __init__(
        self,
        root: str | Path,
        clock: Callable[[], float] = time.time,
    ):
        self.root = Path(root)
        self.versions_dir = self.root / "versions"
        self.versions_dir.mkdir(parents=True, exist_ok=True)
        self._clock = clock

    # ------------------------------------------------------------------
    def publish(
        self,
        framework: ALBADross,
        tag: str | None = None,
        activate: bool = True,
    ) -> ModelVersion:
        """Freeze a trained framework as the next immutable version.

        The version directory is staged under a unique temporary name and
        renamed into place, so a crash mid-publish never leaves a
        half-written version visible. Concurrent publishers are safe:
        each stages privately, and when two race to the same version id
        the loser's rename fails (the winner's directory is non-empty),
        so it re-numbers and renames again — both versions land, each
        exactly once. With ``activate`` (the default) the ``CURRENT``
        pointer flips to the new version afterwards (atomic replace; the
        last racer wins the pointer, and it always names a valid
        version).
        """
        manifest = build_manifest(framework)
        manifest["tag"] = tag
        manifest["created_at"] = self._clock()
        staging = self.versions_dir / f".staging-{uuid.uuid4().hex}"
        staging.mkdir(parents=True)
        try:
            save_framework(framework, staging / _MODEL_FILE)
            (staging / _MANIFEST_FILE).write_text(
                json.dumps(manifest, indent=2, sort_keys=True)
            )
            final = None
            for _ in range(1000):
                version_id = self._next_version_id()
                candidate = self.versions_dir / version_id
                try:
                    os.rename(staging, candidate)
                except OSError:
                    # a concurrent publish took this id first (rename onto
                    # a non-empty directory fails); re-number and retry
                    continue
                final = candidate
                break
            if final is None:  # pragma: no cover - requires 1000 racers
                raise RegistryError("could not allocate a version id")
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        version = ModelVersion(version_id=version_id, path=final, manifest=manifest)
        if activate:
            self._set_current(version_id)
        return version

    def load(self, ref: str = "current") -> tuple[ALBADross, ModelVersion]:
        """Resolve ``ref`` and deserialize that version's framework."""
        version = self.resolve(ref)
        return version.load(), version

    def list_versions(self) -> list[ModelVersion]:
        """Every published version, oldest first."""
        versions = []
        for path in sorted(self.versions_dir.iterdir()):
            if not path.is_dir() or path.name.startswith("."):
                continue
            manifest_path = path / _MANIFEST_FILE
            if not manifest_path.exists():
                continue
            manifest = json.loads(manifest_path.read_text())
            versions.append(
                ModelVersion(version_id=path.name, path=path, manifest=manifest)
            )
        return versions

    def resolve(self, ref: str = "current") -> ModelVersion:
        """Map a reference to a version.

        ``ref`` may be ``"current"`` (the active pointer), ``"latest"``
        (highest published id), a version id (``v0003``), or a tag (the
        most recently published version carrying it).
        """
        versions = self.list_versions()
        if not versions:
            raise RegistryError(f"registry {self.root} has no published versions")
        by_id = {v.version_id: v for v in versions}
        if ref == "latest":
            return versions[-1]
        if ref == "current":
            current = self.current_id()
            if current is None or current not in by_id:
                raise RegistryError(
                    f"registry {self.root} has no usable CURRENT pointer"
                )
            return by_id[current]
        if ref in by_id:
            return by_id[ref]
        tagged = [v for v in versions if v.tag == ref]
        if tagged:
            return tagged[-1]
        raise RegistryError(f"unknown version or tag {ref!r} in {self.root}")

    def current_id(self) -> str | None:
        """The active version id, or ``None`` when nothing is activated."""
        pointer = self.root / _POINTER_FILE
        if not pointer.exists():
            return None
        value = pointer.read_text().strip()
        return value or None

    def activate(self, ref: str) -> ModelVersion:
        """Point ``CURRENT`` at an existing version (no data is touched)."""
        version = self.resolve(ref)
        self._set_current(version.version_id)
        return version

    def rollback(self, ref: str | None = None) -> ModelVersion:
        """Move the pointer back: to ``ref``, or to the version published
        immediately before the current one."""
        if ref is not None:
            return self.activate(ref)
        versions = self.list_versions()
        current = self.current_id()
        ids = [v.version_id for v in versions]
        if current not in ids:
            raise RegistryError("nothing is active; cannot roll back")
        idx = ids.index(current)
        if idx == 0:
            raise RegistryError(f"{current} is the oldest version; cannot roll back")
        return self.activate(ids[idx - 1])

    # ------------------------------------------------------------------
    def _next_version_id(self) -> str:
        existing = [
            int(p.name[1:])
            for p in self.versions_dir.iterdir()
            if p.is_dir() and p.name.startswith("v") and p.name[1:].isdigit()
        ]
        return f"v{(max(existing) + 1 if existing else 1):04d}"

    def _set_current(self, version_id: str) -> None:
        # write-then-replace keeps the pointer atomic for concurrent
        # readers; the tmp name is unique per writer so two racing
        # activations cannot replace each other's staging file out from
        # under themselves — each replace lands whole, last one wins
        pointer = self.root / _POINTER_FILE
        tmp = self.root / f".{_POINTER_FILE}.{uuid.uuid4().hex}.tmp"
        tmp.write_text(version_id + "\n")
        os.replace(tmp, pointer)
