"""Micro-batching inference engine.

Per-run scoring overhead (feature extraction dispatch, scaler/selector
matrix slicing, model call setup) dwarfs the marginal cost of one more
row, exactly the economics :mod:`repro.parallel.executor` exploits by
chunking process-pool tasks. This engine applies the same amortization to
serving: callers submit single :class:`~repro.telemetry.collector.RunRecord`
requests into a bounded queue, and a dispatcher thread coalesces whatever
has accumulated — up to ``max_batch`` runs, waiting at most
``max_linger_s`` for stragglers — into one vectorized
extractor→scaler→selector→model call.

Backpressure is explicit: a full request queue either blocks the
submitter or raises :class:`BackpressureError`, per the configured
policy. A synchronous :meth:`MicroBatcher.diagnose_many` fast path skips
the queue entirely for callers that already hold a batch.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable, Sequence

from ..telemetry.collector import RunRecord
from .stats import ServiceStats

__all__ = ["MicroBatcher", "BackpressureError"]


class BackpressureError(RuntimeError):
    """The request queue is full and the backpressure policy is ``"error"``."""


class MicroBatcher:
    """Coalesce single-run submissions into vectorized model calls.

    Parameters
    ----------
    predict_fn:
        ``predict_fn(runs) -> list[Diagnosis]``; looked up at dispatch
        time, so the owner may swap it between batches (hot model swap)
        without touching queued requests — they are raw runs, not
        featurized against any particular version.
    max_batch:
        Upper bound on runs per dispatched batch.
    max_linger_s:
        How long the dispatcher waits for more arrivals after the first
        request of a batch; bounds worst-case added latency.
    queue_size:
        Request-queue bound (backpressure trips beyond it).
    policy:
        ``"block"`` (submit waits for space) or ``"error"`` (submit raises
        :class:`BackpressureError` immediately).
    stats:
        Optional shared :class:`~repro.serving.stats.ServiceStats`.
    """

    def __init__(
        self,
        predict_fn: Callable[[Sequence[RunRecord]], list],
        max_batch: int = 32,
        max_linger_s: float = 0.005,
        queue_size: int = 1024,
        policy: str = "block",
        stats: ServiceStats | None = None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_linger_s < 0:
            raise ValueError(f"max_linger_s must be >= 0, got {max_linger_s}")
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        if policy not in ("block", "error"):
            raise ValueError(f"policy must be 'block' or 'error', got {policy!r}")
        self.predict_fn = predict_fn
        self.max_batch = max_batch
        self.max_linger_s = max_linger_s
        self.policy = policy
        self.stats = stats or ServiceStats()
        self._queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self._closed = threading.Event()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-microbatcher", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------
    def submit(self, run: RunRecord) -> Future:
        """Enqueue one run; the returned future resolves to its Diagnosis."""
        if self._closed.is_set():
            raise RuntimeError("engine is closed")
        future: Future = Future()
        item = (run, future)
        if self.policy == "error":
            try:
                self._queue.put_nowait(item)
            except queue.Full:
                raise BackpressureError(
                    f"request queue full ({self._queue.maxsize} pending)"
                ) from None
        else:
            self._queue.put(item)
        self.stats.record_request()
        return future

    def diagnose_many(self, runs: Sequence[RunRecord]) -> list:
        """Synchronous fast path: score an in-hand batch without queueing.

        Large callers (archive scoring, backfills) already have their
        batch; routing it through the queue would only add latency. Splits
        into ``max_batch`` slices so one huge call cannot starve the
        latency-sensitive queued traffic between slices.
        """
        if self._closed.is_set():
            raise RuntimeError("engine is closed")
        results: list = []
        for start in range(0, len(runs), self.max_batch):
            chunk = list(runs[start : start + self.max_batch])
            t0 = time.perf_counter()
            out = self.predict_fn(chunk)
            self.stats.record_batch(len(chunk), time.perf_counter() - t0)
            results.extend(out)
        self.stats.record_request(len(runs))
        return results

    def flush(self, timeout: float = 10.0) -> None:
        """Block until every queued request has been dispatched."""
        deadline = time.monotonic() + timeout
        while not self._queue.empty():
            if time.monotonic() > deadline:
                raise TimeoutError("engine did not drain in time")
            time.sleep(0.001)

    def close(self, timeout: float = 10.0) -> None:
        """Drain the queue, then stop the dispatcher thread."""
        if self._closed.is_set():
            return
        self.flush(timeout)
        self._closed.set()
        self._dispatcher.join(timeout)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def pending(self) -> int:
        """Requests currently waiting in the queue (approximate)."""
        return self._queue.qsize()

    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while not self._closed.is_set():
            try:
                first = self._queue.get(timeout=0.05)
            except queue.Empty:
                continue
            batch = [first]
            deadline = time.monotonic() + self.max_linger_s
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0 and self._queue.empty():
                    break
                try:
                    batch.append(self._queue.get(timeout=max(remaining, 0)))
                except queue.Empty:
                    break
            self._run_batch(batch)

    def _run_batch(self, batch: list) -> None:
        runs = [run for run, _ in batch]
        t0 = time.perf_counter()
        try:
            diagnoses = self.predict_fn(runs)
        except BaseException as exc:  # propagate to every waiter, keep serving
            for _, future in batch:
                if not future.cancelled():
                    future.set_exception(exc)
            return
        self.stats.record_batch(len(batch), time.perf_counter() - t0)
        for (_, future), diagnosis in zip(batch, diagnoses):
            if not future.cancelled():
                future.set_result(diagnosis)
