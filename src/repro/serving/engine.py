"""Micro-batching inference engine.

Per-run scoring overhead (feature extraction dispatch, scaler/selector
matrix slicing, model call setup) dwarfs the marginal cost of one more
row, exactly the economics :mod:`repro.parallel.executor` exploits by
chunking process-pool tasks. This engine applies the same amortization to
serving: callers submit single :class:`~repro.telemetry.collector.RunRecord`
requests into a bounded queue, and a dispatcher thread coalesces whatever
has accumulated — up to ``max_batch`` runs, waiting at most
``max_linger_s`` for stragglers — into one vectorized
extractor→scaler→selector→model call.

Backpressure is explicit: a full request queue either blocks the
submitter or raises :class:`BackpressureError`, per the configured
policy. A synchronous :meth:`MicroBatcher.diagnose_many` fast path skips
the queue entirely for callers that already hold a batch.

Reliability invariant (see :mod:`repro.serving.reliability`): **every
accepted future resolves** — with a diagnosis, or with a typed error
(:class:`~repro.serving.reliability.DeadlineExceeded`,
:class:`~repro.serving.reliability.PredictionMismatchError`,
:class:`~repro.serving.reliability.EngineClosedError`,
:class:`~repro.serving.reliability.DispatcherRestarted`, or whatever
``predict_fn`` raised after retries were exhausted). A misbehaving
``predict_fn`` can fail requests; it can never strand a submitter.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from concurrent.futures import Future, InvalidStateError
from typing import Callable, Sequence

from ..telemetry.collector import RunRecord
from .reliability import (
    DeadlineExceeded,
    DispatcherRestarted,
    EngineClosedError,
    PredictionMismatchError,
    RetryPolicy,
)
from .stats import ServiceStats

__all__ = ["MicroBatcher", "BackpressureError"]


class BackpressureError(RuntimeError):
    """The request queue is full and the backpressure policy is ``"error"``."""


class _Request:
    """One queued run: its future, optional expiry, and settlement flag."""

    __slots__ = ("run", "future", "deadline", "settled")

    def __init__(self, run, deadline: float | None):
        self.run = run
        self.future: Future = Future()
        self.deadline = deadline
        self.settled = False


class MicroBatcher:
    """Coalesce single-run submissions into vectorized model calls.

    Parameters
    ----------
    predict_fn:
        ``predict_fn(runs) -> list[Diagnosis]``; looked up at dispatch
        time, so the owner may swap it between batches (hot model swap)
        without touching queued requests — they are raw runs, not
        featurized against any particular version.
    max_batch:
        Upper bound on runs per dispatched batch.
    max_linger_s:
        How long the dispatcher waits for more arrivals after the first
        request of a batch; bounds worst-case added latency.
    queue_size:
        Request-queue bound (backpressure trips beyond it).
    policy:
        ``"block"`` (submit waits for space) or ``"error"`` (submit raises
        :class:`BackpressureError` immediately).
    default_deadline_s:
        TTL applied to every :meth:`submit` that does not pass its own;
        ``None`` means requests never expire. Expired requests fail fast
        with :class:`~repro.serving.reliability.DeadlineExceeded` at
        dispatch time instead of occupying batch slots.
    retry:
        Optional :class:`~repro.serving.reliability.RetryPolicy`;
        transient ``predict_fn`` failures are retried with backoff before
        the batch is failed.
    stats:
        Optional shared :class:`~repro.serving.stats.ServiceStats`.
    """

    def __init__(
        self,
        predict_fn: Callable[[Sequence[RunRecord]], list],
        max_batch: int = 32,
        max_linger_s: float = 0.005,
        queue_size: int = 1024,
        policy: str = "block",
        default_deadline_s: float | None = None,
        retry: RetryPolicy | None = None,
        stats: ServiceStats | None = None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_linger_s < 0:
            raise ValueError(f"max_linger_s must be >= 0, got {max_linger_s}")
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        if policy not in ("block", "error"):
            raise ValueError(f"policy must be 'block' or 'error', got {policy!r}")
        if default_deadline_s is not None and default_deadline_s <= 0:
            raise ValueError(
                f"default_deadline_s must be > 0, got {default_deadline_s}"
            )
        self.predict_fn = predict_fn
        self.max_batch = max_batch
        self.max_linger_s = max_linger_s
        self.policy = policy
        self.default_deadline_s = default_deadline_s
        self.retry = retry
        self.stats = stats or ServiceStats()
        self._queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self._closed = threading.Event()
        # serializes concurrent close() calls: exactly one performs the
        # shutdown, the rest observe _closed and return (double-close is
        # a documented no-op, not an error)
        self._close_lock = threading.Lock()
        # _idle guards the accepted-but-unresolved request count plus the
        # in-flight batch table and dispatcher generation; flush() waits on it
        self._idle = threading.Condition()
        self._pending = 0
        self._inflight: dict[int, tuple[list[_Request], float]] = {}
        self._tokens = itertools.count()
        self._generation = 0
        self._restarts = 0
        self._heartbeat = time.monotonic()
        self._dispatcher: threading.Thread
        self._start_dispatcher(self._generation)

    # ------------------------------------------------------------------
    def submit(self, run: RunRecord, deadline_s: float | None = None) -> Future:
        """Enqueue one run; the returned future resolves to its Diagnosis.

        ``deadline_s`` overrides ``default_deadline_s`` for this request.
        The future always completes: with a diagnosis, or a typed error.
        """
        if self._closed.is_set():
            raise EngineClosedError("engine is closed")
        ttl = self.default_deadline_s if deadline_s is None else deadline_s
        deadline = None if ttl is None else time.monotonic() + ttl
        req = _Request(run, deadline)
        with self._idle:
            self._pending += 1
        try:
            if self.policy == "error":
                try:
                    self._queue.put_nowait(req)
                except queue.Full:
                    raise BackpressureError(
                        f"request queue full ({self._queue.maxsize} pending)"
                    ) from None
            else:
                self._queue.put(req)
        except BaseException:
            with self._idle:
                self._pending -= 1
                self._idle.notify_all()
            raise
        self.stats.record_request()
        if self._closed.is_set():
            # close() may have drained the queue before our put landed;
            # fail the future rather than strand it behind a dead dispatcher
            self._resolve(
                req, exception=EngineClosedError("engine closed during submit")
            )
        return req.future

    def diagnose_many(self, runs: Sequence[RunRecord]) -> list:
        """Synchronous fast path: score an in-hand batch without queueing.

        Large callers (archive scoring, backfills) already have their
        batch; routing it through the queue would only add latency. Splits
        into ``max_batch`` slices so one huge call cannot starve the
        latency-sensitive queued traffic between slices.
        """
        if self._closed.is_set():
            raise EngineClosedError("engine is closed")
        # count requests at acceptance (as submit() does), not after scoring,
        # so a failing batch leaves identical accounting on both paths
        self.stats.record_request(len(runs))
        results: list = []
        for start in range(0, len(runs), self.max_batch):
            chunk = list(runs[start : start + self.max_batch])
            t0 = time.perf_counter()
            out = self.predict_fn(chunk)
            n_out = len(out) if hasattr(out, "__len__") else -1
            if n_out != len(chunk):
                raise PredictionMismatchError(
                    f"predict_fn returned {n_out} diagnoses for {len(chunk)} runs"
                )
            self.stats.record_batch(len(chunk), time.perf_counter() - t0)
            results.extend(out)
        return results

    def flush(self, timeout: float = 10.0) -> None:
        """Block until every accepted request has *resolved*.

        Covers queued requests and dispatched-but-unfinished batches alike
        — the engine tracks accepted-but-unresolved requests explicitly,
        so flush cannot return while ``predict_fn`` is still chewing on a
        batch the queue no longer shows.
        """
        deadline = time.monotonic() + timeout
        with self._idle:
            while self._pending > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"engine did not drain in time "
                        f"({self._pending} requests unresolved)"
                    )
                self._idle.wait(min(remaining, 0.05))

    def close(self, timeout: float = 10.0) -> None:
        """Drain the queue, stop the dispatcher, fail whatever remains.

        Best-effort drain first; past the deadline, every still-pending
        future (queued or stuck in flight) is failed with
        :class:`~repro.serving.reliability.EngineClosedError` instead of
        being abandoned.

        Idempotent, including under concurrency: exactly one caller
        performs the shutdown, every other (racing or repeat) call
        returns once it has completed. Double-close is a no-op.
        """
        with self._close_lock:
            if self._closed.is_set():
                return
            drained = True
            try:
                self.flush(timeout)
            except TimeoutError:
                drained = False
            self._closed.set()
            self._dispatcher.join(timeout if drained else 0.1)
            # fail anything the dispatcher will never reach: items a racing
            # submit() enqueued after the loop exited, plus (when the drain
            # timed out) the batch wedged inside predict_fn
            while True:
                try:
                    req = self._queue.get_nowait()
                except queue.Empty:
                    break
                self._resolve(
                    req,
                    exception=EngineClosedError(
                        "engine closed before this request was scored"
                    ),
                )
            with self._idle:
                stale = [
                    req for batch, _ in self._inflight.values() for req in batch
                ]
                self._inflight.clear()
            for req in stale:
                self._resolve(
                    req,
                    exception=EngineClosedError(
                        "engine closed while this request was in flight"
                    ),
                )

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Accepted requests not yet resolved (queued or in flight)."""
        with self._idle:
            return self._pending

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting in the queue (approximate)."""
        return self._queue.qsize()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    @property
    def dispatcher_alive(self) -> bool:
        """Whether the current dispatcher generation's thread is running."""
        return self._dispatcher.is_alive()

    @property
    def heartbeat_age_s(self) -> float:
        """Seconds since the dispatch loop last went around."""
        return time.monotonic() - self._heartbeat

    @property
    def restarts(self) -> int:
        """Dispatcher restarts performed (by a watchdog or manually)."""
        with self._idle:
            return self._restarts

    def oldest_inflight_age(self) -> float | None:
        """Age of the longest-running dispatched batch, ``None`` if idle."""
        with self._idle:
            if not self._inflight:
                return None
            started = min(at for _, at in self._inflight.values())
        return time.monotonic() - started

    def restart_dispatcher(self, reason: str = "manual restart") -> int:
        """Fail the in-flight batch and start a fresh dispatcher generation.

        The watchdog's recovery action (see
        :class:`~repro.serving.reliability.DispatcherWatchdog`). Returns
        the number of in-flight futures failed. The superseded thread —
        possibly wedged inside ``predict_fn`` — exits on its next loop
        check because its generation token no longer matches; any late
        results it produces land on already-resolved futures and are
        discarded.
        """
        with self._idle:
            if self._closed.is_set():
                return 0
            self._generation += 1
            generation = self._generation
            stale = [req for batch, _ in self._inflight.values() for req in batch]
            self._inflight.clear()
            self._restarts += 1
        for req in stale:
            self._resolve(
                req, exception=DispatcherRestarted(f"dispatcher restarted: {reason}")
            )
        self.stats.record_watchdog_restart()
        self._start_dispatcher(generation)
        return len(stale)

    # ------------------------------------------------------------------
    def _start_dispatcher(self, generation: int) -> None:
        """Spawn a dispatcher for ``generation`` — iff it is still current.

        Two concurrent restarts each bump the generation; only the spawn
        matching the final generation may run, otherwise both threads
        would pass the loop's generation check and share one queue.
        """
        thread = threading.Thread(
            target=self._dispatch_loop,
            args=(generation,),
            name=f"repro-microbatcher-g{generation}",
            daemon=True,
        )
        with self._idle:
            if generation != self._generation:
                return  # a concurrent restart superseded this spawn
            self._dispatcher = thread
        thread.start()

    def _current(self, generation: int) -> bool:
        with self._idle:
            return generation == self._generation

    def _dispatch_loop(self, generation: int) -> None:
        while not self._closed.is_set() and self._current(generation):
            self._heartbeat = time.monotonic()
            try:
                first = self._queue.get(timeout=0.05)
            except queue.Empty:
                continue
            batch = [first]
            deadline = time.monotonic() + self.max_linger_s
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0 and self._queue.empty():
                    break
                try:
                    batch.append(self._queue.get(timeout=max(remaining, 0)))
                except queue.Empty:
                    break
            live = self._drop_expired(batch)
            if not live:
                continue
            token = next(self._tokens)
            with self._idle:
                superseded = generation != self._generation
                if not superseded:
                    self._inflight[token] = (live, time.monotonic())
            if superseded:
                # superseded while coalescing: these requests were dequeued
                # but never registered in-flight, so the restart that bumped
                # the generation could not fail them — resolve them here or
                # their futures hang forever and flush() never drains
                for req in live:
                    self._resolve(
                        req,
                        exception=DispatcherRestarted(
                            "dispatcher restarted while this request was "
                            "being coalesced"
                        ),
                    )
                continue
            try:
                self._run_batch(live, token, generation)
            except BaseException:
                # a bug escaped _run_batch; resolve the batch so no
                # submitter hangs, then let the thread die — the watchdog
                # notices the dead dispatcher and restarts it
                for req in live:
                    self._resolve(
                        req,
                        exception=DispatcherRestarted(
                            "dispatch loop crashed while scoring this batch"
                        ),
                    )
                raise
            finally:
                with self._idle:
                    self._inflight.pop(token, None)

    def _drop_expired(self, batch: list[_Request]) -> list[_Request]:
        """Fail expired requests so they don't occupy batch slots."""
        now = time.monotonic()
        live = []
        for req in batch:
            if req.deadline is not None and now >= req.deadline:
                self.stats.record_deadline_drop()
                self._resolve(
                    req,
                    exception=DeadlineExceeded(
                        "request expired in queue before dispatch"
                    ),
                )
            else:
                live.append(req)
        return live

    def _touch_inflight(self, token: int) -> None:
        """Refresh a batch's in-flight timestamp so the watchdog's stall
        clock measures only the current attempt, not retry backoff."""
        with self._idle:
            entry = self._inflight.get(token)
            if entry is not None:
                self._inflight[token] = (entry[0], time.monotonic())

    def _backoff(self, delay: float, token: int, generation: int) -> None:
        """Sleep ``delay`` seconds in small slices, refreshing the in-flight
        timestamp each slice (backoff must not read as a stall) and bailing
        early when the engine closes or the dispatcher is superseded."""
        end = time.monotonic() + delay
        while not self._closed.is_set() and self._current(generation):
            self._touch_inflight(token)
            step = min(0.05, end - time.monotonic())
            if step <= 0:
                return
            self._closed.wait(step)

    def _run_batch(self, batch: list[_Request], token: int, generation: int) -> None:
        runs = [req.run for req in batch]
        attempt = 0
        while True:
            self._touch_inflight(token)  # stall clock restarts per attempt
            t0 = time.perf_counter()
            try:
                diagnoses = self.predict_fn(runs)
                break
            except BaseException as exc:
                policy = self.retry
                if (
                    policy is not None
                    and attempt < policy.max_retries
                    and policy.retryable(exc)
                    and not self._closed.is_set()
                    # a superseded thread must not keep retrying: its futures
                    # were already failed by the restart, and a wedge-prone
                    # predict_fn would score concurrently with the new
                    # dispatcher's
                    and self._current(generation)
                ):
                    self.stats.record_retry()
                    delay = policy.delay(attempt)
                    attempt += 1
                    if delay > 0:
                        self._backoff(delay, token, generation)
                    if self._current(generation) and not self._closed.is_set():
                        continue
                for req in batch:  # propagate to every waiter, keep serving
                    self._resolve(req, exception=exc)
                return
        self.stats.record_batch(len(batch), time.perf_counter() - t0)
        n_out = len(diagnoses) if hasattr(diagnoses, "__len__") else -1
        if n_out != len(runs):
            # a silent zip here would leave the trailing futures hanging
            # forever; fail the whole batch with a typed contract error
            exc = PredictionMismatchError(
                f"predict_fn returned {n_out} diagnoses for {len(runs)} runs"
            )
            for req in batch:
                self._resolve(req, exception=exc)
            return
        for req, diagnosis in zip(batch, diagnoses):
            self._resolve(req, result=diagnosis)

    def _resolve(self, req: _Request, result=None, exception=None) -> bool:
        """Settle one request exactly once; safe across racing resolvers.

        The dispatcher, a watchdog restart, and close() may all try to
        settle the same request; the ``settled`` flag keeps the pending
        count exact and the ``InvalidStateError`` guard absorbs a loser
        racing a future the winner already completed.
        """
        with self._idle:
            if req.settled:
                return False
            req.settled = True
            self._pending -= 1
            self._idle.notify_all()
        try:
            if exception is not None:
                req.future.set_exception(exception)
            elif not req.future.cancelled():
                req.future.set_result(result)
        except InvalidStateError:  # cancelled or raced; the waiter is served
            pass
        return True
