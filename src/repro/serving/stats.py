"""Service counters for the online diagnosis path.

Everything the serving subsystem wants to report — request volume, how
well the micro-batcher is coalescing, cache effectiveness, escalation
pressure, per-batch latency, and the reliability layer's interventions
(retries, deadline drops, watchdog restarts, degraded responses) —
funnels through one thread-safe :class:`ServiceStats` object. The
snapshot is a plain dict so the CLI can print it and tests can assert on
it without poking at internals.
"""

from __future__ import annotations

import threading

__all__ = ["ServiceStats"]


class ServiceStats:
    """Thread-safe counters shared by the engine, cache, and escalation queue."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        """Zero every counter (the service calls this once at start)."""
        with self._lock:
            self._requests = 0
            self._cache_hits = 0
            self._escalations = 0
            self._batches = 0
            self._batch_sizes: dict[int, int] = {}
            self._latency_sum = 0.0
            self._latency_max = 0.0
            self._swaps = 0
            self._warm_refits = 0
            self._retries = 0
            self._deadline_drops = 0
            self._watchdog_restarts = 0
            self._degraded = 0
            self._forced_escalations = 0
            self._refused_escalations = 0

    # ------------------------------------------------------------------
    def record_request(self, n: int = 1) -> None:
        with self._lock:
            self._requests += n

    def record_cache_hit(self, n: int = 1) -> None:
        with self._lock:
            self._cache_hits += n

    def record_escalation(self, n: int = 1) -> None:
        with self._lock:
            self._escalations += n

    def record_swap(self) -> None:
        with self._lock:
            self._swaps += 1

    def record_warm_refit(self) -> None:
        """One retrain that went through the incremental (warm-start) path."""
        with self._lock:
            self._warm_refits += 1

    def record_retry(self, n: int = 1) -> None:
        """One transient ``predict_fn`` failure retried with backoff."""
        with self._lock:
            self._retries += n

    def record_deadline_drop(self, n: int = 1) -> None:
        """One request that expired in the queue before dispatch."""
        with self._lock:
            self._deadline_drops += n

    def record_watchdog_restart(self) -> None:
        """One dispatcher restart (crashed or stalled dispatch loop)."""
        with self._lock:
            self._watchdog_restarts += 1

    def record_degraded(self, n: int = 1) -> None:
        """Fallback diagnoses served while the circuit breaker is open."""
        with self._lock:
            self._degraded += n

    def record_forced_escalation(self, n: int = 1) -> None:
        """One degraded verdict escalated via the forced (non-adaptive) path."""
        with self._lock:
            self._forced_escalations += n

    def record_refused_escalation(self, n: int = 1) -> None:
        """One forced escalation the full queue refused — a lost annotation."""
        with self._lock:
            self._refused_escalations += n

    def record_batch(self, size: int, latency_s: float) -> None:
        """One dispatched micro-batch: its size and wall-clock latency."""
        with self._lock:
            self._batches += 1
            self._batch_sizes[size] = self._batch_sizes.get(size, 0) + 1
            self._latency_sum += latency_s
            self._latency_max = max(self._latency_max, latency_s)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A consistent point-in-time view of every counter."""
        with self._lock:
            batches = self._batches
            scored = sum(size * n for size, n in self._batch_sizes.items())
            return {
                "requests": self._requests,
                "cache_hits": self._cache_hits,
                "escalations": self._escalations,
                "batches": batches,
                "batch_size_histogram": dict(sorted(self._batch_sizes.items())),
                "mean_batch_size": scored / batches if batches else 0.0,
                "mean_batch_latency_s": (
                    self._latency_sum / batches if batches else 0.0
                ),
                "max_batch_latency_s": self._latency_max,
                "model_swaps": self._swaps,
                "warm_refits": self._warm_refits,
                "retries": self._retries,
                "deadline_drops": self._deadline_drops,
                "watchdog_restarts": self._watchdog_restarts,
                "degraded_responses": self._degraded,
                "escalations_forced": self._forced_escalations,
                "escalations_refused": self._refused_escalations,
            }

    @staticmethod
    def merge(snapshots: list[dict]) -> dict:
        """Aggregate several :meth:`snapshot` dicts (the fleet view).

        Counters sum, histograms merge, means re-derive from the merged
        totals, and the max latency is the max across shards.
        """
        merged = {
            "requests": 0,
            "cache_hits": 0,
            "escalations": 0,
            "batches": 0,
            "batch_size_histogram": {},
            "model_swaps": 0,
            "warm_refits": 0,
            "retries": 0,
            "deadline_drops": 0,
            "watchdog_restarts": 0,
            "degraded_responses": 0,
            "escalations_forced": 0,
            "escalations_refused": 0,
        }
        latency_sum = 0.0
        latency_max = 0.0
        for snap in snapshots:
            for key in merged:
                if key == "batch_size_histogram":
                    for size, n in snap.get(key, {}).items():
                        size = int(size)
                        merged[key][size] = merged[key].get(size, 0) + n
                else:
                    merged[key] += snap.get(key, 0)
            latency_sum += snap.get("mean_batch_latency_s", 0.0) * snap.get(
                "batches", 0
            )
            latency_max = max(latency_max, snap.get("max_batch_latency_s", 0.0))
        batches = merged["batches"]
        scored = sum(s * n for s, n in merged["batch_size_histogram"].items())
        merged["batch_size_histogram"] = dict(
            sorted(merged["batch_size_histogram"].items())
        )
        merged["mean_batch_size"] = scored / batches if batches else 0.0
        merged["mean_batch_latency_s"] = latency_sum / batches if batches else 0.0
        merged["max_batch_latency_s"] = latency_max
        return merged
