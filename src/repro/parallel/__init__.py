"""repro.parallel — HPC-parallel utilities (pools, partitioners, shared memory)."""

from .executor import (
    Executor,
    close_shared_executors,
    default_workers,
    effective_cpu_count,
    resolve_backend,
    shared_executor,
)
from .partition import block_partition, chunk_sizes, cyclic_partition
from .shm import (
    SHM_PREFIX,
    AttachedArray,
    SharedArray,
    SharedArrayHandle,
    active_segments,
)

__all__ = [
    "AttachedArray",
    "Executor",
    "SHM_PREFIX",
    "SharedArray",
    "SharedArrayHandle",
    "active_segments",
    "block_partition",
    "chunk_sizes",
    "close_shared_executors",
    "cyclic_partition",
    "default_workers",
    "effective_cpu_count",
    "resolve_backend",
    "shared_executor",
]
