"""repro.parallel — HPC-parallel utilities (process fan-out, partitioners)."""

from .executor import Executor, default_workers
from .partition import block_partition, chunk_sizes, cyclic_partition

__all__ = [
    "Executor",
    "block_partition",
    "chunk_sizes",
    "cyclic_partition",
    "default_workers",
]
