"""Zero-copy array transport over POSIX shared memory.

Process pools pay for data twice: the parent pickles every task's arrays
into a pipe and each worker unpickles its own private copy. For the data
plane's packed corpus buffers and the training core's binned code
matrices that copy tax dominates the work itself on small refits. This
module moves the arrays out of band:

* :class:`SharedArray` — the **parent-side owner**. Copies an ndarray
  into one ``multiprocessing.shared_memory`` segment exactly once and
  guarantees the segment is unlinked when the owner is closed, including
  on the exception path (context manager) and as a last resort at
  garbage collection / interpreter exit (``weakref.finalize``).
* :class:`SharedArrayHandle` — the **picklable descriptor** (segment
  name, shape, dtype). This is what rides the task pickle: a few dozen
  bytes regardless of array size.
* :class:`AttachedArray` — the **worker-side view**. ``handle.open()``
  maps the segment and exposes ``.array``; closing drops the mapping but
  never unlinks (lifetime belongs to the owner). Attaching deregisters
  the segment from the worker's resource tracker so the tracker never
  double-accounts (CPython registers on attach too; see bpo-39959).

Ownership rule: exactly one :class:`SharedArray` per segment, and the
process that created it unlinks it. Workers only ever attach. The names
all carry a ``repro_`` prefix so test teardowns and CI can assert that
``/dev/shm`` holds no leftovers (:func:`active_segments`).
"""

from __future__ import annotations

import multiprocessing
import secrets
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path

import numpy as np

__all__ = [
    "SHM_PREFIX",
    "AttachedArray",
    "SharedArray",
    "SharedArrayHandle",
    "active_segments",
]

SHM_PREFIX = "repro_"

_SHM_DIR = Path("/dev/shm")


def active_segments() -> list[str]:
    """Names of live ``repro_``-prefixed segments on this machine.

    The leak oracle for tests and CI: after a bench or campaign
    completes, this list must be empty. Returns ``[]`` on platforms
    without a ``/dev/shm`` tmpfs (the owner-side guarantees still hold;
    only the external audit is unavailable).
    """
    if not _SHM_DIR.is_dir():
        return []
    return sorted(p.name for p in _SHM_DIR.iterdir() if p.name.startswith(SHM_PREFIX))


def _unregister(name: str) -> None:
    """Drop a segment from this process's resource-tracker ledger.

    CPython's ``SharedMemory`` registers on *attach* as well as on
    create, so an attaching worker's tracker believes it owns the
    segment and may unlink it early or warn at exit. Only the creating
    process should keep the registration. Fork-started workers *share*
    the parent's tracker (the attach-register collapses into the
    parent's entry), so unregistering there would strip the owner's own
    ledger entry — skip it; only spawn-style children run their own
    tracker and need the correction.
    """
    try:
        if multiprocessing.get_start_method() == "fork":
            return
        resource_tracker.unregister("/" + name, "shared_memory")
    except Exception:  # repro-lint: disable=EH001 -- tracker may be absent or already clean; the registration is advisory
        pass


@dataclass(frozen=True)
class SharedArrayHandle:
    """Picklable coordinates of one array living in a shared segment."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    def open(self) -> "AttachedArray":
        """Attach to the segment and view it as an ndarray (worker side)."""
        return AttachedArray(self)


class AttachedArray:
    """A worker-side mapping of a :class:`SharedArray` segment.

    Use as a context manager; ``.array`` is a view into the segment and
    must not escape the ``with`` block. Closing unmaps but never unlinks.
    """

    def __init__(self, handle: SharedArrayHandle):
        self._shm: shared_memory.SharedMemory | None = shared_memory.SharedMemory(
            name=handle.name
        )
        _unregister(handle.name)
        self.array = np.ndarray(
            handle.shape, dtype=np.dtype(handle.dtype), buffer=self._shm.buf
        )

    def close(self) -> None:
        if self._shm is not None:
            self.array = None
            self._shm.close()
            self._shm = None

    def __enter__(self) -> "AttachedArray":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False


def _release(shm: shared_memory.SharedMemory) -> None:
    """Unlink then unmap one owned segment (finalizer body)."""
    try:
        shm.unlink()
    except FileNotFoundError:  # already unlinked (e.g. by a paranoid test)
        pass
    shm.close()


class SharedArray:
    """Parent-side owner of one ndarray in one shared-memory segment.

    The array is copied into the segment once at construction; workers
    attach via the pickled :attr:`handle` instead of receiving copies.
    The segment is unlinked by :meth:`close` — called by ``__exit__`` on
    both the normal and exception paths — with a ``weakref.finalize``
    backstop so an abandoned owner still cleans up at GC or interpreter
    exit. Worker crashes cannot leak the segment: workers never own it.
    """

    def __init__(self, array: np.ndarray):
        array = np.ascontiguousarray(array)
        name = f"{SHM_PREFIX}{secrets.token_hex(8)}"
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, array.nbytes), name=name
        )
        self._finalizer = weakref.finalize(self, _release, self._shm)
        self.array: np.ndarray = np.ndarray(
            array.shape, dtype=array.dtype, buffer=self._shm.buf
        )
        self.array[...] = array
        self.handle = SharedArrayHandle(name, tuple(array.shape), str(array.dtype))

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def close(self) -> None:
        """Unlink and unmap the segment; safe to call twice."""
        self.array = None
        self._finalizer()

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False
