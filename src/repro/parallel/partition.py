"""Work-list partitioners (block / cyclic), the standard HPC decompositions.

Feature extraction over hundreds of runs and train-test-split replication
are embarrassingly parallel; these helpers split index ranges the way an
MPI code would decompose a domain: contiguous *block* partitions (good
cache behaviour, uneven tails) or round-robin *cyclic* partitions (good
load balance when per-item cost varies, as it does for variable-length
runs).
"""

from __future__ import annotations

import numpy as np

__all__ = ["block_partition", "cyclic_partition", "chunk_sizes"]


def chunk_sizes(n_items: int, n_parts: int) -> list[int]:
    """Sizes of ``n_parts`` balanced blocks covering ``n_items`` items.

    The first ``n_items % n_parts`` blocks get one extra item — the
    canonical balanced-block rule.
    """
    if n_parts < 1:
        raise ValueError(f"n_parts must be >= 1, got {n_parts}")
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    base, extra = divmod(n_items, n_parts)
    return [base + (1 if p < extra else 0) for p in range(n_parts)]


def block_partition(n_items: int, n_parts: int) -> list[np.ndarray]:
    """Contiguous index blocks, balanced to within one item."""
    sizes = chunk_sizes(n_items, n_parts)
    out: list[np.ndarray] = []
    start = 0
    for size in sizes:
        out.append(np.arange(start, start + size))
        start += size
    return out


def cyclic_partition(n_items: int, n_parts: int) -> list[np.ndarray]:
    """Round-robin index assignment: part ``p`` gets items ``p, p+P, p+2P, …``."""
    if n_parts < 1:
        raise ValueError(f"n_parts must be >= 1, got {n_parts}")
    return [np.arange(p, n_items, n_parts) for p in range(n_parts)]
