"""Process-pool map with chunking, ordered results, and pool reuse.

The guides' advice for Python HPC: vectorize inside a process, fan
embarrassingly parallel work across processes. This executor wraps
``concurrent.futures.ProcessPoolExecutor`` with block chunking (amortizes
pickling overhead over many small tasks — per-run feature extraction is
milliseconds, far below the cost of a bare task submission) and falls back
to serial execution transparently when ``n_workers <= 1``, which keeps
tests and seeded experiments deterministic by default.

The pool is started lazily on the first parallel ``map`` and *reused* by
every later call: the active-learning loop refits a forest after every
query, so paying worker spawn/teardown per ``map`` (the old behaviour)
dominated small refits. Call :meth:`close` (or use the executor as a
context manager) to release the workers; a closed executor restarts its
pool lazily if mapped again.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from .partition import block_partition

__all__ = ["Executor", "default_workers"]

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """A sensible worker count: physical parallelism minus one, at least 1."""
    return max(1, (os.cpu_count() or 2) - 1)


def _run_chunk(fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
    return [fn(item) for item in items]


class Executor:
    """Chunked, order-preserving parallel map over a reusable pool.

    Parameters
    ----------
    n_workers:
        Process count; ``<= 1`` runs serially in-process (no pool, no
        pickling — exact same results, easier debugging).
    chunks_per_worker:
        Number of chunks each worker receives; >1 improves load balance
        when per-item cost varies.
    """

    def __init__(self, n_workers: int | None = None, chunks_per_worker: int = 4):
        if chunks_per_worker < 1:
            raise ValueError(f"chunks_per_worker must be >= 1, got {chunks_per_worker}")
        self.n_workers = default_workers() if n_workers is None else max(1, n_workers)
        self.chunks_per_worker = chunks_per_worker
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.n_workers)
        return self._pool

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item, preserving input order.

        ``fn`` and the items must be picklable when ``n_workers > 1``
        (module-level functions; no lambdas). The serial path
        (``n_workers <= 1`` or a single item) is byte-identical to a
        plain list comprehension.
        """
        items = list(items)
        if not items:
            return []
        if self.n_workers <= 1 or len(items) == 1:
            return [fn(item) for item in items]
        n_chunks = min(len(items), self.n_workers * self.chunks_per_worker)
        chunks = [
            [items[i] for i in idx]
            for idx in block_partition(len(items), n_chunks)
            if len(idx)
        ]
        pool = self._ensure_pool()
        chunk_results = list(pool.map(_run_chunk, [fn] * len(chunks), chunks))
        return [r for chunk in chunk_results for r in chunk]

    def __getstate__(self) -> dict:
        # a live pool holds locks and OS handles; callers pickle objects
        # that reference their executor (e.g. a bound map_fn), so ship the
        # configuration only — the copy restarts its pool lazily
        state = self.__dict__.copy()
        state["_pool"] = None
        return state

    def close(self) -> None:
        """Shut the worker pool down; safe to call twice or never.

        A later ``map`` lazily starts a fresh pool, so a closed executor
        stays usable.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    def __del__(self):  # best-effort: never leak worker processes
        try:
            self.close()
        except Exception:  # repro-lint: disable=EH001 -- interpreter may be tearing down; logging here can itself raise
            pass
