"""Chunked parallel map over warm thread/process pools.

The guides' advice for Python HPC: vectorize inside a process, fan
embarrassingly parallel work across workers. This executor wraps
``concurrent.futures`` pools with block chunking (amortizes per-task
overhead over many small tasks — per-run feature extraction is
milliseconds, far below the cost of a bare task submission) and falls
back to serial execution transparently when ``n_workers <= 1``, which
keeps tests and seeded experiments deterministic by default.

Two backends, selected per call site:

* ``"process"`` — a ``ProcessPoolExecutor``. True multi-core scaling for
  Python-bound work, at the cost of crossing a pickle boundary. The map
  function is pickled **once per map call** (not once per chunk, the old
  behaviour) and cached inside each worker by digest, so a bound method
  dragging a whole extractor or dataset through pickle is paid once; big
  array payloads should ride :mod:`repro.parallel.shm` instead of the
  task pickle.
* ``"thread"`` — a ``ThreadPoolExecutor``. No pickling, no copies, no
  spawn cost; the right tool for the repo's GIL-releasing numpy kernels
  (histogram bincounts, blocked entropy, interpolation) and for boxes
  whose CPU affinity mask leaves nothing to scale across.
* ``"auto"`` — ``"process"`` when the affinity mask offers more than one
  core, else ``"thread"`` with the worker count clamped to the mask:
  workers that cannot run concurrently should pay neither the pickle tax
  nor the GIL tax, so on a one-core mask ``n_jobs=8`` degrades cleanly
  to the serial path (same bits, zero fan-out overhead).

Pools are started lazily on the first parallel ``map`` and *reused* by
every later call: the active-learning loop refits a forest after every
query, so paying worker spawn/teardown per ``map`` dominated small
refits. :func:`shared_executor` goes one step further and keeps one warm
pool per ``(backend, n_workers)`` for the whole process, so a campaign's
generate → featurize → fit stages all reuse the same workers.

``map`` and ``close`` serialize on an internal lock: closing an executor
from another thread (or a ``__del__`` racing a map) waits for the
in-flight map to finish instead of surfacing ``BrokenProcessPool``.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from .partition import block_partition

__all__ = [
    "Executor",
    "close_shared_executors",
    "default_workers",
    "effective_cpu_count",
    "resolve_backend",
    "shared_executor",
]

T = TypeVar("T")
R = TypeVar("R")

_BACKENDS = ("process", "thread")


def effective_cpu_count() -> int:
    """Cores this process may actually run on.

    ``os.cpu_count()`` reports the machine; under cgroup quotas or an
    affinity mask (the normal case on HPC nodes, where the batch system
    pins jobs to a core set) the process sees far fewer. Sizing pools to
    the machine then oversubscribes the mask and every worker fights for
    the same cores.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0)) or 1
        except OSError:  # exotic platforms: fall through to cpu_count
            pass
    return os.cpu_count() or 1


def default_workers() -> int:
    """A sensible worker count: available parallelism minus one, at least 1."""
    return max(1, effective_cpu_count() - 1)


def resolve_backend(backend: str) -> str:
    """Resolve ``"auto"`` to a concrete backend for this machine."""
    if backend == "auto":
        return "process" if effective_cpu_count() > 1 else "thread"
    if backend not in _BACKENDS:
        raise ValueError(
            f"backend must be one of {_BACKENDS + ('auto',)}, got {backend!r}"
        )
    return backend


def _run_chunk(fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
    return [fn(item) for item in items]


# ---------------------------------------------------------------------------
# worker-side function cache (process backend)
#
# ``pool.map(_run_chunk, [fn] * n_chunks, chunks)`` pickles ``fn`` once per
# chunk; when fn is a bound method it drags its whole object graph through
# pickle every time. Instead the parent pickles fn once per map call and
# workers unpickle it once each, keyed by digest. The pool initializer
# pre-seeds the first function so the warm-pool steady state (same fn every
# refit) ships the function exactly once per pool.

_FN_CACHE: dict[bytes, Callable] = {}


def _seed_fn_cache(digest: bytes, payload: bytes) -> None:
    _FN_CACHE[digest] = pickle.loads(payload)


def _run_cached_chunk(
    digest: bytes, payload: bytes, items: Sequence[T]
) -> list[R]:
    fn = _FN_CACHE.get(digest)
    if fn is None:
        fn = pickle.loads(payload)
        _FN_CACHE[digest] = fn
    return [fn(item) for item in items]


class Executor:
    """Chunked, order-preserving parallel map over a reusable pool.

    Parameters
    ----------
    n_workers:
        Worker count; ``<= 1`` runs serially in-process (no pool, no
        pickling — exact same results, easier debugging).
    chunks_per_worker:
        Number of chunks each worker receives; >1 improves load balance
        when per-item cost varies.
    backend:
        ``"process"`` (default), ``"thread"``, or ``"auto"`` — resolved
        once at construction via :func:`resolve_backend`.
    """

    def __init__(
        self,
        n_workers: int | None = None,
        chunks_per_worker: int = 4,
        backend: str = "process",
    ):
        if chunks_per_worker < 1:
            raise ValueError(f"chunks_per_worker must be >= 1, got {chunks_per_worker}")
        self.n_workers = default_workers() if n_workers is None else max(1, n_workers)
        self.chunks_per_worker = chunks_per_worker
        self.backend = resolve_backend(backend)
        if backend == "auto" and self.backend == "thread":
            # auto resolved to threads because the affinity mask offers a
            # single core: CPU-bound chunks cannot overlap there, extra
            # threads only thrash the GIL — run the serial path instead.
            # An explicit backend="thread" keeps the requested count.
            self.n_workers = min(self.n_workers, effective_cpu_count())
        self._pool: ProcessPoolExecutor | ThreadPoolExecutor | None = None
        self._seeded_digest: bytes | None = None
        self._lock = threading.RLock()

    def _ensure_pool(
        self, digest: bytes | None = None, payload: bytes | None = None
    ) -> ProcessPoolExecutor | ThreadPoolExecutor:
        if self._pool is None:
            if self.backend == "thread":
                self._pool = ThreadPoolExecutor(max_workers=self.n_workers)
                return self._pool
            # start the resource tracker BEFORE forking workers: a worker
            # forked while no tracker exists spawns its own private one on
            # first SharedMemory attach, whose ledger nobody ever cleans —
            # it then warns about "leaked" segments the parent unlinked
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
            if digest is not None:
                # seed every worker with the first map function at spawn:
                # later maps of the same fn send only its digest
                self._pool = ProcessPoolExecutor(
                    max_workers=self.n_workers,
                    initializer=_seed_fn_cache,
                    initargs=(digest, payload),
                )
                self._seeded_digest = digest
            else:
                self._pool = ProcessPoolExecutor(max_workers=self.n_workers)
        return self._pool

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item, preserving input order.

        ``fn`` and the items must be picklable when ``n_workers > 1``
        and the backend is ``"process"`` (module-level functions or
        picklable callables; no lambdas). The thread backend and the
        serial path (``n_workers <= 1`` or a single item) carry no such
        restriction and are byte-identical to a plain list comprehension.
        """
        items = list(items)
        if not items:
            return []
        if self.n_workers <= 1 or len(items) == 1:
            return [fn(item) for item in items]
        n_chunks = min(len(items), self.n_workers * self.chunks_per_worker)
        chunks = [
            [items[i] for i in idx]
            for idx in block_partition(len(items), n_chunks)
            if len(idx)
        ]
        with self._lock:
            if self.backend == "thread":
                pool = self._ensure_pool()
                chunk_results = list(
                    pool.map(_run_chunk, [fn] * len(chunks), chunks)
                )
            else:
                payload = pickle.dumps(fn, protocol=pickle.HIGHEST_PROTOCOL)
                digest = hashlib.sha256(payload).digest()
                pool = self._ensure_pool(digest, payload)
                if digest == self._seeded_digest:
                    # every worker was born with this fn: ship digest only
                    payloads: list[bytes] = [b""] * len(chunks)
                else:
                    payloads = [payload] * len(chunks)
                chunk_results = list(
                    pool.map(
                        _run_cached_chunk,
                        [digest] * len(chunks),
                        payloads,
                        chunks,
                    )
                )
        return [r for chunk in chunk_results for r in chunk]

    def __getstate__(self) -> dict:
        # a live pool holds locks and OS handles; callers pickle objects
        # that reference their executor (e.g. a bound map_fn), so ship the
        # configuration only — the copy restarts its pool lazily
        state = self.__dict__.copy()
        state["_pool"] = None
        state["_seeded_digest"] = None
        state["_lock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        state.setdefault("backend", "process")
        state.setdefault("_seeded_digest", None)
        self.__dict__.update(state)
        self._lock = threading.RLock()

    def close(self) -> None:
        """Shut the worker pool down; safe to call twice or never.

        Serialized against ``map``: a close racing an in-flight map waits
        for the map to complete rather than breaking the pool under it.
        A later ``map`` lazily starts a fresh pool, so a closed executor
        stays usable.
        """
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
                self._seeded_digest = None

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    def __del__(self):  # best-effort: never leak worker processes
        try:
            if getattr(self, "_lock", None) is not None:
                self.close()
        except Exception:  # repro-lint: disable=EH001 -- interpreter may be tearing down; logging here can itself raise
            pass


# ---------------------------------------------------------------------------
# process-wide warm pools
#
# A campaign touches the executor from several layers (grid generation,
# feature extraction, forest fitting). Giving each layer its own pool pays
# spawn/teardown at every stage boundary; sharing one pool per
# (backend, n_workers) keeps the workers — and their function caches — warm
# across the whole generate → featurize → fit sequence.

_SHARED_LOCK = threading.Lock()
_SHARED: dict[tuple[str, int], Executor] = {}


def shared_executor(
    n_workers: int, backend: str = "auto", chunks_per_worker: int = 4
) -> Executor:
    """The process-wide warm executor for ``(backend, n_workers)``.

    Callers must **not** close the returned executor (closing it is
    harmless — it restarts lazily — but throws the warmth away);
    :func:`close_shared_executors` runs at interpreter exit.
    """
    key = (resolve_backend(backend), max(1, int(n_workers)))
    with _SHARED_LOCK:
        ex = _SHARED.get(key)
        if ex is None:
            # pass the caller's literal backend: "auto" resolving to
            # threads also clamps workers to the one-core mask
            ex = Executor(
                n_workers=key[1],
                chunks_per_worker=chunks_per_worker,
                backend=backend,
            )
            _SHARED[key] = ex
        return ex


def close_shared_executors() -> None:
    """Shut down every process-wide pool (idempotent; used at exit)."""
    with _SHARED_LOCK:
        executors = list(_SHARED.values())
        _SHARED.clear()
    for ex in executors:
        ex.close()


atexit.register(close_shared_executors)
