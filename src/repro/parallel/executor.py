"""Process-pool map with chunking and ordered results.

The guides' advice for Python HPC: vectorize inside a process, fan
embarrassingly parallel work across processes. This executor wraps
``concurrent.futures.ProcessPoolExecutor`` with block chunking (amortizes
pickling overhead over many small tasks — per-run feature extraction is
milliseconds, far below the cost of a bare task submission) and falls back
to serial execution transparently when ``n_workers <= 1``, which keeps
tests and seeded experiments deterministic by default.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from .partition import block_partition

__all__ = ["Executor", "default_workers"]

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """A sensible worker count: physical parallelism minus one, at least 1."""
    return max(1, (os.cpu_count() or 2) - 1)


def _run_chunk(fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
    return [fn(item) for item in items]


class Executor:
    """Chunked, order-preserving parallel map.

    Parameters
    ----------
    n_workers:
        Process count; ``<= 1`` runs serially in-process (no pool, no
        pickling — exact same results, easier debugging).
    chunks_per_worker:
        Number of chunks each worker receives; >1 improves load balance
        when per-item cost varies.
    """

    def __init__(self, n_workers: int | None = None, chunks_per_worker: int = 4):
        if chunks_per_worker < 1:
            raise ValueError(f"chunks_per_worker must be >= 1, got {chunks_per_worker}")
        self.n_workers = default_workers() if n_workers is None else max(1, n_workers)
        self.chunks_per_worker = chunks_per_worker

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item, preserving input order.

        ``fn`` and the items must be picklable when ``n_workers > 1``
        (module-level functions; no lambdas).
        """
        items = list(items)
        if not items:
            return []
        if self.n_workers <= 1 or len(items) == 1:
            return [fn(item) for item in items]
        n_chunks = min(len(items), self.n_workers * self.chunks_per_worker)
        chunks = [
            [items[i] for i in idx]
            for idx in block_partition(len(items), n_chunks)
            if len(idx)
        ]
        with ProcessPoolExecutor(max_workers=self.n_workers) as pool:
            chunk_results = list(
                pool.map(_run_chunk, [fn] * len(chunks), chunks)
            )
        return [r for chunk in chunk_results for r in chunk]
