"""repro.anomalies — HPAS-style synthetic performance anomalies.

The five injectors the paper uses (cpuoccupy, cachecopy, membw, memleak,
dial) plus the intensity grids of both systems.
"""

from .base import ECLIPSE_INTENSITIES, VOLTA_INTENSITIES, Anomaly
from .injectors import (
    ANOMALIES,
    CacheCopy,
    CpuOccupy,
    Dial,
    MemBandwidth,
    MemLeak,
    get_anomaly,
)

__all__ = [
    "ANOMALIES",
    "Anomaly",
    "CacheCopy",
    "CpuOccupy",
    "Dial",
    "ECLIPSE_INTENSITIES",
    "MemBandwidth",
    "MemLeak",
    "VOLTA_INTENSITIES",
    "get_anomaly",
]
