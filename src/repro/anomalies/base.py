"""Anomaly protocol (HPAS stand-in, paper Sec. IV-C / Table III).

An anomaly is a co-running process on the application's first allocated
node that perturbs the node's resource demand. Injection operates in the
same demand space as application signatures: the injector receives the
application's (T, n_dims) demand timeline and returns the *combined*
timeline the node actually experiences. Intensity ∈ (0, 1] scales the
perturbation — the paper uses 2/5/10/20/50/100% on Volta and 2–3 settings
per type on Eclipse.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mlcore.base import check_random_state
from ..telemetry.catalog import RESOURCE_DIMS

__all__ = ["Anomaly", "VOLTA_INTENSITIES", "ECLIPSE_INTENSITIES"]

# the paper's injection settings
VOLTA_INTENSITIES = (0.02, 0.05, 0.10, 0.20, 0.50, 1.00)
ECLIPSE_INTENSITIES = (0.10, 0.50, 1.00)


@dataclass(frozen=True)
class Anomaly:
    """Base class for synthetic performance anomalies.

    Subclasses override :meth:`perturbation` to describe what the anomaly
    process adds to (or subtracts from) node demand; :meth:`inject` applies
    it with intensity scaling, per-run jitter, and a non-negativity floor.
    """

    name: str = "anomaly"

    def perturbation(
        self, T: int, intensity: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Return the (T, n_dims) demand delta at full specification.

        Subclasses implement this; the base class raises.
        """
        raise NotImplementedError

    def inject(
        self,
        demand: np.ndarray,
        intensity: float,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Combine the application's demand with this anomaly's perturbation."""
        if not 0.0 < intensity <= 1.0:
            raise ValueError(f"intensity must be in (0, 1], got {intensity}")
        demand = np.asarray(demand, dtype=np.float64)
        if demand.ndim != 2 or demand.shape[1] != len(RESOURCE_DIMS):
            raise ValueError(
                f"demand must be (T, {len(RESOURCE_DIMS)}), got {demand.shape}"
            )
        rng = check_random_state(rng)
        delta = self.perturbation(demand.shape[0], intensity, rng)
        if delta.shape != demand.shape:
            raise RuntimeError(
                f"{type(self).__name__}.perturbation returned {delta.shape}, "
                f"expected {demand.shape}"
            )
        return np.maximum(demand + delta, 0.0)

    @staticmethod
    def _dim(name: str) -> int:
        return RESOURCE_DIMS.index(name)
