"""The five HPAS anomalies the paper injects (Table III + the `dial` of Fig. 4).

* **cpuoccupy** — a spinning arithmetic process: adds constant CPU demand.
* **cachecopy** — repeated cache-sized read/write loops: cache pressure plus
  secondary CPU and memory-bandwidth load (evictions spill to DRAM).
* **membw** — uncached (streaming/non-temporal) memory writes: heavy memory
  bandwidth with a modest CPU footprint.
* **memleak** — increasingly allocates and fills memory: a *ramp* in
  resident memory plus the fill traffic; the temporal trend (not the level)
  is its fingerprint, which is why trend-type features matter.
* **dial** — perturbs effective CPU frequency: unlike the additive
  anomalies it *modulates* the application's own CPU-coupled demand
  downward while leaving memory/network structure mostly intact. The paper
  finds it the most-confused anomaly on Volta (lowest per-class F1, most
  queried); its multiplicative, signature-preserving character is exactly
  why.

All perturbations carry small stochastic jitter so repeated injections of
the same (anomaly, intensity) differ run to run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..telemetry.catalog import RESOURCE_DIMS
from .base import Anomaly

__all__ = [
    "CpuOccupy",
    "CacheCopy",
    "MemBandwidth",
    "MemLeak",
    "Dial",
    "ANOMALIES",
    "get_anomaly",
]


def _noisy(base: float, rng: np.random.Generator, T: int, rel: float = 0.08) -> np.ndarray:
    """A jittered constant level: base * (1 + small AR-ish noise)."""
    noise = rng.normal(scale=rel, size=T)
    # one-pole smoothing so the jitter looks like process load, not white noise
    for i in range(1, T):
        noise[i] = 0.7 * noise[i - 1] + 0.3 * noise[i]
    return base * (1.0 + noise)


def _duty_cycle(
    T: int, intensity: float, rng: np.random.Generator, period: float = 10.0
) -> np.ndarray:
    """HPAS-style duty-cycled activity: 1.0 while the anomaly process is
    busy, 0.0 while it sleeps, with ``intensity`` as the busy fraction.

    HPAS anomalies throttle themselves by busy/sleep alternation inside a
    fixed period, so even a 2%-intensity anomaly produces full-amplitude
    excursions — just rarely. That is what makes low intensities hard but
    not impossible for the classifier, matching the paper's behaviour.
    ``intensity == 1`` is continuously active.
    """
    if intensity >= 1.0:
        return np.ones(T)
    t = np.arange(T, dtype=np.float64)
    phase = rng.uniform(0.0, period)
    jittered_period = period * rng.uniform(0.7, 1.4)
    pos = ((t + phase) % jittered_period) / jittered_period
    return (pos < intensity).astype(np.float64)


@dataclass(frozen=True)
class CpuOccupy(Anomaly):
    """CPU-intensive co-process performing arithmetic operations."""

    name: str = "cpuoccupy"

    def perturbation(self, T: int, intensity: float, rng: np.random.Generator) -> np.ndarray:
        delta = np.zeros((T, len(RESOURCE_DIMS)))
        duty = _duty_cycle(T, intensity, rng, period=30.0)
        amp = rng.uniform(0.6, 1.15)
        delta[:, self._dim("cpu")] = _noisy(0.85 * amp, rng, T) * duty
        delta[:, self._dim("cache")] = _noisy(0.10 * amp, rng, T) * duty
        return delta


@dataclass(frozen=True)
class CacheCopy(Anomaly):
    """Cache contention: repeated cache read & write sweeps."""

    name: str = "cachecopy"

    def perturbation(self, T: int, intensity: float, rng: np.random.Generator) -> np.ndarray:
        delta = np.zeros((T, len(RESOURCE_DIMS)))
        duty = _duty_cycle(T, intensity, rng, period=24.0)
        amp = rng.uniform(0.6, 1.15)
        delta[:, self._dim("cache")] = _noisy(0.90 * amp, rng, T) * duty
        delta[:, self._dim("cpu")] = _noisy(0.25 * amp, rng, T) * duty
        # evicted lines spill to DRAM
        delta[:, self._dim("membw")] = _noisy(0.30 * amp, rng, T) * duty
        return delta


@dataclass(frozen=True)
class MemBandwidth(Anomaly):
    """Memory-bandwidth contention: uncached (streaming) memory writes."""

    name: str = "membw"

    def perturbation(self, T: int, intensity: float, rng: np.random.Generator) -> np.ndarray:
        delta = np.zeros((T, len(RESOURCE_DIMS)))
        duty = _duty_cycle(T, intensity, rng, period=18.0)
        amp = rng.uniform(0.6, 1.15)
        delta[:, self._dim("membw")] = _noisy(0.95 * amp, rng, T) * duty
        delta[:, self._dim("cpu")] = _noisy(0.15 * amp, rng, T) * duty
        delta[:, self._dim("mem")] = _noisy(0.10 * amp, rng, T) * duty
        return delta


@dataclass(frozen=True)
class MemLeak(Anomaly):
    """Memory leak: increasingly allocate & fill memory (a resident ramp)."""

    name: str = "memleak"

    def perturbation(self, T: int, intensity: float, rng: np.random.Generator) -> np.ndarray:
        delta = np.zeros((T, len(RESOURCE_DIMS)))
        # resident memory ramps from 0 to ~intensity over the run, with a
        # jittered leak rate so the slope varies between runs
        rate = intensity * rng.uniform(0.85, 1.15)
        ramp = np.linspace(0.0, rate, T)
        delta[:, self._dim("mem")] = ramp
        # allocation+fill happens in bursts whose frequency tracks intensity
        duty = _duty_cycle(T, max(intensity, 0.05), rng, period=16.0)
        amp = rng.uniform(0.6, 1.15)
        delta[:, self._dim("membw")] = _noisy(0.35 * amp, rng, T) * duty
        delta[:, self._dim("cpu")] = _noisy(0.12 * amp, rng, T) * duty
        return delta


@dataclass(frozen=True)
class Dial(Anomaly):
    """CPU frequency reduction: multiplicatively degrades CPU-coupled demand.

    ``perturbation`` cannot express a multiplicative effect, so ``inject``
    is overridden: the application's cpu/cache demand is scaled by
    ``1 − 0.5·intensity`` (frequency dialed down), and the run gains a
    slight uniform activity reduction. At low intensities this is nearly
    indistinguishable from ordinary run-to-run variation — reproducing the
    paper's "dial is the most confusing anomaly type" observation.
    """

    name: str = "dial"

    def inject(
        self,
        demand: np.ndarray,
        intensity: float,
        rng=None,
    ) -> np.ndarray:
        from ..mlcore.base import check_random_state

        if not 0.0 < intensity <= 1.0:
            raise ValueError(f"intensity must be in (0, 1], got {intensity}")
        demand = np.asarray(demand, dtype=np.float64)
        rng = check_random_state(rng)
        T = demand.shape[0]
        out = demand.copy()
        # HPAS's dial steps the frequency between max and min on a cycle;
        # intensity is the fraction of time spent dialed down (same duty
        # convention as the additive anomalies), and the dialed-down
        # slowdown is the fixed max/min frequency ratio of the part
        dialed = _duty_cycle(T, intensity, rng, period=30.0)
        depth = 0.55 * rng.uniform(0.7, 1.2)
        slow = 1.0 - depth * dialed  # (T,)
        for dim in ("cpu", "cache"):
            out[:, self._dim(dim)] *= slow
        # lower frequency → everything downstream progresses a bit slower
        for dim in ("membw", "net", "io"):
            out[:, self._dim(dim)] *= 1.0 - 0.3 * depth * dialed
        return np.maximum(out, 0.0)

    def perturbation(self, T: int, intensity: float, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError("Dial is multiplicative; use inject()")


ANOMALIES: dict[str, Anomaly] = {
    a.name: a
    for a in (CpuOccupy(), CacheCopy(), MemBandwidth(), MemLeak(), Dial())
}


def get_anomaly(name: str) -> Anomaly:
    """Look up an anomaly injector by its paper name."""
    try:
        return ANOMALIES[name]
    except KeyError:
        raise ValueError(
            f"unknown anomaly {name!r}; available: {sorted(ANOMALIES)}"
        ) from None
