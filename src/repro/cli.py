"""Command-line interface: ``python -m repro <command>``.

The operational surface a site would actually script against:

* ``collect``  — run a telemetry campaign on the simulated system and save
  the raw runs to an ``.npz`` archive;
* ``train``    — split an archive Fig. 2-style, train ALBADross with the
  active-learning loop (ground-truth oracle), and save the model;
* ``diagnose`` — load a model and an archive, print per-run diagnoses;
* ``evaluate`` — load a model and a *labeled* archive, print the paper's
  metrics (macro F1, false-alarm and anomaly-miss rates) plus the
  per-class report;
* ``info``     — show the system inventories (apps, anomalies, metrics);
* ``registry`` — manage the versioned serving model registry
  (list / publish / rollback / activate);
* ``serve-batch`` — score an archive through the online
  :class:`~repro.serving.service.DiagnosisService` (micro-batching,
  cache, escalation) and print the service counters;
* ``fleet-serve`` — score an archive through the sharded
  :class:`~repro.serving.fleet.FleetService` (consistent-hash routing,
  per-shard breaker/watchdog, optional durable job store);
* ``queue`` — operate the durable job queue
  (list / inspect / requeue / purge).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema (separate for testability)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ALBADross: active-learning anomaly diagnosis for HPC systems",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("collect", help="run a campaign, save raw runs")
    p.add_argument("--system", choices=("volta", "eclipse"), default="volta")
    p.add_argument("--scale", type=float, default=0.05)
    p.add_argument("--healthy-per-cell", type=int, default=6)
    p.add_argument("--anomalous-per-cell", type=int, default=6)
    p.add_argument("--duration", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--n-jobs", type=int, default=None,
                   help="worker processes for the campaign (per-run seed "
                        "streams; same bytes at any count). Default: the "
                        "legacy serial generator")
    p.add_argument("--out", type=Path, required=True)

    p = sub.add_parser("train", help="train ALBADross on a run archive")
    p.add_argument("--runs", type=Path, required=True)
    p.add_argument("--system", choices=("volta", "eclipse"), default="volta")
    p.add_argument("--scale", type=float, default=0.05)
    p.add_argument("--features", choices=("mvts", "tsfresh"), default="mvts")
    p.add_argument("--n-features", type=int, default=300)
    p.add_argument("--strategy", choices=("uncertainty", "margin", "entropy"),
                   default="uncertainty")
    p.add_argument("--max-queries", type=int, default=50)
    p.add_argument("--target-f1", type=float, default=None)
    p.add_argument("--splitter", choices=("exact", "hist"), default="exact",
                   help="tree split search: exact (reference) or hist "
                        "(histogram-binned, much faster)")
    p.add_argument("--n-jobs", type=int, default=1,
                   help="worker processes for feature extraction and forest "
                        "fitting (1 = serial)")
    p.add_argument("--warm-start", action="store_true",
                   help="incremental AL refits: keep trees across rounds, "
                        "regrow only a seeded subset per query (needs "
                        "--splitter hist)")
    p.add_argument("--refresh-fraction", type=float, default=0.25,
                   help="fraction of trees regrown per warm refit "
                        "(1.0 = bit-exact to cold refits)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", type=Path, required=True)

    p = sub.add_parser("diagnose", help="diagnose runs with a trained model")
    p.add_argument("--model", type=Path, required=True)
    p.add_argument("--runs", type=Path, required=True)
    p.add_argument("--limit", type=int, default=None)

    p = sub.add_parser("evaluate", help="score a trained model on labeled runs")
    p.add_argument("--model", type=Path, required=True)
    p.add_argument("--runs", type=Path, required=True)

    p = sub.add_parser("info", help="show system inventories")
    p.add_argument("--system", choices=("volta", "eclipse"), default="volta")

    p = sub.add_parser("registry", help="manage the serving model registry")
    p.add_argument("action", choices=("list", "publish", "rollback", "activate"))
    p.add_argument("--root", type=Path, required=True,
                   help="registry directory")
    p.add_argument("--model", type=Path, default=None,
                   help="saved framework to publish (publish only)")
    p.add_argument("--tag", default=None, help="tag for the published version")
    p.add_argument("--ref", default=None,
                   help="version id or tag (rollback/activate target)")

    p = sub.add_parser("serve-batch",
                       help="score an archive through the online service")
    p.add_argument("--registry", type=Path, required=True)
    p.add_argument("--runs", type=Path, required=True)
    p.add_argument("--ref", default="current",
                   help="registry version to serve (default: current)")
    p.add_argument("--max-batch", type=int, default=32)
    p.add_argument("--linger-ms", type=float, default=5.0)
    p.add_argument("--limit", type=int, default=None)
    p.add_argument("--escalate", action="store_true",
                   help="route low-confidence verdicts to the escalation queue")
    p.add_argument("--retrain", action="store_true",
                   help="after serving, close the loop: annotate escalated "
                        "runs with their archived labels, refit, publish, "
                        "and adopt the new version (needs --escalate)")
    p.add_argument("--warm-start", action="store_true",
                   help="use the incremental refit path for --retrain "
                        "(falls back to a cold rebuild when the model "
                        "cannot warm-refit)")
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="per-request TTL; expired requests fail fast")
    p.add_argument("--retries", type=int, default=0,
                   help="retries (with backoff) for transient scoring failures")
    p.add_argument("--degrade-after", type=int, default=None,
                   help="serve flagged fallback diagnoses after N consecutive "
                        "batch failures (circuit breaker)")
    p.add_argument("--stall-timeout-s", type=float, default=None,
                   help="watchdog: restart a dispatch loop stuck this long")
    p.add_argument("--health", action="store_true",
                   help="print the health/readiness probe after serving")
    p.add_argument("--stats-json", type=Path, default=None,
                   help="dump a machine-readable ServiceStats snapshot "
                        "(plus health) to this path for scraping")

    p = sub.add_parser("fleet-serve",
                       help="score an archive through the sharded fleet")
    p.add_argument("--registry", type=Path, required=True)
    p.add_argument("--runs", type=Path, required=True)
    p.add_argument("--ref", default="current",
                   help="registry version to serve (default: current)")
    p.add_argument("--shards", type=int, default=4,
                   help="engine shards in the pool")
    p.add_argument("--vnodes", type=int, default=64,
                   help="virtual nodes per shard on the hash ring")
    p.add_argument("--max-batch", type=int, default=32)
    p.add_argument("--linger-ms", type=float, default=5.0)
    p.add_argument("--limit", type=int, default=None)
    p.add_argument("--escalate", action="store_true",
                   help="route low-confidence verdicts to the escalation queue")
    p.add_argument("--jobs-db", type=Path, default=None,
                   help="durable job queue database; escalations flush "
                        "here at shutdown and survive crashes")
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="per-request TTL; expired requests fail fast")
    p.add_argument("--retries", type=int, default=0,
                   help="retries (with backoff) for transient scoring failures")
    p.add_argument("--degrade-after", type=int, default=None,
                   help="per-shard circuit breaker threshold")
    p.add_argument("--stall-timeout-s", type=float, default=None,
                   help="per-shard watchdog stall timeout")
    p.add_argument("--health", action="store_true",
                   help="print the fleet health probe after serving")
    p.add_argument("--stats-json", type=Path, default=None,
                   help="dump the aggregated fleet stats snapshot "
                        "(plus health) to this path for scraping")

    p = sub.add_parser(
        "lint",
        help="run the invariant-enforcing static analysis suite",
    )
    p.add_argument("paths", nargs="*", default=None,
                   help="files/directories to lint (default: src and tests "
                        "under the current directory)")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   dest="fmt", help="report format")
    p.add_argument("--rules", default=None,
                   help="comma-separated rule ids to run (default: all)")
    p.add_argument("--baseline", type=Path, default=None,
                   help="baseline JSON; grandfathered findings there do not "
                        "fail the run")
    p.add_argument("--write-baseline", type=Path, default=None,
                   help="write the current findings to this baseline file "
                        "and exit 0")

    p = sub.add_parser("queue", help="operate the durable job queue")
    p.add_argument("action", choices=("list", "inspect", "requeue", "purge"))
    p.add_argument("--db", type=Path, required=True,
                   help="job queue database file")
    p.add_argument("--state", default=None,
                   help="filter (list) or target (purge) job state")
    p.add_argument("--kind", default=None, help="filter by job kind (list)")
    p.add_argument("--job-id", type=int, default=None,
                   help="job to inspect or requeue")
    p.add_argument("--limit", type=int, default=50,
                   help="max rows to list")
    return parser


# ----------------------------------------------------------------------
def _config_for(args) -> "SystemConfig":
    from .datasets import eclipse_config, volta_config

    maker = volta_config if args.system == "volta" else eclipse_config
    kwargs = dict(scale=args.scale)
    if getattr(args, "healthy_per_cell", None) is not None and hasattr(args, "healthy_per_cell"):
        kwargs["n_healthy_per_app_input"] = args.healthy_per_cell
        kwargs["n_anomalous_per_app_anomaly"] = args.anomalous_per_cell
        kwargs["duration"] = args.duration
    return maker(**kwargs)


def _cmd_collect(args) -> int:
    from .datasets import generate_runs
    from .datasets.runs_io import save_runs

    config = _config_for(args)
    runs = generate_runs(config, rng=args.seed, n_jobs=args.n_jobs)
    path = save_runs(runs, args.out)
    labels = sorted({r.label for r in runs})
    print(f"collected {len(runs)} runs on {config.name} "
          f"({len(config.catalog)} metrics, {config.duration}s @ 1 Hz)")
    print(f"labels: {labels}")
    print(f"saved to {path}")
    return 0


def _cmd_train(args) -> int:
    from .core import ALBADross, FrameworkConfig, save_framework
    from .datasets.runs_io import load_runs

    runs = load_runs(args.runs)
    rng = np.random.default_rng(args.seed)
    order = rng.permutation(len(runs))
    seed_runs, pool_runs, val_runs = [], [], []
    seen = set()
    for i in order:
        run = runs[i]
        key = (run.app, run.label)
        if key not in seen:
            seen.add(key)
            seed_runs.append(run)
        elif rng.random() < 0.25:
            val_runs.append(run)
        else:
            pool_runs.append(run)
    if not val_runs or not pool_runs:
        print("archive too small to split into seed/pool/validation", file=sys.stderr)
        return 2

    if args.warm_start and args.splitter != "hist":
        print("--warm-start requires --splitter hist", file=sys.stderr)
        return 2
    config = _config_for(args)
    framework = ALBADross(
        config.catalog,
        FrameworkConfig(
            feature_method=args.features,
            n_features=args.n_features,
            query_strategy=args.strategy,
            max_queries=args.max_queries,
            target_f1=args.target_f1,
            splitter=args.splitter,
            n_jobs=args.n_jobs,
            warm_start=args.warm_start,
            refresh_fraction=args.refresh_fraction,
            random_state=args.seed,
        ),
    )
    print(f"seed={len(seed_runs)} pool={len(pool_runs)} validation={len(val_runs)}")
    framework.fit_features(seed_runs + pool_runs)
    framework.fit_initial(seed_runs, [r.label for r in seed_runs])
    result = framework.learn(
        pool_runs, [r.label for r in pool_runs],
        val_runs, [r.label for r in val_runs],
    )
    print(f"active learning: F1 {result.initial_f1:.3f} -> {result.final_f1:.3f} "
          f"with {result.oracle.n_queries} annotator queries")
    path = save_framework(framework, args.out)
    print(f"model saved to {path}")
    return 0


def _cmd_diagnose(args) -> int:
    from .core import load_framework
    from .datasets.runs_io import load_runs

    framework = load_framework(args.model)
    runs = load_runs(args.runs)
    if args.limit is not None:
        runs = runs[: args.limit]
    for run, diag in zip(runs, framework.diagnose(runs)):
        print(f"{run.app:<12} deck={run.input_deck} node={run.node_id:<4} "
              f"-> {diag.label:<10} (confidence {diag.confidence:.2f})")
    return 0


def _cmd_evaluate(args) -> int:
    from .core import load_framework
    from .datasets.runs_io import load_runs
    from .mlcore import (
        anomaly_miss_rate,
        classification_report,
        f1_score,
        false_alarm_rate,
    )

    framework = load_framework(args.model)
    runs = load_runs(args.runs)
    truth = np.array([r.label for r in runs])
    pred = np.array([d.label for d in framework.diagnose(runs)])
    print(f"macro F1          : {f1_score(truth, pred):.3f}")
    print(f"false alarm rate  : {false_alarm_rate(truth, pred):.3f}")
    print(f"anomaly miss rate : {anomaly_miss_rate(truth, pred):.3f}")
    print()
    print(classification_report(truth, pred))
    return 0


def _cmd_info(args) -> int:
    from .anomalies import ANOMALIES
    from .apps import ECLIPSE_APPS, VOLTA_APPS
    from .telemetry import eclipse_catalog, volta_catalog

    if args.system == "volta":
        apps, catalog = VOLTA_APPS, volta_catalog()
    else:
        apps, catalog = ECLIPSE_APPS, eclipse_catalog()
    print(f"system: {args.system}")
    print(f"metrics: {len(catalog)} (full-scale catalog)")
    print("applications:")
    for name, app in sorted(apps.items()):
        print(f"  {name:<12} suite={app.suite:<10} inputs={app.n_inputs} "
              f"variation={app.run_variation}")
    print("anomalies:")
    for name in sorted(ANOMALIES):
        print(f"  {name}")
    return 0


def _cmd_registry(args) -> int:
    from .core import load_framework
    from .serving import ModelRegistry, RegistryError

    registry = ModelRegistry(args.root)
    try:
        if args.action == "list":
            versions = registry.list_versions()
            if not versions:
                print("registry is empty")
                return 0
            current = registry.current_id()
            for v in versions:
                marker = "*" if v.version_id == current else " "
                tag = v.tag or "-"
                print(f"{marker} {v.version_id}  tag={tag:<12} "
                      f"features={v.manifest.get('n_features')} "
                      f"fingerprint={v.manifest.get('train_fingerprint')}")
            return 0
        if args.action == "publish":
            if args.model is None:
                print("registry publish requires --model", file=sys.stderr)
                return 2
            framework = load_framework(args.model)
            version = registry.publish(framework, tag=args.tag)
            print(f"published {version.version_id}"
                  + (f" (tag {version.tag})" if version.tag else ""))
            return 0
        if args.action == "rollback":
            version = registry.rollback(args.ref)
            print(f"current -> {version.version_id}")
            return 0
        # activate
        if args.ref is None:
            print("registry activate requires --ref", file=sys.stderr)
            return 2
        version = registry.activate(args.ref)
        print(f"current -> {version.version_id}")
        return 0
    except RegistryError as exc:
        print(f"registry error: {exc}", file=sys.stderr)
        return 2


def _cmd_serve_batch(args) -> int:
    from .datasets.runs_io import load_runs
    from .serving import (
        CircuitBreaker,
        DiagnosisService,
        EscalationQueue,
        ModelRegistry,
        RegistryError,
        RetryPolicy,
        ServingError,
    )

    runs = load_runs(args.runs)
    if args.limit is not None:
        runs = runs[: args.limit]
    if args.retrain and not args.escalate:
        print("--retrain needs --escalate (nothing to learn from otherwise)",
              file=sys.stderr)
        return 2
    escalation = EscalationQueue() if args.escalate else None
    breaker = (
        CircuitBreaker(failure_threshold=args.degrade_after)
        if args.degrade_after is not None
        else None
    )
    retry = RetryPolicy(max_retries=args.retries) if args.retries > 0 else None
    service = DiagnosisService(
        ModelRegistry(args.registry),
        max_batch=args.max_batch,
        max_linger_s=args.linger_ms / 1000.0,
        escalation=escalation,
        default_deadline_s=(
            args.deadline_ms / 1000.0 if args.deadline_ms is not None else None
        ),
        retry=retry,
        breaker=breaker,
        watchdog_stall_s=args.stall_timeout_s,
    )
    try:
        service.start(args.ref)
    except RegistryError as exc:
        print(f"registry error: {exc}", file=sys.stderr)
        return 2
    failures: dict[str, int] = {}
    with service:
        print(f"serving {service.version.version_id} "
              f"(fingerprint {service.version.manifest.get('train_fingerprint')})")
        # submit singly so the micro-batcher does the coalescing
        futures = [service.submit(run) for run in runs]
        diagnoses = []
        for f in futures:
            try:
                diagnoses.append(f.result())
            except ServingError as exc:
                kind = type(exc).__name__
                failures[kind] = failures.get(kind, 0) + 1
        if args.retrain:
            # the archive carries ground truth; label escalations with it
            version = service.retrain_and_publish(
                lambda item: item.run.label,
                tag="serve-batch-retrain",
                warm=args.warm_start,
            )
            if version is None:
                print("retrain: no escalations to learn from")
            else:
                mode = "warm" if service.stats.snapshot()["warm_refits"] else "cold"
                print(f"retrained ({mode}) and adopted {version.version_id}")
        health = service.health() if args.health else None
    labels: dict[str, int] = {}
    for d in diagnoses:
        labels[d.label] = labels.get(d.label, 0) + 1
    print(f"scored {len(diagnoses)} runs")
    for label, count in sorted(labels.items()):
        print(f"  {label:<12} {count}")
    for kind, count in sorted(failures.items()):
        print(f"  [failed] {kind:<12} {count}")
    snap = service.stats.snapshot()
    print("service stats:")
    for key in ("requests", "batches", "mean_batch_size",
                "mean_batch_latency_s", "cache_hits", "escalations",
                "retries", "deadline_drops", "watchdog_restarts",
                "degraded_responses", "model_swaps", "warm_refits"):
        value = snap[key]
        print(f"  {key:<22} {value:.4f}" if isinstance(value, float)
              else f"  {key:<22} {value}")
    print(f"  batch_size_histogram   {snap['batch_size_histogram']}")
    if escalation is not None:
        print(f"escalation queue depth: {len(escalation)} "
              f"(rate {escalation.escalation_rate:.2f})")
    if health is not None:
        print("health:")
        for key, value in health.items():
            shown = f"{value:.4f}" if isinstance(value, float) else value
            print(f"  {key:<22} {shown}")
    if args.stats_json is not None:
        _write_stats_json(args.stats_json, snap, health)
    return 0


def _write_stats_json(path: Path, stats: dict, health: dict | None) -> None:
    """Dump a machine-readable stats snapshot for external scrapers."""
    import json
    import time as _time

    doc = {"captured_at": _time.time(), "stats": stats}
    if health is not None:
        doc["health"] = health
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"stats snapshot written to {path}")


def _cmd_fleet_serve(args) -> int:
    from .datasets.runs_io import load_runs
    from .serving import (
        CircuitBreaker,
        EscalationQueue,
        FleetService,
        JobQueue,
        ModelRegistry,
        RegistryError,
        RetryPolicy,
        ServingError,
    )

    runs = load_runs(args.runs)
    if args.limit is not None:
        runs = runs[: args.limit]
    jobs = JobQueue(args.jobs_db) if args.jobs_db is not None else None
    escalation = (
        EscalationQueue(store=jobs) if (args.escalate or jobs is not None)
        else None
    )
    breaker_factory = (
        (lambda: CircuitBreaker(failure_threshold=args.degrade_after))
        if args.degrade_after is not None
        else None
    )
    retry = RetryPolicy(max_retries=args.retries) if args.retries > 0 else None
    fleet = FleetService(
        ModelRegistry(args.registry),
        n_shards=args.shards,
        vnodes=args.vnodes,
        escalation=escalation,
        jobs=jobs,
        max_batch=args.max_batch,
        max_linger_s=args.linger_ms / 1000.0,
        default_deadline_s=(
            args.deadline_ms / 1000.0 if args.deadline_ms is not None else None
        ),
        retry=retry,
        breaker_factory=breaker_factory,
        watchdog_stall_s=args.stall_timeout_s,
    )
    try:
        fleet.start(args.ref)
    except RegistryError as exc:
        print(f"registry error: {exc}", file=sys.stderr)
        return 2
    failures: dict[str, int] = {}
    with fleet:
        print(f"fleet of {args.shards} shards serving "
              f"{fleet.version.version_id}")
        futures = [fleet.submit(run) for run in runs]
        diagnoses = []
        for f in futures:
            try:
                diagnoses.append(f.result())
            except ServingError as exc:
                kind = type(exc).__name__
                failures[kind] = failures.get(kind, 0) + 1
        health = fleet.health() if args.health else None
        snap = fleet.stats_snapshot()
    labels: dict[str, int] = {}
    for d in diagnoses:
        labels[d.label] = labels.get(d.label, 0) + 1
    print(f"scored {len(diagnoses)} runs across {args.shards} shards")
    for label, count in sorted(labels.items()):
        print(f"  {label:<12} {count}")
    for kind, count in sorted(failures.items()):
        print(f"  [failed] {kind:<12} {count}")
    fleet_stats = snap["fleet"]
    print("fleet stats:")
    for key in ("requests", "batches", "mean_batch_size",
                "mean_batch_latency_s", "cache_hits", "escalations",
                "retries", "deadline_drops", "watchdog_restarts",
                "degraded_responses", "escalations_forced",
                "escalations_refused"):
        value = fleet_stats[key]
        print(f"  {key:<22} {value:.4f}" if isinstance(value, float)
              else f"  {key:<22} {value}")
    print(f"  reroutes               {snap['reroutes']}")
    print(f"  shard_deaths           {snap['shard_deaths']}")
    per_shard = snap["per_shard"]
    for name in sorted(per_shard):
        s = per_shard[name]
        print(f"  {name}: requests={s['requests']} batches={s['batches']} "
              f"mean_batch={s['mean_batch_size']:.2f}")
    if jobs is not None:
        counts = jobs.counts()
        print("job queue: " + "  ".join(
            f"{state}={n}" for state, n in counts.items()))
    if health is not None:
        print("fleet health: "
              f"live={health['live_shards']} down={health['down_shards']} "
              f"version={health['version']}")
    if args.stats_json is not None:
        _write_stats_json(args.stats_json, snap, health)
    return 0


def _cmd_queue(args) -> int:
    from .serving import JobQueue, JobQueueError, JobState

    if args.action != "list" and args.db is not None and not args.db.exists():
        print(f"no job queue database at {args.db}", file=sys.stderr)
        return 2
    queue = JobQueue(args.db)
    try:
        if args.action == "list":
            counts = queue.counts()
            print("  ".join(f"{state}={n}" for state, n in counts.items()))
            jobs = queue.list_jobs(
                state=args.state, kind=args.kind, limit=args.limit
            )
            for job in jobs:
                err = f"  err={job.last_error}" if job.last_error else ""
                print(f"{job.job_id:>6}  {job.state:<8} {job.kind:<16} "
                      f"attempts={job.attempts}/{job.max_attempts}{err}")
            return 0
        if args.action == "inspect":
            if args.job_id is None:
                print("queue inspect requires --job-id", file=sys.stderr)
                return 2
            import json

            job = queue.get(args.job_id)
            doc = {
                "job_id": job.job_id, "kind": job.kind, "state": job.state,
                "attempts": job.attempts, "max_attempts": job.max_attempts,
                "not_before": job.not_before, "claim_worker": job.claim_worker,
                "visibility_deadline": job.visibility_deadline,
                "created_at": job.created_at, "updated_at": job.updated_at,
                "last_error": job.last_error,
                "payload_keys": sorted(job.payload),
            }
            print(json.dumps(doc, indent=2))
            return 0
        if args.action == "requeue":
            if args.job_id is None:
                print("queue requeue requires --job-id", file=sys.stderr)
                return 2
            job = queue.requeue(args.job_id)
            print(f"job {job.job_id} -> {job.state}")
            return 0
        # purge
        states = (args.state,) if args.state else (JobState.DONE,)
        removed = queue.purge(states)
        print(f"purged {removed} jobs in state(s) {', '.join(states)}")
        return 0
    except (JobQueueError, ValueError) as exc:
        print(f"queue error: {exc}", file=sys.stderr)
        return 2
    finally:
        queue.close()


def _cmd_lint(args) -> int:
    from .analysis import format_findings, run_lint, write_baseline

    paths = args.paths or ["src", "tests"]
    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    try:
        report = run_lint(paths, root=".", rules=rules, baseline=args.baseline)
    except ValueError as exc:
        print(f"lint error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline is not None:
        findings = report["findings"] + report["baselined"]
        write_baseline(args.write_baseline, findings)
        print(f"wrote {len(findings)} findings to {args.write_baseline}")
        return 0
    print(format_findings(report, args.fmt))
    return 1 if (report["findings"] or report["errors"]) else 0


_COMMANDS = {
    "collect": _cmd_collect,
    "train": _cmd_train,
    "diagnose": _cmd_diagnose,
    "evaluate": _cmd_evaluate,
    "info": _cmd_info,
    "registry": _cmd_registry,
    "serve-batch": _cmd_serve_batch,
    "fleet-serve": _cmd_fleet_serve,
    "queue": _cmd_queue,
    "lint": _cmd_lint,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # stdout went away (e.g. `repro queue list | head`); not an error
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
