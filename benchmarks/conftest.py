"""Shared benchmark fixtures and helpers.

Every bench regenerates one table or figure of the paper: it prints the
rows/series to stdout *and* writes them under ``benchmarks/out/`` so the
artifacts survive pytest's output capture. Datasets are cached on disk in
``benchmarks/_cache`` — the first bench to need a corpus builds it, the
rest load the snapshot.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.splits import (
    PreparedSplit,
    make_standard_split,
    prepare,
)
from repro.experiments import CACHE_DIR, K_FEATURES, OUT_DIR, bench_dataset


def make_preps(
    system: str,
    method: str = "mvts",
    n_splits: int = 3,
    k_features: int = K_FEATURES,
    split_kwargs: dict | None = None,
) -> list[PreparedSplit]:
    """Standard-split PreparedSplits for ``n_splits`` replicates."""
    ds = bench_dataset(system, method=method)
    return [
        prepare(
            make_standard_split(ds, rng=split_id, **(split_kwargs or {})),
            k_features=k_features,
            selection_cache=CACHE_DIR,
        )
        for split_id in range(n_splits)
    ]


@pytest.fixture(autouse=True, scope="session")
def no_leaked_shm_segments():
    """Fail the bench session if shared-memory segments outlive it.

    The zero-copy data plane parks corpus buffers and code matrices in
    ``/dev/shm``; every owner must unlink on exit (normal, exception, or
    worker crash). A segment surviving the whole session is a leak —
    on a production HPC node it would eat tmpfs until reboot.
    """
    from repro.parallel import active_segments

    before = set(active_segments())
    yield
    leaked = sorted(set(active_segments()) - before)
    assert not leaked, f"leaked shared-memory segments: {leaked}"


def write_artifact(name: str, text: str) -> None:
    """Print a bench artifact and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n")


@pytest.fixture(scope="session")
def volta_preps() -> list[PreparedSplit]:
    """Volta TSFRESH splits (the paper's winning Volta feature set)."""
    return make_preps("volta", method="tsfresh")


@pytest.fixture(scope="session")
def eclipse_preps() -> list[PreparedSplit]:
    """Eclipse MVTS splits (the paper's winning Eclipse feature set)."""
    return make_preps("eclipse", method="mvts")


def full_train_reference(prep: PreparedSplit, rf_params: dict) -> tuple[float, int]:
    """Table V reference: F1 of a model trained on the whole AL training set."""
    from repro.mlcore import RandomForestClassifier, f1_score

    X = np.vstack([prep.X_seed, prep.X_pool])
    y = np.concatenate([prep.y_seed, prep.y_pool])
    model = RandomForestClassifier(random_state=0, **rf_params).fit(X, y)
    return f1_score(prep.y_test, model.predict(prep.X_test)), len(y)
