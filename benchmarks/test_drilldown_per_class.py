"""Drill-down — per-class scores and query alignment (Sec. V narrative).

The paper's analysis beyond the headline curves: on Volta, `dial` has the
lowest per-class F1 and is therefore the most-queried anomaly; the query
mix concentrates on the classes the model is worst at. This bench
regenerates those numbers: per-class F1 of the full-training-set model,
the top confusion pairs, and each anomaly's share of the uncertainty
strategy's queries.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_preps, write_artifact
from repro.experiments import (
    RF_PARAMS,
    confusion_pairs,
    format_table,
    hardest_anomaly,
    per_class_report,
    run_methods,
)
from repro.experiments.analysis import queried_class_alignment
from repro.mlcore import RandomForestClassifier


@pytest.mark.benchmark(group="drilldown")
def test_drilldown_per_class(benchmark):
    prep = make_preps("volta", method="mvts", n_splits=1)[0]

    def run():
        X = np.vstack([prep.X_seed, prep.X_pool])
        y = np.concatenate([prep.y_seed, prep.y_pool])
        model = RandomForestClassifier(random_state=0, **RF_PARAMS).fit(X, y)
        pred = model.predict(prep.X_test)
        report = per_class_report(prep.y_test, pred)
        pairs = confusion_pairs(prep.y_test, pred, top_k=5)
        al = run_methods(
            [prep], methods=("uncertainty",), n_queries=60,
            model_params=RF_PARAMS,
        ).runs["uncertainty"][0]
        shares = queried_class_alignment(al, prep.y_test, pred)
        return report, pairs, shares, pred

    report, pairs, shares, pred = benchmark.pedantic(run, rounds=1, iterations=1)

    sections = ["[per-class F1, full-training-set model]"]
    sections.append(
        format_table(
            ["class", "precision", "recall", "F1", "support"],
            [
                [label, f"{p:.3f}", f"{r:.3f}", f"{f:.3f}", s]
                for label, p, r, f, s in zip(
                    report.labels, report.precision, report.recall,
                    report.f1, report.support,
                )
            ],
        )
    )
    sections.append("\n[top confusion pairs (true -> predicted)]")
    sections.append(
        format_table(["true", "predicted", "count"], [list(p) for p in pairs])
    )
    sections.append("\n[share of uncertainty queries per label, 60 queries]")
    sections.append(
        format_table(
            ["label", "share"],
            [[k, f"{v:.2f}"] for k, v in sorted(shares.items(), key=lambda t: -t[1])],
        )
    )

    # where the chi-square-selected signal lives
    from repro.experiments import bench_dataset
    from repro.experiments.analysis import feature_family_signal, subsystem_signal

    ds = bench_dataset("volta", method="mvts")
    kept = [ds.feature_names[i] for i in prep.selector.get_support()]
    sections.append("\n[selected features per telemetry subsystem]")
    sections.append(
        format_table(
            ["subsystem", "features"],
            sorted(subsystem_signal(kept).items(), key=lambda t: -t[1]),
        )
    )
    sections.append("\n[most-selected statistical feature families]")
    sections.append(
        format_table(["feature", "count"], feature_family_signal(kept, top_k=10))
    )
    write_artifact("drilldown_per_class", "\n".join(sections))

    # the paper's dial finding: dial sits in the hardest half of anomalies
    ranked_anomalies = [l for l, _ in report.ranked() if l != "healthy"]
    assert "dial" in ranked_anomalies[: max(2, len(ranked_anomalies) // 2)]
    # healthy dominates the query mix (Fig. 4's mechanism)
    assert max(shares, key=shares.get) == "healthy"
