"""Fig. 7 — motivational robustness experiment (no active learning).

Regenerates the paper's Fig. 7: train a random forest on k applications
(k = 2, 4, 6, 8), test on a fixed set of held-out applications, and report
F1 / false-alarm / anomaly-miss versus k, against the 5-fold-CV reference
where every application is in both sets.

Expected shape (paper): with two training applications the F1 drops by
~30% versus the all-apps CV reference and the false-alarm rate inflates
dramatically (35x in the paper); scores recover monotonically (on average)
as applications are added.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from conftest import write_artifact
from repro.datasets.splits import make_app_holdout_split, prepare
from repro.experiments import K_FEATURES, RF_PARAMS, bench_dataset, format_table
from repro.mlcore import (
    RandomForestClassifier,
    anomaly_miss_rate,
    cross_val_score,
    f1_score,
    false_alarm_rate,
)

TEST_APPS = ["Kripke", "MiniMD", "CG"]  # fixed held-out trio
N_COMBOS = 4  # app combinations per k (paper: all 11-choose-k)


def _evaluate(ds, train_apps, rng):
    bundle = make_app_holdout_split(ds, train_apps, rng=rng)
    # restrict the test side to the fixed trio for a constant test set
    mask = np.isin(bundle.test.apps, TEST_APPS)
    bundle.test = bundle.test.subset(mask)
    prep = prepare(bundle, k_features=K_FEATURES)
    X = np.vstack([prep.X_seed, prep.X_pool])
    y = np.concatenate([prep.y_seed, prep.y_pool])
    model = RandomForestClassifier(random_state=0, **RF_PARAMS).fit(X, y)
    pred = model.predict(prep.X_test)
    return (
        f1_score(prep.y_test, pred),
        false_alarm_rate(prep.y_test, pred),
        anomaly_miss_rate(prep.y_test, pred),
    )


@pytest.mark.benchmark(group="fig7")
def test_fig7_robustness_motivation(benchmark):
    ds = bench_dataset("volta", method="mvts")
    candidate_apps = sorted(set(ds.apps) - set(TEST_APPS))

    def run():
        rng = np.random.default_rng(0)
        rows = {}
        for k in (2, 4, 6, 8):
            combos = list(itertools.combinations(candidate_apps, k))
            rng.shuffle(combos)
            scores = [
                _evaluate(ds, list(combo), rng=i)
                for i, combo in enumerate(combos[:N_COMBOS])
            ]
            rows[k] = np.array(scores)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    # all-apps 5-fold CV reference
    from repro.datasets.splits import make_standard_split

    prep = prepare(make_standard_split(ds, rng=0), k_features=K_FEATURES)
    X = np.vstack([prep.X_seed, prep.X_pool, prep.X_test])
    y = np.concatenate([prep.y_seed, prep.y_pool, prep.y_test])
    cv_f1 = float(
        cross_val_score(
            RandomForestClassifier(random_state=0, **RF_PARAMS), X, y, cv=5
        ).mean()
    )

    table_rows = []
    for k, scores in rows.items():
        f1, far, amr = scores.mean(axis=0)
        ci = 1.96 * scores.std(axis=0, ddof=1) / np.sqrt(len(scores))
        table_rows.append(
            [k, f"{f1:.3f}±{ci[0]:.3f}", f"{far:.3f}±{ci[1]:.3f}", f"{amr:.3f}±{ci[2]:.3f}"]
        )
    text = format_table(
        ["train apps", "F1", "false alarm", "anomaly miss"], table_rows
    )
    text += f"\n5-fold CV reference (all apps in train+test): F1 = {cv_f1:.3f}"
    write_artifact("fig7_robustness_motivation", text)

    f1_k2 = rows[2][:, 0].mean()
    f1_k8 = rows[8][:, 0].mean()
    # unseen apps hurt: k=2 must trail the CV reference clearly
    assert f1_k2 < cv_f1 - 0.05
    # adding applications recovers performance
    assert f1_k8 > f1_k2
