"""Performance benchmark for the sharded serving fleet.

Replays the paper's production shape — Eclipse, 1488 compute nodes at
1 Hz — through the serving path and records the result in
``BENCH_serving.json`` at the repository root:

* the *same deterministic stream* driven through a single
  :class:`DiagnosisService` (the pre-fleet serving path) and through a
  4-shard :class:`FleetService`, with the diagnoses asserted identical
  between arms (sharding must not change a single label or confidence);
* a faulted fleet arm replaying seeded stalls, hangs, and crash bursts
  against individual shards plus a mid-replay shard kill — recording the
  typed failure census and proving the census is exhaustive (every
  accepted event resolves).

Timing protocol mirrors ``test_perf_train_core.py``: this box throttles
under sustained load, so the serial and fleet arms are *interleaved* and
each reported number is the median over reps.

``SERVING_PROFILE=smoke`` shrinks the stream for CI; the smoke numbers
gate regressions against ``benchmarks/baselines/`` via
``SERVING_BASELINE=<path>`` (fail when >2x slower than the committed
baseline).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.apps.volta_apps import VOLTA_APPS
from repro.core.config import FrameworkConfig
from repro.core.framework import ALBADross
from repro.datasets.generate import SystemConfig, generate_runs
from repro.serving.fleet import FleetService
from repro.serving.registry import ModelRegistry
from repro.serving.replay import (
    ECLIPSE_NODES,
    ReplayStream,
    fault_wrapper_factory,
    replay,
)
from repro.parallel import effective_cpu_count
from repro.serving.service import DiagnosisService
from repro.telemetry.catalog import build_catalog
from repro.telemetry.node import VOLTA_NODE
from repro.testing.faults import FaultPlan

PROFILE = os.environ.get("SERVING_PROFILE", "full")
SMOKE = PROFILE == "smoke"

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_serving.json"

REPS = 1 if SMOKE else 3
N_SHARDS = 4
TICKS = 2
EMIT_PER_TICK = 96 if SMOKE else None  # None = all 1488 nodes, saturation


def _update_results(section: str, payload: dict) -> None:
    """Merge one bench section into the repo-root JSON artifact."""
    doc = {}
    if RESULT_PATH.exists():
        doc = json.loads(RESULT_PATH.read_text())
    doc.setdefault("schema", "serving/v1")
    doc["profile"] = PROFILE
    doc["cpu_count"] = os.cpu_count()
    doc["effective_cpu_count"] = effective_cpu_count()
    doc["n_nodes"] = ECLIPSE_NODES
    doc[section] = payload
    RESULT_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\n=== {section} ===\n{json.dumps(payload, indent=2)}")


@pytest.fixture(scope="module")
def harness(tmp_path_factory):
    """Trained registry plus replay templates, bench-scale."""
    config = SystemConfig(
        name="bench-serving",
        apps={k: VOLTA_APPS[k] for k in ("CG", "BT", "Kripke")},
        catalog=build_catalog(n_cores=2, n_nics=1, n_extra_cray=4),
        node=VOLTA_NODE,
        intensities=(0.2, 1.0),
        duration=96,
        n_healthy_per_app_input=4,
        n_anomalous_per_app_anomaly=3,
    )
    runs = generate_runs(config, rng=11)
    framework = ALBADross(
        config.catalog,
        FrameworkConfig(n_features=30, model_params={"n_estimators": 5}),
    )
    framework.fit_features(runs)
    third = len(runs) // 3
    framework.fit_initial(
        runs[:third], [r.label for r in runs[:third]]
    )
    registry = ModelRegistry(tmp_path_factory.mktemp("bench-registry"))
    registry.publish(framework, tag="bench-serving")
    return {"registry": registry, "templates": runs[2 * third :]}


def _stream(harness) -> ReplayStream:
    return ReplayStream(
        harness["templates"],
        n_nodes=ECLIPSE_NODES,
        ticks=TICKS,
        emit_per_tick=EMIT_PER_TICK,
        seed=17,
    )


def _service_opts() -> dict:
    return dict(max_batch=64, max_linger_s=0.002, cache_size=0)


class TestEclipseReplay:
    def test_serial_vs_fleet(self, harness):
        """The tentpole numbers: sustained runs/sec and tail latency for
        the identical 1488-node stream, serial engine vs sharded fleet."""
        registry = harness["registry"]
        arms: dict[str, list] = {"serial": [], "fleet": []}
        parity: dict[str, list] = {}
        for _rep in range(REPS):  # interleaved, medians below
            with DiagnosisService(registry, **_service_opts()) as serial:
                arms["serial"].append(
                    replay(serial, _stream(harness), keep_diagnoses=True)
                )
            fleet = FleetService(registry, n_shards=N_SHARDS, **_service_opts())
            with fleet:
                arms["fleet"].append(
                    replay(fleet, _stream(harness), keep_diagnoses=True)
                )
        for name, reports in arms.items():
            for report in reports:
                assert report.n_failed == 0, (name, report.failures)
                assert report.n_ok == report.n_events == len(_stream(harness))
            parity[name] = [
                (d.label, d.confidence) for d in reports[0].diagnoses
            ]
        # sharding must not change a single diagnosis
        assert parity["fleet"] == parity["serial"]

        med = {
            name: {
                "wall_s": float(np.median([r.wall_s for r in reports])),
                "sustained_rps": float(
                    np.median([r.sustained_rps for r in reports])
                ),
                "p50_ms": float(np.median([r.p50_ms for r in reports])),
                "p99_ms": float(np.median([r.p99_ms for r in reports])),
            }
            for name, reports in arms.items()
        }
        payload = {
            "n_events": arms["serial"][0].n_events,
            "ticks": TICKS,
            "emit_per_tick": EMIT_PER_TICK or ECLIPSE_NODES,
            "n_shards": N_SHARDS,
            "reps": REPS,
            "serial": {k: round(v, 4) for k, v in med["serial"].items()},
            "fleet": {k: round(v, 4) for k, v in med["fleet"].items()},
            "fleet_speedup": round(
                med["serial"]["wall_s"] / med["fleet"]["wall_s"], 2
            ),
            "diagnoses_identical": True,
            "note": (
                "single shared model => fleet speedup is bounded by "
                "cpu_count and batching overlap, not by shard count; "
                "featurization inside each coalesced micro-batch is "
                "run-batched (one extraction kernel pass per batch), so "
                "per-batch latency scales with batch bytes, not run count"
            ),
        }
        _update_results("eclipse_replay", payload)
        assert payload["serial"]["sustained_rps"] > 0
        assert payload["fleet"]["sustained_rps"] > 0

    def test_faulted_fleet(self, harness):
        """Chaos arm: seeded stalls, hangs, crash bursts, and a shard
        killed mid-replay. The census must stay exhaustive and the
        surviving shards must keep absorbing the stream."""
        registry = harness["registry"]
        plans = {
            0: FaultPlan.script(["ok", "stall:0.05", "ok", "raise:3", "hang"]),
            1: FaultPlan.script(["ok", "ok", "raise:2"]),
        }
        factory = fault_wrapper_factory(plans, hang_limit_s=0.2)
        fleet = FleetService(
            registry,
            n_shards=N_SHARDS,
            predict_wrapper_factory=factory,
            **_service_opts(),
        )
        kill_at_tick = 1
        victim = N_SHARDS - 1

        def on_tick(tick: int) -> None:
            if tick == kill_at_tick:
                fleet.mark_down(victim)

        t0 = time.perf_counter()
        with fleet:
            report = replay(
                fleet,
                _stream(harness),
                on_tick=on_tick,
                probe_between_ticks=True,
            )
        wall_s = time.perf_counter() - t0
        assert report.n_ok + report.n_failed == report.n_events
        assert report.n_ok > 0
        assert victim in fleet.down_shards
        payload = {
            "n_events": report.n_events,
            "n_ok": report.n_ok,
            "n_failed": report.n_failed,
            "failure_census": dict(sorted(report.failures.items())),
            "killed_shard": victim,
            "kill_at_tick": kill_at_tick,
            "reroutes": fleet.reroutes,
            "sustained_rps": round(report.sustained_rps, 1),
            "wall_s": round(wall_s, 4),
            "census_exhaustive": True,
        }
        _update_results("eclipse_replay_faulted", payload)


class TestBaselineGate:
    def test_no_regression_vs_committed_baseline(self):
        """CI gate: fail when any recorded timing is >2x the baseline."""
        baseline_path = os.environ.get("SERVING_BASELINE")
        if not baseline_path:
            pytest.skip("SERVING_BASELINE not set")
        baseline = json.loads(Path(baseline_path).read_text())
        current = json.loads(RESULT_PATH.read_text())
        assert current["profile"] == baseline["profile"], (
            "baseline was recorded under a different profile"
        )
        checks = {
            "eclipse_replay.serial.wall_s": lambda d: d["eclipse_replay"][
                "serial"
            ]["wall_s"],
            "eclipse_replay.fleet.wall_s": lambda d: d["eclipse_replay"][
                "fleet"
            ]["wall_s"],
            "eclipse_replay_faulted.wall_s": lambda d: d[
                "eclipse_replay_faulted"
            ]["wall_s"],
        }
        regressions = []
        for name, get in checks.items():
            ours, theirs = get(current), get(baseline)
            if ours > 2.0 * theirs:
                regressions.append(
                    f"{name}: {ours:.3f}s vs baseline {theirs:.3f}s"
                )
        assert not regressions, "; ".join(regressions)
