"""Fig. 6 — active learning under previously unseen applications (Volta).

Regenerates the paper's Fig. 6: seed/pool contain only k training
applications (k = 2, 4, 6), the test set only the held-out applications;
uncertainty sampling races Random over the query budget.

Expected shape (paper): more training applications → higher starting F1
and fewer queries to a given target; uncertainty beats Random decisively
in every scenario (paper: 0.95 F1 with ≤50 extra samples even at k = 2).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import write_artifact
from repro.datasets.splits import make_app_holdout_split, prepare
from repro.experiments import (
    K_FEATURES,
    RF_PARAMS,
    bench_dataset,
    curve_table,
    run_methods,
)

SCENARIO_APPS = {
    2: ["BT", "MiniMD"],
    4: ["BT", "MiniMD", "FT", "MiniGhost"],
    6: ["BT", "MiniMD", "FT", "MiniGhost", "LU", "CoMD"],
}
N_SPLITS = 2
N_QUERIES = 100


@pytest.mark.benchmark(group="fig6")
def test_fig6_unseen_apps(benchmark):
    ds = bench_dataset("volta", method="mvts")

    def run():
        out = {}
        for k, train_apps in SCENARIO_APPS.items():
            preps = [
                prepare(
                    make_app_holdout_split(ds, train_apps, rng=r),
                    k_features=K_FEATURES,
                )
                for r in range(N_SPLITS)
            ]
            out[k] = run_methods(
                preps,
                methods=("uncertainty", "random"),
                n_queries=N_QUERIES,
                model_params=RF_PARAMS,
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    sections = []
    for k, result in results.items():
        stats = {m: result.stats(m) for m in ("uncertainty", "random")}
        sections.append(
            f"[{k} training applications]\n"
            + curve_table(stats, checkpoints=(0, 10, 25, 50, 100))
        )
    write_artifact("fig6_unseen_apps", "\n\n".join(sections))

    # more training apps -> higher starting F1 (paper's main trend)
    starts = {k: results[k].stats("uncertainty").f1_mean[0] for k in SCENARIO_APPS}
    assert starts[6] > starts[2]
    # uncertainty at least matches Random at the end of the budget
    for k, result in results.items():
        unc = result.stats("uncertainty").f1_mean[-1]
        rand = result.stats("random").f1_mean[-1]
        assert unc >= rand - 0.07, k
