"""Table V — summary of anomaly-diagnosis results.

Regenerates the paper's Table V: for each dataset, with its best feature
extraction method and query strategy (Volta → TSFRESH + uncertainty,
Eclipse → MVTS + margin), the number of additional labeled samples needed
to reach fixed F1 targets, plus two references — the F1 of a model trained
on the *entire* AL training dataset and the max 5-fold CV score on the
full corpus.

Expected shape (paper): the AL strategy reaches the full-training-set F1
with one to two orders of magnitude fewer labeled samples (28x headline);
Eclipse needs ~10x more queries than Volta; starting F1 is lower on
Eclipse (0.72 vs 0.86 in the paper).

Note on absolute targets: our scaled corpora cap the full-training-set F1
below the paper's 0.95 (see EXPERIMENTS.md), so the table reports queries
to reach *relative* targets (fractions of the full-training reference) in
addition to the paper's absolute 0.85/0.90/0.95 columns.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import full_train_reference, write_artifact
from repro.experiments import RF_PARAMS, format_table, run_methods, table5_row
from repro.mlcore import RandomForestClassifier, cross_val_score


def _cv_reference(prep, rf_params) -> tuple[float, int]:
    """Table V "Max Score 5-fold CV" on the full labeled corpus."""
    X = np.vstack([prep.X_seed, prep.X_pool, prep.X_test])
    y = np.concatenate([prep.y_seed, prep.y_pool, prep.y_test])
    scores = cross_val_score(
        RandomForestClassifier(random_state=0, **rf_params), X, y, cv=5
    )
    return float(scores.max()), len(y)


@pytest.mark.benchmark(group="table5")
def test_table5_summary(benchmark, volta_preps, eclipse_preps):
    def run_all():
        out = {}
        for system, preps, feat, strategy in (
            ("Volta", volta_preps[:2], "TSFRESH", "uncertainty"),
            ("Eclipse", eclipse_preps[:2], "MVTS", "margin"),
        ):
            result = run_methods(
                preps,
                methods=(strategy, "random"),
                n_queries=120,
                model_params=RF_PARAMS,
            )
            out[system] = (result, preps, feat, strategy)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    header = [
        "dataset", "features", "strategy", "seed", "start F1",
        "F1:0.85", "F1:0.90", "F1:0.95",
        "full-train F1", "max 5-fold CV",
    ]
    rows = []
    comparisons = []
    for system, (result, preps, feat, strategy) in results.items():
        full_f1, full_n = full_train_reference(preps[0], RF_PARAMS)
        cv_f1, cv_n = _cv_reference(preps[0], RF_PARAMS)
        rows.append(
            table5_row(system, feat, strategy, result, full_f1, full_n, cv_f1, cv_n)
        )
        # relative target: reach parity with the full AL training dataset
        parity = full_f1 - 0.01
        al_needed = result.queries_to_reach(strategy, parity)
        rand_needed = result.queries_to_reach("random", parity)
        comparisons.append(
            (system, f"{parity:.3f}", al_needed, rand_needed, len(preps[0].y_pool))
        )
    text = format_table(header, rows)
    text += "\n\nqueries to full-training-set parity (AL advantage):\n"
    text += format_table(
        ["dataset", "target F1", strategy := "AL queries", "Random queries", "pool size"],
        comparisons,
    )
    write_artifact("table5_summary", text)

    # the AL strategy must not need more queries than Random for parity
    for system, _, al_needed, rand_needed, _ in comparisons:
        if al_needed is not None and rand_needed is not None:
            assert al_needed <= rand_needed + 10, system
