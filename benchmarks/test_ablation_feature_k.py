"""Ablation — chi-square feature count sweep (paper Sec. IV-E1).

The paper sweeps the number of chi-square-selected features
(250…all; best = 2000 of ~6k–99k) and observes degraded scores below 250.
This bench sweeps k on our scaled corpus and reports the full-training-set
F1 per k.

Expected shape: F1 rises steeply from very small k, then plateaus — the
top-k curve has diminishing returns, and very small k clearly underfits.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import write_artifact
from repro.datasets.splits import make_standard_split, prepare
from repro.experiments import RF_PARAMS, bench_dataset, format_table
from repro.mlcore import RandomForestClassifier, f1_score

K_SWEEP = (10, 40, 150, 300, 600, 1200)


@pytest.mark.benchmark(group="ablation")
def test_ablation_feature_k(benchmark):
    ds = bench_dataset("volta", method="mvts")
    bundle = make_standard_split(ds, rng=0)

    def run():
        scores = {}
        for k in K_SWEEP:
            prep = prepare(bundle, k_features=k)
            X = np.vstack([prep.X_seed, prep.X_pool])
            y = np.concatenate([prep.y_seed, prep.y_pool])
            model = RandomForestClassifier(random_state=0, **RF_PARAMS).fit(X, y)
            scores[k] = f1_score(prep.y_test, model.predict(prep.X_test))
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    write_artifact(
        "ablation_feature_k",
        format_table(
            ["k features", "full-train F1"],
            [[k, f"{v:.3f}"] for k, v in scores.items()],
        ),
    )

    best = max(scores.values())
    # k=10 clearly underfits; the plateau region is within 0.05 of the best
    assert scores[10] < best - 0.03
    assert scores[300] > best - 0.07
