"""Fig. 8 — active learning under previously unseen application inputs.

Regenerates the paper's Fig. 8: seed/pool contain only runs of one input
deck per application; the test set contains the remaining decks.
Uncertainty sampling races Random, repeated over the choice of training
deck (the paper's "different input combinations" band).

Expected shape (paper): the starting scores are far worse than the
unseen-application case (paper: initial F1 ≈ 0.2, FAR ≈ 80%) — unseen
inputs shift every metric's operating point; the anomaly-miss rate bumps
up in the first ~20 queries (healthy prioritized) then decays; uncertainty
needs several-fold fewer samples than Random (paper: 225 vs 1000+, 28x vs
the full supervised set).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import write_artifact
from repro.datasets.splits import make_input_holdout_split, prepare
from repro.experiments import (
    K_FEATURES,
    RF_PARAMS,
    bench_dataset,
    curve_table,
    run_methods,
)

N_QUERIES = 120


@pytest.mark.benchmark(group="fig8")
def test_fig8_unseen_inputs(benchmark):
    ds = bench_dataset("volta", method="mvts")

    def run():
        preps = [
            prepare(
                make_input_holdout_split(ds, train_input=deck, rng=deck),
                k_features=K_FEATURES,
            )
            for deck in range(3)
        ]
        return run_methods(
            preps,
            methods=("uncertainty", "random"),
            n_queries=N_QUERIES,
            model_params=RF_PARAMS,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = {m: result.stats(m) for m in ("uncertainty", "random")}
    sections = []
    for metric, title in (
        ("f1", "F1-score"),
        ("far", "false alarm rate"),
        ("amr", "anomaly miss rate"),
    ):
        sections.append(
            f"[{title}]\n"
            + curve_table(stats, checkpoints=(0, 10, 25, 50, 100), metric=metric)
        )
    write_artifact("fig8_unseen_inputs", "\n\n".join(sections))

    unc = stats["uncertainty"]
    # unseen inputs must hurt the starting point more than the standard
    # split does (paper: 0.2 vs 0.86 start)
    from conftest import make_preps

    standard_start = run_methods(
        make_preps("volta", method="mvts", n_splits=1),
        methods=("uncertainty",),
        n_queries=0,
        model_params=RF_PARAMS,
    ).stats("uncertainty").f1_mean[0]
    assert unc.f1_mean[0] < standard_start
    # querying recovers performance
    assert unc.f1_mean[-1] > unc.f1_mean[0]
    # uncertainty does not trail Random at the end
    assert unc.f1_mean[-1] >= stats["random"].f1_mean[-1] - 0.07
