"""Fig. 4 — distribution of queried application and anomaly types (Volta).

Regenerates the paper's Fig. 4 drill-down: which labels and applications
the uncertainty strategy queries in its first 50 queries on Volta.

Expected shape (paper): *healthy* dominates (~30 of 50 — the model needs
healthy signatures first, which is also what drives the early false-alarm
drop); `dial` is the most-queried anomaly (it is the most confusable); the
high-variance applications (Kripke, MiniMD, MiniAMR) are queried most.
"""

from __future__ import annotations

from collections import Counter

import pytest

from conftest import write_artifact
from repro.experiments import RF_PARAMS, distribution_table, run_methods


@pytest.mark.benchmark(group="fig4")
def test_fig4_query_distribution(benchmark, volta_preps):
    result = benchmark.pedantic(
        lambda: run_methods(
            volta_preps[:1],
            methods=("uncertainty",),
            n_queries=50,
            model_params=RF_PARAMS,
        ),
        rounds=1,
        iterations=1,
    )
    run = result.runs["uncertainty"][0]
    write_artifact(
        "fig4_query_distribution",
        distribution_table(run.queried_labels, run.queried_apps, first_n=50),
    )

    label_counts = Counter(str(v) for v in run.queried_labels)
    # healthy must be the most-queried label (paper: ~30/50)
    assert label_counts.most_common(1)[0][0] == "healthy"
    assert label_counts["healthy"] >= 15
