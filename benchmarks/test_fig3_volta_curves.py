"""Fig. 3 — Volta learning curves: F1 / false-alarm / anomaly-miss vs queries.

Regenerates the paper's Fig. 3: the three active-learning query strategies
(uncertainty, margin, entropy) against the Random, Equal App, and Proctor
baselines on the Volta dataset (TSFRESH features), averaged over repeated
train/test splits with 95% CI.

Expected shape (paper): the AL strategies dominate Random/Equal App;
uncertainty ≈ margin are the best; the AL strategies drive the false-alarm
rate to ~0 within tens of queries; the anomaly-miss rate bumps up early
(healthy samples are queried first) before decaying; Proctor stays flat.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import write_artifact
from repro.experiments import (
    ALL_METHODS,
    N_QUERIES,
    RF_PARAMS,
    curve_table,
    run_methods,
)


@pytest.mark.benchmark(group="fig3")
def test_fig3_volta_curves(benchmark, volta_preps):
    result = benchmark.pedantic(
        lambda: run_methods(
            volta_preps,
            methods=ALL_METHODS,
            n_queries=N_QUERIES,
            model_params=RF_PARAMS,
        ),
        rounds=1,
        iterations=1,
    )
    stats = {m: result.stats(m) for m in ALL_METHODS}
    checkpoints = (0, 10, 25, 50, 100)
    sections = []
    for metric, title in (
        ("f1", "F1-score"),
        ("far", "false alarm rate"),
        ("amr", "anomaly miss rate"),
    ):
        sections.append(
            f"[{title}]\n" + curve_table(stats, checkpoints=checkpoints, metric=metric)
        )
    write_artifact("fig3_volta_curves", "\n\n".join(sections))

    # paper shapes (soft assertions: mean curves over splits)
    unc, rand = stats["uncertainty"], stats["random"]
    # AL endgame should not trail Random meaningfully
    assert unc.f1_mean[-1] >= rand.f1_mean[-1] - 0.05
    # the AL strategy zeroes the false alarm rate
    assert unc.far_mean[-1] <= 0.05
    # early AMR bump: max exceeds the final value
    assert unc.amr_mean.max() >= unc.amr_mean[0]
    # Proctor is flat: tiny overall drift
    proctor = stats["proctor"]
    assert abs(proctor.f1_mean[-1] - proctor.f1_mean[0]) < 0.15
