"""Table IV — hyperparameter search and model comparison.

Regenerates the paper's Table IV protocol: grid search with 5-fold
stratified CV on the active-learning training dataset only (test set
withheld). The full grids are run for the two cheap families (logistic
regression, random forest); the boosted-tree and MLP families are compared
at their Table IV starred settings (running their full grids is
prohibitively slow on a single core — the grids themselves are encoded and
unit-tested in ``repro.core.table4_grid``).

Expected shape: the tuned random forest is competitive with or better than
the linear model (the paper deploys RF for every headline experiment), and
grid search picks interior, non-degenerate settings.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_preps, write_artifact
from repro.core.framework import build_model, table4_grid
from repro.experiments import format_table
from repro.mlcore import GridSearchCV, f1_score
from repro.mlcore.forest import RandomForestClassifier
from repro.mlcore.linear import LogisticRegression


@pytest.mark.benchmark(group="table4")
def test_table4_hyperparams(benchmark):
    prep = make_preps("volta", method="mvts", n_splits=1, k_features=150)[0]
    X = np.vstack([prep.X_seed, prep.X_pool])
    y = np.concatenate([prep.y_seed, prep.y_pool])

    def run():
        searches = {}
        searches["logistic_regression"] = GridSearchCV(
            LogisticRegression(max_iter=200),
            table4_grid("logistic_regression"),
            cv=3,
        ).fit(X, y)
        rf_grid = dict(table4_grid("random_forest"))
        rf_grid["n_estimators"] = [8, 10, 20]  # paper adds 100/200; cut for 1 core
        searches["random_forest"] = GridSearchCV(
            RandomForestClassifier(random_state=0),
            rf_grid,
            cv=3,
        ).fit(X, y)
        return searches

    searches = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, search in searches.items():
        test_f1 = f1_score(prep.y_test, search.predict(prep.X_test))
        rows.append(
            [name, f"{search.best_score_:.3f}", f"{test_f1:.3f}", str(search.best_params_)]
        )
    # Table IV starred settings for the two heavier families
    for name in ("lgbm", "mlp"):
        from repro.core.config import default_model_params

        params = default_model_params(name)
        if name == "lgbm":
            params = {**params, "n_estimators": 20}
        model = build_model(name, params, random_state=0).fit(X, y)
        test_f1 = f1_score(prep.y_test, model.predict(prep.X_test))
        rows.append([name, "-", f"{test_f1:.3f}", f"starred: {params}"])

    write_artifact(
        "table4_hyperparams",
        format_table(["model", "CV F1", "test F1", "selected parameters"], rows),
    )

    # the RF search must find a model at least as good as the worst grid point
    rf = searches["random_forest"]
    assert rf.best_score_ == max(r.mean_score for r in rf.results_)
    # tuned models must clearly beat chance (6 classes)
    for name, search in searches.items():
        assert search.best_score_ > 0.4, name
