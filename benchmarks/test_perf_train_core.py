"""Performance benchmark for the histogram-binned training core.

Measures the three claims of the binned-core work and records them in
``BENCH_train_core.json`` at the repository root:

* forest fit: ``splitter="hist"`` vs ``splitter="exact"`` on one core,
  at the canonical Table-IV depth (``max_depth=8``, the paper's tuned
  value) and at unlimited depth as an honest secondary;
* worker scaling: the same hist fit at ``n_jobs`` ∈ {1, 2, 4} — recorded
  together with the *effective* CPU count (the affinity mask, not the
  machine) because scaling is only meaningful with the cores to back it;
  whatever the mask, every parallel arm must stay within 5% of serial
  (``backend="auto"`` runs threads on a one-core mask and shared-memory
  processes otherwise, so ``n_jobs`` is never a slowdown);
* active-learning refits: 50 query rounds end-to-end, exact (no cache)
  vs hist with the cross-refit bin cache, plus a cache-run repeat to pin
  the seeded query sequence;
* incremental refits: the same hist-cached AL run with
  ``warm_start=True`` (partial forest regrowth + delta pool scoring)
  against the cold hist arm, at matched final F1.

Timing protocol: this box throttles under sustained load (repeated
identical runs drift ~25%), so competing configs are *interleaved* and
each reported number is the median over reps — a config never gets all
its reps in the same thermal regime.

``TRAIN_CORE_PROFILE=smoke`` shrinks every corpus for CI; the smoke
numbers gate regressions against ``benchmarks/baselines/`` via
``TRAIN_CORE_BASELINE=<path>`` (fail when >2x slower than the committed
baseline).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.active.loop import run_active_learning
from repro.mlcore.forest import RandomForestClassifier
from repro.parallel import effective_cpu_count

PROFILE = os.environ.get("TRAIN_CORE_PROFILE", "full")
SMOKE = PROFILE == "smoke"

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_train_core.json"

# forest-fit corpus (paper-scale in full profile)
N_ROWS, N_FEATS, N_TREES = (768, 256, 16) if SMOKE else (4096, 2000, 100)
REPS = 2 if SMOKE else 3
# unlimited depth grows ~10x more nodes; fewer trees keep the rep honest
# without an hour-long exact arm
SECONDARY_TREES = 8 if SMOKE else 25

# AL corpus: the labeled set must be large enough that refits dominate
# the round (query/eval are shared between the arms and cheap)
AL_SEED, AL_POOL, AL_TEST = (300, 150, 150) if SMOKE else (2500, 900, 800)
AL_FEATS = 128 if SMOKE else 600
AL_TREES = 10 if SMOKE else 30
AL_ROUNDS = 10 if SMOKE else 50


def _update_results(section: str, payload: dict) -> None:
    """Merge one bench section into the repo-root JSON artifact."""
    doc = {}
    if RESULT_PATH.exists():
        doc = json.loads(RESULT_PATH.read_text())
    doc.setdefault("schema", "train_core/v1")
    doc["profile"] = PROFILE
    doc["cpu_count"] = os.cpu_count()
    doc["effective_cpu_count"] = effective_cpu_count()
    doc[section] = payload
    RESULT_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\n=== {section} ===\n{json.dumps(payload, indent=2)}")


def _forest_data(seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(N_ROWS, N_FEATS))
    w = rng.normal(size=N_FEATS) * (rng.random(N_FEATS) < 0.02)
    logits = X @ w
    y = np.where(logits > 0.8, 2, np.where(logits > -0.8, 1, 0))
    return X, y


def _fit_seconds(X, y, **params) -> float:
    model = RandomForestClassifier(random_state=0, **params)
    t0 = time.perf_counter()
    model.fit(X, y)
    return time.perf_counter() - t0


def _interleaved_medians(X, y, configs: dict[str, dict], reps: int) -> dict[str, float]:
    """Median fit time per config, reps interleaved across configs."""
    times: dict[str, list[float]] = {name: [] for name in configs}
    for _rep in range(reps):
        for name, params in configs.items():
            times[name].append(_fit_seconds(X, y, **params))
    return {name: float(np.median(ts)) for name, ts in times.items()}


class TestForestFit:
    def test_hist_vs_exact_one_core(self):
        X, y = _forest_data()
        base = dict(n_estimators=N_TREES, max_depth=8, n_jobs=1)
        med = _interleaved_medians(
            X, y,
            {
                "exact": dict(base, splitter="exact"),
                "hist": dict(base, splitter="hist"),
            },
            REPS,
        )
        speedup = med["exact"] / med["hist"]

        # honest secondary: unlimited depth (fewer trees, single rep pair)
        deep = dict(n_estimators=SECONDARY_TREES, max_depth=None, n_jobs=1)
        t_exact_deep = _fit_seconds(X, y, splitter="exact", **deep)
        t_hist_deep = _fit_seconds(X, y, splitter="hist", **deep)

        _update_results(
            "forest_fit",
            {
                "n_rows": N_ROWS,
                "n_features": N_FEATS,
                "n_trees": N_TREES,
                "reps": REPS,
                "primary": {
                    "max_depth": 8,
                    "exact_s": round(med["exact"], 4),
                    "hist_s": round(med["hist"], 4),
                    "speedup": round(speedup, 2),
                },
                "secondary": {
                    "max_depth": None,
                    "n_trees": SECONDARY_TREES,
                    "exact_s": round(t_exact_deep, 4),
                    "hist_s": round(t_hist_deep, 4),
                    "speedup": round(t_exact_deep / t_hist_deep, 2),
                },
            },
        )
        if SMOKE:
            assert speedup > 1.0
        else:
            assert speedup >= 5.0

    def test_worker_scaling(self):
        X, y = _forest_data()
        times: dict[int, list[float]] = {1: [], 2: [], 4: []}
        trees = max(4, N_TREES // 4)  # scaling shape, not absolute scale
        arms = list(times)
        # two full order rotations: the box throttles under sustained
        # load, so a fixed order measures later arms systematically hot;
        # every arm visits every position equally often
        for rep in range(2 * len(arms) if not SMOKE else REPS):
            for n_jobs in arms[rep % len(arms):] + arms[:rep % len(arms)]:
                times[n_jobs].append(
                    _fit_seconds(
                        X, y,
                        n_estimators=trees, max_depth=8,
                        splitter="hist", n_jobs=n_jobs,
                    )
                )
        med = {n: float(np.median(ts)) for n, ts in times.items()}
        payload = {
            "n_trees": trees,
            "reps": len(times[1]),
            "seconds": {str(n): round(t, 4) for n, t in med.items()},
            "speedup_vs_serial": {
                str(n): round(med[1] / t, 2) for n, t in med.items()
            },
            "note": (
                "worker scaling is bounded by the affinity mask; on a "
                "one-core mask backend=auto runs threads, so parallel "
                "arms stay within noise of serial"
            ),
        }
        _update_results("worker_scaling", payload)
        # scaling beyond 1x is a property of the machine and is recorded,
        # not asserted; determinism across n_jobs is asserted in tier-1.
        # But n_jobs must never be a *slowdown* — every parallel arm
        # stays within 5% of serial on any affinity mask.
        for n_jobs, t in med.items():
            assert med[1] / t >= 0.95, (
                f"parallel overhead: n_jobs={n_jobs} arm is "
                f"{t / med[1]:.2f}x serial"
            )


def _al_problem():
    rng = np.random.default_rng(0)
    centers = rng.normal(size=(3, AL_FEATS)) * 1.1
    n_each = (AL_SEED + AL_POOL + AL_TEST) // 3 + 1
    X = np.vstack(
        [c + rng.normal(size=(n_each, AL_FEATS)) for c in centers]
    )
    y = np.repeat(np.arange(3), n_each)
    perm = rng.permutation(len(y))
    X, y = X[perm], y[perm]
    s, p = AL_SEED, AL_SEED + AL_POOL
    t = p + AL_TEST
    return X[:s], y[:s], X[s:p], y[s:p], X[p:t], y[p:t]


class TestActiveLearningRefits:
    def _run(self, est):
        Xs, ys, Xp, yp, Xt, yt = _al_problem()
        t0 = time.perf_counter()
        res = run_active_learning(
            est, "uncertainty", Xs, ys, Xp, yp, Xt, yt,
            n_queries=AL_ROUNDS, random_state=7,
        )
        return time.perf_counter() - t0, res

    def test_refit_bench(self):
        base = dict(n_estimators=AL_TREES, max_depth=8, random_state=1)
        t_hist, r_hist = self._run(
            RandomForestClassifier(splitter="hist", **base)
        )
        t_exact, r_exact = self._run(RandomForestClassifier(**base))
        # repeat the cached arm: the seeded query sequence must not move
        t_hist2, r_hist2 = self._run(
            RandomForestClassifier(splitter="hist", **base)
        )
        speedup = t_exact / min(t_hist, t_hist2)
        f1_gap = abs(r_hist.final_f1 - r_exact.final_f1)

        _update_results(
            "al_refits",
            {
                "seed_rows": AL_SEED,
                "pool_rows": AL_POOL,
                "n_features": AL_FEATS,
                "n_trees": AL_TREES,
                "rounds": AL_ROUNDS,
                "exact_s": round(t_exact, 2),
                "hist_cached_s": round(min(t_hist, t_hist2), 2),
                "speedup": round(speedup, 2),
                "final_f1_exact": round(r_exact.final_f1, 4),
                "final_f1_hist": round(r_hist.final_f1, 4),
                "query_sequence_stable": r_hist.queried_labels
                == r_hist2.queried_labels,
            },
        )
        assert r_hist.queried_labels == r_hist2.queried_labels
        assert np.array_equal(r_hist.f1, r_hist2.f1)
        assert f1_gap <= 0.01
        if SMOKE:
            assert speedup > 1.0
        else:
            assert speedup >= 3.0


class TestIncrementalRefits:
    """Warm-start refits vs cold hist-cached refits on the same AL run.

    Both arms share the bin cache; the only difference is that the warm
    arm keeps most of the forest across rounds (regrowing a seeded
    ``REFRESH_FRACTION`` subset and absorbing the new row into kept
    leaves) while the cold arm regrows every tree every round. Arms are
    interleaved rep-by-rep for the same thermal-fairness reason as the
    other benches.
    """

    REFRESH_FRACTION = 0.2

    def _run(self, warm: bool):
        Xs, ys, Xp, yp, Xt, yt = _al_problem()
        est = RandomForestClassifier(
            n_estimators=AL_TREES, max_depth=8,
            splitter="hist", random_state=1,
        )
        t0 = time.perf_counter()
        res = run_active_learning(
            est, "uncertainty", Xs, ys, Xp, yp, Xt, yt,
            n_queries=AL_ROUNDS, random_state=7,
            warm_start=warm, refresh_fraction=self.REFRESH_FRACTION,
        )
        return time.perf_counter() - t0, res

    def test_incremental_bench(self):
        times: dict[str, list[float]] = {"cold": [], "warm": []}
        results: dict[str, object] = {}
        for _rep in range(REPS):
            for arm in ("cold", "warm"):
                t, res = self._run(warm=arm == "warm")
                times[arm].append(t)
                results[arm] = res
        med = {arm: float(np.median(ts)) for arm, ts in times.items()}
        speedup = med["cold"] / med["warm"]
        r_cold, r_warm = results["cold"], results["warm"]

        _update_results(
            "al_incremental",
            {
                "seed_rows": AL_SEED,
                "pool_rows": AL_POOL,
                "n_features": AL_FEATS,
                "n_trees": AL_TREES,
                "rounds": AL_ROUNDS,
                "reps": REPS,
                "refresh_fraction": self.REFRESH_FRACTION,
                "cold_s": round(med["cold"], 2),
                "warm_s": round(med["warm"], 2),
                "speedup": round(speedup, 2),
                "final_f1_cold": round(r_cold.final_f1, 4),
                "final_f1_warm": round(r_warm.final_f1, 4),
                "f1_matched": r_cold.final_f1 == r_warm.final_f1,
            },
        )
        # the warm arm must buy wall clock without giving up accuracy
        assert r_cold.final_f1 == r_warm.final_f1
        if SMOKE:
            assert speedup > 1.0
        else:
            assert speedup >= 2.0


class TestBaselineGate:
    def test_no_regression_vs_committed_baseline(self):
        """CI gate: fail when any recorded timing is >2x the baseline."""
        baseline_path = os.environ.get("TRAIN_CORE_BASELINE")
        if not baseline_path:
            import pytest

            pytest.skip("TRAIN_CORE_BASELINE not set")
        baseline = json.loads(Path(baseline_path).read_text())
        current = json.loads(RESULT_PATH.read_text())
        assert current["profile"] == baseline["profile"], (
            "baseline was recorded under a different profile"
        )
        checks = {
            "forest_fit.primary.hist_s": lambda d: d["forest_fit"]["primary"]["hist_s"],
            "al_refits.hist_cached_s": lambda d: d["al_refits"]["hist_cached_s"],
            "al_incremental.warm_s": lambda d: d["al_incremental"]["warm_s"],
        }
        regressions = []
        for name, get in checks.items():
            ours, theirs = get(current), get(baseline)
            if ours > 2.0 * theirs:
                regressions.append(f"{name}: {ours:.3f}s vs baseline {theirs:.3f}s")
        assert not regressions, "; ".join(regressions)
