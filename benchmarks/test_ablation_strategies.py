"""Ablation — future-work query strategies and annotator noise.

Two extension studies beyond the paper's evaluation:

* **Advanced strategies** (the paper's future-work direction): plain
  uncertainty vs density-weighted uncertainty vs query-by-committee on the
  Volta corpus. Density weighting should avoid outlier-chasing; QBC buys
  model-space disagreement at a large training cost.
* **Annotator noise**: the paper assumes a perfect annotator; here the
  oracle returns a wrong label with probability p ∈ {0, 0.1, 0.3} and we
  measure how the uncertainty strategy's final F1 degrades — the
  deployment-risk number an operator would want.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_preps, write_artifact
from repro.active import (
    ActiveLearner,
    DensityWeightedUncertainty,
    QueryByCommittee,
    run_active_learning,
)
from repro.experiments import RF_PARAMS, format_table
from repro.mlcore import RandomForestClassifier, f1_score

N_QUERIES = 60


def _model():
    return RandomForestClassifier(random_state=0, **RF_PARAMS)


@pytest.mark.benchmark(group="ablation")
def test_ablation_advanced_strategies(benchmark):
    prep = make_preps("volta", method="mvts", n_splits=1)[0]

    def run():
        scores = {}
        for name in ("uncertainty", "density_weighted", "qbc"):
            if name == "qbc":
                strategy = QueryByCommittee(committee_size=3)
            elif name == "density_weighted":
                strategy = DensityWeightedUncertainty(beta=1.0)
            else:
                strategy = "uncertainty"
            learner = ActiveLearner(
                _model(), strategy, prep.X_seed, prep.y_seed, random_state=0
            )
            if name == "qbc":
                strategy.bind_learner(learner)
            alive = np.arange(len(prep.X_pool))
            budget = N_QUERIES if name != "qbc" else 25  # QBC is costly
            for _ in range(budget):
                i = learner.query(prep.X_pool[alive])
                orig = alive[i]
                learner.teach(prep.X_pool[orig], prep.y_pool[orig])
                alive = np.delete(alive, i)
            scores[name] = (
                f1_score(prep.y_test, learner.predict(prep.X_test)),
                budget,
            )
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    write_artifact(
        "ablation_advanced_strategies",
        format_table(
            ["strategy", "final F1", "queries"],
            [[k, f"{v[0]:.3f}", v[1]] for k, v in scores.items()],
        ),
    )
    # every strategy must land in the same performance neighbourhood
    f1s = [v[0] for v in scores.values()]
    assert max(f1s) - min(f1s) < 0.2


@pytest.mark.benchmark(group="ablation")
def test_ablation_oracle_noise(benchmark):
    prep = make_preps("volta", method="mvts", n_splits=1)[0]

    def run():
        scores = {}
        for noise in (0.0, 0.1, 0.3):
            res = run_active_learning(
                _model(), "uncertainty",
                prep.X_seed, prep.y_seed,
                prep.X_pool, prep.y_pool,
                prep.X_test, prep.y_test,
                n_queries=N_QUERIES,
                oracle_noise=noise,
                random_state=0,
            )
            scores[noise] = res.final_f1
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    write_artifact(
        "ablation_oracle_noise",
        format_table(
            ["annotator noise", "final F1"],
            [[f"{k:.0%}", f"{v:.3f}"] for k, v in scores.items()],
        ),
    )
    # heavy annotator noise must not *help*
    assert scores[0.3] <= scores[0.0] + 0.03
