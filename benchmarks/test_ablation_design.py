"""Ablations — design choices called out in DESIGN.md §5.

Two ablations:

* **Boosting growth policy** — LightGBM's leaf-wise growth vs classic
  depth-wise growth at the same ``num_leaves`` budget. Leaf-wise spends its
  leaf budget where the gain is, so it should match or beat depth-wise at
  equal capacity.
* **Refit cadence** — the paper re-trains after every query
  (``refit_every=1``); batching refits (every 5 queries) trades curve
  granularity for wall-clock. The final F1 should be comparable, which is
  what makes batched refits a legitimate deployment optimization.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_preps, write_artifact
from repro.active import ActiveLearner
from repro.experiments import RF_PARAMS, format_table
from repro.mlcore import LGBMClassifier, RandomForestClassifier, f1_score


@pytest.mark.benchmark(group="ablation")
def test_ablation_gbm_growth(benchmark):
    prep = make_preps("volta", method="mvts", n_splits=1, k_features=150)[0]
    X = np.vstack([prep.X_seed, prep.X_pool])
    y = np.concatenate([prep.y_seed, prep.y_pool])

    def run():
        scores = {}
        for growth in ("leaf", "depth"):
            model = LGBMClassifier(
                n_estimators=15, num_leaves=8, growth=growth, random_state=0
            ).fit(X, y)
            scores[growth] = f1_score(prep.y_test, model.predict(prep.X_test))
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    write_artifact(
        "ablation_gbm_growth",
        format_table(
            ["growth policy", "full-train F1"],
            [[k, f"{v:.3f}"] for k, v in scores.items()],
        ),
    )
    # same leaf budget: leaf-wise should not lose badly to depth-wise
    assert scores["leaf"] >= scores["depth"] - 0.08


@pytest.mark.benchmark(group="ablation")
def test_ablation_refit_cadence(benchmark):
    prep = make_preps("volta", method="mvts", n_splits=1)[0]

    def run():
        out = {}
        for cadence in (1, 5):
            learner = ActiveLearner(
                RandomForestClassifier(random_state=0, **RF_PARAMS),
                "uncertainty",
                prep.X_seed,
                prep.y_seed,
                refit_every=cadence,
                random_state=0,
            )
            alive = np.arange(len(prep.X_pool))
            for _ in range(60):
                i = learner.query(prep.X_pool[alive])
                orig = alive[i]
                learner.teach(prep.X_pool[orig], prep.y_pool[orig])
                alive = np.delete(alive, i)
            learner.flush()
            out[cadence] = f1_score(prep.y_test, learner.predict(prep.X_test))
        return out

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    write_artifact(
        "ablation_refit_cadence",
        format_table(
            ["refit every", "F1 after 60 queries"],
            [[k, f"{v:.3f}"] for k, v in scores.items()],
        ),
    )
    # batched refits land in the same neighbourhood as per-query refits
    assert abs(scores[1] - scores[5]) < 0.12
