"""Fig. 5 — Eclipse learning curves: F1 / false-alarm / anomaly-miss vs queries.

Regenerates the paper's Fig. 5: the same method grid as Fig. 3 on the
Eclipse dataset (MVTS features, the paper's Eclipse winner).

Expected shape (paper): margin is the best strategy on Eclipse; Eclipse
needs roughly an order of magnitude more queries than Volta for the same
target (harder dataset: real applications, multiple node counts, lower
starting F1 — 0.72 vs 0.86); Random has the lowest classification
performance and Equal App the highest anomaly miss rate.
"""

from __future__ import annotations

import pytest

from conftest import write_artifact
from repro.experiments import (
    ALL_METHODS,
    N_QUERIES,
    RF_PARAMS,
    curve_table,
    run_methods,
)


@pytest.mark.benchmark(group="fig5")
def test_fig5_eclipse_curves(benchmark, eclipse_preps):
    result = benchmark.pedantic(
        lambda: run_methods(
            eclipse_preps,
            methods=ALL_METHODS,
            n_queries=N_QUERIES,
            model_params=RF_PARAMS,
        ),
        rounds=1,
        iterations=1,
    )
    stats = {m: result.stats(m) for m in ALL_METHODS}
    checkpoints = (0, 10, 25, 50, 100)
    sections = []
    for metric, title in (
        ("f1", "F1-score"),
        ("far", "false alarm rate"),
        ("amr", "anomaly miss rate"),
    ):
        sections.append(
            f"[{title}]\n" + curve_table(stats, checkpoints=checkpoints, metric=metric)
        )
    write_artifact("fig5_eclipse_curves", "\n\n".join(sections))

    margin, rand = stats["margin"], stats["random"]
    # the best AL strategy should at least match Random at the budget end
    assert margin.f1_mean[-1] >= rand.f1_mean[-1] - 0.05
    # AL strategies keep the false alarm rate near zero by the end
    assert margin.far_mean[-1] <= 0.10
