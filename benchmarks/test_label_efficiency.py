"""Label efficiency — the paper's headline framing, as one overlay.

The "28× fewer labeled samples" claim compares two curves over labeled-set
size: (a) a *supervised* model trained on randomly drawn labeled subsets,
and (b) the active learner's trajectory as it grows its labeled set by
querying. This bench draws both on the Volta corpus and reports the
horizontal gap at fixed F1 levels — the measurable label-efficiency
factor at our scale (see EXPERIMENTS.md for why the paper's 28x
compresses with pool size).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_preps, write_artifact
from repro.experiments import RF_PARAMS, format_table, run_methods, sparkline
from repro.mlcore import RandomForestClassifier
from repro.mlcore.model_selection import learning_curve


@pytest.mark.benchmark(group="efficiency")
def test_label_efficiency(benchmark):
    prep = make_preps("volta", method="mvts", n_splits=2)

    def run():
        # supervised curve over random stratified subsets of seed ∪ pool
        X = np.vstack([prep[0].X_seed, prep[0].X_pool])
        y = np.concatenate([prep[0].y_seed, prep[0].y_pool])
        sizes, sup_mean, sup_std = learning_curve(
            RandomForestClassifier(random_state=0, **RF_PARAMS),
            X, y, prep[0].X_test, prep[0].y_test,
            train_sizes=(30, 66, 100, 150, 220, len(y)),
            n_repeats=3,
            random_state=0,
        )
        # active curve from the same seed size
        al = run_methods(
            prep, methods=("uncertainty",), n_queries=120,
            model_params=RF_PARAMS,
        ).stats("uncertainty")
        return sizes, sup_mean, sup_std, al

    sizes, sup_mean, sup_std, al = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [int(s), f"{m:.3f}±{sd:.3f}"] for s, m, sd in zip(sizes, sup_mean, sup_std)
    ]
    text = "[supervised: F1 vs random labeled subset size]\n"
    text += format_table(["labels", "F1"], rows)
    text += "\n\n[active learning: F1 vs labeled-set size]\n"
    checkpoints = [0, 25, 60, 120]
    al_rows = []
    for q in checkpoints:
        i = int(np.argmin(np.abs(al.n_labeled - (al.n_labeled[0] + q))))
        al_rows.append([int(al.n_labeled[i]), f"{al.f1_mean[i]:.3f}"])
    text += format_table(["labels", "F1"], al_rows)
    text += f"\nAL curve: {sparkline(al.f1_mean)}"

    # horizontal gap at matched F1 levels
    gaps = []
    for target in (0.70, 0.74):
        al_hit = np.flatnonzero(al.f1_mean >= target)
        sup_hit = np.flatnonzero(sup_mean >= target)
        al_n = int(al.n_labeled[al_hit[0]]) if len(al_hit) else None
        sup_n = int(sizes[sup_hit[0]]) if len(sup_hit) else None
        ratio = (
            f"{sup_n / al_n:.1f}x" if al_n and sup_n and al_n > 0 else "-"
        )
        gaps.append([f"{target:.2f}", al_n or "-", sup_n or "-", ratio])
    text += "\n\n[labels needed per F1 target]\n"
    text += format_table(["target F1", "active", "supervised", "factor"], gaps)
    write_artifact("label_efficiency", text)

    # the AL curve must not need more labels than random-subset supervision
    for _, al_n, sup_n, _ in gaps:
        if isinstance(al_n, int) and isinstance(sup_n, int):
            assert al_n <= sup_n * 1.5
