"""Performance benchmark for the parallel deterministic data plane.

Measures the PR's two claims and records them in
``BENCH_data_plane.json`` at the repository root:

* ``build_dataset`` end to end (campaign generation + feature
  extraction) serial vs 4 workers, for both MVTS and TSFRESH — with the
  output matrices asserted *bit-identical* between the arms, because the
  seed-streamed data plane trades zero reproducibility for its speed;
* run-batched extraction (``extraction_batched_*``): one preprocess +
  kernel pass per run-length group over the whole corpus vs the
  historical one-pass-per-run loop, bit-identical outputs asserted and
  the speedup gated ≥ 1.5x at smoke (short-run, serving-shaped) scale —
  pure dispatch-overhead amortization, independent of core count; the
  long-run full profile records its smaller speedup honestly;
* the TSFRESH vectorization: whole-matrix approximate entropy vs the
  historical per-column loop on a single preprocessed run matrix.

Timing protocol mirrors ``test_perf_train_core.py``: this box throttles
under sustained load, so competing configs are *interleaved* and each
reported number is the median over reps.

Parallel speedup is recorded alongside the *effective* CPU count (the
affinity mask, not the machine) and only asserted (≥3x at 4 workers)
when the mask actually offers ≥4 cores and the full profile is running.
On any box the parallel arm must stay within 5% of serial (speedup
≥ 0.95x): the zero-copy substrate resolves ``backend="auto"`` to
threads when the mask has one core and ships work through shared
memory otherwise, so ``n_jobs`` must never be a slowdown.

``DATA_PLANE_PROFILE=smoke`` shrinks the campaign for CI; the smoke
numbers gate regressions against ``benchmarks/baselines/`` via
``DATA_PLANE_BASELINE=<path>`` (fail when >2x slower than the committed
baseline).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.apps.volta_apps import VOLTA_APPS
from repro.datasets.generate import SystemConfig, build_dataset, generate_runs
from repro.features.mvts import extract_mvts
from repro.features.pipeline import batched_feature_rows, preprocess_run
from repro.parallel import effective_cpu_count
from repro.features.tsfresh_lite import (
    _approx_entropy_column,
    _approx_entropy_matrix,
    extract_tsfresh,
)
from repro.telemetry.catalog import build_catalog
from repro.telemetry.collector import Collector
from repro.telemetry.corpus import RunCorpus, plan_length_groups
from repro.telemetry.node import VOLTA_NODE

PROFILE = os.environ.get("DATA_PLANE_PROFILE", "full")
SMOKE = PROFILE == "smoke"

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_data_plane.json"

# an even rep count keeps the arm-order alternation balanced (each arm
# runs first in half the reps); 4 reps tame the noise on ~100ms smoke
# measurements that the 0.95 overhead gate compares
REPS = 4
N_WORKERS = 4


def _campaign() -> SystemConfig:
    """The benchmark campaign (bench-scale in full profile)."""
    app_names = ("CG", "BT") if SMOKE else ("CG", "BT", "Kripke", "MiniMD")
    return SystemConfig(
        name="bench-data-plane",
        apps={k: VOLTA_APPS[k] for k in app_names},
        catalog=build_catalog(
            n_cores=1 if SMOKE else 4,
            n_nics=1,
            n_extra_cray=2 if SMOKE else 8,
        ),
        node=VOLTA_NODE,
        intensities=(0.2, 1.0),
        duration=64 if SMOKE else 240,
        n_healthy_per_app_input=2 if SMOKE else 6,
        n_anomalous_per_app_anomaly=2 if SMOKE else 6,
    )


def _update_results(section: str, payload: dict) -> None:
    """Merge one bench section into the repo-root JSON artifact."""
    doc = {}
    if RESULT_PATH.exists():
        doc = json.loads(RESULT_PATH.read_text())
    doc.setdefault("schema", "data_plane/v1")
    doc["profile"] = PROFILE
    doc["cpu_count"] = os.cpu_count()
    doc["effective_cpu_count"] = effective_cpu_count()
    doc[section] = payload
    RESULT_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\n=== {section} ===\n{json.dumps(payload, indent=2)}")


def _build_seconds(config, method, n_jobs):
    t0 = time.perf_counter()
    ds, _ = build_dataset(config, method=method, rng=0, n_jobs=n_jobs)
    return time.perf_counter() - t0, ds


class TestBuildDataset:
    def _bench_method(self, method: str) -> dict:
        config = _campaign()
        times: dict[str, list[float]] = {"serial": [], "parallel": []}
        jobs = {"serial": 1, "parallel": N_WORKERS}
        results: dict[str, object] = {}
        for rep in range(REPS):
            # alternate arm order: the box throttles under sustained
            # load, so whichever arm runs second in a rep measures hot —
            # alternating debiases the medians
            order = ("serial", "parallel") if rep % 2 == 0 else ("parallel", "serial")
            for arm in order:
                t, ds = _build_seconds(config, method, n_jobs=jobs[arm])
                times[arm].append(t)
                results[arm] = ds
        ref, par = results["serial"], results["parallel"]
        # the whole point: parallelism must not move a single bit
        assert np.array_equal(ref.X, par.X)
        assert np.array_equal(ref.labels, par.labels)
        assert np.array_equal(ref.apps, par.apps)
        assert ref.feature_names == par.feature_names
        med = {name: float(np.median(ts)) for name, ts in times.items()}
        speedup = med["serial"] / med["parallel"]
        payload = {
            "n_runs": len(ref),
            "n_features": int(ref.X.shape[1]),
            "reps": REPS,
            "serial_s": round(med["serial"], 4),
            "parallel_4w_s": round(med["parallel"], 4),
            "speedup_4w": round(speedup, 2),
            "bit_identical": True,
            "note": (
                "speedup is bounded by the affinity mask; on a one-core "
                "mask backend=auto runs threads, so the parallel arm "
                "stays within noise of serial instead of paying "
                "spawn/pickle overhead"
            ),
        }
        _update_results(f"build_dataset_{method}", payload)
        # parallelism must never be a slowdown: whatever the core count,
        # the 4-worker arm stays within 5% of serial
        assert speedup >= 0.95, (
            f"parallel overhead: {method} 4-worker arm is "
            f"{1 / speedup:.2f}x serial"
        )
        if not SMOKE and effective_cpu_count() >= N_WORKERS:
            assert speedup >= 3.0
        return payload

    def test_mvts_end_to_end(self):
        payload = self._bench_method("mvts")
        assert payload["serial_s"] > 0

    def test_tsfresh_end_to_end(self):
        payload = self._bench_method("tsfresh")
        assert payload["serial_s"] > 0


class TestExtractionBatched:
    """One kernel pass per corpus vs one per run — same bytes, less tax.

    The per-run arm is the historical `_ChunkFeaturizer` body: every run
    pays the full fixed overhead of hundreds of numpy/scipy dispatches.
    The batched arm hstacks each run-length group into a ``(T, B*M)``
    panel and preprocesses + extracts once per group. The win is pure
    dispatch-overhead amortization, so it owes nothing to core count —
    but it *does* shrink as runs get longer (the O(T^2) approx-entropy
    arithmetic swamps the fixed dispatch cost). The ≥1.5x gate therefore
    binds in the smoke profile, whose short runs mirror the serving
    micro-batch regime the batched path exists for; the long-run full
    profile records its (smaller) speedup honestly and only asserts
    batching is never a slowdown.
    """

    _EXTRACT = {"mvts": extract_mvts, "tsfresh": extract_tsfresh}

    def _bench_method(self, method: str) -> dict:
        config = _campaign()
        corpus = RunCorpus.from_records(generate_runs(config, rng=0))
        mask = config.catalog.counter_mask
        extract = self._EXTRACT[method]

        def per_run() -> np.ndarray:
            return np.vstack([
                extract(preprocess_run(corpus.run_data(i), mask))
                for i in range(len(corpus))
            ])

        def batched() -> np.ndarray:
            return batched_feature_rows(
                corpus.buffer, corpus.offsets, mask, (0.08, 0.06), method
            )

        arms = {"per_run": per_run, "batched": batched}
        times: dict[str, list[float]] = {name: [] for name in arms}
        results: dict[str, np.ndarray] = {}
        for rep in range(REPS):
            order = ("per_run", "batched") if rep % 2 == 0 else ("batched", "per_run")
            for arm in order:
                t0 = time.perf_counter()
                results[arm] = arms[arm]()
                times[arm].append(time.perf_counter() - t0)
        # batching must not move a single bit
        assert np.array_equal(results["per_run"], results["batched"])
        med = {name: float(np.median(ts)) for name, ts in times.items()}
        speedup = med["per_run"] / med["batched"]
        payload = {
            "n_runs": len(corpus),
            "n_metrics": corpus.n_metrics,
            "n_panel_groups": len(
                plan_length_groups(corpus.lengths, corpus.n_metrics)
            ),
            "reps": REPS,
            "per_run_s": round(med["per_run"], 4),
            "batched_s": round(med["batched"], 4),
            "speedup": round(speedup, 2),
            "bit_identical": True,
            "note": (
                "pure kernel-dispatch amortization: runs of equal length "
                "share one preprocess + extraction pass, so the speedup "
                "holds on any box regardless of core count; it shrinks "
                "with run length as per-run arithmetic amortizes the "
                "dispatch cost itself"
            ),
        }
        _update_results(f"extraction_batched_{method}", payload)
        if SMOKE:
            assert speedup >= 1.5, (
                f"batched {method} extraction only {speedup:.2f}x the "
                "per-run arm at smoke (short-run) scale"
            )
        else:
            assert speedup >= 0.95, (
                f"batched {method} extraction is a slowdown at full "
                f"scale: {speedup:.2f}x"
            )
        return payload

    def test_mvts_extraction_batched(self):
        payload = self._bench_method("mvts")
        assert payload["batched_s"] > 0

    def test_tsfresh_extraction_batched(self):
        payload = self._bench_method("tsfresh")
        assert payload["batched_s"] > 0


class TestTsfreshVectorization:
    def test_approx_entropy_matrix_vs_column_loop(self):
        """Single-run extraction: whole-matrix ApEn vs the legacy loop."""
        config = _campaign()
        collector = Collector(config.catalog, config.node, config.missing_rate)
        app = next(iter(config.apps.values()))
        run = collector.collect(
            app,
            input_deck=0,
            duration=config.duration,
            node_count=config.node_counts[0],
            rng=np.random.default_rng(0),
        )
        X = preprocess_run(run.data, config.catalog.counter_mask)

        times: dict[str, list[float]] = {"matrix": [], "column_loop": []}
        vec = ref = None
        for _rep in range(REPS + 1):
            t0 = time.perf_counter()
            vec = _approx_entropy_matrix(X)
            times["matrix"].append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            ref = np.array(
                [_approx_entropy_column(X[:, j]) for j in range(X.shape[1])]
            )
            times["column_loop"].append(time.perf_counter() - t0)
        assert np.array_equal(vec, ref)  # vectorization is exact
        med = {name: float(np.median(ts)) for name, ts in times.items()}
        speedup = med["column_loop"] / med["matrix"]
        _update_results(
            "tsfresh_vectorization",
            {
                "run_shape": list(X.shape),
                "reps": REPS + 1,
                "column_loop_s": round(med["column_loop"], 4),
                "matrix_s": round(med["matrix"], 4),
                "speedup": round(speedup, 2),
                "bit_identical": True,
            },
        )
        if not SMOKE:
            assert speedup >= 1.5


class TestBaselineGate:
    def test_no_regression_vs_committed_baseline(self):
        """CI gate: fail when any recorded timing is >2x the baseline."""
        baseline_path = os.environ.get("DATA_PLANE_BASELINE")
        if not baseline_path:
            import pytest

            pytest.skip("DATA_PLANE_BASELINE not set")
        baseline = json.loads(Path(baseline_path).read_text())
        current = json.loads(RESULT_PATH.read_text())
        assert current["profile"] == baseline["profile"], (
            "baseline was recorded under a different profile"
        )
        checks = {
            "build_dataset_mvts.serial_s": lambda d: d["build_dataset_mvts"]["serial_s"],
            "build_dataset_tsfresh.serial_s": lambda d: d["build_dataset_tsfresh"]["serial_s"],
            "extraction_batched_mvts.batched_s": lambda d: d["extraction_batched_mvts"]["batched_s"],
            "extraction_batched_tsfresh.batched_s": lambda d: d["extraction_batched_tsfresh"]["batched_s"],
            "tsfresh_vectorization.matrix_s": lambda d: d["tsfresh_vectorization"]["matrix_s"],
        }
        regressions = []
        for name, get in checks.items():
            ours, theirs = get(current), get(baseline)
            if ours > 2.0 * theirs:
                regressions.append(f"{name}: {ours:.3f}s vs baseline {theirs:.3f}s")
        assert not regressions, "; ".join(regressions)
