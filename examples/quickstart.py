"""Quickstart: diagnose HPC performance anomalies with active learning.

This walks the whole ALBADross loop on a small synthetic campaign:

1. run applications on a simulated cluster, with and without injected
   anomalies, collecting LDMS-style telemetry;
2. train the initial model on one labeled sample per (application, class);
3. let the active learner pick which unlabeled runs a human should label;
4. deploy: diagnose fresh runs with label + confidence.

Runs in well under a minute.

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ALBADross, FrameworkConfig
from repro.datasets import volta_config, generate_runs


def main() -> None:
    rng = np.random.default_rng(0)

    # --- 1. data collection campaign (scaled-down Volta) -----------------
    config = volta_config(
        scale=0.04,
        n_healthy_per_app_input=4,
        n_anomalous_per_app_anomaly=4,
        duration=160,
    )
    runs = generate_runs(config, rng=rng)
    print(f"collected {len(runs)} runs "
          f"({len(config.catalog)} metrics @ 1 Hz, {config.duration}s each)")

    # --- 2. split: seed (1 per app/class), pool, held-out test -----------
    seed, pool, test = [], [], []
    seen = set()
    for i in rng.permutation(len(runs)):
        run = runs[i]
        key = (run.app, run.label)
        if key not in seen:
            seen.add(key)
            seed.append(run)
        elif rng.random() < 0.3:
            test.append(run)
        else:
            pool.append(run)
    print(f"seed={len(seed)}  unlabeled pool={len(pool)}  test={len(test)}")

    # --- 3. the framework: extract -> select -> train -> query loop ------
    framework = ALBADross(
        config.catalog,
        FrameworkConfig(
            feature_method="mvts",
            n_features=200,
            model="random_forest",
            model_params={"n_estimators": 12},
            query_strategy="uncertainty",
            max_queries=25,
            random_state=0,
        ),
    )
    framework.fit_features(seed + pool)
    framework.fit_initial(seed, [r.label for r in seed])

    result = framework.learn(
        pool, [r.label for r in pool],          # the "annotator" answers
        test, [r.label for r in test],          # monitored score
    )
    print(f"\nactive learning: F1 {result.initial_f1:.3f} -> {result.final_f1:.3f} "
          f"after {result.oracle.n_queries} annotator queries")
    print("queried labels:", dict(result.oracle.label_counts()))

    # --- 4. deployment: diagnose new runs --------------------------------
    print("\ndiagnosing 5 fresh runs:")
    for run, diagnosis in zip(test[:5], framework.diagnose(test[:5])):
        marker = "OK " if diagnosis.label == run.label else "MISS"
        print(f"  [{marker}] {run.app:<10} true={run.label:<10} "
              f"predicted={diagnosis.label:<10} confidence={diagnosis.confidence:.2f}")


if __name__ == "__main__":
    main()
