"""Production triage: train once, persist, and diagnose a stream of runs.

The deployment story of the paper's Sec. III-E: a framework tuned offline
is stored as a pickle and later answers "what is wrong with this node?"
for incoming runs, with a confidence the operator can threshold for triage.
Low-confidence diagnoses are routed back to the annotator — exactly the
loop that generated the training labels in the first place.

    python examples/production_triage.py
"""

from __future__ import annotations

import tempfile
from collections import Counter
from pathlib import Path

import numpy as np

from repro.core import ALBADross, FrameworkConfig, load_framework, save_framework
from repro.datasets import eclipse_config, generate_runs

CONFIDENCE_GATE = 0.6  # below this, send the run to a human


def main() -> None:
    rng = np.random.default_rng(1)
    config = eclipse_config(
        scale=0.04,
        n_healthy_per_app_input=6,
        n_anomalous_per_app_anomaly=6,
        duration=300,
    )
    runs = generate_runs(config, rng=rng)
    runs = [runs[i] for i in rng.permutation(len(runs))]

    # offline: train the framework on half the campaign; the rest arrives
    # later as the production stream
    split = len(runs) // 2
    history, incoming = runs[:split], runs[split:]
    seed, pool = [], []
    seen = set()
    for run in history:
        key = (run.app, run.label)
        if key not in seen:
            seen.add(key)
            seed.append(run)
        else:
            pool.append(run)

    framework = ALBADross(
        config.catalog,
        FrameworkConfig(
            feature_method="mvts",
            n_features=200,
            model_params={"n_estimators": 16},
            query_strategy="margin",  # the paper's Eclipse winner
            max_queries=30,
            random_state=1,
        ),
    )
    framework.fit_features(history)
    framework.fit_initial(seed, [r.label for r in seed])
    result = framework.learn(
        pool, [r.label for r in pool], incoming[:40], [r.label for r in incoming[:40]]
    )
    print(f"trained with {result.oracle.n_queries} annotator queries; "
          f"validation F1 {result.final_f1:.3f}")

    # persist and reload (Sec. III-E: "stored as a pickle object")
    with tempfile.TemporaryDirectory() as tmp:
        path = save_framework(framework, Path(tmp) / "albadross.pkl")
        deployed = load_framework(path)
        print(f"model persisted and reloaded from {path.name}")

        # online: triage the incoming stream
        print(f"\ntriaging {len(incoming)} incoming runs "
              f"(confidence gate {CONFIDENCE_GATE}):")
        verdicts = Counter()
        escalated = 0
        correct = 0
        for run, diag in zip(incoming, deployed.diagnose(incoming)):
            if diag.confidence < CONFIDENCE_GATE:
                escalated += 1
                continue
            verdicts[diag.label] += 1
            correct += diag.label == run.label
        automated = len(incoming) - escalated
        print(f"  automated verdicts : {automated}")
        print(f"  escalated to human : {escalated}")
        if automated:
            print(f"  accuracy on automated verdicts: {correct / automated:.3f}")
        print("  verdict mix:", dict(verdicts))


if __name__ == "__main__":
    main()
