"""Multi-node cluster campaign (the paper's actual data-collection shape).

The paper runs every application across several compute nodes and injects
the anomaly on the *first allocated node only* — so one anomalous job
produces one anomalous sample and N−1 healthy samples from the very same
execution. This example drives the cluster simulator through a mixed job
stream, shows the per-node labeling, trains a diagnosis model on the
per-node samples, and finishes with drift monitoring on a stream of jobs
from an input deck the model never saw.

    python examples/cluster_campaign.py
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.anomalies import get_anomaly
from repro.apps import VOLTA_APPS
from repro.cluster import ClusterSim, Job
from repro.core import DriftMonitor
from repro.features import FeatureExtractor
from repro.mlcore import (
    MinMaxScaler,
    RandomForestClassifier,
    classification_report,
    train_test_split,
)
from repro.telemetry import VOLTA_NODE, build_catalog


def main() -> None:
    rng = np.random.default_rng(4)
    catalog = build_catalog(n_cores=3, n_nics=2, n_extra_cray=8)
    cluster = ClusterSim(
        catalog=catalog, node_profile=VOLTA_NODE, n_nodes=16, missing_rate=0.003
    )

    # a mixed job stream: mostly healthy, some jobs with a co-running anomaly
    apps = ["CG", "BT", "MiniMD", "Kripke", "MG"]
    anomalies = ["cpuoccupy", "membw", "memleak", "cachecopy", "dial"]
    jobs = []
    for i in range(60):
        app = VOLTA_APPS[apps[i % len(apps)]]
        if i % 4 == 0:  # every 4th job carries an anomaly on its first node
            anomaly = get_anomaly(anomalies[(i // 4) % len(anomalies)])
            jobs.append(Job(app=app, input_deck=i % 2, node_count=4, duration=180,
                            anomaly=anomaly, intensity=(0.5, 1.0)[i % 2]))
        else:
            jobs.append(Job(app=app, input_deck=i % 2, node_count=4, duration=180))

    records = cluster.run_campaign(jobs, rng=rng)
    label_mix = Counter(r.label for r in records)
    print(f"ran {len(jobs)} jobs -> {len(records)} per-node samples")
    print(f"label mix: {dict(label_mix)}")
    print(f"(anomalous jobs contribute 3 healthy siblings each — "
          f"the paper's labeling rule)\n")

    # featurize per-node samples and train a diagnosis model
    extractor = FeatureExtractor(catalog, method="mvts")
    ds = extractor.fit_transform(records)
    scaler = MinMaxScaler(clip=True)
    X = scaler.fit_transform(ds.X)
    Xtr, Xte, ytr, yte = train_test_split(X, ds.labels, test_size=0.3, random_state=0)
    model = RandomForestClassifier(n_estimators=24, max_depth=8, random_state=0)
    model.fit(Xtr, ytr)
    print("diagnosis on held-out per-node samples:")
    print(classification_report(yte, model.predict(Xte)))

    # drift monitoring: compare incoming job windows against the training
    # distribution. A stream with the familiar workload mix passes; a
    # stream dominated by an application the model never saw (FT — the
    # paper's Fig. 7 scenario) must raise the drift flag before the bad
    # diagnoses pile up.
    monitor = DriftMonitor(model=model, drift_fraction_threshold=0.35).fit(Xtr)
    familiar = cluster.run_campaign(
        [
            Job(app=VOLTA_APPS[name], input_deck=i % 2, node_count=4, duration=180)
            for i, name in enumerate(apps * 2)
        ],
        rng=rng,
    )
    unseen_app = cluster.run_campaign(
        [Job(app=VOLTA_APPS["FT"], input_deck=2, node_count=4, duration=180)] * 8,
        rng=rng,
    )
    for name, stream in (
        ("familiar workload mix", familiar),
        ("unseen application (FT)", unseen_app),
    ):
        window = scaler.transform(extractor.transform(stream).X)
        print(f"\ndrift check, {name}: {monitor.check(window).summary()}")


if __name__ == "__main__":
    main()
