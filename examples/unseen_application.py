"""Robustness to previously unseen applications (the paper's Sec. V-B).

A production reality: the cluster runs applications the diagnosis model
never trained on. This example trains on a subset of the Volta apps, tests
on held-out apps only, and shows (a) the damage unseen apps cause and
(b) how few targeted annotator queries repair it compared to random
labeling — the paper's Fig. 6 story.

    python examples/unseen_application.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets import (
    build_dataset,
    make_app_holdout_split,
    prepare,
    volta_config,
)
from repro.experiments import run_methods

TRAIN_APPS = ["BT", "CG", "LU", "MiniMD"]


def main() -> None:
    config = volta_config(
        scale=0.04,
        n_healthy_per_app_input=6,
        n_anomalous_per_app_anomaly=6,
        duration=200,
    )
    print("building dataset...")
    ds, _ = build_dataset(config, method="mvts", rng=2)

    held_out = sorted(set(ds.apps) - set(TRAIN_APPS))
    print(f"training apps: {TRAIN_APPS}")
    print(f"held-out apps (test only): {held_out}")

    preps = [
        prepare(make_app_holdout_split(ds, TRAIN_APPS, rng=r), k_features=200)
        for r in range(2)
    ]
    result = run_methods(
        preps,
        methods=("uncertainty", "random"),
        n_queries=50,
        model_params={"n_estimators": 12, "max_depth": 8},
    )

    unc = result.stats("uncertainty")
    rand = result.stats("random")
    print(f"\nstarting F1 on unseen apps: {unc.f1_mean[0]:.3f} "
          f"(the damage unseen applications cause)")
    print(f"after 50 annotator queries:")
    print(f"  uncertainty sampling : {unc.f1_mean[-1]:.3f}")
    print(f"  random labeling      : {rand.f1_mean[-1]:.3f}")
    # demo-scale targets (the bench suite uses the paper-scale corpora)
    for target in (0.40, 0.45):
        a = result.queries_to_reach("uncertainty", target)
        b = result.queries_to_reach("random", target)
        print(f"queries to F1 {target}: uncertainty={a}  random={b}")


if __name__ == "__main__":
    main()
