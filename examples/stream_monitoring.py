"""Stream-based selective sampling on a live run stream (online deployment).

Pool-based AL (the paper's setting) assumes the unlabeled data sits in a
batch. A deployed monitor instead sees runs one at a time and must decide
*on the spot* whether each one is worth an annotator query — the
stream-based scenario of the paper's Sec. II-A, with an adaptive
uncertainty threshold holding the long-run query rate near a budget.

    python examples/stream_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro.active import StreamActiveLearner
from repro.datasets import build_dataset, volta_config
from repro.mlcore import MinMaxScaler, RandomForestClassifier, f1_score

QUERY_BUDGET_RATE = 0.15  # aim to ask the annotator about ~15% of runs


def main() -> None:
    config = volta_config(
        scale=0.04,
        n_healthy_per_app_input=6,
        n_anomalous_per_app_anomaly=6,
        duration=200,
    )
    print("building dataset...")
    ds, _ = build_dataset(config, method="mvts", rng=5)
    scaler = MinMaxScaler(clip=True)
    X = scaler.fit_transform(ds.X)
    y = ds.labels

    # seed: one run per (app, class); the rest arrives as a stream
    rng = np.random.default_rng(0)
    order = rng.permutation(len(y))
    seed_idx, stream_idx, seen = [], [], set()
    for i in order:
        key = (ds.apps[i], y[i])
        if key not in seen:
            seen.add(key)
            seed_idx.append(i)
        else:
            stream_idx.append(i)

    learner = StreamActiveLearner(
        RandomForestClassifier(n_estimators=12, max_depth=8, random_state=0),
        threshold=0.45,
        target_rate=QUERY_BUDGET_RATE,
        adapt_step=0.03,
    ).initialize(X[seed_idx], y[seed_idx])

    # replay the stream; every 80 runs, report the operating point
    print(f"streaming {len(stream_idx)} runs "
          f"(query budget ~{QUERY_BUDGET_RATE:.0%})\n")
    window_pred, window_true = [], []
    for step, i in enumerate(stream_idx, 1):
        decision = learner.observe(X[i])
        window_pred.append(decision.prediction)
        window_true.append(y[i])
        if decision.queried:
            learner.feed_label(X[i], y[i])  # annotator answers
        if step % 80 == 0:
            f1 = f1_score(np.array(window_true), np.array(window_pred))
            print(f"  after {step:>4} runs: query rate {learner.query_rate:.2f}  "
                  f"threshold {learner.threshold:.2f}  "
                  f"window F1 {f1:.3f}  labeled {learner.n_labeled}")
            window_pred, window_true = [], []

    print(f"\nfinal: {learner.n_queried} queries over {learner.n_seen} runs "
          f"({learner.query_rate:.1%}), labeled set {learner.n_labeled}")


if __name__ == "__main__":
    main()
