"""The full online serving loop: collect, train, publish, serve, escalate.

The paper trains ALBADross offline; this example runs the deployment the
serving subsystem adds. A small campaign trains version 1, which goes
into a versioned model registry. A `DiagnosisService` then scores the
incoming "production" traffic through the micro-batching engine; runs it
is not confident about land in the escalation queue, get annotated
(ground truth plays the human here), and the refit framework is
published — and hot-swapped in — as version 2.

    python examples/online_service.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.active.stream import ThresholdController
from repro.core import ALBADross, FrameworkConfig
from repro.datasets import generate_runs, volta_config
from repro.mlcore import f1_score
from repro.serving import DiagnosisService, EscalationQueue, ModelRegistry


def main() -> None:
    config = volta_config(
        scale=0.04,
        n_healthy_per_app_input=5,
        n_anomalous_per_app_anomaly=4,
        duration=120,
    )
    print("collecting campaign...")
    runs = generate_runs(config, rng=12)
    rng = np.random.default_rng(0)
    order = rng.permutation(len(runs))

    # a deliberately small labeled seed: one run per (app, label) cell;
    # the rest is split into production traffic and a held-out scoreboard
    seed, traffic, holdout, seen = [], [], [], set()
    for i in order:
        run = runs[i]
        key = (run.app, run.label)
        if key not in seen:
            seen.add(key)
            seed.append(run)
        elif rng.random() < 0.3:
            holdout.append(run)
        else:
            traffic.append(run)
    print(f"seed={len(seed)} traffic={len(traffic)} holdout={len(holdout)}")

    framework = ALBADross(
        config.catalog,
        FrameworkConfig(n_features=100, model_params={"n_estimators": 20}),
    )
    framework.fit_features(runs)
    framework.fit_initial(seed, [r.label for r in seed])

    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(Path(tmp) / "registry")
        v1 = registry.publish(framework, tag="initial")
        print(f"published {v1.version_id} "
              f"(fingerprint {v1.manifest['train_fingerprint']})")

        escalation = EscalationQueue(
            ThresholdController(threshold=0.35, target_rate=0.2)
        )
        service = DiagnosisService(
            registry, max_batch=16, max_linger_s=0.005, escalation=escalation
        )
        with service:
            # production traffic arrives run by run; the engine batches it
            futures = [service.submit(run) for run in traffic]
            verdicts = [f.result() for f in futures]
            correct = sum(
                d.label == r.label for d, r in zip(verdicts, traffic)
            )
            print(f"served {len(verdicts)} runs on {service.version.version_id}: "
                  f"{correct}/{len(traffic)} correct, "
                  f"{len(escalation)} escalated to the annotator")

            # the human annotates the escalated runs (ground truth here),
            # the framework absorbs them, and v2 goes live without a restart
            v2 = service.retrain_and_publish(
                annotator=lambda item: item.run.label, tag="annotated"
            )
            if v2 is None:
                print("nothing escalated; still serving v1")
            else:
                print(f"published + hot-swapped to {v2.version_id} "
                      f"(fingerprint {v2.manifest['train_fingerprint']})")

            stats = service.stats.snapshot()
            print("service stats:")
            print(f"  requests           {stats['requests']}")
            print(f"  batches            {stats['batches']}")
            print(f"  mean batch size    {stats['mean_batch_size']:.1f}")
            print(f"  cache hits         {stats['cache_hits']}")
            print(f"  escalations        {stats['escalations']}")

        # scoreboard: did closing the loop help?
        y_true = np.array([r.label for r in holdout])
        for ref in ("v0001", "v0002") if v2 is not None else ("v0001",):
            fw, version = registry.load(ref)
            y_pred = np.array([d.label for d in fw.diagnose(holdout)])
            print(f"{version.version_id} holdout macro F1: "
                  f"{f1_score(y_true, y_pred):.3f}")

        print("registry:")
        for version in registry.list_versions():
            marker = "*" if version.version_id == registry.current_id() else " "
            print(f"  {marker} {version.version_id} tag={version.tag}")


if __name__ == "__main__":
    main()
