"""Compare query strategies and baselines (a miniature of the paper's Fig. 3).

Races the three active-learning strategies (uncertainty, margin, entropy)
against the Random and Equal App baselines on one Volta-style dataset and
prints the learning-curve table with sparklines.

    python examples/compare_strategies.py
"""

from __future__ import annotations

from repro.datasets import (
    build_dataset,
    make_standard_split,
    prepare,
    volta_config,
)
from repro.experiments import curve_table, run_methods

METHODS = ("uncertainty", "margin", "entropy", "random", "equal_app")


def main() -> None:
    config = volta_config(
        scale=0.04,
        n_healthy_per_app_input=6,
        n_anomalous_per_app_anomaly=6,
        duration=200,
    )
    print("building dataset (campaign + MVTS feature extraction)...")
    ds, _ = build_dataset(config, method="mvts", rng=0)
    print(f"corpus: {ds.X.shape[0]} runs x {ds.X.shape[1]} features")

    preps = [
        prepare(make_standard_split(ds, rng=r), k_features=200) for r in range(2)
    ]
    print(f"pool size {len(preps[0].y_pool)}, test size {len(preps[0].y_test)}; "
          f"racing {len(METHODS)} methods x {len(preps)} splits...")

    result = run_methods(
        preps,
        methods=METHODS,
        n_queries=40,
        model_params={"n_estimators": 12, "max_depth": 8},
    )

    stats = {m: result.stats(m) for m in METHODS}
    print("\nF1-score vs additional labeled samples")
    print(curve_table(stats, checkpoints=(0, 5, 10, 20, 40)))
    print("\nfalse alarm rate")
    print(curve_table(stats, checkpoints=(0, 5, 10, 20, 40), metric="far"))

    # demo-scale targets (the bench suite uses the paper-scale corpora)
    for target in (0.75, 0.78):
        print(f"\nadditional samples to reach F1 {target}:")
        for m in METHODS:
            needed = result.queries_to_reach(m, target)
            print(f"  {m:<12} {needed if needed is not None else 'not reached'}")


if __name__ == "__main__":
    main()
