"""Annotation session with metric drill-down (the paper's future-work UX).

The paper's planned dashboard shows the annotator *why* a run was selected:
the model's current guess and the metrics that deviate most from healthy
baselines. This example runs a scripted annotation session and prints the
explanation cards a human would see. Swap the scripted annotator for
``input()`` and it becomes a real labeling tool.

    python examples/annotation_session.py
"""

from __future__ import annotations

import numpy as np

from repro.active import ActiveLearner
from repro.core import MetricHighlighter
from repro.core.annotation import AnnotationSession
from repro.datasets import volta_config, generate_runs
from repro.features import FeatureExtractor
from repro.mlcore import MinMaxScaler, RandomForestClassifier


def main() -> None:
    rng = np.random.default_rng(3)
    config = volta_config(
        scale=0.04,
        n_healthy_per_app_input=4,
        n_anomalous_per_app_anomaly=4,
        duration=160,
    )
    runs = generate_runs(config, rng=rng)
    runs = [runs[i] for i in rng.permutation(len(runs))]

    # feature space: extraction + scaling learned on the corpus
    extractor = FeatureExtractor(config.catalog, method="mvts")
    corpus = extractor.fit_transform(runs)
    scaler = MinMaxScaler(clip=True).fit(corpus.X)

    def featurize(run):
        return scaler.transform(extractor.transform([run]).X)[0]

    # seed: one labeled run per (app, class) pair
    seed_idx, seen = [], set()
    for i, run in enumerate(runs):
        key = (run.app, run.label)
        if key not in seen:
            seen.add(key)
            seed_idx.append(i)
    pool = [r for i, r in enumerate(runs) if i not in set(seed_idx)]

    learner = ActiveLearner(
        RandomForestClassifier(n_estimators=12, max_depth=8, random_state=0),
        "uncertainty",
        scaler.transform(corpus.X[seed_idx]),
        corpus.labels[seed_idx],
        random_state=0,
    )

    # healthy baselines for the metric drill-down
    healthy_runs = [r for r in runs if r.label == "healthy"][:10]
    highlighter = MetricHighlighter(config.catalog, top_k=5).fit(healthy_runs)

    # a scripted annotator standing in for the human (returns ground truth)
    def annotator(card: str, run) -> str:
        print(card)
        print(f"  >> annotator answers: {run.label}\n")
        return run.label

    session = AnnotationSession(learner, highlighter, featurize, annotator)
    print(f"starting annotation session: {len(pool)} unlabeled runs, "
          f"{learner.n_labeled} labeled seeds\n")
    session.run(pool, n_queries=5)
    print(f"session complete: labeled set grew to {learner.n_labeled} runs")


if __name__ == "__main__":
    main()
