"""Tests for application workload signatures."""

import numpy as np
import pytest

from repro.apps.base import AppSignature, Phase, demand_vector
from repro.apps.eclipse_apps import ECLIPSE_APPS, eclipse_app
from repro.apps.volta_apps import VOLTA_APPS, volta_app
from repro.telemetry.catalog import RESOURCE_DIMS

D = len(RESOURCE_DIMS)


class TestDemandVector:
    def test_sets_named_dims(self):
        v = demand_vector(cpu=0.5, net=0.2)
        assert v[RESOURCE_DIMS.index("cpu")] == 0.5
        assert v[RESOURCE_DIMS.index("net")] == 0.2
        assert v.sum() == pytest.approx(0.7)

    def test_unknown_dim(self):
        with pytest.raises(ValueError, match="unknown resource dim"):
            demand_vector(gpu=1.0)


class TestPhase:
    def test_validation(self):
        with pytest.raises(ValueError, match="weight"):
            Phase("p", 0.0, demand_vector(cpu=1.0))
        with pytest.raises(ValueError, match="osc_period"):
            Phase("p", 1.0, demand_vector(cpu=1.0), osc_period=0)
        with pytest.raises(ValueError, match="shape"):
            Phase("p", 1.0, np.zeros(2))


class TestCatalogs:
    def test_paper_table1_apps(self):
        assert set(VOLTA_APPS) == {
            "BT", "CG", "FT", "LU", "MG", "SP",
            "MiniMD", "CoMD", "MiniGhost", "MiniAMR", "Kripke",
        }

    def test_paper_table2_apps(self):
        assert set(ECLIPSE_APPS) == {
            "LAMMPS", "HACC", "sw4", "ExaMiniMD", "SWFFT", "sw4lite",
        }

    def test_lookup_helpers(self):
        assert volta_app("CG").name == "CG"
        assert eclipse_app("HACC").name == "HACC"
        with pytest.raises(ValueError, match="unknown Volta app"):
            volta_app("nope")
        with pytest.raises(ValueError, match="unknown Eclipse app"):
            eclipse_app("nope")

    def test_three_input_decks_everywhere(self):
        for app in list(VOLTA_APPS.values()) + list(ECLIPSE_APPS.values()):
            assert app.n_inputs == 3

    def test_confusable_apps_have_high_variation(self):
        """Kripke / MiniMD / MiniAMR are the paper's most-queried healthy apps."""
        confusable = [VOLTA_APPS[n].run_variation for n in ("Kripke", "MiniMD", "MiniAMR")]
        others = [VOLTA_APPS[n].run_variation for n in ("BT", "CG", "LU", "SP")]
        assert min(confusable) > max(others)


class TestTimeline:
    @pytest.fixture(scope="class")
    def cg(self):
        return VOLTA_APPS["CG"]

    def test_shape_and_nonnegativity(self, cg):
        tl = cg.demand_timeline(100, rng=0)
        assert tl.shape == (100, D)
        assert np.all(tl >= 0)

    def test_exact_duration_for_awkward_lengths(self, cg):
        for T in (37, 64, 101, 250):
            assert cg.demand_timeline(T, rng=0).shape[0] == T

    def test_input_decks_shift_the_signature(self, cg):
        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
        a = cg.demand_timeline(200, input_deck=0, rng=rng1)
        b = cg.demand_timeline(200, input_deck=1, rng=rng2)
        # decks differ in per-dimension mix, not just overall level
        mix_a = a[100:150].mean(axis=0)
        mix_b = b[100:150].mean(axis=0)
        assert np.linalg.norm(mix_a - mix_b) > 0.05

    def test_deck_mix_is_deterministic(self, cg):
        a = cg.demand_timeline(100, input_deck=2, rng=np.random.default_rng(7))
        b = cg.demand_timeline(100, input_deck=2, rng=np.random.default_rng(7))
        assert np.allclose(a, b)

    def test_invalid_input_deck(self, cg):
        with pytest.raises(ValueError, match="input_deck"):
            cg.demand_timeline(50, input_deck=7, rng=0)

    def test_invalid_node_count(self, cg):
        with pytest.raises(ValueError, match="node_count"):
            cg.demand_timeline(50, node_count=0, rng=0)

    def test_too_short_duration(self, cg):
        with pytest.raises(ValueError, match="shorter"):
            cg.demand_timeline(2, rng=0)

    def test_more_nodes_more_network(self, cg):
        rng1, rng2 = np.random.default_rng(2), np.random.default_rng(2)
        few = cg.demand_timeline(150, node_count=2, rng=rng1)
        many = cg.demand_timeline(150, node_count=16, rng=rng2)
        net = RESOURCE_DIMS.index("net")
        assert many[:, net].mean() > few[:, net].mean()

    def test_apps_are_distinguishable_in_demand_space(self):
        """Mean demand profiles of different apps must differ clearly."""
        profiles = {}
        for name in ("CG", "BT", "FT", "MiniGhost"):
            tl = VOLTA_APPS[name].demand_timeline(300, rng=0)
            profiles[name] = tl[30:270].mean(axis=0)  # steady region
        names = list(profiles)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                dist = np.linalg.norm(profiles[a] - profiles[b])
                assert dist > 0.1, (a, b)

    def test_oscillation_present_in_compute_phase(self, cg):
        tl = cg.demand_timeline(400, rng=3)
        cpu = tl[50:350, RESOURCE_DIMS.index("membw")]
        # spectral peak away from DC for an oscillating phase
        spectrum = np.abs(np.fft.rfft(cpu - cpu.mean()))
        assert spectrum[1:].max() > 3 * spectrum[1:].mean()

    def test_run_variation_changes_between_runs(self, cg):
        rng = np.random.default_rng(4)
        a = cg.demand_timeline(100, rng=rng)
        b = cg.demand_timeline(100, rng=rng)
        assert not np.allclose(a, b)

    def test_empty_phases_rejected(self):
        with pytest.raises(ValueError, match="at least one phase"):
            AppSignature(name="x", phases=())
