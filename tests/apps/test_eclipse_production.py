"""Tests for Eclipse's production-system overrides and app structure."""

import numpy as np
import pytest

from repro.apps.eclipse_apps import ECLIPSE_APPS
from repro.apps.volta_apps import VOLTA_APPS
from repro.telemetry.catalog import RESOURCE_DIMS


class TestProductionOverrides:
    def test_noise_burst_rate_exceeds_volta(self):
        for name, app in ECLIPSE_APPS.items():
            assert app.noise_burst_rate > max(
                a.noise_burst_rate for a in VOLTA_APPS.values()
            ) - 1e-9, name

    def test_input_mix_strength_exceeds_volta(self):
        eclipse_mix = {a.input_mix_strength for a in ECLIPSE_APPS.values()}
        volta_mix = {a.input_mix_strength for a in VOLTA_APPS.values()}
        assert min(eclipse_mix) > max(volta_mix)

    def test_every_eclipse_app_got_overrides(self):
        strengths = {a.input_mix_strength for a in ECLIPSE_APPS.values()}
        assert strengths == {0.35}


class TestProxyParentConfusability:
    """The ECP proxies deliberately shadow their parent application."""

    @pytest.mark.parametrize(
        "proxy,parent", [("ExaMiniMD", "LAMMPS"), ("sw4lite", "sw4")]
    )
    def test_proxy_profile_close_to_parent(self, proxy, parent):
        def steady_profile(app):
            tl = app.demand_timeline(400, input_deck=0, rng=np.random.default_rng(0))
            return tl[50:350].mean(axis=0)

        proxy_profile = steady_profile(ECLIPSE_APPS[proxy])
        parent_profile = steady_profile(ECLIPSE_APPS[parent])
        # the proxy must sit closer to its parent than to any other app
        d_parent = np.linalg.norm(proxy_profile - parent_profile)
        for other_name, other in ECLIPSE_APPS.items():
            if other_name in (proxy, parent):
                continue
            d_other = np.linalg.norm(proxy_profile - steady_profile(other))
            assert d_parent < d_other + 0.25, (proxy, other_name)


class TestEclipsePhaseStructure:
    def test_real_apps_have_richer_phase_programs(self):
        for name in ("LAMMPS", "HACC", "sw4"):
            assert len(ECLIPSE_APPS[name].phases) >= 5, name

    def test_io_phases_present(self):
        """Checkpoints/dumps: every real app must touch the filesystem."""
        io = RESOURCE_DIMS.index("io")
        for name in ("LAMMPS", "HACC", "sw4"):
            app = ECLIPSE_APPS[name]
            assert any(p.demand[io] > 0.3 for p in app.phases), name

    def test_node_scaling_affects_network(self):
        app = ECLIPSE_APPS["HACC"]
        rng1, rng2 = np.random.default_rng(3), np.random.default_rng(3)
        few = app.demand_timeline(200, node_count=4, rng=rng1)
        many = app.demand_timeline(200, node_count=16, rng=rng2)
        net = RESOURCE_DIMS.index("net")
        assert many[:, net].mean() > few[:, net].mean()
