"""Fixture tests for the bounded-waits checker (BW001)."""

import textwrap

from repro.analysis import lint_source

SCOPED = "src/repro/serving/fixture.py"
UNSCOPED = "src/repro/mlcore/fixture.py"


def _lint(source, path=SCOPED):
    return lint_source(textwrap.dedent(source), path)


class TestBW001:
    def test_unbounded_result_fires(self):
        findings = _lint(
            """
            def score(engine, run):
                return engine.submit(run).result()
            """
        )
        assert [f.rule for f in findings] == ["BW001"]
        assert ".result()" in findings[0].message

    def test_each_wait_method_fires(self):
        findings = lint_source(
            textwrap.dedent(
                """
                def drain(t, q, lock, evt, fut):
                    fut.result()
                    t.join()
                    q.get()
                    lock.acquire()
                    evt.wait()
                """
            ),
            SCOPED,
            rules=["BW001"],
        )
        assert [f.rule for f in findings] == ["BW001"] * 5

    def test_timeout_keyword_is_clean(self):
        findings = _lint(
            """
            def score(engine, run):
                return engine.submit(run).result(timeout=5.0)
            """
        )
        assert findings == []

    def test_positional_timeout_is_clean(self):
        findings = _lint(
            """
            def drain(t, evt):
                t.join(30.0)
                evt.wait(30.0)
            """
        )
        assert findings == []

    def test_dict_get_and_str_join_are_clean(self):
        # those always carry arguments, so the zero-arg rule ignores them
        findings = _lint(
            """
            def fmt(d, parts):
                return d.get("key"), ", ".join(parts)
            """
        )
        assert findings == []

    def test_tests_serving_is_in_scope(self):
        findings = _lint(
            """
            def test_something(fut):
                assert fut.result().label
            """,
            path="tests/serving/test_fixture.py",
        )
        assert [f.rule for f in findings] == ["BW001"]

    def test_out_of_scope_path_is_clean(self):
        findings = _lint(
            """
            def score(fut):
                return fut.result()
            """,
            path=UNSCOPED,
        )
        assert findings == []
