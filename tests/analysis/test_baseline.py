"""Tests for the committed-baseline mechanism (load/write/diff)."""

import json

from repro.analysis import (
    Finding,
    diff_baseline,
    load_baseline,
    write_baseline,
)


def _f(rule="EH001", path="src/repro/x.py", line=10, message="swallowed"):
    return Finding(rule=rule, path=path, line=line, message=message)


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        target = tmp_path / "baseline.json"
        findings = [_f(line=3), _f(rule="BW001", message="unbounded")]
        write_baseline(target, findings)
        loaded = load_baseline(target)
        assert sorted(loaded) == sorted(findings)

    def test_written_file_is_sorted_stable_json(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline(target, [_f(path="b.py"), _f(path="a.py")])
        doc = json.loads(target.read_text())
        assert [entry["path"] for entry in doc] == ["a.py", "b.py"]

    def test_empty_baseline_means_no_debt(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text("[]\n")
        assert load_baseline(target) == []


class TestDiff:
    def test_matching_ignores_line_numbers(self):
        fresh, absorbed = diff_baseline([_f(line=99)], [_f(line=10)])
        assert fresh == []
        assert len(absorbed) == 1

    def test_counts_are_per_key(self):
        # two grandfathered findings absorb two occurrences; a third is new
        current = [_f(line=1), _f(line=2), _f(line=3)]
        baseline = [_f(line=1), _f(line=2)]
        fresh, absorbed = diff_baseline(current, baseline)
        assert len(absorbed) == 2
        assert len(fresh) == 1

    def test_different_rule_is_not_absorbed(self):
        fresh, absorbed = diff_baseline(
            [_f(rule="BW001")], [_f(rule="EH001")]
        )
        assert len(fresh) == 1
        assert absorbed == []

    def test_paid_down_debt_shrinks_cleanly(self):
        fresh, absorbed = diff_baseline([], [_f()])
        assert fresh == []
        assert absorbed == []
