"""Runner, CLI, and repo-wide meta tests for ``repro lint``."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    RULES,
    format_findings,
    run_lint,
    rules_for_path,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestScoping:
    def test_serving_gets_every_family(self):
        active = rules_for_path("src/repro/serving/engine.py")
        for rule in ("DET001", "BW001", "LD001", "RL001", "EH001"):
            assert rule in active

    def test_lock_rules_stay_out_of_mlcore(self):
        active = rules_for_path("src/repro/mlcore/forest.py")
        assert "LD001" not in active
        assert "DET001" in active

    def test_every_rule_has_a_scope_and_summary(self):
        for rule_id, spec in RULES.items():
            assert spec.scopes, rule_id
            assert spec.summary, rule_id


class TestRunLint:
    def test_unknown_rule_id_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown rule"):
            run_lint([tmp_path], root=tmp_path, rules=["NOPE99"])

    def test_syntax_error_is_reported_not_skipped(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "serving" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def broken(:\n")
        report = run_lint(["src"], root=tmp_path)
        assert report["findings"] == []
        assert len(report["errors"]) == 1
        assert "SyntaxError" in report["errors"][0]["error"]

    def test_baseline_absorbs_known_findings(self, tmp_path):
        src = tmp_path / "src" / "repro" / "serving" / "mod.py"
        src.parent.mkdir(parents=True)
        src.write_text(
            textwrap.dedent(
                """
                def score(fut):
                    return fut.result()
                """
            )
        )
        dirty = run_lint(["src"], root=tmp_path)
        assert [f.rule for f in dirty["findings"]] == ["BW001"]
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps([f.to_dict() for f in dirty["findings"]])
        )
        clean = run_lint(["src"], root=tmp_path, baseline=baseline)
        assert clean["findings"] == []
        assert [f.rule for f in clean["baselined"]] == ["BW001"]

    def test_text_and_json_formats(self, tmp_path):
        src = tmp_path / "src" / "repro" / "serving" / "mod.py"
        src.parent.mkdir(parents=True)
        src.write_text("def score(fut):\n    return fut.result()\n")
        report = run_lint(["src"], root=tmp_path)
        text = format_findings(report, "text")
        assert "BW001" in text
        assert text.endswith("in 1 files")
        doc = json.loads(format_findings(report, "json"))
        assert doc["findings"][0]["rule"] == "BW001"
        assert doc["files"] == 1


class TestCli:
    def test_lint_exits_nonzero_on_findings(self, tmp_path, monkeypatch, capsys):
        src = tmp_path / "src" / "repro" / "serving" / "mod.py"
        src.parent.mkdir(parents=True)
        src.write_text("def score(fut):\n    return fut.result()\n")
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "src"]) == 1
        assert "BW001" in capsys.readouterr().out

    def test_lint_exits_zero_when_clean(self, tmp_path, monkeypatch, capsys):
        src = tmp_path / "src" / "repro" / "serving" / "mod.py"
        src.parent.mkdir(parents=True)
        src.write_text("def score(fut):\n    return fut.result(timeout=5.0)\n")
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "src"]) == 0

    def test_write_baseline_then_lint_against_it(
        self, tmp_path, monkeypatch, capsys
    ):
        src = tmp_path / "src" / "repro" / "serving" / "mod.py"
        src.parent.mkdir(parents=True)
        src.write_text("def score(fut):\n    return fut.result()\n")
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "--write-baseline", "baseline.json", "src"]) == 0
        assert main(["lint", "--baseline", "baseline.json", "src"]) == 0
        out = capsys.readouterr().out
        assert "(1 baselined)" in out

    def test_unknown_rule_exits_two(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "--rules", "NOPE99", "."]) == 2
        assert "unknown rule" in capsys.readouterr().err


class TestRepoIsClean:
    def test_repo_lints_clean_against_committed_baseline(self):
        """The meta-test: the repo's own invariants hold, end to end."""
        report = run_lint(
            ["src", "tests"],
            root=REPO_ROOT,
            baseline=REPO_ROOT / "lint_baseline.json",
        )
        rendered = format_findings(report, "text")
        assert report["errors"] == [], rendered
        assert report["findings"] == [], rendered

    def test_committed_baseline_is_empty(self):
        # the repo carries no grandfathered debt; keep it that way
        assert json.loads((REPO_ROOT / "lint_baseline.json").read_text()) == []
