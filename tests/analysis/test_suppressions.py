"""Tests for inline ``# repro-lint: disable=...`` suppression parsing."""

import textwrap

from repro.analysis import lint_source, parse_suppressions


class TestParsing:
    def test_single_rule_with_justification(self):
        sup = parse_suppressions(
            "x = risky()  # repro-lint: disable=EH001 -- teardown may race\n"
        )
        assert list(sup) == [1]
        assert sup[1].covers("EH001")
        assert not sup[1].covers("BW001")
        assert sup[1].justification == "teardown may race"

    def test_multiple_rules(self):
        sup = parse_suppressions(
            "x = 1  # repro-lint: disable=DET001, DET003 -- fixture data\n"
        )
        assert sup[1].covers("DET001")
        assert sup[1].covers("DET003")
        assert not sup[1].covers("DET002")

    def test_disable_all(self):
        sup = parse_suppressions("x = 1  # repro-lint: disable=all\n")
        assert sup[1].covers("EH001")
        assert sup[1].covers("LD003")
        assert sup[1].justification == ""

    def test_comment_inside_string_is_not_a_suppression(self):
        # parsed via tokenize, so string literals cannot suppress
        sup = parse_suppressions(
            's = "# repro-lint: disable=EH001"\n'
        )
        assert sup == {}

    def test_line_numbers_track_the_comment(self):
        sup = parse_suppressions(
            "a = 1\n"
            "b = 2  # repro-lint: disable=BW001 -- test helper\n"
            "c = 3\n"
        )
        assert list(sup) == [2]


class TestEndToEnd:
    def test_suppression_silences_the_flagged_line(self):
        findings = lint_source(
            textwrap.dedent(
                """
                def score(fut):
                    return fut.result()  # repro-lint: disable=BW001 -- fixture
                """
            ),
            "src/repro/serving/fixture.py",
        )
        assert findings == []

    def test_suppression_is_line_scoped(self):
        findings = lint_source(
            textwrap.dedent(
                """
                def score(a, b):
                    x = a.result()  # repro-lint: disable=BW001 -- fixture
                    return x, b.result()
                """
            ),
            "src/repro/serving/fixture.py",
        )
        assert [f.rule for f in findings] == ["BW001"]
        assert findings[0].line == 4

    def test_wrong_rule_id_does_not_suppress(self):
        findings = lint_source(
            textwrap.dedent(
                """
                def score(fut):
                    return fut.result()  # repro-lint: disable=EH001 -- wrong id
                """
            ),
            "src/repro/serving/fixture.py",
        )
        assert [f.rule for f in findings] == ["BW001"]
