"""Fixture tests for the resource-lifecycle checker (RL001-RL004)."""

import textwrap

from repro.analysis import lint_source

SCOPED = "src/repro/serving/fixture.py"


def _lint(source, path=SCOPED):
    return lint_source(textwrap.dedent(source), path)


def rules(findings):
    return sorted(f.rule for f in findings)


class TestRL001Threads:
    def test_unmanaged_thread_fires(self):
        findings = _lint(
            """
            import threading

            def start(fn):
                t = threading.Thread(target=fn)
                t.start()
                return t
            """
        )
        assert rules(findings) == ["RL001"]

    def test_daemon_kwarg_is_clean(self):
        findings = _lint(
            """
            import threading

            def start(fn):
                t = threading.Thread(target=fn, daemon=True)
                t.start()
                return t
            """
        )
        assert findings == []

    def test_join_anywhere_in_file_is_clean(self):
        findings = _lint(
            """
            import threading

            def start(fn):
                t = threading.Thread(target=fn)
                t.start()
                return t

            def stop(t):
                t.join(timeout=5.0)
            """
        )
        assert findings == []

    def test_daemon_assignment_is_clean(self):
        findings = _lint(
            """
            import threading

            def start(fn):
                t = threading.Thread(target=fn)
                t.daemon = True
                t.start()
                return t
            """
        )
        assert findings == []


class TestRL002SqliteConnections:
    def test_unclosed_connect_fires(self):
        findings = _lint(
            """
            import sqlite3

            def count(path):
                conn = sqlite3.connect(path)
                return conn.execute("SELECT COUNT(*) FROM jobs").fetchone()
            """
        )
        assert rules(findings) == ["RL002"]

    def test_close_in_file_is_clean(self):
        findings = _lint(
            """
            import sqlite3

            class Store:
                def __init__(self, path):
                    self._conn = sqlite3.connect(path)

                def close(self):
                    self._conn.close()
            """
        )
        assert findings == []

    def test_context_managed_connect_is_clean(self):
        findings = _lint(
            """
            import sqlite3
            from contextlib import closing

            def count(path):
                with closing(sqlite3.connect(path)) as conn:
                    return conn.execute("SELECT 1").fetchone()
            """
        )
        assert findings == []


class TestRL003AtomicWrites:
    def test_direct_overwrite_fires(self):
        findings = _lint(
            """
            import json

            def save(path, doc):
                with open(path, "w") as fh:
                    json.dump(doc, fh)
            """
        )
        assert rules(findings) == ["RL003"]

    def test_write_text_fires(self):
        findings = _lint(
            """
            def save(path, text):
                path.write_text(text)
            """
        )
        assert rules(findings) == ["RL003"]

    def test_stage_and_replace_is_clean(self):
        findings = _lint(
            """
            import json
            import os

            def save(path, doc):
                tmp = path.with_name(path.name + ".tmp")
                with tmp.open("w") as fh:
                    json.dump(doc, fh)
                os.replace(tmp, path)
            """
        )
        assert findings == []

    def test_read_mode_is_clean(self):
        findings = _lint(
            """
            def load(path):
                with open(path, "r") as fh:
                    return fh.read()
            """
        )
        assert findings == []

    def test_out_of_scope_path_is_clean(self):
        findings = _lint(
            """
            def save(path, text):
                path.write_text(text)
            """,
            path="src/repro/mlcore/fixture.py",
        )
        assert findings == []


class TestRL004SharedMemory:
    def test_segment_without_unlink_story_fires(self):
        findings = _lint(
            """
            from multiprocessing import shared_memory

            def make(nbytes):
                shm = shared_memory.SharedMemory(create=True, size=nbytes)
                return shm

            def drop(shm):
                shm.close()
            """
        )
        assert rules(findings) == ["RL004"]

    def test_attach_without_unlink_story_fires(self):
        # attachments close() rather than unlink, but a file that only
        # ever attaches still needs the owner-side story spelled out
        # somewhere — the rule asks each file for evidence, and the
        # sanctioned wrappers (repro.parallel.shm) carry it
        findings = _lint(
            """
            from multiprocessing.shared_memory import SharedMemory

            def attach(name):
                return SharedMemory(name=name)
            """
        )
        assert rules(findings) == ["RL004"]

    def test_unlink_in_file_is_clean(self):
        findings = _lint(
            """
            from multiprocessing import shared_memory

            def make(nbytes):
                return shared_memory.SharedMemory(create=True, size=nbytes)

            def release(shm):
                shm.unlink()
                shm.close()
            """
        )
        assert findings == []

    def test_weakref_finalize_is_clean(self):
        # finalize evidence alone suffices: the release helper may live
        # in another module (as repro.parallel.shm's _release does)
        findings = _lint(
            """
            import weakref
            from multiprocessing import shared_memory

            from somewhere import release_segment

            def make(nbytes):
                shm = shared_memory.SharedMemory(create=True, size=nbytes)
                weakref.finalize(shm, release_segment, shm)
                return shm
            """
        )
        assert findings == []
