"""Fixture tests for the lock-discipline checker (LD001/LD002/LD003)."""

import textwrap

from repro.analysis import lint_source
from repro.analysis.lock_discipline import is_lockish

SCOPED = "src/repro/serving/fixture.py"


def _lint(source, path=SCOPED):
    return lint_source(textwrap.dedent(source), path)


def rules(findings):
    return sorted(f.rule for f in findings)


class TestLockish:
    def test_lock_mutex_sem_names_match(self):
        assert is_lockish("self._lock")
        assert is_lockish("self._close_lock")
        assert is_lockish("mutex")
        assert is_lockish("self._sem")

    def test_conditions_and_none_do_not(self):
        # waiting on a condition inside its `with` is the correct pattern
        assert not is_lockish("self._idle")
        assert not is_lockish("self._cond")
        assert not is_lockish(None)


class TestLD001BareAcquire:
    def test_bare_acquire_fires(self):
        findings = _lint(
            """
            class Q:
                def push(self, item):
                    self._lock.acquire()
                    self.items.append(item)
                    self._lock.release()
            """
        )
        assert "LD001" in rules(findings)

    def test_with_statement_is_clean(self):
        findings = _lint(
            """
            class Q:
                def push(self, item):
                    with self._lock:
                        self.items.append(item)
            """
        )
        assert findings == []

    def test_try_finally_release_is_clean(self):
        findings = _lint(
            """
            class Q:
                def push(self, item):
                    self._lock.acquire()
                    try:
                        self.items.append(item)
                    finally:
                        self._lock.release()
            """
        )
        assert "LD001" not in rules(findings)


class TestLD002BlockingUnderLock:
    def test_unbounded_wait_under_lock_fires(self):
        findings = _lint(
            """
            class Q:
                def drain(self, fut):
                    with self._lock:
                        return fut.result()
            """
        )
        assert "LD002" in rules(findings)

    def test_sleep_under_lock_fires(self):
        findings = _lint(
            """
            import time

            class Q:
                def spin(self):
                    with self._lock:
                        time.sleep(0.5)
            """
        )
        assert "LD002" in rules(findings)

    def test_bounded_join_under_lock_is_clean(self):
        # the engine's close path: bounded join under the close lock
        findings = _lint(
            """
            class Engine:
                def close(self):
                    with self._close_lock:
                        self._dispatcher.join(timeout=5.0)
            """
        )
        assert findings == []

    def test_nested_function_body_is_not_under_lock(self):
        findings = _lint(
            """
            class Q:
                def make_worker(self):
                    with self._lock:
                        def worker(fut):
                            return fut.result()
                    return worker
            """
        )
        assert "LD002" not in rules(findings)


class TestLD003LockOrderCycles:
    def test_opposite_order_cycle_fires(self):
        findings = _lint(
            """
            class Fleet:
                def route(self):
                    with self._ring_lock:
                        with self._stats_lock:
                            pass

                def report(self):
                    with self._stats_lock:
                        with self._ring_lock:
                            pass
            """
        )
        assert [f.rule for f in findings] == ["LD003"]
        assert "Fleet._ring_lock" in findings[0].message
        assert "Fleet._stats_lock" in findings[0].message

    def test_consistent_order_is_clean(self):
        findings = _lint(
            """
            class Fleet:
                def route(self):
                    with self._ring_lock:
                        with self._stats_lock:
                            pass

                def report(self):
                    with self._ring_lock:
                        with self._stats_lock:
                            pass
            """
        )
        assert findings == []

    def test_self_call_under_lock_resolves_one_hop(self):
        # f holds the lock and calls g, which takes the same non-reentrant
        # lock: a guaranteed self-deadlock, found via the call edge
        findings = _lint(
            """
            class Q:
                def outer(self):
                    with self._lock:
                        return self.inner()

                def inner(self):
                    with self._lock:
                        return self.items[0]
            """
        )
        assert [f.rule for f in findings] == ["LD003"]
        assert "Q._lock -> Q._lock" in findings[0].message

    def test_call_without_lock_inside_is_clean(self):
        findings = _lint(
            """
            class Q:
                def outer(self):
                    with self._lock:
                        return self.inner()

                def inner(self):
                    return self.items[0]
            """
        )
        assert findings == []
