"""Fixture tests for the determinism checker (DET001/DET002/DET003)."""

import textwrap

from repro.analysis import lint_source

SCOPED = "src/repro/mlcore/fixture.py"
UNSCOPED = "src/repro/experiments/fixture.py"


def _lint(source, path=SCOPED):
    return lint_source(textwrap.dedent(source), path)


def rules(findings):
    return sorted(f.rule for f in findings)


class TestDET001ModuleLevelRNG:
    def test_np_random_module_call_fires(self):
        findings = _lint(
            """
            import numpy as np

            def sample(n):
                return np.random.rand(n)
            """
        )
        assert rules(findings) == ["DET001"]
        assert findings[0].line == 5

    def test_python_random_module_call_fires(self):
        findings = _lint(
            """
            import random

            def jitter():
                return random.random()
            """
        )
        assert rules(findings) == ["DET001"]

    def test_generator_methods_are_clean(self):
        findings = _lint(
            """
            import numpy as np

            def sample(rng, n):
                return rng.normal(size=n) + np.random.default_rng(7).random()
            """
        )
        assert findings == []

    def test_seeded_random_instance_is_clean(self):
        findings = _lint(
            """
            import random

            def jitter(seed):
                return random.Random(seed).random()
            """
        )
        assert findings == []

    def test_out_of_scope_path_is_clean(self):
        findings = _lint(
            """
            import numpy as np

            def sample(n):
                return np.random.rand(n)
            """,
            path=UNSCOPED,
        )
        assert findings == []


class TestDET002WallClock:
    def test_time_time_fires(self):
        findings = _lint(
            """
            import time

            def stamp():
                return time.time()
            """
        )
        assert rules(findings) == ["DET002"]

    def test_monotonic_and_perf_counter_are_clean(self):
        findings = _lint(
            """
            import time

            def measure():
                return time.monotonic() + time.perf_counter()
            """
        )
        assert findings == []

    def test_time_as_default_parameter_is_clean(self):
        # a *reference* to time.time (injectable clock) is the sanctioned
        # pattern; only wall-clock *calls* are flagged
        findings = _lint(
            """
            import time

            class Registry:
                def __init__(self, clock=time.time):
                    self._clock = clock
            """
        )
        assert findings == []


class TestDET003ArglessSeeding:
    def test_argless_default_rng_fires(self):
        findings = _lint(
            """
            import numpy as np

            def make():
                return np.random.default_rng()
            """
        )
        assert rules(findings) == ["DET003"]

    def test_argless_seed_sequence_fires(self):
        findings = _lint(
            """
            import numpy as np

            def entropy():
                return int(np.random.SeedSequence().entropy)
            """
        )
        assert rules(findings) == ["DET003"]

    def test_argless_random_instance_fires(self):
        findings = _lint(
            """
            import random

            def make():
                return random.Random()
            """
        )
        assert rules(findings) == ["DET003"]

    def test_seeded_variants_are_clean(self):
        findings = _lint(
            """
            import numpy as np

            def make(seed):
                ss = np.random.SeedSequence(seed)
                return np.random.default_rng(ss)
            """
        )
        assert findings == []
