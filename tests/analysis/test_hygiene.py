"""Fixture tests for the exception-hygiene checker (EH001)."""

import textwrap

from repro.analysis import lint_source

SCOPED = "src/repro/serving/fixture.py"


def _lint(source, path=SCOPED):
    return lint_source(textwrap.dedent(source), path)


class TestEH001:
    def test_broad_except_pass_fires(self):
        findings = _lint(
            """
            def load(path):
                try:
                    return open(path).read()
                except Exception:
                    pass
            """
        )
        assert [f.rule for f in findings] == ["EH001"]

    def test_bare_except_fires(self):
        findings = _lint(
            """
            def load(path):
                try:
                    return open(path).read()
                except:
                    pass
            """
        )
        assert [f.rule for f in findings] == ["EH001"]
        assert "bare except" in findings[0].message

    def test_broad_in_tuple_fires(self):
        findings = _lint(
            """
            def load(path):
                try:
                    return open(path).read()
                except (ValueError, Exception):
                    pass
            """
        )
        assert [f.rule for f in findings] == ["EH001"]

    def test_logged_handler_is_clean(self):
        findings = _lint(
            """
            import logging

            _LOG = logging.getLogger(__name__)

            def load(path):
                try:
                    return open(path).read()
                except Exception as exc:
                    _LOG.warning("load failed: %s", exc)
            """
        )
        assert findings == []

    def test_reraise_is_clean(self):
        findings = _lint(
            """
            def load(path):
                try:
                    return open(path).read()
                except Exception as exc:
                    raise RuntimeError(f"load failed: {path}") from exc
            """
        )
        assert findings == []

    def test_narrow_type_is_clean(self):
        findings = _lint(
            """
            def load(path):
                try:
                    return open(path).read()
                except FileNotFoundError:
                    pass
            """
        )
        assert findings == []

    def test_substantive_handling_is_clean(self):
        # counting the failure into a visible report is escalation enough
        findings = _lint(
            """
            def load_all(paths, report):
                out = []
                for path in paths:
                    try:
                        out.append(open(path).read())
                    except Exception as exc:
                        report.failures[path] = repr(exc)
                return out
            """
        )
        assert findings == []
