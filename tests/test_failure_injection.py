"""Failure-injection tests: degraded telemetry must not crash the pipeline.

Production monitoring data is ugly: sampler stalls lose whole windows,
metrics flatline, counters wrap, nodes die mid-run. The pipeline's
contract is (a) never crash on repairable damage, (b) fail loudly —
with a clear message — on unrepairable damage, and (c) keep diagnosis
output well-formed when test-time data is worse than training data.
"""

import numpy as np
import pytest

from repro.features.mvts import extract_mvts
from repro.features.pipeline import FeatureExtractor, interpolate_missing, preprocess_run
from repro.mlcore.forest import RandomForestClassifier
from repro.mlcore.preprocessing import MinMaxScaler


@pytest.fixture(scope="module")
def runs(tiny_config):
    from repro.datasets.generate import generate_runs

    return generate_runs(tiny_config, rng=11)


class TestMissingDataFloods:
    def test_heavy_missingness_is_repaired(self, tiny_config, runs):
        run = runs[0]
        damaged = run.data.copy()
        rng = np.random.default_rng(0)
        mask = rng.random(damaged.shape) < 0.4  # 40% loss
        damaged[mask] = np.nan
        out = preprocess_run(damaged, tiny_config.catalog.counter_mask)
        assert not np.isnan(out).any()

    def test_entire_metric_missing_becomes_zero(self, tiny_config, runs):
        damaged = runs[0].data.copy()
        damaged[:, 5] = np.nan
        out = preprocess_run(damaged, tiny_config.catalog.counter_mask)
        assert not np.isnan(out).any()

    def test_leading_and_trailing_gaps(self, tiny_config, runs):
        damaged = runs[0].data.copy()
        damaged[:10] = np.nan
        damaged[-10:] = np.nan
        out = preprocess_run(damaged, tiny_config.catalog.counter_mask)
        assert not np.isnan(out).any()

    def test_alternating_loss_pattern(self):
        col = np.arange(40, dtype=float).reshape(-1, 1)
        col[::2] = np.nan
        out = interpolate_missing(col)
        assert not np.isnan(out).any()
        # linear data survives linear interpolation exactly (interior)
        assert np.allclose(out[1:-1, 0], np.arange(40)[1:-1], atol=1.0)


class TestDegenerateSeries:
    def test_flatlined_run_features_finite(self):
        flat = np.full((64, 5), 3.0)
        assert np.all(np.isfinite(extract_mvts(flat)))

    def test_single_spike_features_finite(self):
        data = np.zeros((64, 2))
        data[32, 0] = 1e12
        assert np.all(np.isfinite(extract_mvts(data)))

    def test_giant_counter_values(self, tiny_config):
        """Counters near float precision: the diff path must stay finite."""
        T = 64
        data = np.tile(np.arange(T, dtype=np.float64)[:, None] * 1e12, (1, 4))
        mask = np.array([True, True, False, False])
        out = preprocess_run(data, mask, trim_frac=(0.0, 0.0))
        assert np.all(np.isfinite(out))

    def test_negative_gauge_values(self):
        rng = np.random.default_rng(0)
        data = rng.normal(-100, 10, size=(64, 3))
        assert np.all(np.isfinite(extract_mvts(data)))


class TestTruncatedRuns:
    def test_run_shorter_than_trim_rejected_loudly(self, tiny_config):
        with pytest.raises(ValueError, match="too short"):
            preprocess_run(
                np.ones((12, 3)), np.zeros(3, dtype=bool), trim_frac=(0.4, 0.4)
            )

    def test_extractor_rejects_tiny_run(self, tiny_config, runs):
        import dataclasses

        stub = dataclasses.replace(runs[0])
        stub.data = runs[0].data[:6]
        fe = FeatureExtractor(tiny_config.catalog, method="mvts")
        with pytest.raises(ValueError):
            fe.fit_transform([stub])


class TestTestTimeDamage:
    """Damage appearing only at diagnosis time (training data was clean)."""

    @pytest.fixture(scope="class")
    def trained(self, tiny_config, runs):
        fe = FeatureExtractor(tiny_config.catalog, method="mvts")
        ds = fe.fit_transform(runs)
        scaler = MinMaxScaler(clip=True)
        X = scaler.fit_transform(ds.X)
        model = RandomForestClassifier(n_estimators=8, random_state=0).fit(
            X, ds.labels
        )
        return fe, scaler, model

    def test_damaged_run_gets_a_wellformed_diagnosis(self, trained, runs):
        import dataclasses

        fe, scaler, model = trained
        victim = dataclasses.replace(runs[0])
        victim.data = runs[0].data.copy()
        victim.data[:, ::3] = np.nan  # a third of the metrics lost entirely
        feats = scaler.transform(fe.transform([victim]).X)
        proba = model.predict_proba(feats)
        assert np.all(np.isfinite(proba))
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_out_of_range_values_clipped_by_scaler(self, trained, runs):
        import dataclasses

        fe, scaler, model = trained
        victim = dataclasses.replace(runs[0])
        victim.data = runs[0].data * 1e6  # absurd amplitudes
        feats = scaler.transform(fe.transform([victim]).X)
        assert feats.min() >= 0.0 and feats.max() <= 1.0
        assert model.predict(feats).shape == (1,)
