"""Tests for warm-start AL loops and delta pool scoring.

Two fidelity oracles anchor the incremental path:

* with ``refresh_fraction=1.0`` a warm run replays the cold hist-cached
  run **exactly** — same query sequence, same metric curves — because
  every refit is bit-identical to a cold refit on the stacked data;
* at any refresh fraction, the maintained per-tree probability sum is
  **bitwise equal** to a fresh ``predict_proba`` over the alive pool
  after every round.
"""

import numpy as np
import pytest

from repro.active.learner import ActiveLearner
from repro.active.loop import run_active_learning
from repro.active.strategies import (
    DeltaPoolScorer,
    select_from_proba,
    strategy_name,
    uncertainty_sampling,
)
from repro.mlcore.binning import Binner
from repro.mlcore.forest import RandomForestClassifier


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(0)
    f = 24
    centers = rng.normal(size=(3, f)) * 1.1
    n_each = 120
    X = np.vstack([c + rng.normal(size=(n_each, f)) for c in centers])
    y = np.repeat(np.arange(3), n_each)
    perm = rng.permutation(len(y))
    X, y = X[perm], y[perm]
    return (
        X[:100], y[:100],  # seed
        X[100:260], y[100:260],  # pool
        X[260:], y[260:],  # test
    )


def _hist_rf(**kw):
    kw.setdefault("n_estimators", 8)
    kw.setdefault("max_depth", 6)
    kw.setdefault("splitter", "hist")
    kw.setdefault("random_state", 1)
    return RandomForestClassifier(**kw)


class TestWarmRunFidelity:
    def test_full_refresh_replays_cold_run_exactly(self, problem):
        Xs, ys, Xp, yp, Xt, yt = problem
        kw = dict(n_queries=12, random_state=7)
        cold = run_active_learning(
            _hist_rf(), "uncertainty", Xs, ys, Xp, yp, Xt, yt, **kw
        )
        warm = run_active_learning(
            _hist_rf(), "uncertainty", Xs, ys, Xp, yp, Xt, yt,
            warm_start=True, refresh_fraction=1.0, **kw
        )
        assert cold.queried_labels == warm.queried_labels
        assert np.array_equal(cold.f1, warm.f1)
        assert np.array_equal(cold.far, warm.far)
        assert np.array_equal(cold.amr, warm.amr)

    def test_auto_activates_for_hist_refit_estimators(self, problem):
        Xs, ys, Xp, yp, Xt, yt = problem
        kw = dict(n_queries=8, random_state=7, refresh_fraction=0.25)
        forced = run_active_learning(
            _hist_rf(), "uncertainty", Xs, ys, Xp, yp, Xt, yt,
            warm_start=True, **kw
        )
        auto = run_active_learning(
            _hist_rf(), "uncertainty", Xs, ys, Xp, yp, Xt, yt,
            warm_start="auto", **kw
        )
        assert forced.queried_labels == auto.queried_labels
        assert np.array_equal(forced.f1, auto.f1)

    def test_partial_refresh_reaches_comparable_f1(self, problem):
        Xs, ys, Xp, yp, Xt, yt = problem
        kw = dict(n_queries=15, random_state=7)
        cold = run_active_learning(
            _hist_rf(), "uncertainty", Xs, ys, Xp, yp, Xt, yt, **kw
        )
        warm = run_active_learning(
            _hist_rf(), "uncertainty", Xs, ys, Xp, yp, Xt, yt,
            warm_start=True, refresh_fraction=0.25, **kw
        )
        assert abs(cold.final_f1 - warm.final_f1) < 0.1

    def test_warm_with_margin_and_entropy(self, problem):
        Xs, ys, Xp, yp, Xt, yt = problem
        for strategy in ("margin", "entropy"):
            kw = dict(n_queries=8, random_state=7)
            cold = run_active_learning(
                _hist_rf(), strategy, Xs, ys, Xp, yp, Xt, yt, **kw
            )
            warm = run_active_learning(
                _hist_rf(), strategy, Xs, ys, Xp, yp, Xt, yt,
                warm_start=True, refresh_fraction=1.0, **kw
            )
            assert cold.queried_labels == warm.queried_labels
            assert np.array_equal(cold.f1, warm.f1)

    def test_warm_true_requires_refit_support(self, problem):
        Xs, ys, Xp, yp, Xt, yt = problem
        exact = RandomForestClassifier(n_estimators=4, random_state=1)
        with pytest.raises(TypeError, match="warm_start"):
            run_active_learning(
                exact, "uncertainty", Xs, ys, Xp, yp, Xt, yt,
                n_queries=2, warm_start=True, random_state=0,
            )

    def test_bad_warm_start_value(self, problem):
        Xs, ys, Xp, yp, Xt, yt = problem
        with pytest.raises(ValueError, match="warm_start"):
            run_active_learning(
                _hist_rf(), "uncertainty", Xs, ys, Xp, yp, Xt, yt,
                warm_start="yes",
            )

    def test_auto_falls_back_for_exact_estimators(self, problem):
        # warm_start="auto" on a non-refittable estimator must be a no-op
        Xs, ys, Xp, yp, Xt, yt = problem
        exact = RandomForestClassifier(n_estimators=4, max_depth=5, random_state=1)
        kw = dict(n_queries=5, random_state=0)
        plain = run_active_learning(exact, "uncertainty", Xs, ys, Xp, yp, Xt, yt, **kw)
        auto = run_active_learning(
            exact, "uncertainty", Xs, ys, Xp, yp, Xt, yt,
            warm_start="auto", **kw
        )
        assert plain.queried_labels == auto.queried_labels
        assert np.array_equal(plain.f1, auto.f1)


class TestDeltaScoresBitwise:
    def test_scores_match_full_rescoring_every_round(self, problem):
        """The maintained sum equals predict_proba bitwise after every round."""
        Xs, ys, Xp, yp, Xt, yt = problem
        binner = Binner(_hist_rf().max_bins)
        codes_all = binner.fit_transform(np.vstack([Xs, Xp]))
        learner = ActiveLearner(
            _hist_rf(), "uncertainty", Xs, ys,
            random_state=7, binner=binner,
            initial_codes=codes_all[: len(Xs)],
            warm_start=True, refresh_fraction=0.25,
        )
        scorer = DeltaPoolScorer(learner.model, Xp)
        alive = np.arange(len(Xp))
        for _ in range(12):
            proba = scorer.proba()
            full = learner.model.predict_proba(Xp[alive])
            assert proba.tobytes() == full.tobytes()
            local = select_from_proba("uncertainty", proba)
            assert local == uncertainty_sampling(learner.model, Xp[alive])
            orig = int(alive[local])
            learner.teach(
                Xp[orig], yp[orig], codes=codes_all[len(Xs) + orig]
            )
            alive = np.delete(alive, local)
            scorer.drop(local)
            scorer.apply(learner.take_refit_report(), Xp[alive])
        # final state too, after the last refit
        assert scorer.proba().tobytes() == (
            learner.model.predict_proba(Xp[alive]).tobytes()
        )

    def test_apply_rebinds_on_class_growth(self, problem):
        Xs, ys, Xp, yp, _, _ = problem
        binner = Binner(_hist_rf().max_bins)
        codes_all = binner.fit_transform(np.vstack([Xs, Xp]))
        learner = ActiveLearner(
            _hist_rf(), "uncertainty", Xs, ys,
            random_state=7, binner=binner,
            initial_codes=codes_all[: len(Xs)],
            warm_start=True, refresh_fraction=0.25,
        )
        scorer = DeltaPoolScorer(learner.model, Xp)
        alive = np.arange(len(Xp))
        # teach a label outside the seed's class set: the forest widens and
        # the scorer must rebuild rather than patch
        learner.teach(Xp[0], 99, codes=codes_all[len(Xs)])
        alive = np.delete(alive, 0)
        scorer.drop(0)
        report = learner.take_refit_report()
        assert report.classes_changed
        scorer.apply(report, Xp[alive])
        assert scorer.proba().tobytes() == (
            learner.model.predict_proba(Xp[alive]).tobytes()
        )

    def test_none_report_is_noop(self, problem):
        Xs, ys, Xp, _, _, _ = problem
        rf = _hist_rf().fit(Xs, ys)
        scorer = DeltaPoolScorer(rf, Xp)
        before = scorer.proba().copy()
        scorer.apply(None, Xp)
        assert np.array_equal(scorer.proba(), before)


class TestStrategyNameResolution:
    def test_names_and_canonical_callables(self):
        from repro.active.strategies import STRATEGIES

        for name, fn in STRATEGIES.items():
            assert strategy_name(name) == name
            assert strategy_name(fn) == name

    def test_custom_callable_is_unnamed(self):
        assert strategy_name(lambda model, pool, rng: 0) is None
        assert strategy_name("nonsense") is None


class TestLearnerWarmValidation:
    def test_warm_needs_binner(self, problem):
        Xs, ys, *_ = problem
        with pytest.raises(TypeError, match="bin cache"):
            ActiveLearner(
                _hist_rf(), "uncertainty", Xs, ys, warm_start=True
            )

    def test_warm_needs_refit(self, problem):
        Xs, ys, Xp, *_ = problem
        binner = Binner(64).fit(np.vstack([Xs, Xp]))

        class NoRefit:
            def get_params(self):
                return {}

            def fit_binned(self, binned, y):
                return self

            def fit(self, X, y):
                return self

        with pytest.raises(TypeError, match="refit"):
            ActiveLearner(
                NoRefit(), "uncertainty", Xs, ys,
                binner=binner, warm_start=True,
            )

    def test_bad_refresh_fraction(self, problem):
        Xs, ys, Xp, *_ = problem
        binner = Binner(64).fit(np.vstack([Xs, Xp]))
        with pytest.raises(ValueError, match="refresh_fraction"):
            ActiveLearner(
                _hist_rf(), "uncertainty", Xs, ys,
                binner=binner, warm_start=True, refresh_fraction=0.0,
            )
