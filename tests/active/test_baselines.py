"""Tests for the Random / Equal App / Proctor baselines."""

import numpy as np
import pytest

from repro.active.baselines import (
    EqualAppSelector,
    ProctorModel,
    RandomSelector,
    clone_with_representation,
)


class TestRandomSelector:
    def test_indices_in_range(self):
        sel = RandomSelector()
        rng = np.random.default_rng(0)
        pool = np.zeros((17, 2))
        picks = [sel(None, pool, rng) for _ in range(100)]
        assert all(0 <= p < 17 for p in picks)

    def test_covers_the_pool(self):
        sel = RandomSelector()
        rng = np.random.default_rng(1)
        pool = np.zeros((5, 2))
        picks = {sel(None, pool, rng) for _ in range(200)}
        assert picks == set(range(5))


class TestEqualAppSelector:
    def test_round_robin_over_apps(self):
        apps = np.array(["A", "A", "B", "B", "C", "C"])
        sel = EqualAppSelector(apps)
        rng = np.random.default_rng(0)
        pool = np.zeros((6, 2))
        first_three = []
        local_apps = list(apps)
        for _ in range(3):
            i = sel(None, np.zeros((len(local_apps), 2)), rng)
            first_three.append(local_apps[i])
            sel.remove(i)
            del local_apps[i]
        # one query from each app type in cycle order
        assert sorted(first_three) == ["A", "B", "C"]

    def test_exhausted_app_is_skipped(self):
        apps = np.array(["A", "B"])
        sel = EqualAppSelector(apps)
        rng = np.random.default_rng(0)
        i = sel(None, np.zeros((2, 2)), rng)  # picks from A
        sel.remove(i)
        # next round-robin target is B; A is gone afterwards
        j = sel(None, np.zeros((1, 2)), rng)
        assert j == 0

    def test_out_of_sync_detection(self):
        sel = EqualAppSelector(np.array(["A", "B"]))
        with pytest.raises(RuntimeError, match="out of sync"):
            sel(None, np.zeros((5, 2)), np.random.default_rng(0))

    def test_empty_apps_rejected(self):
        with pytest.raises(ValueError, match="no application"):
            EqualAppSelector(np.array([]))


class TestProctorModel:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(0)
        latent = rng.normal(size=(150, 3))
        basis = rng.normal(size=(3, 20))
        X = latent @ basis
        X = (X - X.min(0)) / (X.max(0) - X.min(0))
        y = (latent[:, 0] > 0).astype(int)
        return X, y

    def test_fit_unlabeled_then_head(self, data):
        X, y = data
        proctor = ProctorModel(code_size=3, hidden_layer_sizes=(32,), ae_epochs=80, random_state=0)
        proctor.fit_unlabeled(X[:100])
        proctor.fit(X[:40], y[:40])
        assert proctor.score(X[100:], y[100:]) > 0.65

    def test_predict_proba_rows(self, data):
        X, y = data
        proctor = ProctorModel(code_size=4, ae_epochs=10, random_state=0)
        proctor.fit_unlabeled(X).fit(X[:40], y[:40])
        proba = proctor.predict_proba(X[:10])
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_fit_without_pretrain_falls_back(self, data):
        X, y = data
        proctor = ProctorModel(code_size=4, ae_epochs=5, random_state=0)
        proctor.fit(X[:40], y[:40])  # trains AE on labeled data itself
        assert hasattr(proctor, "autoencoder_")

    def test_clone_with_representation_shares_ae(self, data):
        X, y = data
        proctor = ProctorModel(code_size=4, ae_epochs=5, random_state=0)
        proctor.fit_unlabeled(X)
        fresh = clone_with_representation(proctor)
        assert fresh.autoencoder_ is proctor.autoencoder_
        assert not hasattr(fresh, "head_")

    def test_refit_head_keeps_representation(self, data):
        """Refitting on more labels must not retrain the autoencoder."""
        X, y = data
        proctor = ProctorModel(code_size=4, ae_epochs=10, random_state=0)
        proctor.fit_unlabeled(X)
        ae_before = proctor.autoencoder_
        proctor.fit(X[:30], y[:30])
        proctor.fit(X[:60], y[:60])
        assert proctor.autoencoder_ is ae_before
