"""Tests for the annotator oracle."""

import numpy as np
import pytest

from repro.active.oracle import Oracle

Y = np.array(["healthy", "membw", "dial", "healthy", "memleak"])
APPS = np.array(["CG", "BT", "CG", "Kripke", "BT"])


class TestLabeling:
    def test_returns_ground_truth(self):
        oracle = Oracle(y_true=Y)
        assert oracle.label(1) == "membw"
        assert oracle.label(0) == "healthy"

    def test_out_of_range_index(self):
        oracle = Oracle(y_true=Y)
        with pytest.raises(IndexError):
            oracle.label(99)

    def test_query_count(self):
        oracle = Oracle(y_true=Y)
        for i in range(3):
            oracle.label(i)
        assert oracle.n_queries == 3

    def test_apps_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            Oracle(y_true=Y, apps=APPS[:2])


class TestDrilldown:
    def test_label_counts(self):
        oracle = Oracle(y_true=Y)
        for i in (0, 3, 1):
            oracle.label(i)
        counts = oracle.label_counts()
        assert counts["healthy"] == 2 and counts["membw"] == 1

    def test_app_counts(self):
        oracle = Oracle(y_true=Y, apps=APPS)
        for i in (0, 2, 4):
            oracle.label(i)
        counts = oracle.app_counts()
        assert counts["CG"] == 2 and counts["BT"] == 1

    def test_first_n_limits_window(self):
        oracle = Oracle(y_true=Y)
        for i in range(5):
            oracle.label(i)
        assert sum(oracle.label_counts(first_n=2).values()) == 2


class TestNoise:
    def test_invalid_noise_rate(self):
        with pytest.raises(ValueError, match="noise_rate"):
            Oracle(y_true=Y, noise_rate=1.0)

    def test_zero_noise_is_exact(self):
        oracle = Oracle(y_true=Y, noise_rate=0.0, random_state=0)
        assert all(oracle.label(i) == Y[i] for i in range(len(Y)))

    def test_full_ish_noise_flips_labels(self):
        rng = np.random.default_rng(0)
        y = np.array(["a", "b"] * 50)
        oracle = Oracle(y_true=y, noise_rate=0.99, random_state=1)
        answers = np.array([oracle.label(i) for i in range(100)])
        assert np.mean(answers != y) > 0.9

    def test_noise_rate_statistics(self):
        y = np.array(["a", "b", "c"] * 100)
        oracle = Oracle(y_true=y, noise_rate=0.3, random_state=2)
        answers = np.array([oracle.label(i) for i in range(300)])
        assert np.mean(answers != y) == pytest.approx(0.3, abs=0.08)
