"""Tests for the cross-refit bin cache in the active-learning loop."""

import numpy as np
import pytest

from repro.active.learner import ActiveLearner
from repro.active.loop import run_active_learning
from repro.mlcore.binning import Binner
from repro.mlcore.forest import RandomForestClassifier


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(0)
    n, f = 260, 10
    X = rng.normal(size=(n, f))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int) + (X[:, 2] > 1.2)
    return (
        X[:24], y[:24],  # seed
        X[24:180], y[24:180],  # pool
        X[180:], y[180:],  # test
    )


def _hist_rf(**kw):
    kw.setdefault("n_estimators", 10)
    kw.setdefault("max_depth", 6)
    kw.setdefault("splitter", "hist")
    kw.setdefault("random_state", 3)
    return RandomForestClassifier(**kw)


class TestLoopBinCache:
    def test_auto_enables_for_hist_and_is_deterministic(self, problem):
        Xs, ys, Xp, yp, Xt, yt = problem
        kw = dict(n_queries=12, random_state=5)
        r1 = run_active_learning(_hist_rf(), "uncertainty", Xs, ys, Xp, yp, Xt, yt, **kw)
        r2 = run_active_learning(_hist_rf(), "uncertainty", Xs, ys, Xp, yp, Xt, yt, **kw)
        assert r1.queried_labels == r2.queried_labels
        assert np.array_equal(r1.f1, r2.f1)

    def test_exact_estimator_unaffected_by_auto(self, problem):
        # bin_cache="auto" must leave the exact path byte-for-byte alone
        Xs, ys, Xp, yp, Xt, yt = problem
        exact = RandomForestClassifier(n_estimators=10, max_depth=6, random_state=3)
        kw = dict(n_queries=8, random_state=5)
        r_auto = run_active_learning(exact, "uncertainty", Xs, ys, Xp, yp, Xt, yt, **kw)
        r_off = run_active_learning(
            exact, "uncertainty", Xs, ys, Xp, yp, Xt, yt, bin_cache=False, **kw
        )
        assert r_auto.queried_labels == r_off.queried_labels
        assert np.array_equal(r_auto.f1, r_off.f1)

    def test_cache_reaches_comparable_f1(self, problem):
        Xs, ys, Xp, yp, Xt, yt = problem
        kw = dict(n_queries=15, random_state=5)
        cached = run_active_learning(
            _hist_rf(), "uncertainty", Xs, ys, Xp, yp, Xt, yt, **kw
        )
        uncached = run_active_learning(
            _hist_rf(), "uncertainty", Xs, ys, Xp, yp, Xt, yt,
            bin_cache=False, **kw
        )
        assert abs(cached.final_f1 - uncached.final_f1) < 0.25

    def test_true_requires_fit_binned(self, problem):
        Xs, ys, Xp, yp, Xt, yt = problem

        class Plain:
            def get_params(self):
                return {}

            def fit(self, X, y):
                self.c_ = np.unique(y)
                return self

            def predict_proba(self, X):
                return np.full((len(X), len(self.c_)), 1.0 / len(self.c_))

            def predict(self, X):
                return np.full(len(X), self.c_[0])

        with pytest.raises(TypeError, match="fit_binned"):
            run_active_learning(
                Plain(), "uncertainty", Xs, ys, Xp, yp, Xt, yt,
                n_queries=2, bin_cache=True, random_state=0,
            )

    def test_bad_bin_cache_value(self, problem):
        Xs, ys, Xp, yp, Xt, yt = problem
        with pytest.raises(ValueError, match="bin_cache"):
            run_active_learning(
                _hist_rf(), "uncertainty", Xs, ys, Xp, yp, Xt, yt,
                bin_cache="yes",
            )


class TestLearnerBinCache:
    def test_teach_appends_cached_codes(self, problem):
        Xs, ys, Xp, yp, _, _ = problem
        binner = Binner(64)
        codes_all = binner.fit_transform(np.vstack([Xs, Xp]))
        learner = ActiveLearner(
            _hist_rf(), "uncertainty", Xs, ys,
            random_state=0, binner=binner, initial_codes=codes_all[: len(Xs)],
        )
        learner.teach(Xp[4], yp[4], codes=codes_all[len(Xs) + 4])
        assert learner.n_labeled == len(Xs) + 1
        assert np.array_equal(learner._binned.codes[-1], codes_all[len(Xs) + 4])

    def test_teach_bins_row_when_codes_missing(self, problem):
        Xs, ys, Xp, yp, _, _ = problem
        binner = Binner(64)
        binner.fit(np.vstack([Xs, Xp]))
        learner = ActiveLearner(
            _hist_rf(), "uncertainty", Xs, ys, random_state=0, binner=binner
        )
        learner.teach(Xp[0], yp[0])
        assert np.array_equal(
            learner._binned.codes[-1], binner.transform(Xp[0][None, :])[0]
        )

    def test_rejects_estimator_without_fit_binned(self, problem):
        Xs, ys, Xp, _, _, _ = problem
        from repro.mlcore.linear import LogisticRegression

        binner = Binner(64).fit(np.vstack([Xs, Xp]))
        with pytest.raises(TypeError, match="fit_binned"):
            ActiveLearner(
                LogisticRegression(), "uncertainty", Xs, ys, binner=binner
            )
