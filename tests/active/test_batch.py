"""Tests for ranked batch-mode selection."""

import numpy as np
import pytest

from repro.active.batch import RankedBatchSelector, select_ranked_batch
from repro.active.learner import ActiveLearner
from repro.mlcore.linear import LogisticRegression


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    X = np.vstack([rng.normal(-2, 0.4, (20, 2)), rng.normal(2, 0.4, (20, 2))])
    y = np.array([0] * 20 + [1] * 20)
    return LogisticRegression(C=10.0).fit(X, y), X, y


class TestSelectRankedBatch:
    def test_batch_size_and_uniqueness(self, fitted):
        model, X, y = fitted
        rng = np.random.default_rng(1)
        pool = rng.normal(0, 2, size=(50, 2))
        batch = select_ranked_batch(model, pool, X, batch_size=8)
        assert len(batch) == 8
        assert len(set(batch)) == 8
        assert all(0 <= i < 50 for i in batch)

    def test_batch_clipped_to_pool(self, fitted):
        model, X, y = fitted
        pool = np.random.default_rng(2).normal(size=(3, 2))
        assert len(select_ranked_batch(model, pool, X, batch_size=10)) == 3

    def test_empty_pool(self, fitted):
        model, X, y = fitted
        with pytest.raises(ValueError, match="empty pool"):
            select_ranked_batch(model, np.empty((0, 2)), X, 2)

    def test_invalid_batch_size(self, fitted):
        model, X, y = fitted
        with pytest.raises(ValueError, match="batch_size"):
            select_ranked_batch(model, np.ones((5, 2)), X, 0)

    def test_batch_is_more_diverse_than_topk_uncertainty(self, fitted):
        """Ranked batch must spread out; top-k uncertainty clumps on the
        decision boundary."""
        model, X, y = fitted
        rng = np.random.default_rng(3)
        # a tight clump on the boundary plus a sparse spread elsewhere
        clump = rng.normal((0, 0), 0.05, size=(30, 2))
        spread = rng.uniform(-4, 4, size=(30, 2))
        pool = np.vstack([clump, spread])

        from repro.active.strategies import uncertainty_scores

        k = 6
        topk = np.argsort(-uncertainty_scores(model.predict_proba(pool)))[:k]
        ranked = select_ranked_batch(model, pool, X, batch_size=k)

        def mean_pairwise(idx):
            pts = pool[list(idx)]
            d = np.sqrt(((pts[:, None] - pts[None, :]) ** 2).sum(-1))
            return d[np.triu_indices(len(pts), 1)].mean()

        assert mean_pairwise(ranked) > mean_pairwise(topk)

    def test_diversity_avoids_near_duplicates_of_labeled(self, fitted):
        model, X, y = fitted
        rng = np.random.default_rng(4)
        near_labeled = X[:10] + 0.01 * rng.normal(size=(10, 2))
        fresh = rng.uniform(-3, 3, size=(10, 2))
        pool = np.vstack([near_labeled, fresh])
        batch = select_ranked_batch(model, pool, X, batch_size=3)
        assert sum(1 for i in batch if i >= 10) >= 2


class TestRankedBatchSelector:
    def test_inside_active_learner(self, fitted):
        model, X, y = fitted
        selector = RankedBatchSelector(batch_size=4)
        learner = ActiveLearner(
            LogisticRegression(C=10.0), selector, X[:10], y[:10], random_state=0
        )
        selector.bind_learner(learner)
        rng = np.random.default_rng(5)
        pool = rng.normal(0, 2, size=(30, 2))
        alive = np.arange(30)
        picked = []
        for _ in range(9):
            i = learner.query(pool[alive])
            picked.append(int(alive[i]))
            learner.teach(pool[alive[i]], 0)
            alive = np.delete(alive, i)
        assert len(set(picked)) == 9
        assert learner.n_labeled == 19

    def test_queue_replays_without_recompute(self, fitted):
        model, X, y = fitted
        selector = RankedBatchSelector(batch_size=3)
        rng = np.random.default_rng(6)
        pool = rng.normal(size=(12, 2))
        first = selector(model, pool, None)
        # simulate the loop contract: drop the selected row
        pool2 = np.delete(pool, first, axis=0)
        second = selector(model, pool2, None)
        assert 0 <= second < len(pool2)
        # the two physical samples differ
        assert not np.array_equal(pool[first], pool2[second])
