"""Tests for query strategies — including the paper's Eq. 2 worked example."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.active.strategies import (
    entropy_sampling,
    entropy_scores,
    get_strategy,
    margin_sampling,
    margin_scores,
    uncertainty_sampling,
    uncertainty_scores,
)

# the paper's Eq. 2 class-probability example
PAPER_PROBA = np.array(
    [
        [0.10, 0.85, 0.05],
        [0.60, 0.30, 0.10],
        [0.39, 0.61, 0.00],
    ]
)


class _FixedModel:
    def __init__(self, proba):
        self._proba = np.asarray(proba)

    def predict_proba(self, X):
        return self._proba[: len(X)]


class TestPaperExample:
    def test_uncertainty_scores_match_eq1(self):
        assert np.allclose(uncertainty_scores(PAPER_PROBA), [0.15, 0.40, 0.39])

    def test_margin_scores_match_eq3(self):
        assert np.allclose(margin_scores(PAPER_PROBA), [0.75, 0.30, 0.22])

    def test_entropy_scores_match_eq4(self):
        # the paper's H_list = [0.52, 0.90, 0.67] uses natural log
        assert np.allclose(entropy_scores(PAPER_PROBA), [0.518, 0.898, 0.669], atol=1e-3)

    def test_uncertainty_selects_second_sample(self):
        model = _FixedModel(PAPER_PROBA)
        assert uncertainty_sampling(model, np.zeros((3, 1))) == 1

    def test_margin_selects_third_sample(self):
        model = _FixedModel(PAPER_PROBA)
        assert margin_sampling(model, np.zeros((3, 1))) == 2

    def test_entropy_selects_max_entropy_sample(self):
        model = _FixedModel(PAPER_PROBA)
        assert entropy_sampling(model, np.zeros((3, 1))) == 1


class TestEdgeCases:
    def test_one_class_margin_well_defined(self):
        proba = np.array([[1.0], [0.7]])
        assert np.allclose(margin_scores(proba), [1.0, 0.7])

    def test_zero_probabilities_in_entropy(self):
        proba = np.array([[1.0, 0.0, 0.0]])
        assert entropy_scores(proba)[0] == 0.0

    def test_uniform_distribution_maximizes_entropy(self):
        uniform = np.full((1, 4), 0.25)
        peaked = np.array([[0.97, 0.01, 0.01, 0.01]])
        assert entropy_scores(uniform)[0] > entropy_scores(peaked)[0]

    def test_1d_proba_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            uncertainty_scores(np.array([0.5, 0.5]))

    def test_get_strategy_lookup(self):
        assert get_strategy("uncertainty") is uncertainty_sampling
        assert get_strategy("margin") is margin_sampling
        assert get_strategy("entropy") is entropy_sampling

    def test_get_strategy_unknown(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            get_strategy("oracle")

    def test_tie_break_lowest_index(self):
        proba = np.array([[0.5, 0.5], [0.5, 0.5]])
        assert uncertainty_sampling(_FixedModel(proba), np.zeros((2, 1))) == 0


class TestProperties:
    @st.composite
    def _proba_matrix(draw):
        n = draw(st.integers(1, 12))
        k = draw(st.integers(2, 6))
        raw = draw(
            st.lists(
                st.lists(st.floats(0.01, 1.0), min_size=k, max_size=k),
                min_size=n,
                max_size=n,
            )
        )
        arr = np.array(raw)
        return arr / arr.sum(axis=1, keepdims=True)

    @given(proba=_proba_matrix())
    @settings(max_examples=50, deadline=None)
    def test_score_ranges(self, proba):
        k = proba.shape[1]
        u = uncertainty_scores(proba)
        m = margin_scores(proba)
        h = entropy_scores(proba)
        assert np.all((u >= 0) & (u <= 1 - 1 / k + 1e-9))
        assert np.all((m >= -1e-12) & (m <= 1 + 1e-9))
        assert np.all((h >= -1e-12) & (h <= np.log(k) + 1e-9))

    @given(proba=_proba_matrix())
    @settings(max_examples=50, deadline=None)
    def test_selections_agree_on_argbest(self, proba):
        model = _FixedModel(proba)
        X = np.zeros((len(proba), 1))
        assert uncertainty_sampling(model, X) == int(np.argmax(uncertainty_scores(proba)))
        assert margin_sampling(model, X) == int(np.argmin(margin_scores(proba)))
        assert entropy_sampling(model, X) == int(np.argmax(entropy_scores(proba)))
