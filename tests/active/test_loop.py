"""Tests for the run_active_learning experiment driver."""

import numpy as np
import pytest

from repro.active.baselines import EqualAppSelector, ProctorModel, RandomSelector
from repro.active.loop import queries_to_reach, run_active_learning
from repro.mlcore.forest import RandomForestClassifier
from repro.mlcore.linear import LogisticRegression


@pytest.fixture(scope="module")
def problem():
    """A 3-class problem: seed covers 2 classes, pool/test have all 3."""
    rng = np.random.default_rng(0)
    centers = {"healthy": (0, 0), "membw": (5, 5), "dial": (-5, 5)}
    def sample(label, n):
        cx, cy = centers[label]
        return np.column_stack([rng.normal(cx, 0.7, n), rng.normal(cy, 0.7, n)])
    X_seed = np.vstack([sample("membw", 3), sample("dial", 3)])
    y_seed = np.array(["membw"] * 3 + ["dial"] * 3)
    labels = ["healthy"] * 60 + ["membw"] * 8 + ["dial"] * 8
    X_pool = np.vstack([sample(l, 1) for l in labels])
    y_pool = np.array(labels)
    apps = np.array(["CG", "BT"] * 38)
    test_labels = ["healthy"] * 30 + ["membw"] * 10 + ["dial"] * 10
    X_test = np.vstack([sample(l, 1) for l in test_labels])
    y_test = np.array(test_labels)
    return X_seed, y_seed, X_pool, y_pool, apps, X_test, y_test


def _rf():
    return RandomForestClassifier(n_estimators=10, random_state=0)


class TestCurves:
    def test_curve_alignment(self, problem):
        X_seed, y_seed, X_pool, y_pool, apps, X_test, y_test = problem
        res = run_active_learning(
            _rf(), "uncertainty", X_seed, y_seed, X_pool, y_pool, X_test, y_test,
            n_queries=10, pool_apps=apps, random_state=0,
        )
        assert len(res.f1) == len(res.n_labeled) == len(res.far) == len(res.amr) == 11
        assert res.n_labeled[0] == 6
        assert res.n_labeled[-1] == 16

    def test_initial_far_is_high_without_healthy_seed(self, problem):
        """No healthy seeds → the model cannot predict healthy → FAR = 1."""
        X_seed, y_seed, X_pool, y_pool, apps, X_test, y_test = problem
        res = run_active_learning(
            _rf(), "uncertainty", X_seed, y_seed, X_pool, y_pool, X_test, y_test,
            n_queries=0, random_state=0,
        )
        assert res.far[0] == 1.0

    def test_uncertainty_learns_the_held_out_class(self, problem):
        X_seed, y_seed, X_pool, y_pool, apps, X_test, y_test = problem
        res = run_active_learning(
            _rf(), "uncertainty", X_seed, y_seed, X_pool, y_pool, X_test, y_test,
            n_queries=30, random_state=0,
        )
        assert res.final_f1 > 0.9
        assert res.far[-1] < 0.2

    def test_eval_every_thins_curve(self, problem):
        X_seed, y_seed, X_pool, y_pool, apps, X_test, y_test = problem
        res = run_active_learning(
            _rf(), "uncertainty", X_seed, y_seed, X_pool, y_pool, X_test, y_test,
            n_queries=10, eval_every=5, random_state=0,
        )
        assert list(res.n_labeled) == [6, 11, 16]

    def test_target_f1_stops_early(self, problem):
        X_seed, y_seed, X_pool, y_pool, apps, X_test, y_test = problem
        res = run_active_learning(
            _rf(), "uncertainty", X_seed, y_seed, X_pool, y_pool, X_test, y_test,
            n_queries=60, target_f1=0.8, random_state=0,
        )
        assert res.oracle.n_queries < 60
        assert res.final_f1 >= 0.8

    def test_budget_bounded_by_pool(self, problem):
        X_seed, y_seed, X_pool, y_pool, apps, X_test, y_test = problem
        res = run_active_learning(
            _rf(), "uncertainty", X_seed, y_seed, X_pool[:5], y_pool[:5],
            X_test, y_test, n_queries=50, random_state=0,
        )
        assert res.oracle.n_queries == 5

    def test_no_sample_queried_twice(self, problem):
        X_seed, y_seed, X_pool, y_pool, apps, X_test, y_test = problem
        res = run_active_learning(
            _rf(), "uncertainty", X_seed, y_seed, X_pool, y_pool, X_test, y_test,
            n_queries=40, random_state=0,
        )
        indices = [r.pool_index for r in res.oracle.history]
        assert len(indices) == len(set(indices))


class TestBaselinesInLoop:
    def test_random_baseline_runs(self, problem):
        X_seed, y_seed, X_pool, y_pool, apps, X_test, y_test = problem
        res = run_active_learning(
            _rf(), RandomSelector(), X_seed, y_seed, X_pool, y_pool, X_test, y_test,
            n_queries=15, random_state=0,
        )
        assert res.oracle.n_queries == 15

    def test_equal_app_baseline_runs(self, problem):
        X_seed, y_seed, X_pool, y_pool, apps, X_test, y_test = problem
        res = run_active_learning(
            _rf(), EqualAppSelector(apps), X_seed, y_seed, X_pool, y_pool,
            X_test, y_test, n_queries=15, pool_apps=apps, random_state=0,
        )
        assert res.oracle.n_queries == 15
        # round-robin should alternate CG/BT queries evenly
        counts = res.oracle.app_counts()
        assert abs(counts["CG"] - counts["BT"]) <= 1

    def test_proctor_pretrains_on_pool(self, problem):
        X_seed, y_seed, X_pool, y_pool, apps, X_test, y_test = problem
        Xs = (X_seed - X_pool.min(0)) / (X_pool.max(0) - X_pool.min(0) + 1e-9)
        Xp = (X_pool - X_pool.min(0)) / (X_pool.max(0) - X_pool.min(0) + 1e-9)
        Xt = (X_test - X_pool.min(0)) / (X_pool.max(0) - X_pool.min(0) + 1e-9)
        proctor = ProctorModel(code_size=2, ae_epochs=15, random_state=0)
        res = run_active_learning(
            proctor, RandomSelector(), Xs, y_seed, Xp, y_pool, Xt, y_test,
            n_queries=5, random_state=0,
        )
        assert hasattr(proctor, "autoencoder_")
        assert res.oracle.n_queries == 5


class TestQueriesToReach:
    def test_already_passed(self, problem):
        X_seed, y_seed, X_pool, y_pool, apps, X_test, y_test = problem
        res = run_active_learning(
            _rf(), "uncertainty", X_seed, y_seed, X_pool, y_pool, X_test, y_test,
            n_queries=30, random_state=0,
        )
        assert queries_to_reach(res, 0.0) == 0

    def test_never_reached(self, problem):
        X_seed, y_seed, X_pool, y_pool, apps, X_test, y_test = problem
        res = run_active_learning(
            _rf(), "uncertainty", X_seed, y_seed, X_pool, y_pool, X_test, y_test,
            n_queries=2, random_state=0,
        )
        # a target strictly above the best F1 the run achieved is, by
        # definition, never reached — robust to how fast the model learns
        unreachable = float(res.f1.max()) + 1e-6
        assert queries_to_reach(res, unreachable) is None

    def test_counts_additional_samples(self, problem):
        X_seed, y_seed, X_pool, y_pool, apps, X_test, y_test = problem
        res = run_active_learning(
            _rf(), "uncertainty", X_seed, y_seed, X_pool, y_pool, X_test, y_test,
            n_queries=30, random_state=0,
        )
        n = queries_to_reach(res, 0.85)
        assert n is not None and 0 < n <= 30


class TestValidation:
    def test_pool_length_mismatch(self, problem):
        X_seed, y_seed, X_pool, y_pool, apps, X_test, y_test = problem
        with pytest.raises(ValueError, match="length mismatch"):
            run_active_learning(
                _rf(), "uncertainty", X_seed, y_seed, X_pool, y_pool[:-3],
                X_test, y_test,
            )

    def test_bad_eval_every(self, problem):
        X_seed, y_seed, X_pool, y_pool, apps, X_test, y_test = problem
        with pytest.raises(ValueError, match="eval_every"):
            run_active_learning(
                _rf(), "uncertainty", X_seed, y_seed, X_pool, y_pool,
                X_test, y_test, eval_every=0,
            )

    def test_reproducibility(self, problem):
        X_seed, y_seed, X_pool, y_pool, apps, X_test, y_test = problem
        kwargs = dict(n_queries=10, random_state=77)
        r1 = run_active_learning(_rf(), "margin", X_seed, y_seed, X_pool, y_pool, X_test, y_test, **kwargs)
        r2 = run_active_learning(_rf(), "margin", X_seed, y_seed, X_pool, y_pool, X_test, y_test, **kwargs)
        assert np.array_equal(r1.f1, r2.f1)
        assert [a.pool_index for a in r1.oracle.history] == [a.pool_index for a in r2.oracle.history]
