"""Tests for the pool-based ActiveLearner."""

import numpy as np
import pytest

from repro.active.learner import ActiveLearner
from repro.mlcore.forest import RandomForestClassifier
from repro.mlcore.linear import LogisticRegression


def _seed_data(seed=0):
    rng = np.random.default_rng(seed)
    X = np.vstack([rng.normal(-2, 0.5, (5, 2)), rng.normal(2, 0.5, (5, 2))])
    y = np.array([0] * 5 + [1] * 5)
    return X, y


class TestConstruction:
    def test_trains_initial_model(self):
        X, y = _seed_data()
        learner = ActiveLearner(LogisticRegression(), "uncertainty", X, y)
        assert learner.n_labeled == 10
        assert learner.score(X, y) == 1.0

    def test_rejects_bad_refit_every(self):
        X, y = _seed_data()
        with pytest.raises(ValueError, match="refit_every"):
            ActiveLearner(LogisticRegression(), "uncertainty", X, y, refit_every=0)

    def test_strategy_by_name_and_callable(self):
        X, y = _seed_data()
        by_name = ActiveLearner(LogisticRegression(), "margin", X, y)
        by_fn = ActiveLearner(
            LogisticRegression(), lambda model, pool, rng: 0, X, y
        )
        pool = np.zeros((3, 2))
        assert isinstance(by_name.query(pool), int)
        assert by_fn.query(pool) == 0


class TestQuery:
    def test_query_returns_most_uncertain(self):
        X, y = _seed_data()
        learner = ActiveLearner(LogisticRegression(C=10.0), "uncertainty", X, y)
        pool = np.array([[3.0, 3.0], [0.0, 0.0], [-3.0, -3.0]])
        assert learner.query(pool) == 1  # boundary point

    def test_empty_pool_raises(self):
        X, y = _seed_data()
        learner = ActiveLearner(LogisticRegression(), "uncertainty", X, y)
        with pytest.raises(ValueError, match="empty pool"):
            learner.query(np.empty((0, 2)))


class TestTeach:
    def test_teach_grows_labeled_set(self):
        X, y = _seed_data()
        learner = ActiveLearner(LogisticRegression(), "uncertainty", X, y)
        learner.teach(np.array([0.1, 0.1]), 0)
        assert learner.n_labeled == 11
        assert learner.y_labeled[-1] == 0

    def test_teach_refits_model(self):
        X, y = _seed_data()
        learner = ActiveLearner(LogisticRegression(), "uncertainty", X, y)
        before = learner.model
        learner.teach(np.array([0.0, 0.0]), 1)
        assert learner.model is not before

    def test_teach_feature_mismatch(self):
        X, y = _seed_data()
        learner = ActiveLearner(LogisticRegression(), "uncertainty", X, y)
        with pytest.raises(ValueError, match="features"):
            learner.teach(np.ones(5), 0)

    def test_refit_every_batches_refits(self):
        X, y = _seed_data()
        learner = ActiveLearner(
            LogisticRegression(), "uncertainty", X, y, refit_every=3
        )
        m0 = learner.model
        learner.teach(np.zeros(2), 0)
        learner.teach(np.zeros(2), 1)
        assert learner.model is m0  # no refit yet
        learner.teach(np.zeros(2), 0)
        assert learner.model is not m0  # third teach triggers refit

    def test_flush_forces_pending_refit(self):
        X, y = _seed_data()
        learner = ActiveLearner(
            LogisticRegression(), "uncertainty", X, y, refit_every=10
        )
        m0 = learner.model
        learner.teach(np.zeros(2), 0)
        learner.flush()
        assert learner.model is not m0

    def test_new_class_via_teach_becomes_predictable(self):
        """The ALBADross seed has no healthy samples; teaching the first
        healthy sample must make 'healthy' a reachable prediction."""
        X, y = _seed_data()
        y = np.array(["membw"] * 5 + ["dial"] * 5)
        learner = ActiveLearner(
            RandomForestClassifier(n_estimators=10, random_state=0),
            "uncertainty",
            X,
            y,
        )
        assert "healthy" not in learner.model.classes_
        for _ in range(4):
            learner.teach(np.array([10.0, 10.0]), "healthy")
        assert "healthy" in learner.model.classes_
        assert learner.predict(np.array([[10.0, 10.0]]))[0] == "healthy"


class TestLearningProgress:
    def test_uncertainty_labels_improve_model(self):
        """Teaching true labels for queried points should not hurt accuracy."""
        rng = np.random.default_rng(0)
        X_pool = rng.uniform(-4, 4, size=(200, 2))
        y_pool = (X_pool.sum(axis=1) > 0).astype(int)
        X_seed, y_seed = _seed_data()
        learner = ActiveLearner(
            RandomForestClassifier(n_estimators=10, random_state=0),
            "uncertainty",
            X_seed,
            y_seed,
            random_state=0,
        )
        before = learner.score(X_pool, y_pool)
        alive = np.arange(len(X_pool))
        for _ in range(40):
            i = learner.query(X_pool[alive])
            learner.teach(X_pool[alive[i]], y_pool[alive[i]])
            alive = np.delete(alive, i)
        after = learner.score(X_pool, y_pool)
        assert after >= before - 0.02
        assert after > 0.88
