"""Tests for stream-based selective sampling."""

import numpy as np
import pytest

from repro.active.stream import StreamActiveLearner
from repro.mlcore.linear import LogisticRegression


def _seed():
    rng = np.random.default_rng(0)
    X = np.vstack([rng.normal(-2, 0.4, (8, 2)), rng.normal(2, 0.4, (8, 2))])
    y = np.array([0] * 8 + [1] * 8)
    return X, y


def _learner(**kwargs):
    learner = StreamActiveLearner(LogisticRegression(C=10.0), **kwargs)
    return learner.initialize(*_seed())


class TestValidation:
    def test_threshold_range(self):
        with pytest.raises(ValueError, match="threshold"):
            StreamActiveLearner(LogisticRegression(), threshold=1.5)

    def test_target_rate_range(self):
        with pytest.raises(ValueError, match="target_rate"):
            StreamActiveLearner(LogisticRegression(), target_rate=0.0)

    def test_observe_before_initialize(self):
        learner = StreamActiveLearner(LogisticRegression())
        with pytest.raises(RuntimeError, match="initialize"):
            learner.observe(np.zeros(2))

    def test_feed_label_feature_mismatch(self):
        learner = _learner()
        with pytest.raises(ValueError, match="features"):
            learner.feed_label(np.zeros(5), 0)


class TestDecisions:
    def test_confident_sample_passed(self):
        learner = _learner(threshold=0.35, target_rate=None)
        decision = learner.observe(np.array([4.0, 4.0]))
        assert not decision.queried
        assert decision.prediction == 1

    def test_boundary_sample_queried(self):
        learner = _learner(threshold=0.35, target_rate=None)
        decision = learner.observe(np.array([0.0, 0.0]))
        assert decision.queried
        assert decision.uncertainty >= 0.35

    def test_counts_track_decisions(self):
        learner = _learner(target_rate=None)
        learner.observe(np.array([4.0, 4.0]))
        learner.observe(np.array([0.0, 0.0]))
        assert learner.n_seen == 2
        assert learner.n_queried == 1
        assert learner.query_rate == 0.5


class TestLearning:
    def test_feed_label_grows_and_refits(self):
        learner = _learner(target_rate=None)
        before = learner.n_labeled
        learner.feed_label(np.array([0.1, 0.1]), 0)
        assert learner.n_labeled == before + 1

    def test_stream_improves_on_shifted_data(self):
        """Streaming labels from a drifted region teaches the new region."""
        rng = np.random.default_rng(1)
        learner = _learner(threshold=0.2, target_rate=None)
        # class-1 cluster drifts to a new location
        drifted = rng.normal((-2, 6), 0.4, size=(60, 2))
        labels = np.ones(60, dtype=int)
        wrong_before = np.mean(learner.model.predict(drifted) != labels)
        for x, y in zip(drifted, labels):
            if learner.observe(x).queried:
                learner.feed_label(x, y)
        wrong_after = np.mean(learner.model.predict(drifted) != labels)
        assert wrong_after <= wrong_before

    def test_refit_every_batches(self):
        learner = _learner(target_rate=None, refit_every=3)
        m0 = learner.model
        learner.feed_label(np.zeros(2), 0)
        learner.feed_label(np.zeros(2), 1)
        assert learner.model is m0
        learner.feed_label(np.zeros(2), 0)
        assert learner.model is not m0


class TestAdaptiveThreshold:
    def test_query_raises_threshold(self):
        learner = _learner(threshold=0.2, target_rate=0.1)
        t0 = learner.threshold
        learner.observe(np.array([0.0, 0.0]))  # uncertain -> queried
        assert learner.threshold > t0

    def test_pass_lowers_threshold(self):
        learner = _learner(threshold=0.5, target_rate=0.1)
        t0 = learner.threshold
        learner.observe(np.array([5.0, 5.0]))  # confident -> passed
        assert learner.threshold < t0

    def test_rate_tracks_target_roughly(self):
        rng = np.random.default_rng(2)
        learner = _learner(threshold=0.3, target_rate=0.2, adapt_step=0.05)
        for _ in range(400):
            x = rng.normal(0, 2.5, size=2)
            decision = learner.observe(x)
            if decision.queried:
                learner.feed_label(x, int(x.sum() > 0))
        assert 0.05 < learner.query_rate < 0.5
