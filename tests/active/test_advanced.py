"""Tests for density-weighted uncertainty and query-by-committee."""

import numpy as np
import pytest

from repro.active.advanced import (
    DensityWeightedUncertainty,
    QueryByCommittee,
    information_density,
)
from repro.active.learner import ActiveLearner
from repro.mlcore.forest import RandomForestClassifier
from repro.mlcore.linear import LogisticRegression


class TestInformationDensity:
    def test_dense_cluster_scores_higher_than_outlier(self):
        rng = np.random.default_rng(0)
        cluster = rng.normal((1, 1), 0.05, size=(30, 2))
        outlier = np.array([[50.0, -50.0]])
        pool = np.vstack([cluster, outlier])
        density = information_density(pool)
        assert density[:30].mean() > density[30]

    def test_beta_zero_is_flat(self):
        rng = np.random.default_rng(1)
        density = information_density(rng.normal(size=(10, 3)), beta=0.0)
        assert np.allclose(density, 1.0)

    def test_zero_vector_density_zero(self):
        pool = np.vstack([np.zeros((1, 2)), np.ones((5, 2))])
        assert information_density(pool)[0] == 0.0


class TestDensityWeightedUncertainty:
    def _fixture(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(-2, 0.4, (20, 2)), rng.normal(2, 0.4, (20, 2))])
        y = np.array([0] * 20 + [1] * 20)
        model = LogisticRegression(C=10.0).fit(X, y)
        return model

    def test_prefers_representative_boundary_points(self):
        model = self._fixture()
        rng = np.random.default_rng(2)
        # a dense cloud near the boundary plus one extreme boundary outlier
        dense = rng.normal((0, 0), 0.2, size=(40, 2))
        outlier = np.array([[0.0, 80.0]])  # on the boundary but far away
        pool = np.vstack([dense, outlier])
        pick_plain = DensityWeightedUncertainty(beta=0.0)(model, pool, None)
        pick_dense = DensityWeightedUncertainty(beta=2.0)(model, pool, None)
        assert pick_dense < 40  # density weighting avoids the outlier

    def test_empty_pool(self):
        model = self._fixture()
        with pytest.raises(ValueError, match="empty"):
            DensityWeightedUncertainty()(model, np.empty((0, 2)), None)

    def test_works_inside_active_learner(self):
        rng = np.random.default_rng(3)
        X = np.vstack([rng.normal(-2, 0.4, (5, 2)), rng.normal(2, 0.4, (5, 2))])
        y = np.array([0] * 5 + [1] * 5)
        learner = ActiveLearner(
            LogisticRegression(), DensityWeightedUncertainty(), X, y
        )
        pool = rng.normal(0, 1, size=(20, 2))
        idx = learner.query(pool)
        assert 0 <= idx < 20


class TestQueryByCommittee:
    def _learner(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(-2, 0.5, (12, 2)), rng.normal(2, 0.5, (12, 2))])
        y = np.array([0] * 12 + [1] * 12)
        return ActiveLearner(
            RandomForestClassifier(n_estimators=5, random_state=0),
            "uncertainty",
            X,
            y,
            random_state=0,
        )

    def test_requires_binding(self):
        qbc = QueryByCommittee()
        with pytest.raises(RuntimeError, match="get_training_data"):
            qbc(None, np.ones((3, 2)), np.random.default_rng(0))

    def test_selects_disagreement_region(self):
        learner = self._learner()
        qbc = QueryByCommittee(committee_size=7).bind_learner(learner)
        pool = np.array([[0.0, 0.0], [-2.0, -2.0], [2.0, 2.0]])
        picks = [qbc(learner.model, pool, np.random.default_rng(s)) for s in range(5)]
        # the boundary point should dominate the disagreement votes
        assert max(set(picks), key=picks.count) == 0

    def test_empty_pool(self):
        learner = self._learner()
        qbc = QueryByCommittee().bind_learner(learner)
        with pytest.raises(ValueError, match="empty"):
            qbc(learner.model, np.empty((0, 2)), np.random.default_rng(0))

    def test_usable_as_learner_strategy(self):
        learner = self._learner()
        qbc = QueryByCommittee(committee_size=3)
        qbc.bind_learner(learner)
        learner._strategy = qbc  # rebind the strategy post-construction
        pool = np.random.default_rng(1).normal(size=(10, 2))
        idx = learner.query(pool)
        learner.teach(pool[idx], 0)
        assert learner.n_labeled == 25
