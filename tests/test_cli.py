"""Tests for the command-line interface and run-archive IO."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.datasets.generate import generate_runs
from repro.datasets.runs_io import load_runs, save_runs


class TestRunsIO:
    def test_roundtrip(self, tiny_config, tmp_path):
        runs = generate_runs(tiny_config, rng=0)[:8]
        path = save_runs(runs, tmp_path / "runs.npz")
        back = load_runs(path)
        assert len(back) == 8
        assert back[0].app == runs[0].app
        assert back[3].label == runs[3].label
        assert np.array_equal(back[0].data, runs[0].data, equal_nan=True)
        assert back[0].metric_names == runs[0].metric_names

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no runs"):
            save_runs([], tmp_path / "x.npz")

    def test_heterogeneous_rejected(self, tiny_config, tmp_path):
        runs = generate_runs(tiny_config, rng=0)[:2]
        short = runs[0]
        import dataclasses

        long = dataclasses.replace(runs[1])
        long.data = np.vstack([long.data, long.data])
        with pytest.raises(ValueError, match="heterogeneous"):
            save_runs([short, long], tmp_path / "x.npz")

    def test_anomaly_none_roundtrip(self, tiny_config, tmp_path):
        runs = [r for r in generate_runs(tiny_config, rng=0) if r.anomaly is None][:2]
        back = load_runs(save_runs(runs, tmp_path / "h.npz"))
        assert all(r.anomaly is None for r in back)
        assert all(r.label == "healthy" for r in back)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_collect_defaults(self):
        args = build_parser().parse_args(["collect", "--out", "x.npz"])
        assert args.system == "volta"
        assert args.scale == 0.05

    def test_bad_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["collect", "--system", "summit", "--out", "x"])

    def test_all_commands_parse(self):
        parser = build_parser()
        parser.parse_args(["info"])
        parser.parse_args(["train", "--runs", "r.npz", "--out", "m.pkl"])
        parser.parse_args(["diagnose", "--model", "m.pkl", "--runs", "r.npz"])
        parser.parse_args(["evaluate", "--model", "m.pkl", "--runs", "r.npz"])
        parser.parse_args(["registry", "list", "--root", "reg"])
        parser.parse_args(["serve-batch", "--registry", "reg", "--runs", "r.npz"])

    def test_registry_action_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["registry", "destroy", "--root", "reg"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--system", "volta"]) == 0
        out = capsys.readouterr().out
        assert "Kripke" in out
        assert "membw" in out
        assert "721" in out

    def test_collect_train_diagnose_evaluate_pipeline(self, tmp_path, capsys):
        runs_path = tmp_path / "runs.npz"
        model_path = tmp_path / "model.pkl"
        # small, fast campaign
        assert main([
            "collect", "--system", "volta", "--scale", "0.03",
            "--healthy-per-cell", "2", "--anomalous-per-cell", "2",
            "--duration", "96", "--seed", "1", "--out", str(runs_path),
        ]) == 0
        assert runs_path.exists()

        assert main([
            "train", "--runs", str(runs_path), "--system", "volta",
            "--scale", "0.03", "--n-features", "80",
            "--max-queries", "5", "--seed", "1", "--out", str(model_path),
        ]) == 0
        assert model_path.exists()
        out = capsys.readouterr().out
        assert "active learning" in out

        assert main([
            "diagnose", "--model", str(model_path),
            "--runs", str(runs_path), "--limit", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("confidence") == 4

        assert main([
            "evaluate", "--model", str(model_path), "--runs", str(runs_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "macro F1" in out
        assert "false alarm rate" in out

    def test_train_on_too_small_archive_fails_cleanly(self, tiny_config, tmp_path):
        runs = generate_runs(tiny_config, rng=0)[:3]
        path = save_runs(runs, tmp_path / "tiny.npz")
        code = main([
            "train", "--runs", str(path), "--out", str(tmp_path / "m.pkl"),
        ])
        assert code == 2


class TestInfoEclipse:
    def test_info_eclipse(self, capsys):
        assert main(["info", "--system", "eclipse"]) == 0
        out = capsys.readouterr().out
        assert "HACC" in out and "806" in out


class TestDiagnoseLimit:
    def test_limit_larger_than_archive(self, tiny_config, tmp_path, capsys):
        from repro.core import ALBADross, FrameworkConfig, save_framework

        runs = generate_runs(tiny_config, rng=3)[:12]
        archive = save_runs(runs, tmp_path / "r.npz")
        fw = ALBADross(
            tiny_config.catalog,
            FrameworkConfig(n_features=40, model_params={"n_estimators": 4}),
        )
        fw.fit_features(runs)
        fw.fit_initial(runs, [r.label for r in runs])
        model = save_framework(fw, tmp_path / "m.pkl")
        assert main([
            "diagnose", "--model", str(model), "--runs", str(archive),
            "--limit", "999",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("confidence") == 12
