"""Tests for MVTS feature extraction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features.mvts import (
    MVTS_FEATURE_NAMES,
    extract_mvts,
    feature_names_for,
)

IDX = {name: i for i, name in enumerate(MVTS_FEATURE_NAMES)}


def _feat(X, metric, name):
    """Pull one named feature of one metric from the flat output."""
    flat = extract_mvts(X)
    return flat[metric * len(MVTS_FEATURE_NAMES) + IDX[name]]


class TestInventory:
    def test_exactly_48_features(self):
        assert len(MVTS_FEATURE_NAMES) == 48
        assert len(set(MVTS_FEATURE_NAMES)) == 48

    def test_output_length(self):
        X = np.random.default_rng(0).normal(size=(50, 7))
        assert extract_mvts(X).shape == (7 * 48,)

    def test_feature_names_for(self):
        names = feature_names_for(["m1", "m2"])
        assert len(names) == 96
        assert names[0] == "m1::mean"
        assert names[48] == "m2::mean"


class TestValidation:
    def test_rejects_nan(self):
        X = np.ones((10, 2))
        X[3, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            extract_mvts(X)

    def test_rejects_short_series(self):
        with pytest.raises(ValueError, match="at least 4"):
            extract_mvts(np.ones((3, 2)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="T, M"):
            extract_mvts(np.ones(10))


class TestKnownValues:
    def test_descriptive_stats(self):
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        X = x.reshape(-1, 1)
        assert _feat(X, 0, "mean") == pytest.approx(3.0)
        assert _feat(X, 0, "median") == pytest.approx(3.0)
        assert _feat(X, 0, "min") == 1.0
        assert _feat(X, 0, "max") == 5.0
        assert _feat(X, 0, "range") == 4.0
        assert _feat(X, 0, "total") == 15.0
        assert _feat(X, 0, "abs_energy") == pytest.approx(55.0)

    def test_linear_slope(self):
        t = np.arange(20, dtype=float)
        X = (2.0 * t + 3.0).reshape(-1, 1)
        assert _feat(X, 0, "linear_slope") == pytest.approx(2.0)
        assert _feat(X, 0, "linear_intercept") == pytest.approx(3.0)

    def test_monotonic_increase_run(self):
        x = np.array([0.0, 1, 2, 3, 2, 1, 0, 1])
        X = x.reshape(-1, 1)
        assert _feat(X, 0, "longest_monotonic_increase") == 4  # 0,1,2,3
        assert _feat(X, 0, "longest_monotonic_decrease") == 4  # 3,2,1,0

    def test_half_diff_mean_on_step(self):
        x = np.concatenate([np.zeros(10), np.ones(10)])
        X = x.reshape(-1, 1)
        assert _feat(X, 0, "half_diff_mean") == pytest.approx(1.0)

    def test_mean_abs_change(self):
        x = np.array([0.0, 1.0, 0.0, 1.0, 0.0])
        X = x.reshape(-1, 1)
        assert _feat(X, 0, "mean_abs_change") == pytest.approx(1.0)
        assert _feat(X, 0, "mean_change") == pytest.approx(0.0)

    def test_autocorr_of_alternating_signal(self):
        x = np.tile([1.0, -1.0], 20)
        X = x.reshape(-1, 1)
        assert _feat(X, 0, "autocorr_lag1") == pytest.approx(-1.0, abs=0.05)
        assert _feat(X, 0, "autocorr_lag2") == pytest.approx(1.0, abs=0.05)

    def test_constant_series_is_safe(self):
        X = np.full((30, 1), 5.0)
        flat = extract_mvts(X)
        assert np.all(np.isfinite(flat))
        assert _feat(X, 0, "std") == 0.0
        assert _feat(X, 0, "skew") == 0.0
        assert _feat(X, 0, "variation_coefficient") == 0.0

    def test_metric_major_ordering(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 3))
        flat = extract_mvts(X)
        for j in range(3):
            solo = extract_mvts(X[:, [j]])
            block = flat[j * 48 : (j + 1) * 48]
            assert np.allclose(solo, block)


class TestAnomalySensitivity:
    def test_step_vs_flat_differ_in_half_diff(self):
        flat = np.zeros((60, 1)) + 0.5
        step = flat.copy()
        step[30:] += 1.0
        f_flat = extract_mvts(flat)
        f_step = extract_mvts(step)
        i = IDX["half_diff_mean"]
        assert f_step[i] > f_flat[i] + 0.9

    def test_ramp_has_positive_slope_feature(self):
        ramp = np.linspace(0, 1, 50).reshape(-1, 1)
        assert extract_mvts(ramp)[IDX["linear_slope"]] > 0.01


class TestProperties:
    @given(
        T=st.integers(8, 60),
        M=st.integers(1, 4),
        seed=st.integers(0, 999),
    )
    @settings(max_examples=30, deadline=None)
    def test_all_features_finite(self, T, M, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(scale=rng.uniform(0.1, 100), size=(T, M))
        assert np.all(np.isfinite(extract_mvts(X)))

    @given(seed=st.integers(0, 999))
    @settings(max_examples=20, deadline=None)
    def test_shift_invariance_of_std_features(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(40, 2))
        a = extract_mvts(X)
        b = extract_mvts(X + 100.0)
        for name in ("std", "var", "iqr", "mean_abs_change", "autocorr_lag1"):
            for j in range(2):
                i = j * 48 + IDX[name]
                assert a[i] == pytest.approx(b[i], abs=1e-6)
