"""Tests for TSFRESH-lite feature extraction."""

import numpy as np
import pytest

from repro.features.mvts import MVTS_FEATURE_NAMES, extract_mvts
from repro.features.tsfresh_lite import (
    TSFRESH_FEATURE_NAMES,
    _approx_entropy_column,
    extract_tsfresh,
    feature_names_for,
)

IDX = {name: i for i, name in enumerate(TSFRESH_FEATURE_NAMES)}
W = len(TSFRESH_FEATURE_NAMES)


def _feat(X, metric, name):
    return extract_tsfresh(X)[metric * W + IDX[name]]


class TestInventory:
    def test_112_features_superset_of_mvts(self):
        assert len(TSFRESH_FEATURE_NAMES) == 112
        assert TSFRESH_FEATURE_NAMES[:48] == MVTS_FEATURE_NAMES
        assert len(set(TSFRESH_FEATURE_NAMES)) == 112

    def test_output_length_and_names(self):
        X = np.random.default_rng(0).normal(size=(64, 3))
        assert extract_tsfresh(X).shape == (3 * 112,)
        names = feature_names_for(["a", "b"])
        assert len(names) == 224 and names[112] == "b::mean"

    def test_mvts_block_matches_standalone_mvts(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 2))
        ts = extract_tsfresh(X).reshape(2, 112)
        mv = extract_mvts(X).reshape(2, 48)
        assert np.allclose(ts[:, :48], mv)


class TestValidation:
    def test_rejects_nan(self):
        X = np.ones((20, 2))
        X[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            extract_tsfresh(X)

    def test_rejects_short(self):
        with pytest.raises(ValueError, match="at least 8"):
            extract_tsfresh(np.ones((5, 1)))


class TestApproxEntropy:
    def test_constant_is_zero(self):
        assert _approx_entropy_column(np.full(50, 3.0)) == 0.0

    def test_noise_more_entropic_than_sine(self):
        rng = np.random.default_rng(0)
        t = np.arange(200, dtype=float)
        sine = np.sin(2 * np.pi * t / 20)
        noise = rng.normal(size=200)
        assert _approx_entropy_column(noise) > _approx_entropy_column(sine)

    def test_long_series_capped(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=2000)
        a = _approx_entropy_column(x, max_len=256)
        b = _approx_entropy_column(x[:256], max_len=256)
        assert a == b


class TestSpectral:
    def test_dominant_frequency_of_sine(self):
        t = np.arange(128, dtype=float)
        period = 16.0
        X = np.sin(2 * np.pi * t / period).reshape(-1, 1)
        f = _feat(X, 0, "max_psd_freq")
        assert f == pytest.approx(1.0 / period, abs=0.02)

    def test_spectral_entropy_higher_for_noise(self):
        rng = np.random.default_rng(0)
        t = np.arange(128, dtype=float)
        X = np.column_stack([np.sin(2 * np.pi * t / 16), rng.normal(size=128)])
        flat = extract_tsfresh(X).reshape(2, W)
        i = IDX["spectral_entropy"]
        assert flat[1, i] > flat[0, i]

    def test_band_powers_sum_to_one(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(100, 3))
        flat = extract_tsfresh(X).reshape(3, W)
        bands = flat[:, [IDX[f"psd_band{b}"] for b in range(4)]]
        assert np.allclose(bands.sum(axis=1), 1.0, atol=1e-9)


class TestComplexity:
    def test_cid_larger_for_noise(self):
        rng = np.random.default_rng(0)
        t = np.arange(100, dtype=float)
        smooth = np.sin(2 * np.pi * t / 50)
        jagged = rng.normal(size=100)
        X = np.column_stack([smooth, jagged])
        flat = extract_tsfresh(X).reshape(2, W)
        assert flat[1, IDX["cid_ce"]] > flat[0, IDX["cid_ce"]]

    def test_binned_entropy_uniform_beats_constant(self):
        X = np.column_stack([np.linspace(0, 1, 100), np.full(100, 0.5)])
        flat = extract_tsfresh(X).reshape(2, W)
        i = IDX["binned_entropy"]
        assert flat[0, i] > flat[1, i]

    def test_number_peaks_of_sine(self):
        t = np.arange(100, dtype=float)
        X = np.sin(2 * np.pi * t / 20).reshape(-1, 1)
        assert _feat(X, 0, "number_peaks") == pytest.approx(5, abs=1)

    def test_energy_chunks_localize_a_burst(self):
        x = np.full(100, 0.001)
        x[:25] = 5.0  # all the energy in the first quarter
        X = x.reshape(-1, 1)
        flat = extract_tsfresh(X)
        assert flat[IDX["energy_chunk0"]] > 0.95

    def test_index_mass_quantile_of_front_loaded_signal(self):
        x = np.concatenate([np.full(20, 10.0), np.full(80, 0.01)])
        X = x.reshape(-1, 1)
        assert _feat(X, 0, "index_mass_q50") < 0.2


class TestRobustness:
    def test_constant_matrix_finite(self):
        X = np.full((60, 3), 2.5)
        assert np.all(np.isfinite(extract_tsfresh(X)))

    def test_extreme_scale_finite(self):
        rng = np.random.default_rng(3)
        X = rng.normal(scale=1e8, size=(64, 2))
        assert np.all(np.isfinite(extract_tsfresh(X)))
