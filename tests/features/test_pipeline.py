"""Tests for the preprocessing + extraction pipeline."""

import numpy as np
import pytest

from repro.features.pipeline import (
    FeatureDataset,
    FeatureExtractor,
    interpolate_missing,
    preprocess_run,
)
from repro.telemetry.collector import RunRecord


class TestInterpolation:
    def test_fills_interior_gap_linearly(self):
        col = np.array([0.0, np.nan, np.nan, 3.0]).reshape(-1, 1)
        out = interpolate_missing(col)
        assert np.allclose(out.ravel(), [0.0, 1.0, 2.0, 3.0])

    def test_edge_nans_take_nearest(self):
        col = np.array([np.nan, 1.0, 2.0, np.nan]).reshape(-1, 1)
        out = interpolate_missing(col)
        assert np.allclose(out.ravel(), [1.0, 1.0, 2.0, 2.0])

    def test_all_nan_column_becomes_zero(self):
        col = np.full((5, 1), np.nan)
        assert np.all(interpolate_missing(col) == 0.0)

    def test_untouched_when_complete(self):
        X = np.arange(12, dtype=float).reshape(6, 2)
        assert np.array_equal(interpolate_missing(X), X)


class TestPreprocess:
    def test_counter_columns_are_differenced(self):
        T = 50
        data = np.zeros((T, 2))
        data[:, 0] = np.arange(T) * 2.0  # counter accumulating at rate 2
        data[:, 1] = 7.0  # gauge
        out = preprocess_run(data, np.array([True, False]), trim_frac=(0.0, 0.0))
        assert np.allclose(out[:, 0], 2.0)
        assert np.allclose(out[:, 1], 7.0)
        assert out.shape[0] == T - 1

    def test_trim_removes_head_and_tail(self):
        T = 100
        data = np.arange(T, dtype=float).reshape(-1, 1)
        out = preprocess_run(data, np.array([False]), trim_frac=(0.1, 0.1))
        # 10 head + 10 tail trimmed, then one diff row dropped
        assert out.shape[0] == 79
        assert out[0, 0] == 11.0

    def test_nan_repair_happens_before_diff(self):
        data = np.arange(30, dtype=float).reshape(-1, 1)
        data[10] = np.nan
        out = preprocess_run(data, np.array([True]), trim_frac=(0.0, 0.0))
        assert np.allclose(out, 1.0)  # constant-rate counter stays constant

    def test_too_short_after_trim(self):
        with pytest.raises(ValueError, match="too short"):
            preprocess_run(np.ones((10, 1)), np.array([False]), trim_frac=(0.4, 0.4))

    def test_bad_trim_fractions(self):
        with pytest.raises(ValueError, match="trim"):
            preprocess_run(np.ones((50, 1)), np.array([False]), trim_frac=(0.5, 0.5))

    def test_counter_mask_mismatch(self):
        with pytest.raises(ValueError, match="counter_mask"):
            preprocess_run(np.ones((20, 3)), np.array([True]))


class TestFeatureDataset:
    def _mini(self):
        return FeatureDataset(
            X=np.arange(12, dtype=float).reshape(4, 3),
            labels=np.array(["healthy", "membw", "healthy", "dial"]),
            apps=np.array(["CG", "CG", "BT", "BT"]),
            input_decks=np.array([0, 1, 0, 1]),
            intensities=np.array([0.0, 0.5, 0.0, 1.0]),
            node_counts=np.array([4, 4, 4, 4]),
            feature_names=["f0", "f1", "f2"],
        )

    def test_len(self):
        assert len(self._mini()) == 4

    def test_subset_by_mask(self):
        ds = self._mini()
        sub = ds.subset(ds.labels == "healthy")
        assert len(sub) == 2
        assert set(sub.apps) == {"CG", "BT"}

    def test_subset_by_indices(self):
        ds = self._mini()
        sub = ds.subset(np.array([3, 0]))
        assert list(sub.labels) == ["dial", "healthy"]

    def test_metadata_length_validation(self):
        with pytest.raises(ValueError, match="length"):
            FeatureDataset(
                X=np.ones((3, 2)),
                labels=np.array(["a"]),
                apps=np.array(["x"] * 3),
                input_decks=np.zeros(3),
                intensities=np.zeros(3),
                node_counts=np.zeros(3),
            )


class TestFeatureExtractor:
    def test_fit_transform_on_campaign(self, tiny_config):
        from repro.datasets.generate import generate_runs

        runs = generate_runs(tiny_config, rng=0)
        fe = FeatureExtractor(tiny_config.catalog, method="mvts")
        ds = fe.fit_transform(runs)
        assert ds.X.shape[0] == len(runs)
        assert not np.isnan(ds.X).any()
        assert ds.X.shape[1] == len(ds.feature_names)
        assert ds.X.shape[1] <= fe.n_features_raw

    def test_transform_requires_fit(self, tiny_config):
        fe = FeatureExtractor(tiny_config.catalog)
        with pytest.raises(RuntimeError, match="fit_transform"):
            fe.transform([])

    def test_transform_reapplies_drop_mask(self, tiny_config):
        from repro.datasets.generate import generate_runs

        runs = generate_runs(tiny_config, rng=1)
        fe = FeatureExtractor(tiny_config.catalog, method="mvts")
        train = fe.fit_transform(runs[:20])
        test = fe.transform(runs[20:25])
        assert test.X.shape[1] == train.X.shape[1]

    def test_unknown_method(self, tiny_config):
        with pytest.raises(ValueError, match="unknown method"):
            FeatureExtractor(tiny_config.catalog, method="wavelets")

    def test_empty_corpus(self, tiny_config):
        fe = FeatureExtractor(tiny_config.catalog)
        with pytest.raises(ValueError, match="empty"):
            fe.fit_transform([])

    def test_labels_and_metadata_align(self, tiny_dataset):
        ds, _ = tiny_dataset
        anomalous = ds.labels != "healthy"
        assert np.all(ds.intensities[anomalous] > 0)
        assert np.all(ds.intensities[~anomalous] == 0)

    def test_parallel_map_gives_identical_results(self, tiny_config):
        from repro.datasets.generate import generate_runs
        from repro.parallel import Executor

        runs = generate_runs(tiny_config, rng=2)[:10]
        serial = FeatureExtractor(tiny_config.catalog).fit_transform(runs)
        parallel = FeatureExtractor(
            tiny_config.catalog, map_fn=Executor(n_workers=2).map
        ).fit_transform(runs)
        assert np.allclose(serial.X, parallel.X)
