"""Tests for the second-wave TSFRESH-lite feature families."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features.tsfresh_lite import TSFRESH_FEATURE_NAMES, extract_tsfresh

IDX = {name: i for i, name in enumerate(TSFRESH_FEATURE_NAMES)}
W = len(TSFRESH_FEATURE_NAMES)


def _feat(X, name, metric=0):
    return extract_tsfresh(X)[metric * W + IDX[name]]


class TestAggTrend:
    def test_ramp_has_positive_chunk_slope(self):
        X = np.linspace(0, 8, 64).reshape(-1, 1)
        assert _feat(X, "agg_trend_slope") > 1.0

    def test_flat_has_zero_slope_and_stderr(self):
        X = np.full((64, 1), 3.0)
        assert _feat(X, "agg_trend_slope") == pytest.approx(0.0)
        assert _feat(X, "agg_trend_stderr") == pytest.approx(0.0)

    def test_noisy_flat_has_higher_stderr_than_clean_ramp(self):
        rng = np.random.default_rng(0)
        noisy = rng.normal(size=(64, 1)) * 5
        ramp = np.linspace(0, 1, 64).reshape(-1, 1)
        assert _feat(noisy, "agg_trend_stderr") > _feat(ramp, "agg_trend_stderr")


class TestChangeQuantiles:
    def test_zero_when_no_changes_in_corridor(self):
        X = np.full((32, 1), 1.0)
        assert _feat(X, "change_quantiles_mean_abs") == 0.0

    def test_interior_volatility_detected(self):
        rng = np.random.default_rng(1)
        calm = np.cumsum(rng.normal(scale=0.01, size=64)).reshape(-1, 1)
        wild = rng.normal(scale=1.0, size=(64, 1))
        assert _feat(wild, "change_quantiles_mean_abs") > _feat(
            calm, "change_quantiles_mean_abs"
        )


class TestDuplication:
    def test_unique_ramp(self):
        X = np.arange(50, dtype=float).reshape(-1, 1)
        assert _feat(X, "ratio_unique_values") == pytest.approx(1.0)
        assert _feat(X, "has_duplicate_max") == 0.0
        assert _feat(X, "has_duplicate_min") == 0.0
        assert _feat(X, "pct_reoccurring_points") == pytest.approx(0.0)

    def test_repeated_extremes_flagged(self):
        x = np.array([0.0, 5.0, 1.0, 5.0, 0.0, 2.0, 3.0, 4.0] * 4)
        X = x.reshape(-1, 1)
        assert _feat(X, "has_duplicate_max") == 1.0
        assert _feat(X, "has_duplicate_min") == 1.0
        assert _feat(X, "ratio_unique_values") < 0.5


class TestAutoregressive:
    def test_ar1_process_recovers_coefficient(self):
        rng = np.random.default_rng(2)
        phi = 0.8
        x = np.zeros(1000)
        for t in range(1, 1000):
            x[t] = phi * x[t - 1] + rng.normal()
        X = x.reshape(-1, 1)
        assert _feat(X, "ar_coef_1") == pytest.approx(phi, abs=0.1)
        # AR(1) has near-zero lag-2 partial autocorrelation
        assert abs(_feat(X, "pacf_lag2")) < 0.15

    def test_white_noise_coefficients_near_zero(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(1000, 1))
        assert abs(_feat(X, "ar_coef_1")) < 0.1
        assert abs(_feat(X, "ar_coef_2")) < 0.1


class TestSpectralShape:
    def test_narrowband_has_smaller_psd_variance_than_noise(self):
        rng = np.random.default_rng(4)
        t = np.arange(256, dtype=float)
        sine = np.sin(2 * np.pi * t / 16).reshape(-1, 1)
        noise = rng.normal(size=(256, 1))
        assert _feat(sine, "psd_variance") < _feat(noise, "psd_variance")


class TestLevelFamilies:
    def test_mean_abs_max_7_of_spiky_signal(self):
        x = np.zeros(64)
        x[::9] = 10.0
        X = x.reshape(-1, 1)
        assert _feat(X, "mean_abs_max_7") == pytest.approx(10.0, abs=0.5)

    def test_crossings_median_of_alternating(self):
        x = np.tile([1.0, -1.0], 32)
        X = x.reshape(-1, 1)
        assert _feat(X, "crossings_median") >= 60

    def test_range_count_1sigma_of_gaussian(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(3000, 1))
        assert _feat(X, "range_count_1sigma") == pytest.approx(0.68, abs=0.05)

    def test_variance_gt_std_flag(self):
        small = (0.1 * np.random.default_rng(6).normal(size=(64, 1)))
        big = 100.0 * np.random.default_rng(7).normal(size=(64, 1))
        assert _feat(small, "variance_gt_std") == 0.0
        assert _feat(big, "variance_gt_std") == 1.0

    def test_extreme_regime_location(self):
        x = np.zeros(100)
        x[10:15] = 9.0  # the top decile lives early in the run
        X = x.reshape(-1, 1)
        assert _feat(X, "first_loc_above_q90") == pytest.approx(0.10, abs=0.02)
        assert _feat(X, "last_loc_above_q90") == pytest.approx(0.14, abs=0.02)

    def test_peak_supports_ordering(self):
        rng = np.random.default_rng(8)
        X = rng.normal(size=(200, 1))
        # stricter support -> fewer or equal peaks
        assert _feat(X, "number_peaks_s5") <= _feat(X, "number_peaks_s1")


class TestProperties:
    @given(
        T=st.integers(16, 80),
        M=st.integers(1, 3),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=25, deadline=None)
    def test_all_112_features_finite(self, T, M, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(scale=rng.uniform(0.01, 1000), size=(T, M))
        out = extract_tsfresh(X)
        assert out.shape == (M * 112,)
        assert np.all(np.isfinite(out))

    @given(seed=st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_constant_series_features_finite(self, seed):
        rng = np.random.default_rng(seed)
        X = np.full((40, 2), float(rng.uniform(-5, 5)))
        assert np.all(np.isfinite(extract_tsfresh(X)))
